//! Query plans: selectors × projections × options, and the
//! [`TelemetryQuery`] builder that assembles them.

use crate::FlowId;
use pint_core::RecorderKind;
use pint_wire::WireError;
use std::fmt;

/// Upper bound on a plan's quantile list — a query is a control-plane
/// message, not a bulk transfer, and the bound keeps hostile wire plans
/// from driving allocation.
pub(crate) const MAX_PHIS: usize = 1_024;

/// Upper bound on a flow-set / watch-list selector's ID list, for the
/// same reason: without it a single 64 MiB `Query` frame could decode
/// into hundreds of MB of IDs (and more again in backend routing).
/// Dashboards watch hundreds of flows; 64k is generous.
pub(crate) const MAX_SELECTOR_IDS: usize = 65_536;

/// Which flows a query reads.
///
/// Selection happens *before* any summary is cloned or serialized, so a
/// narrow selector on a large table costs only the selected flows —
/// locally (only owning shards are consulted) and on the wire (only
/// selected rows are shipped).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Selector {
    /// Every tracked flow, ascending by flow ID.
    All,
    /// Exactly these flows (deduplicated; untracked IDs are simply
    /// absent), ascending by flow ID.
    FlowSet(Vec<FlowId>),
    /// The `k` flows with the most recorded packets, heaviest first;
    /// equal packet counts order by **ascending flow ID** — the
    /// tie-break every tier shares, so the selection is deterministic.
    TopK(usize),
    /// These flows in **request order** (first occurrence wins for
    /// duplicates) — dashboard rows keep their screen position across
    /// polls. Untracked IDs are absent.
    WatchList(Vec<FlowId>),
    /// Flows whose fully decoded path contains the given switch ID —
    /// "everything through switch S", served from path-tracing state
    /// without an operator-maintained flow list.
    PathThroughSwitch(u64),
    /// Flows recorded by the given recorder kind — "latency-only" or
    /// "path-tracing-only" scopes for standing dashboards on mixed
    /// deployments, ascending by flow ID.
    OfKind(RecorderKind),
}

/// Codec parameters for server-side quantile decoding: the same three
/// numbers `DynamicAggregator::new` takes (minus the seed, which never
/// affects decoding). A plan carrying a spec tells the *server* to map
/// code-space quantiles back to real values before answering, so a
/// dashboard needs no local codec — only the deployment's value range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValueDecodeSpec {
    /// Per-hop digest bit budget (1..=32), as configured at the encoder.
    pub bits: u32,
    /// Smallest encodable value (must be finite and positive).
    pub v_min: f64,
    /// Largest encodable value (must be finite and greater than `v_min`).
    pub v_max: f64,
}

impl ValueDecodeSpec {
    /// Validates the spec's invariants — the wire decoder calls this on
    /// hostile input *before* any codec is constructed, so out-of-range
    /// parameters are a typed error, never a panic.
    fn validate(&self) -> Result<(), QueryError> {
        if !(1..=32).contains(&self.bits) {
            return Err(QueryError::InvalidPlan("decode bits must be in 1..=32"));
        }
        if !self.v_min.is_finite() || self.v_min <= 0.0 {
            return Err(QueryError::InvalidPlan(
                "decode v_min must be finite and positive",
            ));
        }
        if !self.v_max.is_finite() || self.v_max <= self.v_min {
            return Err(QueryError::InvalidPlan(
                "decode v_max must be finite and greater than v_min",
            ));
        }
        Ok(())
    }
}

/// What a query returns for the selected flows.
#[derive(Debug, Clone, PartialEq)]
pub enum Projection {
    /// Full [`FlowSummary`](crate::FlowSummary) rows.
    Summaries,
    /// The quantiles of one hop's value stream, merged across the
    /// selected flows. Without a `decode` spec the result carries
    /// code-space values (decode client-side via
    /// [`QueryResult::decode_quantiles`](crate::QueryResult::decode_quantiles));
    /// with one, the server decodes and answers real values.
    HopQuantiles {
        /// 1-based hop index (index 0 is unused by convention).
        hop: usize,
        /// Quantiles in `[0, 1]` to evaluate.
        phis: Vec<f64>,
        /// `Some` ⇒ decode server-side with this codec.
        decode: Option<ValueDecodeSpec>,
    },
    /// `(complete, total)` over the selected path-tracing flows.
    PathCompletion,
    /// The fully reconstructed routes of the selected flows.
    DecodedPaths,
    /// Aggregate counters over the selection (plus table totals when
    /// the selector is [`Selector::All`]).
    Stats,
}

/// Plan-wide options applied around the selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueryOptions {
    /// Delta reads: keep only flows whose `last_ts` is **strictly
    /// greater** than this sink-timestamp epoch. Applied *before* the
    /// selector, so e.g. `TopK` ranks only the flows that changed.
    pub updated_since: Option<u64>,
    /// Hard cap on returned rows, applied after the selector's
    /// ordering (a response-size guard for dashboards and the wire).
    pub max_flows: Option<usize>,
}

/// A validated, executable query: one selector, one projection, the
/// options. Executes identically on every
/// [`QueryBackend`](crate::QueryBackend); build it with
/// [`TelemetryQuery`].
#[derive(Debug, Clone, PartialEq)]
pub struct QueryPlan {
    /// Which flows to read.
    pub selector: Selector,
    /// What to return for them.
    pub projection: Projection,
    /// Delta / cap options.
    pub options: QueryOptions,
}

impl QueryPlan {
    /// Validates the plan's semantic invariants (quantiles in `[0, 1]`
    /// and finite, hop index ≥ 1, bounded quantile list). Called by
    /// [`TelemetryQuery::plan`] and by the wire decoder, so a hostile
    /// remote plan is rejected with the same rules as a local one.
    pub fn validate(&self) -> Result<(), QueryError> {
        if let Selector::FlowSet(ids) | Selector::WatchList(ids) = &self.selector {
            if ids.len() > MAX_SELECTOR_IDS {
                return Err(QueryError::InvalidPlan("too many flow IDs in one selector"));
            }
        }
        if let Projection::HopQuantiles { hop, phis, decode } = &self.projection {
            if *hop == 0 {
                return Err(QueryError::InvalidPlan("hop index is 1-based; 0 is unused"));
            }
            if *hop > usize::from(u16::MAX) {
                return Err(QueryError::InvalidPlan("hop index exceeds the path bound"));
            }
            if phis.len() > MAX_PHIS {
                return Err(QueryError::InvalidPlan("too many quantiles in one plan"));
            }
            if phis
                .iter()
                .any(|p| !p.is_finite() || !(0.0..=1.0).contains(p))
            {
                return Err(QueryError::InvalidPlan(
                    "quantiles must be finite in [0, 1]",
                ));
            }
            if let Some(spec) = decode {
                spec.validate()?;
            }
        }
        Ok(())
    }

    /// Decodes a plan from wire bytes **and** re-validates it —
    /// the only decode path untrusted plans should take.
    pub fn decode_checked(bytes: &[u8]) -> Result<Self, QueryError> {
        let plan = <Self as pint_wire::WireDecode>::decode(bytes).map_err(QueryError::Wire)?;
        plan.validate()?;
        Ok(plan)
    }
}

/// Fluent builder for [`QueryPlan`]s.
///
/// Starts as "all flows → summaries"; each call replaces the selector,
/// the projection, or an option. [`plan`](Self::plan) validates and
/// freezes the result.
///
/// ```
/// use pint_query::{Projection, Selector, TelemetryQuery};
///
/// let plan = TelemetryQuery::new()
///     .flows([7, 3, 3])
///     .summaries()
///     .max_flows(16)
///     .plan()
///     .unwrap();
/// assert_eq!(plan.selector, Selector::FlowSet(vec![7, 3, 3]));
/// assert_eq!(plan.projection, Projection::Summaries);
/// assert_eq!(plan.options.max_flows, Some(16));
/// ```
#[derive(Debug, Clone, Default)]
pub struct TelemetryQuery {
    selector: Option<Selector>,
    projection: Option<Projection>,
    options: QueryOptions,
}

impl TelemetryQuery {
    /// An empty query: all flows, summary rows, no options.
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects every tracked flow (the default).
    ///
    /// ```
    /// use pint_query::{Selector, TelemetryQuery};
    /// let plan = TelemetryQuery::new().all_flows().plan().unwrap();
    /// assert_eq!(plan.selector, Selector::All);
    /// ```
    pub fn all_flows(mut self) -> Self {
        self.selector = Some(Selector::All);
        self
    }

    /// Selects an explicit flow set (deduplicated, returned ascending
    /// by ID; untracked IDs are absent).
    ///
    /// ```
    /// use pint_query::{Selector, TelemetryQuery};
    /// let plan = TelemetryQuery::new().flows(vec![9, 2]).plan().unwrap();
    /// assert_eq!(plan.selector, Selector::FlowSet(vec![9, 2]));
    /// ```
    pub fn flows(mut self, ids: impl Into<Vec<FlowId>>) -> Self {
        self.selector = Some(Selector::FlowSet(ids.into()));
        self
    }

    /// Selects the `k` heaviest flows by recorded packets (ties broken
    /// by ascending flow ID), heaviest first.
    ///
    /// ```
    /// use pint_query::{Selector, TelemetryQuery};
    /// let plan = TelemetryQuery::new().top_k(10).plan().unwrap();
    /// assert_eq!(plan.selector, Selector::TopK(10));
    /// ```
    pub fn top_k(mut self, k: usize) -> Self {
        self.selector = Some(Selector::TopK(k));
        self
    }

    /// Selects a watch list: rows come back in **request order** (first
    /// occurrence wins), so dashboard panels keep their layout.
    ///
    /// ```
    /// use pint_query::{Selector, TelemetryQuery};
    /// let plan = TelemetryQuery::new().watch([42, 7]).plan().unwrap();
    /// assert_eq!(plan.selector, Selector::WatchList(vec![42, 7]));
    /// ```
    pub fn watch(mut self, ids: impl Into<Vec<FlowId>>) -> Self {
        self.selector = Some(Selector::WatchList(ids.into()));
        self
    }

    /// Selects flows whose decoded path contains `switch` — the
    /// "everything through switch S" predicate, resolved from
    /// path-tracing state instead of an operator-maintained list.
    ///
    /// ```
    /// use pint_query::{Selector, TelemetryQuery};
    /// let plan = TelemetryQuery::new().through_switch(19).plan().unwrap();
    /// assert_eq!(plan.selector, Selector::PathThroughSwitch(19));
    /// ```
    pub fn through_switch(mut self, switch: u64) -> Self {
        self.selector = Some(Selector::PathThroughSwitch(switch));
        self
    }

    /// Selects flows recorded by `kind` — scope a standing dashboard to
    /// e.g. latency-only flows on a deployment that mixes recorder
    /// kinds behind one collector.
    ///
    /// ```
    /// use pint_core::RecorderKind;
    /// use pint_query::{Selector, TelemetryQuery};
    /// let plan = TelemetryQuery::new()
    ///     .of_kind(RecorderKind::LatencyQuantiles)
    ///     .plan()
    ///     .unwrap();
    /// assert_eq!(plan.selector, Selector::OfKind(RecorderKind::LatencyQuantiles));
    /// ```
    pub fn of_kind(mut self, kind: RecorderKind) -> Self {
        self.selector = Some(Selector::OfKind(kind));
        self
    }

    /// Projects full summary rows (the default).
    pub fn summaries(mut self) -> Self {
        self.projection = Some(Projection::Summaries);
        self
    }

    /// Projects hop `hop`'s merged code-space quantiles at each `phi`.
    ///
    /// ```
    /// use pint_query::TelemetryQuery;
    /// let plan = TelemetryQuery::new().hop_quantiles(3, [0.5, 0.9, 0.99]).plan().unwrap();
    /// assert!(TelemetryQuery::new().hop_quantiles(3, [1.5]).plan().is_err(), "phi out of range");
    /// assert!(TelemetryQuery::new().hop_quantiles(0, [0.5]).plan().is_err(), "hop 0 unused");
    /// # drop(plan);
    /// ```
    pub fn hop_quantiles(mut self, hop: usize, phis: impl Into<Vec<f64>>) -> Self {
        self.projection = Some(Projection::HopQuantiles {
            hop,
            phis: phis.into(),
            decode: None,
        });
        self
    }

    /// Projects hop `hop`'s merged quantiles, decoded **server-side**
    /// through the deployment's value codec (`spec` mirrors the
    /// aggregator's `bits`/`v_min`/`v_max`). The result carries real
    /// values, so the querying side needs no codec of its own.
    ///
    /// ```
    /// use pint_query::{TelemetryQuery, ValueDecodeSpec};
    /// let spec = ValueDecodeSpec { bits: 8, v_min: 100.0, v_max: 1.0e7 };
    /// let plan = TelemetryQuery::new().hop_quantiles_decoded(3, [0.5, 0.99], spec).plan().unwrap();
    /// let bad = ValueDecodeSpec { bits: 0, ..spec };
    /// assert!(TelemetryQuery::new().hop_quantiles_decoded(3, [0.5], bad).plan().is_err());
    /// # drop(plan);
    /// ```
    pub fn hop_quantiles_decoded(
        mut self,
        hop: usize,
        phis: impl Into<Vec<f64>>,
        spec: ValueDecodeSpec,
    ) -> Self {
        self.projection = Some(Projection::HopQuantiles {
            hop,
            phis: phis.into(),
            decode: Some(spec),
        });
        self
    }

    /// Projects `(complete, total)` path-reconstruction counts.
    pub fn path_completion(mut self) -> Self {
        self.projection = Some(Projection::PathCompletion);
        self
    }

    /// Projects the fully decoded routes of the selected flows.
    pub fn decoded_paths(mut self) -> Self {
        self.projection = Some(Projection::DecodedPaths);
        self
    }

    /// Projects aggregate counters over the selection.
    pub fn stats(mut self) -> Self {
        self.projection = Some(Projection::Stats);
        self
    }

    /// Delta read: only flows updated (sink timestamp strictly) after
    /// `epoch`. Pass the previous poll's max `last_ts` to receive only
    /// what changed since.
    ///
    /// ```
    /// use pint_query::TelemetryQuery;
    /// let plan = TelemetryQuery::new().since(1_000).plan().unwrap();
    /// assert_eq!(plan.options.updated_since, Some(1_000));
    /// ```
    pub fn since(mut self, epoch: u64) -> Self {
        self.options.updated_since = Some(epoch);
        self
    }

    /// Caps the number of returned rows (applied after the selector's
    /// ordering).
    pub fn max_flows(mut self, cap: usize) -> Self {
        self.options.max_flows = Some(cap);
        self
    }

    /// Validates and freezes the plan.
    pub fn plan(self) -> Result<QueryPlan, QueryError> {
        let plan = QueryPlan {
            selector: self.selector.unwrap_or(Selector::All),
            projection: self.projection.unwrap_or(Projection::Summaries),
            options: self.options,
        };
        plan.validate()?;
        Ok(plan)
    }
}

/// Why a query could not be built or executed.
#[derive(Debug)]
pub enum QueryError {
    /// The plan violates a semantic invariant (bad quantile, hop 0, …).
    InvalidPlan(&'static str),
    /// The backend failed to execute (collector shut down, shard gone,
    /// …) — stringified so this crate needs no backend dependency.
    Backend(String),
    /// A wire frame failed to encode/decode.
    Wire(WireError),
    /// A transport-level I/O failure.
    Io(std::io::Error),
    /// The remote end executed the plan and reported an error.
    Remote(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::InvalidPlan(why) => write!(f, "invalid query plan: {why}"),
            QueryError::Backend(why) => write!(f, "query backend failed: {why}"),
            QueryError::Wire(e) => write!(f, "query wire codec failed: {e}"),
            QueryError::Io(e) => write!(f, "query transport failed: {e}"),
            QueryError::Remote(why) => write!(f, "remote backend reported: {why}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<WireError> for QueryError {
    fn from(e: WireError) -> Self {
        QueryError::Wire(e)
    }
}

impl From<std::io::Error> for QueryError {
    fn from(e: std::io::Error) -> Self {
        QueryError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_to_all_summaries() {
        let plan = TelemetryQuery::new().plan().unwrap();
        assert_eq!(plan.selector, Selector::All);
        assert_eq!(plan.projection, Projection::Summaries);
        assert_eq!(plan.options, QueryOptions::default());
    }

    #[test]
    fn validation_rejects_bad_quantile_plans() {
        assert!(matches!(
            TelemetryQuery::new().hop_quantiles(1, [f64::NAN]).plan(),
            Err(QueryError::InvalidPlan(_))
        ));
        assert!(matches!(
            TelemetryQuery::new().hop_quantiles(1, [-0.1]).plan(),
            Err(QueryError::InvalidPlan(_))
        ));
        assert!(matches!(
            TelemetryQuery::new().hop_quantiles(0, [0.5]).plan(),
            Err(QueryError::InvalidPlan(_))
        ));
        let many = vec![0.5; MAX_PHIS + 1];
        assert!(matches!(
            TelemetryQuery::new().hop_quantiles(1, many).plan(),
            Err(QueryError::InvalidPlan(_))
        ));
        assert!(TelemetryQuery::new()
            .hop_quantiles(1, [0.0, 1.0])
            .plan()
            .is_ok());
    }

    #[test]
    fn later_builder_calls_replace_earlier_ones() {
        let plan = TelemetryQuery::new()
            .flows([1, 2])
            .top_k(3)
            .stats()
            .decoded_paths()
            .plan()
            .unwrap();
        assert_eq!(plan.selector, Selector::TopK(3));
        assert_eq!(plan.projection, Projection::DecodedPaths);
    }
}
