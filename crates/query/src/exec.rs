//! Plan execution: the shared selection/projection semantics every
//! backend delegates to.
//!
//! Backends *pre-narrow* for performance (a collector routes a flow-set
//! plan only to owning shards; a fleet view clones only candidate
//! rows) and then call [`refine`] + [`project`], so ordering,
//! tie-breaking, and projection arithmetic are defined in exactly one
//! place — the reason identical state yields byte-identical
//! [`QueryResult`]s on every tier.

use crate::plan::{Projection, QueryError, QueryPlan, Selector};
use crate::{FlowId, FlowSummary};
use pint_core::dynamic::DynamicAggregator;
use pint_sketches::KllSketch;
use std::collections::HashSet;

/// How fresh a backend's state is — the as-of stamp every
/// [`QueryResponse`](crate::QueryResponse) carries, so a dashboard can
/// tell "no traffic" from "stale replica".
///
/// The units are backend-defined but consistent per backend: a
/// collector or fleet view reports digest timestamps (its flows'
/// newest `last_ts`), a fleet aggregator reports snapshot epochs.
/// `lag()` compares applied against seen in those same units.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Watermark {
    /// Newest timestamp/epoch *applied* to the served state — what the
    /// answer is as-of.
    pub newest_applied: u64,
    /// Newest timestamp/epoch the backend has *seen* (applied or not);
    /// equals `newest_applied` when fully caught up.
    pub newest_seen: u64,
    /// Contributing sources: collector shards, fleet collectors, …
    /// Zero means the backend serves no state yet.
    pub sources: u64,
}

impl Watermark {
    /// How far applied state trails what has been seen (0 = caught up).
    pub fn lag(&self) -> u64 {
        self.newest_seen.saturating_sub(self.newest_applied)
    }
}

/// Something a [`QueryPlan`] executes against: a local
/// `Collector`, a merged `FleetView`, or a remote `QueryClient`.
pub trait QueryBackend {
    /// Executes the plan against this backend's current state.
    fn query(&self, plan: &QueryPlan) -> Result<QueryResult, QueryError>;

    /// This backend's freshness watermark, if it tracks one. The
    /// default (`None`) makes servers stamp a zero watermark rather
    /// than omit it — responses always carry an as-of marker.
    fn watermark(&self) -> Option<Watermark> {
        None
    }
}

/// What a query returns — typed rows, not a whole snapshot.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResult {
    /// Full per-flow rows, in the selector's order.
    Summaries(Vec<(FlowId, FlowSummary)>),
    /// One hop's merged code-space quantiles over the selection.
    HopQuantiles {
        /// The queried hop (1-based).
        hop: u64,
        /// Samples in the merged sketch (0 = no data at that hop).
        samples: u64,
        /// `(phi, code)` per requested quantile; empty when no
        /// selected flow has data at the hop. Codes are in *code
        /// space* — decode via [`decode_quantiles`](Self::decode_quantiles).
        quantiles: Vec<(f64, u64)>,
    },
    /// One hop's merged quantiles over the selection, decoded
    /// server-side to real values (the plan carried a
    /// [`ValueDecodeSpec`](crate::ValueDecodeSpec)).
    HopQuantilesDecoded {
        /// The queried hop (1-based).
        hop: u64,
        /// Samples in the merged sketch (0 = no data at that hop).
        samples: u64,
        /// `(phi, value)` per requested quantile, in value space (e.g.
        /// nanoseconds); empty when no selected flow has data at the
        /// hop.
        quantiles: Vec<(f64, f64)>,
    },
    /// Path-reconstruction progress over the selection.
    PathCompletion {
        /// Selected path-tracing flows whose route fully decoded.
        complete: u64,
        /// Selected path-tracing flows in total.
        total: u64,
    },
    /// Fully reconstructed routes, in the selector's order.
    DecodedPaths(Vec<(FlowId, Vec<u64>)>),
    /// Aggregate counters over the selection.
    Stats(SelectionStats),
}

impl QueryResult {
    /// Rows in the result (flows for `Summaries`/`DecodedPaths`,
    /// quantiles for `HopQuantiles`, path-tracing flows for
    /// `PathCompletion`, selected flows for `Stats`).
    pub fn len(&self) -> usize {
        match self {
            QueryResult::Summaries(rows) => rows.len(),
            QueryResult::HopQuantiles { quantiles, .. } => quantiles.len(),
            QueryResult::HopQuantilesDecoded { quantiles, .. } => quantiles.len(),
            QueryResult::PathCompletion { total, .. } => *total as usize,
            QueryResult::DecodedPaths(rows) => rows.len(),
            QueryResult::Stats(s) => s.flows as usize,
        }
    }

    /// `true` when [`len`](Self::len) is 0.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Decompresses a `HopQuantiles` result through the deployment's
    /// value codec: `(phi, value)` pairs in value space (e.g.
    /// nanoseconds). A `HopQuantilesDecoded` result is already in value
    /// space and comes back as-is (the codec is ignored). Empty for
    /// every other variant.
    pub fn decode_quantiles(&self, codec: &DynamicAggregator) -> Vec<(f64, f64)> {
        match self {
            QueryResult::HopQuantiles { quantiles, .. } => quantiles
                .iter()
                .map(|&(phi, code)| (phi, codec.decode(code)))
                .collect(),
            QueryResult::HopQuantilesDecoded { quantiles, .. } => quantiles.clone(),
            _ => Vec::new(),
        }
    }
}

/// Aggregate counters of one selection (the `Stats` projection).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SelectionStats {
    /// Selected flows.
    pub flows: u64,
    /// Digests recorded across them (saturating).
    pub packets: u64,
    /// Their recorder-state byte estimates, summed (saturating).
    pub state_bytes: u64,
    /// Inference-contradicting digests across them (saturating).
    pub inconsistencies: u64,
    /// Backend table totals — only present for [`Selector::All`]
    /// (narrow selectors don't consult every table, so per-table
    /// counters would be partial and misleading).
    pub table: Option<TableTotals>,
}

/// Whole-backend table counters, summed over the consulted tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TableTotals {
    /// Flows ever created.
    pub created: u64,
    /// Flows evicted by count/byte caps.
    pub evicted_lru: u64,
    /// Flows evicted by idle TTL.
    pub evicted_ttl: u64,
    /// Digests applied.
    pub ingested: u64,
}

/// Applies a plan's options and selector to candidate rows, producing
/// the final row set in the selector's canonical order.
///
/// `rows` must be ascending by flow ID with unique IDs (the natural
/// shape of a merged snapshot); backends may pass any superset of the
/// flows the plan selects — refinement is idempotent, so shard- or
/// view-level pre-narrowing never changes the answer.
pub fn refine(
    mut rows: Vec<(FlowId, FlowSummary)>,
    plan: &QueryPlan,
) -> Vec<(FlowId, FlowSummary)> {
    if let Some(since) = plan.options.updated_since {
        rows.retain(|(_, s)| s.last_ts > since);
    }
    rows = match &plan.selector {
        Selector::All => rows,
        Selector::FlowSet(ids) => {
            let mut wanted = ids.clone();
            wanted.sort_unstable();
            wanted.dedup();
            rows.retain(|(f, _)| wanted.binary_search(f).is_ok());
            rows
        }
        Selector::WatchList(ids) => {
            let mut seen = HashSet::with_capacity(ids.len());
            let mut out = Vec::new();
            for &id in ids {
                if !seen.insert(id) {
                    continue;
                }
                if let Ok(i) = rows.binary_search_by_key(&id, |&(f, _)| f) {
                    out.push(rows[i].clone());
                }
            }
            out
        }
        Selector::TopK(k) => {
            rows.sort_by(|a, b| top_k_order((a.1.packets, a.0), (b.1.packets, b.0)));
            rows.truncate(*k);
            rows
        }
        Selector::PathThroughSwitch(switch) => {
            rows.retain(|(_, s)| {
                s.path
                    .as_ref()
                    .and_then(|p| p.path.as_deref())
                    .is_some_and(|p| p.contains(switch))
            });
            rows
        }
        Selector::OfKind(kind) => {
            rows.retain(|(_, s)| s.kind == *kind);
            rows
        }
    };
    if let Some(cap) = plan.options.max_flows {
        rows.truncate(cap);
    }
    rows
}

/// The query tier's one top-K ordering, over `(packets, flow)` pairs:
/// most packets first, equal packet counts by ascending flow ID.
///
/// Every backend's pre-narrowing (a shard's local top-K, a fleet
/// view's reference ranking) must truncate with exactly this order —
/// a drifted copy would change which tied flows survive local
/// truncation before [`refine`] re-ranks, silently diverging
/// backends. Hence one shared comparator instead of five hand-written
/// sorts.
pub fn top_k_order(a: (u64, FlowId), b: (u64, FlowId)) -> std::cmp::Ordering {
    b.0.cmp(&a.0).then(a.1.cmp(&b.1))
}

/// Merges hop `hop`'s code-space sketches across `rows`, in row order.
/// `None` if no row has data at that hop. The fixed-seed base sketch
/// makes the merge reproducible for identical inputs — the property
/// the cross-backend equivalence tests rely on.
pub fn merge_hop_sketches(rows: &[(FlowId, FlowSummary)], hop: usize) -> Option<KllSketch> {
    let mut merged: Option<KllSketch> = None;
    for (_, s) in rows {
        let Some(sk) = s.hop_sketches.get(hop) else {
            continue;
        };
        if sk.is_empty() {
            continue;
        }
        match merged.as_mut() {
            None => {
                let mut base = KllSketch::with_seed(256, 0x5EED_4A11);
                base.merge(sk);
                merged = Some(base);
            }
            Some(m) => m.merge(sk),
        }
    }
    merged
}

/// Applies a projection to refined rows (consuming them — summary
/// rows move straight into the result, no re-clone). `table` carries
/// the backend's table totals for [`Projection::Stats`] under
/// [`Selector::All`] (pass `None` otherwise).
pub fn project(
    rows: Vec<(FlowId, FlowSummary)>,
    projection: &Projection,
    table: Option<TableTotals>,
) -> QueryResult {
    match projection {
        Projection::Summaries => QueryResult::Summaries(rows),
        Projection::HopQuantiles { hop, phis, decode } => {
            let merged = merge_hop_sketches(&rows, *hop);
            let samples = merged.as_ref().map_or(0, KllSketch::count);
            let quantiles: Vec<(f64, u64)> = merged
                .map(|sk| {
                    phis.iter()
                        .filter_map(|&phi| sk.quantile(phi).map(|code| (phi, code)))
                        .collect()
                })
                .unwrap_or_default();
            match decode {
                // Server-side decode: this runs inside every backend's
                // `project`, so the collector, a fleet view, and a TCP
                // responder all answer identical real-valued rows.
                // The spec was validated with the plan, so constructing
                // the codec cannot panic. The seed only affects
                // encoding-side hash choices, never decoding.
                Some(spec) => {
                    let codec = DynamicAggregator::new(0, spec.bits, spec.v_min, spec.v_max);
                    QueryResult::HopQuantilesDecoded {
                        hop: *hop as u64,
                        samples,
                        quantiles: quantiles
                            .into_iter()
                            .map(|(phi, code)| (phi, codec.decode(code)))
                            .collect(),
                    }
                }
                None => QueryResult::HopQuantiles {
                    hop: *hop as u64,
                    samples,
                    quantiles,
                },
            }
        }
        Projection::PathCompletion => {
            let mut complete = 0u64;
            let mut total = 0u64;
            for (_, s) in &rows {
                if let Some(p) = &s.path {
                    total += 1;
                    if p.is_complete() {
                        complete += 1;
                    }
                }
            }
            QueryResult::PathCompletion { complete, total }
        }
        Projection::DecodedPaths => QueryResult::DecodedPaths(
            rows.into_iter()
                .filter_map(|(f, s)| s.path.and_then(|p| p.path).map(|path| (f, path)))
                .collect(),
        ),
        Projection::Stats => {
            let mut stats = SelectionStats {
                flows: rows.len() as u64,
                table,
                ..SelectionStats::default()
            };
            for (_, s) in &rows {
                stats.packets = stats.packets.saturating_add(s.packets);
                stats.state_bytes = stats.state_bytes.saturating_add(s.state_bytes as u64);
                stats.inconsistencies = stats.inconsistencies.saturating_add(s.inconsistencies);
            }
            QueryResult::Stats(stats)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TelemetryQuery;
    use pint_core::{PathProgress, RecorderKind};

    fn row(flow: FlowId, packets: u64, last_ts: u64) -> (FlowId, FlowSummary) {
        (
            flow,
            FlowSummary {
                kind: RecorderKind::LatencyQuantiles,
                packets,
                state_bytes: 8,
                last_ts,
                hop_sketches: Vec::new(),
                path: None,
                inconsistencies: flow % 3,
            },
        )
    }

    fn path_row(flow: FlowId, path: Option<Vec<u64>>) -> (FlowId, FlowSummary) {
        let k = path.as_ref().map_or(4, Vec::len);
        (
            flow,
            FlowSummary {
                kind: RecorderKind::PathTracing,
                packets: 1,
                state_bytes: 8,
                last_ts: 0,
                hop_sketches: Vec::new(),
                path: Some(PathProgress {
                    resolved: path.as_ref().map_or(1, Vec::len),
                    k,
                    path,
                    inconsistencies: 0,
                }),
                inconsistencies: 0,
            },
        )
    }

    #[test]
    fn top_k_ties_break_by_ascending_flow_id() {
        // All equal packets: selection must be the k smallest IDs, in
        // (packets desc, id asc) order — i.e. plain ascending here.
        let rows: Vec<_> = (0..10).map(|f| row(f, 7, 0)).collect();
        let plan = TelemetryQuery::new().top_k(4).plan().unwrap();
        let picked = refine(rows, &plan);
        let ids: Vec<FlowId> = picked.iter().map(|&(f, _)| f).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn watch_list_preserves_request_order_and_dedupes() {
        let rows = vec![row(1, 1, 0), row(2, 2, 0), row(3, 3, 0)];
        let plan = TelemetryQuery::new().watch([3, 99, 1, 3]).plan().unwrap();
        let picked = refine(rows, &plan);
        let ids: Vec<FlowId> = picked.iter().map(|&(f, _)| f).collect();
        assert_eq!(
            ids,
            vec![3, 1],
            "request order, unknown absent, dup collapsed"
        );
    }

    #[test]
    fn since_filters_before_top_k_ranks() {
        // Flow 1 is heaviest but cold; a delta top-k must not include it.
        let rows = vec![row(1, 1_000, 5), row(2, 10, 50), row(3, 20, 60)];
        let plan = TelemetryQuery::new().top_k(1).since(10).plan().unwrap();
        let picked = refine(rows, &plan);
        assert_eq!(picked.len(), 1);
        assert_eq!(picked[0].0, 3);
    }

    #[test]
    fn path_through_switch_matches_decoded_paths_only() {
        let rows = vec![
            path_row(1, Some(vec![4, 19, 7])),
            path_row(2, Some(vec![4, 5, 7])),
            path_row(3, None), // undecoded: cannot match
        ];
        let plan = TelemetryQuery::new().through_switch(19).plan().unwrap();
        let picked = refine(rows, &plan);
        assert_eq!(picked.len(), 1);
        assert_eq!(picked[0].0, 1);
    }

    #[test]
    fn of_kind_keeps_only_matching_recorders() {
        let rows = vec![
            row(1, 10, 0),                    // LatencyQuantiles
            path_row(2, Some(vec![4, 5, 7])), // PathTracing
            row(3, 30, 0),                    // LatencyQuantiles
        ];
        let plan = TelemetryQuery::new()
            .of_kind(RecorderKind::LatencyQuantiles)
            .plan()
            .unwrap();
        let picked = refine(rows.clone(), &plan);
        let ids: Vec<FlowId> = picked.iter().map(|&(f, _)| f).collect();
        assert_eq!(ids, vec![1, 3]);
        let plan = TelemetryQuery::new()
            .of_kind(RecorderKind::FrequentValues)
            .plan()
            .unwrap();
        assert!(refine(rows, &plan).is_empty(), "no such recorder present");
    }

    #[test]
    fn projections_compute_expected_aggregates() {
        let rows = vec![
            path_row(1, Some(vec![4, 19, 7])),
            path_row(2, None),
            row(5, 40, 9),
        ];
        match project(rows.clone(), &Projection::PathCompletion, None) {
            QueryResult::PathCompletion { complete, total } => {
                assert_eq!((complete, total), (1, 2));
            }
            other => panic!("unexpected {other:?}"),
        }
        match project(rows.clone(), &Projection::DecodedPaths, None) {
            QueryResult::DecodedPaths(paths) => {
                assert_eq!(paths, vec![(1, vec![4, 19, 7])]);
            }
            other => panic!("unexpected {other:?}"),
        }
        match project(
            rows.clone(),
            &Projection::Stats,
            Some(TableTotals::default()),
        ) {
            QueryResult::Stats(s) => {
                assert_eq!(s.flows, 3);
                assert_eq!(s.packets, 42);
                assert_eq!(s.inconsistencies, 2, "flow 5 contributes 5 % 3");
                assert!(s.table.is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn max_flows_caps_after_selector_order() {
        let rows: Vec<_> = (0..10).map(|f| row(f, f, 0)).collect();
        let plan = TelemetryQuery::new().top_k(8).max_flows(2).plan().unwrap();
        let picked = refine(rows, &plan);
        let ids: Vec<FlowId> = picked.iter().map(|&(f, _)| f).collect();
        assert_eq!(ids, vec![9, 8], "heaviest two of the top-8 ranking");
    }
}
