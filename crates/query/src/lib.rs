//! # pint-query — one typed read API over every telemetry tier
//!
//! The paper organizes its control plane around a *query tuple* (§3.3:
//! value, aggregation, budgets, flow definition) compiled into one
//! execution plan. The read side of this workspace had grown the
//! opposite way: per-tier ad-hoc methods (`Collector::snapshot_flows`,
//! `FleetView::top_k`, a wire tier that could only ship full
//! snapshots). This crate makes the read path symmetrical with the
//! write path: one declarative [`TelemetryQuery`] compiles into a
//! [`QueryPlan`] that any backend executes through the single
//! [`QueryBackend`] trait.
//!
//! ```text
//!   TelemetryQuery (builder)            backends (QueryBackend)
//!   selector  × projection  × options   ┌──────────────────────────┐
//!   ─────────   ──────────    ───────   │ Collector    (local,     │
//!   all flows   summaries     delta-    │   plan routed to owning  │
//!   flow set    hop quantiles since     │   shards only)           │
//!   top-K       path compl.   max-flows │ FleetView    (merged,    │
//!   watch list  decoded paths           │   selection before merge)│
//!   path ∋ S    stats                   │ QueryClient  (TCP, Query/│
//!                 │                     │   QueryResponse frames)  │
//!                 ▼                     └──────────────────────────┘
//!            QueryPlan ──────────────────────────▶ QueryResult
//! ```
//!
//! Identical state yields **identical** results on every backend: the
//! final row ordering, tie-breaking, and projection arithmetic live in
//! this crate ([`refine`], [`project`]) and backends only *pre-narrow*
//! (route to owning shards, skip cold flows) before delegating here.
//! The workspace pins this with a proptest that compares local,
//! fleet-view, and loopback-TCP execution byte-for-byte.
//!
//! Build plans with the fluent builder:
//!
//! ```
//! use pint_query::TelemetryQuery;
//!
//! let plan = TelemetryQuery::new()
//!     .top_k(10)
//!     .hop_quantiles(2, [0.5, 0.99])
//!     .plan()
//!     .unwrap();
//! assert_eq!(plan, pint_query::QueryPlan::decode_checked(&pint_wire::WireEncode::encode(&plan)).unwrap());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod exec;
mod plan;
pub mod remote;
mod summary;
mod wire;

pub use exec::{
    merge_hop_sketches, project, refine, top_k_order, QueryBackend, QueryResult, SelectionStats,
    TableTotals, Watermark,
};
pub use plan::{
    Projection, QueryError, QueryOptions, QueryPlan, Selector, TelemetryQuery, ValueDecodeSpec,
};
pub use remote::{QueryClient, QueryRequest, QueryResponder, QueryResponse};
pub use summary::FlowSummary;

/// Flow identifier shared by every tier (matches `pint_netsim::FlowId`).
pub type FlowId = u64;
