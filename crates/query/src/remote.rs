//! The wire tier of the query API: `Query` / `QueryResponse` frames, a
//! generic TCP responder serving any [`QueryBackend`], and the client
//! that executes plans remotely.
//!
//! The transport carries exactly what the local API exchanges — an
//! encoded [`QueryPlan`] out, an encoded [`QueryResult`] back — so a
//! remote query is byte-identical to a local one on the same state
//! (pinned by the workspace's query-equivalence proptest). Malformed
//! frames are typed rejections: the responder answers a parseable-but-
//! invalid request with an error response and drops connections whose
//! byte stream cannot resynchronize, but it never panics on hostile
//! bytes.

use crate::exec::{QueryBackend, QueryResult, Watermark};
use crate::plan::{QueryError, QueryPlan};
use pint_wire::{
    frame_into, FrameReader, FrameType, MetricsMsg, MetricsReport, MetricsRequest, ReadFrameError,
    TraceMsg, TraceReport, TraceRequest, WireDecode, WireEncode, WireError, WireReader, WireWriter,
};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Accept-loop poll interval and per-connection read timeout — bounds
/// how long shutdown can lag (same contract as the fleet server).
const POLL_INTERVAL: Duration = Duration::from_millis(20);

/// Longest error message a response may carry (a hostile server must
/// not drive client allocation).
const MAX_ERROR_LEN: usize = 4_096;

/// A `Query` frame's payload: a correlation ID plus the plan.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRequest {
    /// Echoed verbatim in the matching [`QueryResponse`], so clients
    /// may pipeline requests on one connection.
    pub request_id: u64,
    /// The plan to execute.
    pub plan: QueryPlan,
}

impl WireEncode for QueryRequest {
    fn encode_into(&self, out: &mut Vec<u8>) {
        WireWriter::new(out).put_varint(self.request_id);
        self.plan.encode_into(out);
    }
}

impl WireDecode for QueryRequest {
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(QueryRequest {
            request_id: r.get_varint()?,
            plan: QueryPlan::decode_from(r)?,
        })
    }
}

impl QueryRequest {
    /// Encodes the complete wire frame (header included).
    pub fn to_frame_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        frame_into(FrameType::Query, self, &mut out);
        out
    }
}

/// Extension tag for the [`Watermark`] trailing bytes of a
/// [`QueryResponse`]. Responses from servers predating watermarks end
/// at the result; the tag gates optional suffixes beyond that.
const EXT_WATERMARK: u8 = 1;

/// A `QueryResponse` frame's payload: the echoed correlation ID and
/// either the result or the backend's error, stringified — plus the
/// serving backend's freshness [`Watermark`] as a trailing extension.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResponse {
    /// The [`QueryRequest::request_id`] this answers.
    pub request_id: u64,
    /// The executed result, or the error the backend reported.
    pub result: Result<QueryResult, String>,
    /// The backend's as-of stamp. Servers built with watermarks always
    /// stamp `Some` (a zero watermark when the backend tracks none);
    /// `None` only appears decoding responses from older servers.
    pub watermark: Option<Watermark>,
}

impl WireEncode for QueryResponse {
    fn encode_into(&self, out: &mut Vec<u8>) {
        WireWriter::new(out).put_varint(self.request_id);
        match &self.result {
            Ok(result) => {
                WireWriter::new(out).put_u8(0);
                result.encode_into(out);
            }
            Err(msg) => {
                let bytes = msg.as_bytes();
                let take = bytes.len().min(MAX_ERROR_LEN);
                let mut w = WireWriter::new(out);
                w.put_u8(1);
                w.put_varint(take as u64);
                w.put_bytes(&bytes[..take]);
            }
        }
        if let Some(wm) = &self.watermark {
            let mut w = WireWriter::new(out);
            w.put_u8(EXT_WATERMARK);
            w.put_varint(wm.newest_applied);
            w.put_varint(wm.newest_seen);
            w.put_varint(wm.sources);
        }
    }
}

impl WireDecode for QueryResponse {
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let request_id = r.get_varint()?;
        let result = match r.get_u8()? {
            0 => Ok(QueryResult::decode_from(r)?),
            1 => {
                let len = r.get_count(1)?;
                if len > MAX_ERROR_LEN {
                    return Err(WireError::Invalid("error message exceeds bound"));
                }
                Err(String::from_utf8_lossy(r.get_bytes(len)?).into_owned())
            }
            _ => return Err(WireError::Invalid("response status must be 0 or 1")),
        };
        let watermark = if r.remaining() > 0 {
            match r.get_u8()? {
                EXT_WATERMARK => Some(Watermark {
                    newest_applied: r.get_varint()?,
                    newest_seen: r.get_varint()?,
                    sources: r.get_varint()?,
                }),
                _ => return Err(WireError::Invalid("unknown query response extension")),
            }
        } else {
            None
        };
        Ok(QueryResponse {
            request_id,
            result,
            watermark,
        })
    }
}

impl QueryResponse {
    /// Encodes the complete wire frame (header included).
    pub fn to_frame_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        frame_into(FrameType::QueryResponse, self, &mut out);
        out
    }
}

/// Answers one `Query` frame payload against a backend, returning the
/// encoded `QueryResponse` frame to write back. Never panics: an
/// undecodable or invalid request becomes an error response (with a
/// best-effort request ID), and backend failures are stringified.
///
/// Every response — success or error — is stamped with the backend's
/// [`Watermark`] (zero if the backend tracks none), so clients always
/// learn how fresh the answering state was.
///
/// This is the single server-side execution point — the fleet server
/// and the standalone [`QueryResponder`] both route through it.
pub fn respond<B: QueryBackend + ?Sized>(backend: &B, payload: &[u8]) -> Vec<u8> {
    respond_with(backend, payload, None)
}

/// [`respond`] with an explicit watermark override — for transports
/// whose freshness authority is not the query backend itself (the
/// fleet server stamps its aggregator's epoch watermark onto views
/// merged from it). `None` falls back to `backend.watermark()`.
pub fn respond_with<B: QueryBackend + ?Sized>(
    backend: &B,
    payload: &[u8],
    watermark: Option<Watermark>,
) -> Vec<u8> {
    let watermark = Some(
        watermark
            .or_else(|| backend.watermark())
            .unwrap_or_default(),
    );
    let response = match QueryRequest::decode(payload) {
        Ok(req) => match req.plan.validate() {
            Ok(()) => QueryResponse {
                request_id: req.request_id,
                result: backend.query(&req.plan).map_err(|e| e.to_string()),
                watermark,
            },
            Err(e) => QueryResponse {
                request_id: req.request_id,
                result: Err(e.to_string()),
                watermark,
            },
        },
        Err(e) => QueryResponse {
            // The correlation ID is the payload's first varint; recover
            // it when possible so the client can match the error.
            request_id: WireReader::new(payload).get_varint().unwrap_or(0),
            result: Err(format!("undecodable query: {e}")),
            watermark,
        },
    };
    response.to_frame_bytes()
}

/// A TCP endpoint serving queries against one shared backend — the
/// collector-side responder (`QueryResponder::bind(addr,
/// Arc::new(collector))`) or any other [`QueryBackend`].
///
/// One reader thread per connection; non-`Query` frames are ignored,
/// streams that cannot resynchronize are dropped.
pub struct QueryResponder {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl QueryResponder {
    /// Binds and starts answering. Use `"127.0.0.1:0"` to let the OS
    /// pick a port (read it back via [`local_addr`](Self::local_addr)).
    pub fn bind<B>(addr: impl ToSocketAddrs, backend: Arc<B>) -> std::io::Result<Self>
    where
        B: QueryBackend + Send + Sync + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name("pint-query-accept".into())
            .spawn(move || accept_loop(listener, backend, accept_stop))
            .expect("spawn query accept thread");
        Ok(Self {
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address clients connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and joins the accept thread; live connections
    /// notice the stop flag within a poll interval.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for QueryResponder {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop<B>(listener: TcpListener, backend: Arc<B>, stop: Arc<AtomicBool>)
where
    B: QueryBackend + Send + Sync + 'static,
{
    let mut readers: Vec<JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let conn_backend = Arc::clone(&backend);
                let conn_stop = Arc::clone(&stop);
                match std::thread::Builder::new()
                    .name("pint-query-conn".into())
                    .spawn(move || connection_loop(stream, &*conn_backend, conn_stop))
                {
                    Ok(t) => readers.push(t),
                    Err(_) => { /* thread exhaustion: drop the connection */ }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
        readers.retain(|t| !t.is_finished());
    }
    for t in readers {
        let _ = t.join();
    }
}

fn connection_loop<B: QueryBackend + ?Sized>(
    stream: TcpStream,
    backend: &B,
    stop: Arc<AtomicBool>,
) {
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = FrameReader::new(stream);
    while !stop.load(Ordering::Acquire) {
        match reader.read_frame() {
            Ok(Some((FrameType::Query, payload))) => {
                let bytes = respond(backend, &payload);
                if writer
                    .write_all(&bytes)
                    .and_then(|()| writer.flush())
                    .is_err()
                {
                    return;
                }
            }
            Ok(Some(_)) => { /* not a query; ignore */ }
            Ok(None) => return, // peer closed cleanly
            Err(ReadFrameError::Io(e))
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue; // poll the stop flag, then resume buffering
            }
            // Framing broken (bad magic / oversized / mid-frame EOF):
            // the connection cannot recover. Drop it; the process and
            // its other connections live on.
            Err(_) => return,
        }
    }
}

/// Sends one plan as a `Query` frame on `writer` and reads frames from
/// `reader` until the matching `QueryResponse` arrives. Shared by
/// [`QueryClient`] and the fleet tier's client.
pub fn query_over<W: Write, R: std::io::Read>(
    writer: &mut W,
    reader: &mut FrameReader<R>,
    request_id: u64,
    plan: &QueryPlan,
) -> Result<QueryResult, QueryError> {
    response_over(writer, reader, request_id, plan)?
        .result
        .map_err(QueryError::Remote)
}

/// [`query_over`] returning the whole [`QueryResponse`] — for callers
/// that also want the server's freshness [`Watermark`], not just the
/// result.
pub fn response_over<W: Write, R: std::io::Read>(
    writer: &mut W,
    reader: &mut FrameReader<R>,
    request_id: u64,
    plan: &QueryPlan,
) -> Result<QueryResponse, QueryError> {
    plan.validate()?;
    let request = QueryRequest {
        request_id,
        plan: plan.clone(),
    };
    writer.write_all(&request.to_frame_bytes())?;
    writer.flush()?;
    loop {
        match reader.read_frame() {
            Ok(Some((FrameType::QueryResponse, payload))) => {
                let response = QueryResponse::decode(&payload).map_err(QueryError::Wire)?;
                if response.request_id != request_id {
                    continue; // an earlier request's answer; skip
                }
                return Ok(response);
            }
            Ok(Some(_)) => continue, // unrelated frame type
            Ok(None) => {
                return Err(QueryError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed before the response",
                )))
            }
            Err(ReadFrameError::Io(e)) => return Err(QueryError::Io(e)),
            Err(ReadFrameError::Wire(e)) => return Err(QueryError::Wire(e)),
        }
    }
}

/// Sends one `Metrics` request frame on `writer` and reads frames from
/// `reader` until the matching report arrives — the self-telemetry
/// sibling of [`query_over`], shared by [`QueryClient`] and the fleet
/// tier's client. Frames that are not the answer (earlier requests'
/// reports, interleaved query responses) are skipped, never errors.
pub fn metrics_over<W: Write, R: std::io::Read>(
    writer: &mut W,
    reader: &mut FrameReader<R>,
    request_id: u64,
) -> Result<MetricsReport, QueryError> {
    let mut bytes = Vec::new();
    frame_into(
        FrameType::Metrics,
        &MetricsRequest { request_id },
        &mut bytes,
    );
    writer.write_all(&bytes)?;
    writer.flush()?;
    loop {
        match reader.read_frame() {
            Ok(Some((FrameType::Metrics, payload))) => {
                match MetricsMsg::decode(&payload).map_err(QueryError::Wire)? {
                    MetricsMsg::Report(report) if report.request_id == request_id => {
                        return Ok(report)
                    }
                    _ => continue, // another request's report, or an echo
                }
            }
            Ok(Some(_)) => continue, // unrelated frame type
            Ok(None) => {
                return Err(QueryError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed before the metrics report",
                )))
            }
            Err(ReadFrameError::Io(e)) => return Err(QueryError::Io(e)),
            Err(ReadFrameError::Wire(e)) => return Err(QueryError::Wire(e)),
        }
    }
}

/// Sends one `TraceDump` request frame on `writer` and reads frames
/// from `reader` until the matching report arrives — the flight-
/// recorder sibling of [`metrics_over`], shared by [`QueryClient`] and
/// the fleet tier's client.
pub fn trace_over<W: Write, R: std::io::Read>(
    writer: &mut W,
    reader: &mut FrameReader<R>,
    request_id: u64,
) -> Result<TraceReport, QueryError> {
    let mut bytes = Vec::new();
    frame_into(
        FrameType::TraceDump,
        &TraceRequest { request_id },
        &mut bytes,
    );
    writer.write_all(&bytes)?;
    writer.flush()?;
    loop {
        match reader.read_frame() {
            Ok(Some((FrameType::TraceDump, payload))) => {
                match TraceMsg::decode(&payload).map_err(QueryError::Wire)? {
                    TraceMsg::Report(report) if report.request_id == request_id => {
                        return Ok(report)
                    }
                    _ => continue, // another request's report, or an echo
                }
            }
            Ok(Some(_)) => continue, // unrelated frame type
            Ok(None) => {
                return Err(QueryError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed before the trace report",
                )))
            }
            Err(ReadFrameError::Io(e)) => return Err(QueryError::Io(e)),
            Err(ReadFrameError::Wire(e)) => return Err(QueryError::Wire(e)),
        }
    }
}

/// A connection to a [`QueryResponder`] (or any server speaking
/// `Query`/`QueryResponse` frames, e.g. the fleet server).
pub struct QueryClient {
    writer: TcpStream,
    reader: FrameReader<TcpStream>,
    next_id: u64,
    last_watermark: Option<Watermark>,
}

impl QueryClient {
    /// Connects to a query endpoint.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true).ok();
        let reader = FrameReader::new(writer.try_clone()?);
        Ok(Self {
            writer,
            reader,
            next_id: 1,
            last_watermark: None,
        })
    }

    /// Executes one plan remotely, blocking for the response. On any
    /// answered request — success or remote error — the response's
    /// freshness stamp is retained for [`last_watermark`](Self::last_watermark).
    pub fn query(&mut self, plan: &QueryPlan) -> Result<QueryResult, QueryError> {
        let id = self.next_id;
        self.next_id += 1;
        let response = response_over(&mut self.writer, &mut self.reader, id, plan)?;
        self.last_watermark = response.watermark;
        response.result.map_err(QueryError::Remote)
    }

    /// The freshness [`Watermark`] carried by the most recent answered
    /// query on this connection — `None` before the first answer, or
    /// when talking to a server predating watermarks.
    pub fn last_watermark(&self) -> Option<Watermark> {
        self.last_watermark
    }

    /// Fetches the server's live self-telemetry snapshot (a `Metrics`
    /// frame), blocking for the report. Servers that do not serve
    /// metrics close the request unanswered, which surfaces as a
    /// timeout/EOF error here, never a hang past the socket timeout.
    pub fn fetch_metrics(&mut self) -> Result<MetricsReport, QueryError> {
        let id = self.next_id;
        self.next_id += 1;
        metrics_over(&mut self.writer, &mut self.reader, id)
    }

    /// Fetches the server's flight-recorder snapshot (a `TraceDump`
    /// frame), blocking for the report. Servers without a recorder
    /// answer with an empty dump.
    pub fn fetch_trace(&mut self) -> Result<TraceReport, QueryError> {
        let id = self.next_id;
        self.next_id += 1;
        trace_over(&mut self.writer, &mut self.reader, id)
    }
}

impl QueryBackend for std::sync::Mutex<QueryClient> {
    /// Lets a shared remote connection stand wherever a backend is
    /// expected (`QueryClient::query` needs `&mut self` for the
    /// stream).
    fn query(&self, plan: &QueryPlan) -> Result<QueryResult, QueryError> {
        self.lock()
            .map_err(|_| QueryError::Backend("query client poisoned".into()))?
            .query(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SelectionStats, TelemetryQuery};

    /// A deterministic in-memory backend for transport tests.
    struct Fixed;
    impl QueryBackend for Fixed {
        fn query(&self, plan: &QueryPlan) -> Result<QueryResult, QueryError> {
            match plan.selector {
                crate::Selector::TopK(0) => Err(QueryError::Backend("nothing to rank".into())),
                _ => Ok(QueryResult::Stats(SelectionStats {
                    flows: 3,
                    ..SelectionStats::default()
                })),
            }
        }
    }

    #[test]
    fn request_and_response_round_trip() {
        let req = QueryRequest {
            request_id: 77,
            plan: TelemetryQuery::new().top_k(5).stats().plan().unwrap(),
        };
        let bytes = req.to_frame_bytes();
        let (ty, payload) = pint_wire::parse_frame(&bytes).unwrap();
        assert_eq!(ty, FrameType::Query);
        assert_eq!(QueryRequest::decode(payload).unwrap(), req);

        for result in [
            Ok(QueryResult::PathCompletion {
                complete: 1,
                total: 2,
            }),
            Err("backend exploded".to_string()),
        ] {
            let resp = QueryResponse {
                request_id: 77,
                result,
                watermark: Some(Watermark {
                    newest_applied: 41,
                    newest_seen: 43,
                    sources: 2,
                }),
            };
            let bytes = resp.to_frame_bytes();
            let (ty, payload) = pint_wire::parse_frame(&bytes).unwrap();
            assert_eq!(ty, FrameType::QueryResponse);
            assert_eq!(QueryResponse::decode(payload).unwrap(), resp);
        }
    }

    #[test]
    fn watermarkless_responses_decode_without_extension() {
        // A response from a server predating watermarks: same bytes,
        // no trailing extension — must decode to `watermark: None`.
        let with = QueryResponse {
            request_id: 9,
            result: Err("old server".into()),
            watermark: Some(Watermark::default()),
        };
        let without = QueryResponse {
            watermark: None,
            ..with.clone()
        };
        let old_bytes = without.encode();
        assert_eq!(with.encode()[..old_bytes.len()], old_bytes[..]);
        assert_eq!(QueryResponse::decode(&old_bytes).unwrap(), without);
        // Unknown extension tags are rejected, not silently skipped.
        let mut bad = old_bytes;
        bad.push(0xEE);
        assert!(QueryResponse::decode(&bad).is_err());
    }

    #[test]
    fn responder_answers_over_loopback_and_reports_errors() {
        let responder = QueryResponder::bind("127.0.0.1:0", Arc::new(Fixed)).unwrap();
        let mut client = QueryClient::connect(responder.local_addr()).unwrap();
        assert_eq!(client.last_watermark(), None);
        let ok = client
            .query(&TelemetryQuery::new().stats().plan().unwrap())
            .unwrap();
        assert!(matches!(ok, QueryResult::Stats(s) if s.flows == 3));
        // `Fixed` tracks no watermark, but the server still stamps a
        // (zero) one on every answer.
        assert_eq!(client.last_watermark(), Some(Watermark::default()));
        let err = client
            .query(&TelemetryQuery::new().top_k(0).plan().unwrap())
            .unwrap_err();
        assert!(matches!(err, QueryError::Remote(ref m) if m.contains("nothing to rank")));
        responder.shutdown();
    }

    #[test]
    fn responder_survives_garbage_and_bad_payloads() {
        let responder = QueryResponder::bind("127.0.0.1:0", Arc::new(Fixed)).unwrap();
        let addr = responder.local_addr();
        // A connection speaking something else entirely.
        {
            let mut garbage = TcpStream::connect(addr).unwrap();
            garbage.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
        }
        // A well-framed Query frame whose payload is junk: the server
        // must answer with a typed error, not die.
        struct Junk;
        impl WireEncode for Junk {
            fn encode_into(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&[0xFF; 16]);
            }
        }
        let mut framed_junk = Vec::new();
        frame_into(FrameType::Query, &Junk, &mut framed_junk);
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(&framed_junk).unwrap();
        let mut reader = FrameReader::new(stream.try_clone().unwrap());
        let (ty, payload) = reader.read_frame().unwrap().unwrap();
        assert_eq!(ty, FrameType::QueryResponse);
        let resp = QueryResponse::decode(&payload).unwrap();
        assert!(resp.result.is_err());
        drop(stream);
        // The server still answers real queries afterwards.
        let mut client = QueryClient::connect(addr).unwrap();
        assert!(client.query(&TelemetryQuery::new().plan().unwrap()).is_ok());
        responder.shutdown();
    }
}
