//! The per-flow row every query tier exchanges.
//!
//! [`FlowSummary`] is the unit of the read path: shard workers export
//! one per tracked flow, collectors and fleet views merge them, and
//! [`QueryResult::Summaries`](crate::QueryResult::Summaries) rows carry
//! them back to callers (locally or over the wire). It lives in this
//! crate so every backend — and the wire codec — shares one definition.

use pint_core::{PathProgress, RecorderKind};
use pint_sketches::KllSketch;

/// One flow's recorded state, as exported by a shard snapshot and
/// merged up through collector and fleet views.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowSummary {
    /// Which aggregation the flow's recorder implements.
    pub kind: RecorderKind,
    /// Digests absorbed for this flow.
    pub packets: u64,
    /// Approximate recorder state bytes.
    pub state_bytes: usize,
    /// Latest sink timestamp for the flow (drives delta queries).
    pub last_ts: u64,
    /// Per-hop code-space sketches (latency flows; index = hop, 0 unused).
    pub hop_sketches: Vec<KllSketch>,
    /// Path-reconstruction progress (path-tracing flows).
    pub path: Option<PathProgress>,
    /// Digests contradicting the flow's inference.
    pub inconsistencies: u64,
}
