//! The per-flow row every query tier exchanges.
//!
//! [`FlowSummary`] is the unit of the read path: shard workers export
//! one per tracked flow, collectors and fleet views merge them, and
//! [`QueryResult::Summaries`](crate::QueryResult::Summaries) rows carry
//! them back to callers (locally or over the wire). It lives in this
//! crate so every backend — and the wire codec — shares one definition.

use pint_core::{PathProgress, RecorderKind};
use pint_sketches::KllSketch;

/// One flow's recorded state, as exported by a shard snapshot and
/// merged up through collector and fleet views.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowSummary {
    /// Which aggregation the flow's recorder implements.
    pub kind: RecorderKind,
    /// Digests absorbed for this flow.
    pub packets: u64,
    /// Approximate recorder state bytes.
    pub state_bytes: usize,
    /// Latest sink timestamp for the flow (drives delta queries).
    pub last_ts: u64,
    /// Per-hop code-space sketches (latency flows; index = hop, 0 unused).
    pub hop_sketches: Vec<KllSketch>,
    /// Path-reconstruction progress (path-tracing flows).
    pub path: Option<PathProgress>,
    /// Digests contradicting the flow's inference.
    pub inconsistencies: u64,
}

impl FlowSummary {
    /// Folds `src` (another backend's view of the same flow) into
    /// `self`. This is the one associative flow-level merge every tier
    /// shares: fleet views fold collector rows with it, and a restored
    /// collector folds its checkpoint base under live shard rows with
    /// it — so "merged live" and "restored from checkpoint" are
    /// byte-identical by construction.
    ///
    /// Counters saturate instead of wrapping: summaries come off the
    /// wire, and a hostile `u64::MAX` must not panic (overflow checks)
    /// or corrupt totals while a server holds its aggregator mutex.
    pub fn merge(&mut self, src: FlowSummary) {
        self.packets = self.packets.saturating_add(src.packets);
        self.state_bytes = self.state_bytes.saturating_add(src.state_bytes);
        self.last_ts = self.last_ts.max(src.last_ts);
        self.inconsistencies = self.inconsistencies.saturating_add(src.inconsistencies);
        for (hop, sk) in src.hop_sketches.into_iter().enumerate() {
            if hop >= self.hop_sketches.len() {
                self.hop_sketches.push(sk);
            } else if !sk.is_empty() {
                if self.hop_sketches[hop].is_empty() {
                    self.hop_sketches[hop] = sk;
                } else {
                    self.hop_sketches[hop].merge(&sk);
                }
            }
        }
        self.path = match (self.path.take(), src.path) {
            (Some(a), Some(b)) => {
                // Keep the further-along reconstruction; inconsistency
                // counts accumulate across both observers.
                let total = a.inconsistencies.saturating_add(b.inconsistencies);
                let mut keep = if b.resolved > a.resolved { b } else { a };
                keep.inconsistencies = total;
                Some(keep)
            }
            (a, b) => a.or(b),
        };
    }
}
