//! Wire codecs for the query tier: plans travel as `Query` frames,
//! results as `QueryResponse` frames (see `pint-wire` for the frame
//! envelope). All decode paths follow the workspace contract: typed
//! errors, no panics, and no allocation driven by unvalidated counts.

use crate::exec::{QueryResult, SelectionStats, TableTotals};
use crate::plan::{
    Projection, QueryOptions, QueryPlan, Selector, ValueDecodeSpec, MAX_PHIS, MAX_SELECTOR_IDS,
};
use crate::FlowSummary;
use pint_core::{PathProgress, RecorderKind};
use pint_sketches::KllSketch;
use pint_wire::{WireDecode, WireEncode, WireError, WireReader, WireWriter};

impl WireEncode for FlowSummary {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.kind.encode_into(out);
        let mut w = WireWriter::new(out);
        w.put_varint(self.packets);
        w.put_varint(self.state_bytes as u64);
        w.put_varint(self.last_ts);
        w.put_varint(self.inconsistencies);
        w.put_varint(self.hop_sketches.len() as u64);
        for sk in &self.hop_sketches {
            sk.encode_into(out);
        }
        let mut w = WireWriter::new(out);
        match &self.path {
            Some(p) => {
                w.put_u8(1);
                p.encode_into(out);
            }
            None => w.put_u8(0),
        }
    }
}

impl WireDecode for FlowSummary {
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let kind = RecorderKind::decode_from(r)?;
        let packets = r.get_varint()?;
        let state_bytes = r.get_varint()?;
        let last_ts = r.get_varint()?;
        let inconsistencies = r.get_varint()?;
        // An empty sketch still occupies ≥ 11 bytes on the wire; the
        // count is a path length (+1), so anything past the digest
        // format's u16 hop bound is hostile — reject before allocating
        // (each claimed sketch costs ~9× its wire minimum in memory).
        let sketches = r.get_count(11)?;
        if sketches > usize::from(u16::MAX) + 1 {
            return Err(WireError::Invalid("hop sketch count exceeds path bound"));
        }
        let mut hop_sketches = Vec::with_capacity(sketches);
        for _ in 0..sketches {
            hop_sketches.push(KllSketch::decode_from(r)?);
        }
        let path = match r.get_u8()? {
            0 => None,
            1 => Some(PathProgress::decode_from(r)?),
            _ => return Err(WireError::Invalid("path presence tag must be 0 or 1")),
        };
        Ok(FlowSummary {
            kind,
            packets,
            state_bytes: state_bytes as usize,
            last_ts,
            hop_sketches,
            path,
            inconsistencies,
        })
    }
}

impl WireEncode for Selector {
    fn encode_into(&self, out: &mut Vec<u8>) {
        let mut w = WireWriter::new(out);
        match self {
            Selector::All => w.put_u8(0),
            Selector::FlowSet(ids) => {
                w.put_u8(1);
                w.put_varint(ids.len() as u64);
                for &id in ids {
                    w.put_varint(id);
                }
            }
            Selector::TopK(k) => {
                w.put_u8(2);
                w.put_varint(*k as u64);
            }
            Selector::WatchList(ids) => {
                w.put_u8(3);
                w.put_varint(ids.len() as u64);
                for &id in ids {
                    w.put_varint(id);
                }
            }
            Selector::PathThroughSwitch(s) => {
                w.put_u8(4);
                w.put_varint(*s);
            }
            Selector::OfKind(kind) => {
                w.put_u8(5);
                kind.encode_into(out);
            }
        }
    }
}

impl WireDecode for Selector {
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(Selector::All),
            tag @ (1 | 3) => {
                let n = r.get_count(1)?;
                if n > MAX_SELECTOR_IDS {
                    return Err(WireError::Invalid("too many flow IDs in one selector"));
                }
                let mut ids = Vec::with_capacity(n.min(4_096));
                for _ in 0..n {
                    ids.push(r.get_varint()?);
                }
                Ok(if tag == 1 {
                    Selector::FlowSet(ids)
                } else {
                    Selector::WatchList(ids)
                })
            }
            2 => {
                let k = usize::try_from(r.get_varint()?)
                    .map_err(|_| WireError::Invalid("top-k count exceeds usize"))?;
                Ok(Selector::TopK(k))
            }
            4 => Ok(Selector::PathThroughSwitch(r.get_varint()?)),
            5 => Ok(Selector::OfKind(RecorderKind::decode_from(r)?)),
            _ => Err(WireError::Invalid("unknown selector tag")),
        }
    }
}

impl WireEncode for Projection {
    fn encode_into(&self, out: &mut Vec<u8>) {
        let mut w = WireWriter::new(out);
        match self {
            Projection::Summaries => w.put_u8(0),
            // Tag 1 is the historical code-space form; a decode spec
            // moves the projection to tag 5 so old decoders reject the
            // frame cleanly instead of mis-reading trailing fields.
            Projection::HopQuantiles {
                hop,
                phis,
                decode: None,
            } => {
                w.put_u8(1);
                w.put_varint(*hop as u64);
                w.put_varint(phis.len() as u64);
                for &phi in phis {
                    w.put_f64(phi);
                }
            }
            Projection::PathCompletion => w.put_u8(2),
            Projection::DecodedPaths => w.put_u8(3),
            Projection::Stats => w.put_u8(4),
            Projection::HopQuantiles {
                hop,
                phis,
                decode: Some(spec),
            } => {
                w.put_u8(5);
                w.put_varint(*hop as u64);
                w.put_varint(phis.len() as u64);
                for &phi in phis {
                    w.put_f64(phi);
                }
                w.put_varint(u64::from(spec.bits));
                w.put_f64(spec.v_min);
                w.put_f64(spec.v_max);
            }
        }
    }
}

impl WireDecode for Projection {
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(Projection::Summaries),
            tag @ (1 | 5) => {
                let hop = usize::try_from(r.get_varint()?)
                    .map_err(|_| WireError::Invalid("hop index exceeds usize"))?;
                let n = r.get_count(8)?;
                if n > MAX_PHIS {
                    return Err(WireError::Invalid("too many quantiles in one plan"));
                }
                let mut phis = Vec::with_capacity(n);
                for _ in 0..n {
                    phis.push(r.get_f64()?);
                }
                let decode = if tag == 5 {
                    let bits = u32::try_from(r.get_varint()?)
                        .map_err(|_| WireError::Invalid("decode bits exceed u32"))?;
                    // Range/finiteness invariants are re-checked by
                    // `QueryPlan::validate` on the decode_checked path.
                    Some(ValueDecodeSpec {
                        bits,
                        v_min: r.get_f64()?,
                        v_max: r.get_f64()?,
                    })
                } else {
                    None
                };
                Ok(Projection::HopQuantiles { hop, phis, decode })
            }
            2 => Ok(Projection::PathCompletion),
            3 => Ok(Projection::DecodedPaths),
            4 => Ok(Projection::Stats),
            _ => Err(WireError::Invalid("unknown projection tag")),
        }
    }
}

impl WireEncode for QueryOptions {
    fn encode_into(&self, out: &mut Vec<u8>) {
        let mut w = WireWriter::new(out);
        let flags =
            u8::from(self.updated_since.is_some()) | (u8::from(self.max_flows.is_some()) << 1);
        w.put_u8(flags);
        if let Some(since) = self.updated_since {
            w.put_varint(since);
        }
        if let Some(cap) = self.max_flows {
            w.put_varint(cap as u64);
        }
    }
}

impl WireDecode for QueryOptions {
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let flags = r.get_u8()?;
        if flags & !0b11 != 0 {
            return Err(WireError::Invalid("unknown query option flags"));
        }
        let updated_since = (flags & 1 != 0).then(|| r.get_varint()).transpose()?;
        let max_flows = (flags & 2 != 0)
            .then(|| {
                r.get_varint().and_then(|v| {
                    usize::try_from(v).map_err(|_| WireError::Invalid("max_flows exceeds usize"))
                })
            })
            .transpose()?;
        Ok(QueryOptions {
            updated_since,
            max_flows,
        })
    }
}

impl WireEncode for QueryPlan {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.selector.encode_into(out);
        self.projection.encode_into(out);
        self.options.encode_into(out);
    }
}

impl WireDecode for QueryPlan {
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(QueryPlan {
            selector: Selector::decode_from(r)?,
            projection: Projection::decode_from(r)?,
            options: QueryOptions::decode_from(r)?,
        })
    }
}

impl WireEncode for TableTotals {
    fn encode_into(&self, out: &mut Vec<u8>) {
        let mut w = WireWriter::new(out);
        w.put_varint(self.created);
        w.put_varint(self.evicted_lru);
        w.put_varint(self.evicted_ttl);
        w.put_varint(self.ingested);
    }
}

impl WireDecode for TableTotals {
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(TableTotals {
            created: r.get_varint()?,
            evicted_lru: r.get_varint()?,
            evicted_ttl: r.get_varint()?,
            ingested: r.get_varint()?,
        })
    }
}

impl WireEncode for SelectionStats {
    fn encode_into(&self, out: &mut Vec<u8>) {
        let mut w = WireWriter::new(out);
        w.put_varint(self.flows);
        w.put_varint(self.packets);
        w.put_varint(self.state_bytes);
        w.put_varint(self.inconsistencies);
        match &self.table {
            Some(t) => {
                w.put_u8(1);
                t.encode_into(out);
            }
            None => w.put_u8(0),
        }
    }
}

impl WireDecode for SelectionStats {
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let flows = r.get_varint()?;
        let packets = r.get_varint()?;
        let state_bytes = r.get_varint()?;
        let inconsistencies = r.get_varint()?;
        let table = match r.get_u8()? {
            0 => None,
            1 => Some(TableTotals::decode_from(r)?),
            _ => return Err(WireError::Invalid("table presence tag must be 0 or 1")),
        };
        Ok(SelectionStats {
            flows,
            packets,
            state_bytes,
            inconsistencies,
            table,
        })
    }
}

impl WireEncode for QueryResult {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            QueryResult::Summaries(rows) => {
                WireWriter::new(out).put_u8(0);
                WireWriter::new(out).put_varint(rows.len() as u64);
                for (flow, summary) in rows {
                    WireWriter::new(out).put_varint(*flow);
                    summary.encode_into(out);
                }
            }
            QueryResult::HopQuantiles {
                hop,
                samples,
                quantiles,
            } => {
                let mut w = WireWriter::new(out);
                w.put_u8(1);
                w.put_varint(*hop);
                w.put_varint(*samples);
                w.put_varint(quantiles.len() as u64);
                for &(phi, code) in quantiles {
                    w.put_f64(phi);
                    w.put_u64(code);
                }
            }
            QueryResult::PathCompletion { complete, total } => {
                let mut w = WireWriter::new(out);
                w.put_u8(2);
                w.put_varint(*complete);
                w.put_varint(*total);
            }
            QueryResult::DecodedPaths(rows) => {
                WireWriter::new(out).put_u8(3);
                WireWriter::new(out).put_varint(rows.len() as u64);
                for (flow, path) in rows {
                    let mut w = WireWriter::new(out);
                    w.put_varint(*flow);
                    w.put_varint(path.len() as u64);
                    for &hop in path {
                        w.put_varint(hop);
                    }
                }
            }
            QueryResult::Stats(stats) => {
                WireWriter::new(out).put_u8(4);
                stats.encode_into(out);
            }
            QueryResult::HopQuantilesDecoded {
                hop,
                samples,
                quantiles,
            } => {
                let mut w = WireWriter::new(out);
                w.put_u8(5);
                w.put_varint(*hop);
                w.put_varint(*samples);
                w.put_varint(quantiles.len() as u64);
                for &(phi, value) in quantiles {
                    w.put_f64(phi);
                    w.put_f64(value);
                }
            }
        }
    }
}

impl WireDecode for QueryResult {
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => {
                // Each row is ≥ 8 bytes: a 1-byte flow id plus the
                // minimal summary (kind, four 1-byte varints, a zero
                // sketch count, the path-absent tag) — exactly what a
                // sketchless, pathless recorder row encodes to, so the
                // floor must not be higher or valid responses bounce.
                let n = r.get_count(8)?;
                let mut rows = Vec::with_capacity(n.min(4_096));
                for _ in 0..n {
                    let flow = r.get_varint()?;
                    rows.push((flow, FlowSummary::decode_from(r)?));
                }
                Ok(QueryResult::Summaries(rows))
            }
            1 => {
                let hop = r.get_varint()?;
                let samples = r.get_varint()?;
                let n = r.get_count(16)?;
                let mut quantiles = Vec::with_capacity(n);
                for _ in 0..n {
                    let phi = r.get_f64()?;
                    let code = r.get_u64()?;
                    quantiles.push((phi, code));
                }
                Ok(QueryResult::HopQuantiles {
                    hop,
                    samples,
                    quantiles,
                })
            }
            2 => Ok(QueryResult::PathCompletion {
                complete: r.get_varint()?,
                total: r.get_varint()?,
            }),
            3 => {
                let n = r.get_count(2)?;
                let mut rows = Vec::with_capacity(n.min(4_096));
                for _ in 0..n {
                    let flow = r.get_varint()?;
                    let len = r.get_count(1)?;
                    if len > usize::from(u16::MAX) {
                        return Err(WireError::Invalid("decoded path exceeds hop bound"));
                    }
                    let mut path = Vec::with_capacity(len);
                    for _ in 0..len {
                        path.push(r.get_varint()?);
                    }
                    rows.push((flow, path));
                }
                Ok(QueryResult::DecodedPaths(rows))
            }
            4 => Ok(QueryResult::Stats(SelectionStats::decode_from(r)?)),
            5 => {
                let hop = r.get_varint()?;
                let samples = r.get_varint()?;
                let n = r.get_count(16)?;
                let mut quantiles = Vec::with_capacity(n);
                for _ in 0..n {
                    let phi = r.get_f64()?;
                    let value = r.get_f64()?;
                    quantiles.push((phi, value));
                }
                Ok(QueryResult::HopQuantilesDecoded {
                    hop,
                    samples,
                    quantiles,
                })
            }
            _ => Err(WireError::Invalid("unknown query result tag")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TelemetryQuery;

    fn sample_plans() -> Vec<QueryPlan> {
        vec![
            TelemetryQuery::new().plan().unwrap(),
            TelemetryQuery::new()
                .flows([5, 1, 5])
                .stats()
                .plan()
                .unwrap(),
            TelemetryQuery::new()
                .top_k(7)
                .hop_quantiles(2, [0.0, 0.5, 1.0])
                .since(99)
                .plan()
                .unwrap(),
            TelemetryQuery::new()
                .watch([8, 8, 2])
                .decoded_paths()
                .max_flows(3)
                .plan()
                .unwrap(),
            TelemetryQuery::new()
                .through_switch(u64::MAX)
                .path_completion()
                .since(0)
                .max_flows(0)
                .plan()
                .unwrap(),
            TelemetryQuery::new()
                .of_kind(RecorderKind::PathTracing)
                .stats()
                .plan()
                .unwrap(),
            TelemetryQuery::new()
                .top_k(3)
                .hop_quantiles_decoded(
                    2,
                    [0.5, 0.99],
                    ValueDecodeSpec {
                        bits: 8,
                        v_min: 100.0,
                        v_max: 1.0e7,
                    },
                )
                .plan()
                .unwrap(),
        ]
    }

    #[test]
    fn plans_round_trip_exactly() {
        for plan in sample_plans() {
            let decoded = QueryPlan::decode_checked(&plan.encode()).unwrap();
            assert_eq!(decoded, plan);
        }
    }

    #[test]
    fn results_round_trip_exactly() {
        let results = vec![
            QueryResult::Summaries(Vec::new()),
            QueryResult::HopQuantiles {
                hop: 3,
                samples: 1_000,
                quantiles: vec![(0.5, 17), (0.99, 250)],
            },
            QueryResult::HopQuantilesDecoded {
                hop: 3,
                samples: 1_000,
                quantiles: vec![(0.5, 1_234.5), (0.99, 98_765.4)],
            },
            QueryResult::PathCompletion {
                complete: 3,
                total: 9,
            },
            QueryResult::DecodedPaths(vec![(4, vec![1, 2, 3]), (9, Vec::new())]),
            QueryResult::Stats(SelectionStats {
                flows: 2,
                packets: 100,
                state_bytes: 512,
                inconsistencies: 1,
                table: Some(TableTotals {
                    created: 5,
                    evicted_lru: 1,
                    evicted_ttl: 2,
                    ingested: 100,
                }),
            }),
        ];
        for result in results {
            let decoded = QueryResult::decode(&result.encode()).unwrap();
            assert_eq!(decoded, result);
        }
    }

    #[test]
    fn truncated_and_corrupt_plan_bytes_never_panic() {
        for plan in sample_plans() {
            let bytes = plan.encode();
            for cut in 0..bytes.len() {
                assert!(
                    QueryPlan::decode_checked(&bytes[..cut]).is_err(),
                    "truncation at {cut}"
                );
            }
            for i in 0..bytes.len() {
                let mut bad = bytes.clone();
                bad[i] ^= 0x5A;
                let _ = QueryPlan::decode_checked(&bad); // Err or Ok, no panic
            }
        }
    }

    #[test]
    fn minimal_summary_rows_round_trip() {
        // A sketchless, pathless recorder (e.g. FrequentValues) with
        // small counters encodes to the 8-byte row floor; the decode
        // count guard must accept a response made only of such rows.
        let row = crate::FlowSummary {
            kind: pint_core::RecorderKind::FrequentValues,
            packets: 1,
            state_bytes: 80,
            last_ts: 0,
            hop_sketches: Vec::new(),
            path: None,
            inconsistencies: 0,
        };
        let result = QueryResult::Summaries(vec![(1, row.clone()), (2, row)]);
        let bytes = result.encode();
        assert_eq!(QueryResult::decode(&bytes).unwrap(), result);
    }

    #[test]
    fn oversized_selector_id_lists_are_rejected() {
        // At plan time…
        let big = vec![1u64; MAX_SELECTOR_IDS + 1];
        assert!(matches!(
            TelemetryQuery::new().flows(big.clone()).plan(),
            Err(crate::QueryError::InvalidPlan(_))
        ));
        assert!(matches!(
            TelemetryQuery::new().watch(big.clone()).plan(),
            Err(crate::QueryError::InvalidPlan(_))
        ));
        // …and on the wire, even when the payload physically backs the
        // count (one hostile frame must not drive huge allocations).
        let mut bytes = Vec::new();
        let mut w = WireWriter::new(&mut bytes);
        w.put_u8(1);
        w.put_varint(big.len() as u64);
        for &id in &big {
            w.put_varint(id);
        }
        let mut r = WireReader::new(&bytes);
        assert!(matches!(
            Selector::decode_from(&mut r),
            Err(WireError::Invalid(_))
        ));
        // The bound itself is fine.
        assert!(TelemetryQuery::new()
            .flows(vec![1u64; MAX_SELECTOR_IDS])
            .plan()
            .is_ok());
    }

    #[test]
    fn hostile_counts_are_rejected_before_allocation() {
        // FlowSet claiming u64::MAX ids with no backing bytes.
        let mut bytes = Vec::new();
        let mut w = WireWriter::new(&mut bytes);
        w.put_u8(1);
        w.put_varint(u64::MAX);
        let mut r = WireReader::new(&bytes);
        assert!(matches!(
            Selector::decode_from(&mut r),
            Err(WireError::CountTooLarge { .. })
        ));
        // A decoded-paths result claiming a path longer than any route.
        let mut bytes = Vec::new();
        let mut w = WireWriter::new(&mut bytes);
        w.put_u8(3);
        w.put_varint(1); // one row
        w.put_varint(7); // flow
        w.put_varint(1 << 20); // hostile path length
        bytes.extend_from_slice(&[0u8; 4096]);
        assert!(QueryResult::decode(&bytes).is_err());
    }

    #[test]
    fn wire_plan_validation_matches_builder_validation() {
        // Encode a plan with an out-of-range phi by hand; decode_checked
        // must reject it even though the bytes parse.
        let plan = QueryPlan {
            selector: Selector::All,
            projection: Projection::HopQuantiles {
                hop: 1,
                phis: vec![2.5],
                decode: None,
            },
            options: QueryOptions::default(),
        };
        let bytes = plan.encode();
        assert!(matches!(
            QueryPlan::decode_checked(&bytes),
            Err(crate::QueryError::InvalidPlan(_))
        ));
    }

    #[test]
    fn hostile_decode_specs_are_rejected_without_panicking() {
        // Each spec parses at the wire layer but must bounce in
        // validation — constructing a codec from it would assert/panic.
        let hostile = [
            (0u32, 100.0, 1.0e7),              // bits out of range
            (33, 100.0, 1.0e7),                // bits out of range
            (8, 0.0, 1.0e7),                   // v_min not positive
            (8, -5.0, 1.0e7),                  // v_min negative
            (8, f64::NAN, 1.0e7),              // v_min NaN
            (8, 100.0, 100.0),                 // empty range
            (8, 100.0, f64::INFINITY),         // v_max infinite
            (8, f64::INFINITY, f64::INFINITY), // both infinite
        ];
        for (bits, v_min, v_max) in hostile {
            let plan = QueryPlan {
                selector: Selector::All,
                projection: Projection::HopQuantiles {
                    hop: 1,
                    phis: vec![0.5],
                    decode: Some(ValueDecodeSpec { bits, v_min, v_max }),
                },
                options: QueryOptions::default(),
            };
            let bytes = plan.encode();
            assert!(
                matches!(
                    QueryPlan::decode_checked(&bytes),
                    Err(crate::QueryError::InvalidPlan(_))
                ),
                "spec ({bits}, {v_min}, {v_max}) must be rejected"
            );
        }
    }
}
