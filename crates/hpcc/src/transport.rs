//! HPCC as a `pint-netsim` transport, in INT or PINT feedback mode.
//!
//! The reliability machinery (cumulative ACKs, duplicate-ACK retransmit,
//! RTO with go-back-N) mirrors the Reno transport; congestion control is
//! entirely window-based HPCC ([`crate::algorithm`]). In INT mode the
//! per-link records echoed on ACKs feed the host-side computation; in PINT
//! mode the sender decodes the 8-bit max-utilization digest.

use crate::algorithm::{HpccConfig, HpccState};
use crate::pint_hook::HpccPintHook;
use pint_netsim::packet::AckView;
use pint_netsim::transport::{Action, FlowMeta, Transport};
use pint_netsim::Nanos;

/// Where the congestion feedback comes from.
#[derive(Clone)]
pub enum FeedbackMode {
    /// Per-link INT records on every ACK.
    Int,
    /// PINT digest: lane index + a decoder handle (shares the hook's
    /// codec configuration; frequency is implied by digest presence).
    Pint {
        /// Digest lane carrying the HPCC query.
        lane: usize,
        /// Decoder for the compressed utilization (same parameters as the
        /// switch-side hook).
        decoder: std::sync::Arc<HpccPintHook>,
        /// Optional Query-Engine gating for combined experiments (§6.4):
        /// the lane is interpreted as HPCC feedback only on packets whose
        /// execution-plan selection includes this query ID.
        plan: Option<(std::sync::Arc<pint_core::query::ExecutionPlan>, u32)>,
    },
}

impl std::fmt::Debug for FeedbackMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FeedbackMode::Int => write!(f, "Int"),
            FeedbackMode::Pint { lane, .. } => write!(f, "Pint(lane {lane})"),
        }
    }
}

/// Timer token reserved for the pacer (RTO generations count from 1).
const PACE_TOKEN: u64 = u64::MAX;

/// HPCC sender.
///
/// HPCC is rate-paced: packets leave at `R = W/T` rather than in window
/// bursts. Pacing matters beyond realism — per-packet queue sampling on a
/// bursty sender is biased toward busy periods, which systematically
/// overestimates `U` and starves the window.
#[derive(Debug)]
pub struct HpccTransport {
    meta: FlowMeta,
    mode: FeedbackMode,
    state: HpccState,
    snd_una: u64,
    snd_nxt: u64,
    dupacks: u32,
    timer_gen: u64,
    rto: Nanos,
    backoff: u32,
    pacer_armed: bool,
    base_rtt_ns: Nanos,
}

impl HpccTransport {
    /// Creates an HPCC sender for `meta`.
    pub fn new(meta: FlowMeta, cfg: HpccConfig, mode: FeedbackMode) -> Self {
        let bdp = (meta.nic_bps as u128 * cfg.base_rtt_ns as u128 / 8 / 1_000_000_000) as u64;
        Self {
            meta,
            mode,
            state: HpccState::new(cfg, bdp.max(u64::from(meta.mss) * 2), meta.mss),
            snd_una: 0,
            snd_nxt: 0,
            dupacks: 0,
            timer_gen: 0,
            rto: (cfg.base_rtt_ns * 10).max(500_000),
            backoff: 0,
            pacer_armed: false,
            base_rtt_ns: cfg.base_rtt_ns,
        }
    }

    /// Current congestion window (diagnostics).
    pub fn window(&self) -> u64 {
        self.state.window()
    }

    fn mss(&self) -> u64 {
        u64::from(self.meta.mss)
    }

    /// Sends one paced segment if the window allows, then re-arms the
    /// pacer at rate `R = W/T`.
    fn pace_one(&mut self, out: &mut Vec<Action>) {
        self.pacer_armed = false;
        if self.snd_nxt >= self.meta.size_bytes {
            return; // everything transmitted; ACKs finish the flow
        }
        if self.snd_nxt >= self.snd_una + self.state.window() {
            return; // window-limited; resumes on the next ACK
        }
        let bytes = self.mss().min(self.meta.size_bytes - self.snd_nxt).max(1) as u32;
        out.push(Action::Send {
            seq: self.snd_nxt,
            bytes,
            retx: false,
        });
        self.snd_nxt += u64::from(bytes);
        // Inter-packet gap: bytes / (W/T).
        let w = self.state.window().max(1);
        let delay = (u128::from(bytes) * u128::from(self.base_rtt_ns) / u128::from(w)) as Nanos;
        self.pacer_armed = true;
        out.push(Action::SetTimer {
            delay,
            token: PACE_TOKEN,
        });
    }

    fn arm_rto(&mut self, out: &mut Vec<Action>) {
        self.timer_gen += 1;
        out.push(Action::SetTimer {
            delay: self.rto << self.backoff.min(6),
            token: self.timer_gen,
        });
    }
}

impl Transport for HpccTransport {
    fn start(&mut self, _now: Nanos, out: &mut Vec<Action>) {
        self.pace_one(out);
        self.arm_rto(out);
    }

    fn on_ack(&mut self, ack: &AckView<'_>, out: &mut Vec<Action>) {
        // 1. Congestion feedback.
        match &self.mode {
            FeedbackMode::Int => {
                self.state
                    .on_int_ack(ack.now, ack.ack_seq, self.snd_nxt, &ack.echo.int_stack);
            }
            FeedbackMode::Pint {
                lane,
                decoder,
                plan,
            } => {
                let gated_out = plan
                    .as_ref()
                    .is_some_and(|(plan, qid)| !plan.select(ack.echo.data_pkt_id).contains(qid));
                if !gated_out {
                    let u = decoder.decode(&ack.echo.digest, *lane);
                    self.state
                        .on_pint_ack(ack.now, ack.ack_seq, self.snd_nxt, u);
                }
            }
        }
        // 2. Reliability.
        if ack.ack_seq > self.snd_una {
            self.snd_una = ack.ack_seq;
            self.dupacks = 0;
            self.backoff = 0;
            if self.snd_una < self.meta.size_bytes {
                self.arm_rto(out);
            }
        } else if ack.ack_seq == self.snd_una && self.snd_una < self.snd_nxt {
            self.dupacks += 1;
            if self.dupacks == 3 {
                out.push(Action::Send {
                    seq: self.snd_una,
                    bytes: self.mss().min(self.meta.size_bytes - self.snd_una) as u32,
                    retx: true,
                });
            }
        }
        if !self.pacer_armed {
            self.pace_one(out);
        }
    }

    fn on_timer(&mut self, _now: Nanos, token: u64, out: &mut Vec<Action>) {
        if self.is_done() {
            return;
        }
        if token == PACE_TOKEN {
            self.pace_one(out);
            return;
        }
        if token != self.timer_gen {
            return; // stale RTO
        }
        // Go-back-N; HPCC's window math is feedback-driven, so the RTO
        // only restores reliability after drops.
        self.snd_nxt = self.snd_una;
        self.dupacks = 0;
        self.backoff += 1;
        if !self.pacer_armed {
            self.pace_one(out);
        }
        self.arm_rto(out);
    }

    fn is_done(&self) -> bool {
        self.snd_una >= self.meta.size_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pint_netsim::sim::{SimConfig, Simulator};
    use pint_netsim::telemetry::IntTelemetry;
    use pint_netsim::topology::Topology;
    use pint_netsim::transport::TransportFactory;
    use std::sync::Arc;

    fn int_factory(base_rtt: Nanos) -> TransportFactory {
        Box::new(move |meta| {
            let cfg = HpccConfig {
                base_rtt_ns: base_rtt,
                ..HpccConfig::default()
            };
            Box::new(HpccTransport::new(meta, cfg, FeedbackMode::Int))
        })
    }

    fn pint_factory(base_rtt: Nanos, hook: Arc<HpccPintHook>) -> TransportFactory {
        Box::new(move |meta| {
            let cfg = HpccConfig {
                base_rtt_ns: base_rtt,
                ..HpccConfig::default()
            };
            Box::new(HpccTransport::new(
                meta,
                cfg,
                FeedbackMode::Pint {
                    lane: 0,
                    decoder: hook.clone(),
                    plan: None,
                },
            ))
        })
    }

    fn pair(bps: u64) -> Topology {
        let mut t = Topology::new("pair");
        let h0 = t.add_node(pint_netsim::topology::NodeKind::Host);
        let s = t.add_node(pint_netsim::topology::NodeKind::Switch);
        let h1 = t.add_node(pint_netsim::topology::NodeKind::Host);
        t.add_duplex(h0, s, bps, 1_000);
        t.add_duplex(s, h1, bps, 1_000);
        t
    }

    /// Three hosts on one switch: flows h0→h2 and h1→h2 collide on the
    /// monitored switch→h2 egress (HPCC observes fabric links, not host
    /// NICs, so a fair-sharing test must congest a switch port).
    fn star3(bps: u64) -> Topology {
        let mut t = Topology::new("star3");
        let s = t.add_node(pint_netsim::topology::NodeKind::Switch);
        for _ in 0..3 {
            let h = t.add_node(pint_netsim::topology::NodeKind::Host);
            t.add_duplex(h, s, bps, 1_000);
        }
        t
    }

    #[test]
    fn int_mode_single_flow_high_goodput() {
        let topo = pair(10_000_000_000);
        let mut sim = Simulator::new(
            topo,
            SimConfig {
                end_time_ns: 100_000_000,
                ..SimConfig::default()
            },
            int_factory(13_000),
            Box::new(IntTelemetry::hpcc()),
        );
        let hosts = sim.topology().hosts();
        sim.add_flow(hosts[0], hosts[1], 10_000_000, 0);
        let rep = sim.run();
        let g = rep.flows[0].goodput_bps().expect("finished");
        assert!(g > 6.0e9, "goodput {g} too low for a lone HPCC flow");
        assert_eq!(rep.drops, 0, "HPCC must not overflow the buffer alone");
    }

    #[test]
    fn pint_mode_single_flow_high_goodput() {
        let topo = pair(10_000_000_000);
        let hook = Arc::new(HpccPintHook::new(5, 1.0, 13_000, 1, 0, 1));
        let mut sim = Simulator::new(
            topo,
            SimConfig {
                end_time_ns: 100_000_000,
                ..SimConfig::default()
            },
            pint_factory(13_000, hook.clone()),
            Box::new(HpccPintHook::new(5, 1.0, 13_000, 1, 0, 1)),
        );
        let hosts = sim.topology().hosts();
        sim.add_flow(hosts[0], hosts[1], 10_000_000, 0);
        let rep = sim.run();
        let g = rep.flows[0].goodput_bps().expect("finished");
        assert!(g > 6.0e9, "goodput {g} too low for a lone HPCC-PINT flow");
        assert_eq!(rep.drops, 0);
    }

    #[test]
    fn two_flows_share_without_drops() {
        // HPCC's headline property: near-zero queues under congestion.
        let topo = star3(10_000_000_000);
        let mut sim = Simulator::new(
            topo,
            SimConfig {
                end_time_ns: 200_000_000,
                ..SimConfig::default()
            },
            int_factory(13_000),
            Box::new(IntTelemetry::hpcc()),
        );
        let hosts = sim.topology().hosts();
        sim.add_flow(hosts[0], hosts[2], 8_000_000, 0);
        sim.add_flow(hosts[1], hosts[2], 8_000_000, 0);
        let rep = sim.run();
        assert_eq!(rep.finished().count(), 2);
        assert_eq!(rep.drops, 0, "HPCC should avoid buffer overflows");
        // With maxStage = 0 and W_AI = 80 B, fairness converges on a
        // timescale of hundreds of RTTs (the paper's §6.1 note: AIMD
        // guarantees it eventually); over one 8 MB transfer we check a
        // weak bound plus full link utilization.
        let g: Vec<f64> = rep.finished().filter_map(|f| f.goodput_bps()).collect();
        for &x in &g {
            assert!(x > 1.2e9, "starved flow: {x}");
        }
        assert!(
            g.iter().sum::<f64>() > 6.0e9,
            "bottleneck underutilized: {g:?}"
        );
    }

    #[test]
    fn hpcc_keeps_queues_far_smaller_than_reno() {
        // HPCC's raison d'être: near-zero standing queues. Same scenario,
        // Reno fills the buffer, HPCC does not.
        use pint_netsim::telemetry::NoTelemetry;
        use pint_netsim::transport::reno::Reno;
        let run = |hpcc: bool| -> u64 {
            let factory: TransportFactory = if hpcc {
                int_factory(13_000)
            } else {
                Box::new(|meta| Box::new(Reno::new(meta)))
            };
            let telem: Box<dyn pint_netsim::telemetry::TelemetryHook> = if hpcc {
                Box::new(IntTelemetry::hpcc())
            } else {
                Box::new(NoTelemetry)
            };
            let mut sim = Simulator::new(
                star3(10_000_000_000),
                SimConfig {
                    end_time_ns: 100_000_000,
                    ..SimConfig::default()
                },
                factory,
                telem,
            );
            let hosts = sim.topology().hosts();
            sim.add_flow(hosts[0], hosts[2], 5_000_000, 0);
            sim.add_flow(hosts[1], hosts[2], 5_000_000, 0);
            sim.run().max_queue_bytes
        };
        let reno_q = run(false);
        let hpcc_q = run(true);
        assert!(
            hpcc_q * 4 < reno_q,
            "HPCC queue {hpcc_q} not ≪ Reno queue {reno_q}"
        );
    }

    #[test]
    fn pint_tracks_int_goodput_closely() {
        // The Fig. 7 claim: HPCC(PINT) ≈ HPCC(INT) despite 1 byte vs
        // 8·hops bytes of feedback.
        let run = |pint: bool| -> f64 {
            let topo = star3(10_000_000_000);
            let telem: Box<dyn pint_netsim::telemetry::TelemetryHook> = if pint {
                Box::new(HpccPintHook::new(9, 1.0, 13_000, 1, 0, 1))
            } else {
                Box::new(IntTelemetry::hpcc())
            };
            let factory = if pint {
                pint_factory(13_000, Arc::new(HpccPintHook::new(9, 1.0, 13_000, 1, 0, 1)))
            } else {
                int_factory(13_000)
            };
            let mut sim = Simulator::new(
                topo,
                SimConfig {
                    end_time_ns: 300_000_000,
                    ..SimConfig::default()
                },
                factory,
                telem,
            );
            let hosts = sim.topology().hosts();
            sim.add_flow(hosts[0], hosts[2], 4_000_000, 0);
            sim.add_flow(hosts[1], hosts[2], 4_000_000, 1_000_000);
            let rep = sim.run();
            rep.mean_goodput_bps(0).expect("finished")
        };
        let int = run(false);
        let pint = run(true);
        // Fig. 7's claim: PINT-based HPCC performs comparably to INT-based
        // HPCC — and often better, because it carries 1 byte instead of
        // 8·hops and the switch-side EWMA is smoother. Require PINT to be
        // no more than 25% *worse*; better is expected and fine.
        assert!(
            pint > int * 0.75,
            "PINT ({pint}) much worse than INT ({int})"
        );
    }
}
