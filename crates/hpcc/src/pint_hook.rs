//! Switch-side PINT telemetry for HPCC (paper §4.3 Example 3, §5).
//!
//! Each egress port maintains the utilization EWMA of Appendix B with
//! data-plane arithmetic ([`pint_dataplane::SwitchUtilization`]); selected
//! packets carry the *maximum* utilization along their path, compressed to
//! 8 bits with ε = 0.025 multiplicative encoding and randomized rounding
//! ([`pint_core::PerPacketAggregator`]).
//!
//! The query frequency `p` (Fig. 8 evaluates p ∈ {1, 1/16, 1/256}) is
//! honoured via the query-selection global hash, so all switches agree
//! which packets carry the HPCC digest without communication (§4.1).

use pint_core::hash::GlobalHash;
use pint_core::perpacket::{PerPacketAggregator, PerPacketOp};
use pint_core::value::Digest;
use pint_dataplane::SwitchUtilization;
use pint_netsim::packet::Packet;
use pint_netsim::telemetry::{SwitchView, TelemetryHook};
use pint_netsim::Nanos;
use std::collections::HashMap;

/// PINT telemetry hook implementing the HPCC use case.
pub struct HpccPintHook {
    /// Per-egress-port utilization state.
    utils: HashMap<usize, SwitchUtilization>,
    /// Max-aggregation with multiplicative compression.
    agg: PerPacketAggregator,
    /// Query-selection hash (frequency `p`).
    selector: GlobalHash,
    /// Fraction of packets carrying the digest.
    frequency: f64,
    /// Base RTT `T` for the EWMA, ns.
    base_rtt_ns: Nanos,
    /// Lookup-table precision for the switch arithmetic.
    q: u32,
    /// Digest lane used by this query.
    lane: usize,
    /// Total digest lanes on the packet (global budget / 8 bits).
    lanes: usize,
    /// Digest bytes reserved on each packet.
    digest_bytes: u32,
}

impl HpccPintHook {
    /// Creates the hook. `digest_bytes` is the global PINT budget on the
    /// packet (2 bytes in the paper's combined experiment; 1 byte when
    /// HPCC runs alone), `lane`/`lanes` locate this query's 8-bit share.
    pub fn new(
        seed: u64,
        frequency: f64,
        base_rtt_ns: Nanos,
        digest_bytes: u32,
        lane: usize,
        lanes: usize,
    ) -> Self {
        assert!(frequency > 0.0 && frequency <= 1.0);
        assert!(lane < lanes);
        Self {
            utils: HashMap::new(),
            // Utilization spans ~[1e-3, 4]: 8 bits at ε = 0.025 (§4.3).
            agg: PerPacketAggregator::new(PerPacketOp::Max, 0.025, 1e-3, 4.0, seed),
            selector: GlobalHash::new(seed ^ 0x4070_CC00),
            frequency,
            base_rtt_ns,
            q: 12,
            lane,
            lanes,
            digest_bytes,
        }
    }

    /// Whether packet `pid` carries the HPCC digest (global-hash test,
    /// identical at every switch and at the sender).
    pub fn selected(&self, pid: u64) -> bool {
        self.selector.unit1(pid) < self.frequency
    }

    /// Decodes a digest lane back to a utilization (sender side).
    pub fn decode(&self, digest: &Digest, lane: usize) -> f64 {
        if digest.lanes() <= lane {
            return 0.0;
        }
        self.agg.decode(digest, lane)
    }

    /// The value codec (for tests).
    pub fn aggregator(&self) -> &PerPacketAggregator {
        &self.agg
    }

    /// Advances the per-port utilization EWMA for this packet *without*
    /// writing a digest — used by combined-query hooks when the execution
    /// plan assigned this packet to a different query (§6.4): the link
    /// state must stay current on every packet regardless.
    pub fn advance_only(&mut self, view: &SwitchView, pkt: &Packet) {
        let base_rtt = self.base_rtt_ns;
        let q = self.q;
        let su = self.utils.entry(view.link).or_insert_with(|| {
            SwitchUtilization::new(q, base_rtt, view.bandwidth_bps as f64 / 8.0e9)
        });
        su.on_packet_dequeue(view.now, view.qlen_bytes, u64::from(pkt.wire_bytes()));
    }
}

impl TelemetryHook for HpccPintHook {
    fn initial_bytes(&self) -> u32 {
        self.digest_bytes
    }

    fn on_dequeue(&mut self, view: &SwitchView, pkt: &mut Packet) {
        let base_rtt = self.base_rtt_ns;
        let q = self.q;
        let su = self.utils.entry(view.link).or_insert_with(|| {
            SwitchUtilization::new(q, base_rtt, view.bandwidth_bps as f64 / 8.0e9)
        });
        // The EWMA advances on *every* packet; only selected packets
        // carry the digest (Fig. 8's frequency knob).
        let u = su.on_packet_dequeue(view.now, view.qlen_bytes, u64::from(pkt.wire_bytes()));
        if self.selected(pkt.id) {
            if pkt.digest.lanes() < self.lanes {
                pkt.digest = Digest::new(self.lanes);
            }
            self.agg
                .encode_hop(pkt.id, view.hop, u, &mut pkt.digest, self.lane);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pint_core::value::Digest as CoreDigest;
    use pint_netsim::packet::PacketKind;

    fn pkt(id: u64) -> Packet {
        Packet {
            id,
            flow: 1,
            src: 0,
            dst: 9,
            kind: PacketKind::Data,
            seq: 0,
            payload: 1000,
            header: 40,
            telemetry_bytes: 1,
            hop: 0,
            retransmitted: false,
            digest: CoreDigest::default(),
            int_stack: Vec::new(),
            sent_at: 0,
            last_rx_at: 0,
            echo: None,
        }
    }

    fn view(link: usize, hop: usize, qlen: u64) -> SwitchView {
        SwitchView {
            switch: 1,
            link,
            qlen_bytes: qlen,
            tx_bytes: 0,
            bandwidth_bps: 100_000_000_000,
            now: 0,
            hop,
            hop_latency_ns: 100,
        }
    }

    #[test]
    fn digest_carries_max_utilization() {
        let mut hook = HpccPintHook::new(1, 1.0, 13_000, 1, 0, 1);
        // Warm two ports: port 5 busy (queue), port 6 idle.
        for i in 0..3_000u64 {
            let mut p = pkt(1_000_000 + i);
            hook.on_dequeue(&view(5, 1, 200_000), &mut p);
            let mut p2 = pkt(2_000_000 + i);
            hook.on_dequeue(&view(6, 1, 0), &mut p2);
        }
        // A fresh packet through both ports should report ~the busy one.
        let mut p = pkt(7);
        hook.on_dequeue(&view(5, 1, 200_000), &mut p);
        hook.on_dequeue(&view(6, 2, 0), &mut p);
        let u = hook.decode(&p.digest, 0);
        assert!(u > 1.5, "bottleneck utilization lost: {u}");
    }

    #[test]
    fn frequency_controls_digest_presence() {
        let mut hook = HpccPintHook::new(2, 1.0 / 16.0, 13_000, 1, 0, 1);
        let mut with = 0;
        let n = 20_000;
        for i in 0..n {
            let mut p = pkt(i);
            hook.on_dequeue(&view(1, 1, 50_000), &mut p);
            if p.digest.lanes() > 0 && p.digest.get(0) != 0 {
                with += 1;
            }
        }
        let frac = f64::from(with) / n as f64;
        assert!(
            (frac - 1.0 / 16.0).abs() < 0.01,
            "digest frequency {frac} vs 1/16"
        );
    }

    #[test]
    fn unselected_packets_keep_empty_digest() {
        let mut hook = HpccPintHook::new(3, 1e-9, 13_000, 1, 0, 1);
        let mut p = pkt(42);
        hook.on_dequeue(&view(1, 1, 0), &mut p);
        assert_eq!(hook.decode(&p.digest, 0), 0.0);
    }

    #[test]
    fn one_byte_overhead() {
        let hook = HpccPintHook::new(4, 1.0, 13_000, 1, 0, 1);
        assert_eq!(hook.initial_bytes(), 1);
        assert!(hook.aggregator().codec().bits() <= 8);
    }
}
