//! The HPCC window computation (transport-agnostic).
//!
//! Faithful to HPCC's Algorithm 1 with the PINT paper's settings
//! (§6.1): `W_AI = 80` bytes, `maxStage = 0`, `η = 95%`, `T = 13 µs`.
//! `maxStage = 0` means every update takes the multiplicative branch
//! `W = W_c/(U/η) + W_AI`; the reference window `W_c` is frozen for an
//! RTT at a time ("no overreaction": stability is guaranteed by the
//! constant reference window regardless of the feedback frequency `p`,
//! as §6.1 argues for Fig. 8).

use pint_netsim::packet::IntRecord;
use pint_netsim::Nanos;
use std::collections::HashMap;

/// HPCC parameters.
#[derive(Debug, Clone, Copy)]
pub struct HpccConfig {
    /// Target utilization η (paper: 0.95).
    pub eta: f64,
    /// Additive increase per update, bytes (paper: 80).
    pub wai_bytes: f64,
    /// Max additive-increase stages before forcing the multiplicative
    /// branch (paper setting: 0).
    pub max_stage: u32,
    /// Base RTT `T`, ns (paper: 13 µs).
    pub base_rtt_ns: Nanos,
}

impl Default for HpccConfig {
    fn default() -> Self {
        Self {
            eta: 0.95,
            wai_bytes: 80.0,
            max_stage: 0,
            base_rtt_ns: 13_000,
        }
    }
}

/// Per-link state remembered from the previous ACK (INT mode).
#[derive(Debug, Clone, Copy)]
struct LinkSnapshot {
    ts: Nanos,
    tx_bytes: u64,
    qlen_bytes: u64,
}

/// The sender-side HPCC state machine (window math only).
#[derive(Debug, Clone)]
pub struct HpccState {
    cfg: HpccConfig,
    /// Current window, bytes.
    w: f64,
    /// Reference window, bytes.
    wc: f64,
    /// Maximum window (line-rate BDP), bytes.
    w_max: f64,
    /// Minimum window, bytes.
    w_min: f64,
    inc_stage: u32,
    /// Sequence after which `W_c` may be refreshed (once per RTT).
    last_update_seq: u64,
    /// Host-side utilization EWMA (INT mode).
    u_ewma: f64,
    /// The EWMA is seeded from the first sample (like TCP's srtt).
    u_initialized: bool,
    last_ack_ts: Option<Nanos>,
    /// Per-link snapshots from the previous ACK (INT mode).
    links: HashMap<usize, LinkSnapshot>,
}

impl HpccState {
    /// Creates the state with an initial (and maximum) window of
    /// `bdp_bytes` — HPCC starts at line rate.
    pub fn new(cfg: HpccConfig, bdp_bytes: u64, mss: u32) -> Self {
        let w0 = bdp_bytes.max(u64::from(mss)) as f64;
        Self {
            cfg,
            w: w0,
            wc: w0,
            w_max: w0,
            w_min: f64::from(mss),
            inc_stage: 0,
            last_update_seq: 0,
            u_ewma: 0.0,
            u_initialized: false,
            last_ack_ts: None,
            links: HashMap::new(),
        }
    }

    /// Current window in bytes.
    pub fn window(&self) -> u64 {
        self.w as u64
    }

    /// Host-side utilization estimate (diagnostics).
    pub fn utilization(&self) -> f64 {
        self.u_ewma
    }

    /// Processes per-link INT feedback: computes `max_i u_i`, folds it
    /// into the host EWMA, and updates the window. `ack_seq` and
    /// `snd_nxt` implement the once-per-RTT `W_c` refresh.
    pub fn on_int_ack(&mut self, now: Nanos, ack_seq: u64, snd_nxt: u64, stack: &[IntRecord]) {
        let t = self.cfg.base_rtt_ns as f64;
        let mut u = 0.0f64;
        for rec in stack {
            if let Some(prev) = self.links.get(&rec.link) {
                let dt = rec.ts.saturating_sub(prev.ts) as f64;
                if dt > 0.0 {
                    let b_bytes_per_ns = rec.bandwidth_bps as f64 / 8.0e9;
                    let tx_rate = (rec.tx_bytes.saturating_sub(prev.tx_bytes)) as f64 / dt;
                    let qlen = rec.qlen_bytes.min(prev.qlen_bytes) as f64;
                    let ui = qlen / (b_bytes_per_ns * t) + tx_rate / b_bytes_per_ns;
                    u = u.max(ui);
                }
            }
            self.links.insert(
                rec.link,
                LinkSnapshot {
                    ts: rec.ts,
                    tx_bytes: rec.tx_bytes,
                    qlen_bytes: rec.qlen_bytes,
                },
            );
        }
        if u > 0.0 {
            if self.u_initialized {
                // Host EWMA over the ACK train: weight = inter-ACK gap / T.
                let tau = match self.last_ack_ts {
                    Some(last) => ((now.saturating_sub(last)) as f64).min(t),
                    None => t,
                };
                self.u_ewma = (1.0 - tau / t) * self.u_ewma + (tau / t) * u;
            } else {
                self.u_ewma = u;
                self.u_initialized = true;
            }
            self.update_window(ack_seq, snd_nxt);
        }
        self.last_ack_ts = Some(now);
    }

    /// Processes a PINT utilization digest: the switches already did the
    /// EWMA (Appendix B); the digest is the path maximum.
    pub fn on_pint_ack(&mut self, _now: Nanos, ack_seq: u64, snd_nxt: u64, utilization: f64) {
        if utilization <= 0.0 {
            return; // packet carried no HPCC digest (query frequency p < 1)
        }
        self.u_ewma = utilization;
        self.update_window(ack_seq, snd_nxt);
    }

    fn update_window(&mut self, ack_seq: u64, snd_nxt: u64) {
        let update_wc = ack_seq > self.last_update_seq;
        let u = self.u_ewma;
        if u >= self.cfg.eta || self.inc_stage >= self.cfg.max_stage {
            // Multiplicative adjustment toward η.
            self.w = self.wc / (u / self.cfg.eta).max(1e-3) + self.cfg.wai_bytes;
            if update_wc {
                self.inc_stage = 0;
            }
        } else {
            self.w = self.wc + self.cfg.wai_bytes;
            if update_wc {
                self.inc_stage += 1;
            }
        }
        self.w = self.w.clamp(self.w_min, self.w_max);
        if update_wc {
            self.wc = self.w;
            self.last_update_seq = snd_nxt;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(link: usize, ts: Nanos, tx: u64, qlen: u64, bps: u64) -> IntRecord {
        IntRecord {
            switch: 0,
            link,
            ts,
            qlen_bytes: qlen,
            tx_bytes: tx,
            bandwidth_bps: bps,
        }
    }

    /// Feed a steady utilization and check the fixed point W* ≈ η·BDP.
    #[test]
    fn converges_to_eta_times_bdp() {
        let bdp = 125_000u64; // 100 Gbps × 10 µs / 8
        let mut st = HpccState::new(HpccConfig::default(), bdp, 1000);
        // Simulate: link utilization tracks W/BDP (no queue).
        let mut seq = 0u64;
        for i in 0..2_000 {
            let u = st.window() as f64 / bdp as f64;
            seq += 1000;
            st.on_pint_ack(i * 1_000, seq, seq + 100_000, u);
        }
        let w = st.window() as f64;
        let target = 0.95 * bdp as f64;
        assert!(
            (w - target).abs() < target * 0.05,
            "W {w} vs η·BDP {target}"
        );
    }

    #[test]
    fn congestion_shrinks_window() {
        let bdp = 125_000u64;
        let mut st = HpccState::new(HpccConfig::default(), bdp, 1000);
        st.on_pint_ack(0, 1000, 2000, 2.0); // utilization 200%
        assert!(
            (st.window() as f64) < 0.55 * bdp as f64,
            "W {} after U=2",
            st.window()
        );
    }

    #[test]
    fn idle_path_grows_window_to_max() {
        let bdp = 125_000u64;
        let mut st = HpccState::new(HpccConfig::default(), bdp, 1000);
        // Crush the window first.
        st.on_pint_ack(0, 1000, 2000, 3.0);
        let low = st.window();
        // Now very low utilization: multiplicative increase back up.
        let mut seq = 2000;
        for i in 0..200 {
            seq += 1000;
            st.on_pint_ack(i * 1000, seq, seq + 1000, 0.05);
        }
        assert!(
            st.window() > low * 3,
            "did not recover: {} → {}",
            low,
            st.window()
        );
        assert!(st.window() <= bdp, "window above line-rate BDP");
    }

    #[test]
    fn int_mode_computes_tx_rate_from_deltas() {
        let mut st = HpccState::new(HpccConfig::default(), 125_000, 1000);
        // 100 Gbps link = 12.5 B/ns; send 12500 bytes over 1000 ns = rate 1.0.
        st.on_int_ack(0, 0, 100_000, &[rec(7, 0, 0, 0, 100_000_000_000)]);
        let w0 = st.window();
        st.on_int_ack(
            1_000,
            1_000,
            100_000,
            &[rec(7, 1_000, 12_500, 0, 100_000_000_000)],
        );
        // Utilization ≈ 1.0 ≥ η ⇒ window shrinks below max.
        assert!(
            st.window() < w0,
            "W should shrink at U≈1: {} → {}",
            w0,
            st.window()
        );
        assert!(
            (st.utilization() - 1.0).abs() < 0.05,
            "U {}",
            st.utilization()
        );
    }

    #[test]
    fn int_mode_queue_term_counts() {
        let mut st = HpccState::new(HpccConfig::default(), 125_000, 1000);
        let b = 100_000_000_000;
        st.on_int_ack(0, 0, 100_000, &[rec(1, 0, 0, 162_500, b)]);
        st.on_int_ack(1_000, 1_000, 100_000, &[rec(1, 1_000, 0, 162_500, b)]);
        // qlen/(B·T) = 162500/(12.5·13000) = 1.0; no tx → u = 1.0.
        assert!(
            (st.utilization() - 1.0).abs() < 0.1,
            "U {}",
            st.utilization()
        );
    }

    #[test]
    fn missing_pint_digest_is_a_noop() {
        let mut st = HpccState::new(HpccConfig::default(), 125_000, 1000);
        let w = st.window();
        st.on_pint_ack(0, 1000, 2000, 0.0);
        assert_eq!(st.window(), w, "zero digest must not update the window");
    }

    #[test]
    fn wc_frozen_within_rtt() {
        // HPCC's "no overreaction": after the once-per-RTT W_c refresh,
        // every further ACK in the same RTT recomputes W from the *frozen*
        // W_c, so repeated identical feedback cannot compound.
        let bdp = 125_000u64;
        let mut st = HpccState::new(HpccConfig::default(), bdp, 1000);
        // First ACK crosses the watermark and refreshes W_c.
        st.on_pint_ack(0, 1_000, 200_000, 1.9);
        let w1 = st.window();
        // Subsequent ACKs stay below last_update_seq (= 200 000): frozen.
        st.on_pint_ack(100, 2_000, 200_000, 1.9);
        let w2 = st.window();
        st.on_pint_ack(200, 3_000, 200_000, 1.9);
        let w3 = st.window();
        assert_eq!(w2, w3, "same U + frozen Wc must give the same W");
        assert!(
            w2 < w1,
            "one extra shrink right after the refresh is expected"
        );
        // And the sequence cannot spiral: many more same-RTT ACKs hold W.
        for i in 0..50 {
            st.on_pint_ack(300 + i, 4_000 + i, 200_000, 1.9);
        }
        assert_eq!(st.window(), w3, "W must not decay further within the RTT");
    }
}
