//! # pint-hpcc — High Precision Congestion Control on `pint-netsim`
//!
//! HPCC (Li et al., SIGCOMM 2019) adjusts the sender window from precise
//! per-link feedback: INT attaches each hop's `(timestamp, txBytes, qlen,
//! bandwidth)` to every packet, and the sender reacts to the estimated
//! *inflight* of the most utilized link:
//!
//! ```text
//! u_i = qlen_i/(B_i·T) + txRate_i/B_i        (per link)
//! U   = EWMA of max_i u_i                    (per ACK)
//! W   = W_c/(U/η) + W_AI                     (multiplicative, maxStage=0)
//! ```
//!
//! The PINT paper's first use case (§3.2, §4.3, §6.1) replaces the INT
//! stack with a single 8-bit digest: switches maintain the utilization
//! EWMA themselves (Appendix B, computed here with `pint-dataplane`'s
//! approximate arithmetic) and the packet carries only the *maximum*
//! compressed utilization along the path (multiplicative encoding,
//! ε = 0.025, randomized rounding). This bounds the overhead to one byte
//! regardless of path length — versus INT's 8 bytes per hop.
//!
//! * [`algorithm`] — the window computation, transport-agnostic.
//! * [`transport`] — a `pint-netsim` transport implementation.
//! * [`pint_hook`] — the switch-side PINT telemetry hook.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithm;
pub mod pint_hook;
pub mod transport;

pub use algorithm::{HpccConfig, HpccState};
pub use pint_hook::HpccPintHook;
pub use transport::{FeedbackMode, HpccTransport};
