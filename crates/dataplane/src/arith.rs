//! Approximate multiply/divide for the data plane (paper Appendix C).
//!
//! "We overcome the lack of support for arithmetic operations such as
//! multiplication and division using approximations, via logarithms and
//! exponentiation: `x·y = 2^(log₂x + log₂y)` and
//! `x/y = 2^(log₂x − log₂y)`."

use crate::fixedpoint::Fx;
use crate::lut::LogExpTables;

/// An "ALU" built purely from switch-supported primitives: TCAM msb,
/// `2^q`-entry lookup tables, shifts and adds.
#[derive(Debug, Clone)]
pub struct ApproxAlu {
    tables: LogExpTables,
}

impl ApproxAlu {
    /// Builds the ALU with `q` mantissa bits (paper default 8).
    pub fn new(q: u32) -> Self {
        Self {
            tables: LogExpTables::new(q, 20),
        }
    }

    /// Access to the underlying tables.
    pub fn tables(&self) -> &LogExpTables {
        &self.tables
    }

    /// Approximate `x · y` of two non-negative integers.
    pub fn mul_int(&self, x: u64, y: u64) -> u64 {
        if x == 0 || y == 0 {
            return 0;
        }
        let s = self.tables.log2_int(x).add(self.tables.log2_int(y));
        self.tables.exp2_fx(s, 0).raw() as u64
    }

    /// Approximate `x / y` (`y ≥ 1`) as fixed point with `frac_bits`.
    pub fn div_int(&self, x: u64, y: u64, frac_bits: u32) -> Fx {
        if x == 0 {
            return Fx::zero(frac_bits);
        }
        let d = self.tables.log2_int(x).sub(self.tables.log2_int(y));
        self.tables.exp2_fx(d, frac_bits)
    }

    /// Approximate product of fixed-point values.
    pub fn mul_fx(&self, x: Fx, y: Fx, out_frac_bits: u32) -> Fx {
        if x.raw() <= 0 || y.raw() <= 0 {
            return Fx::zero(out_frac_bits);
        }
        let s = self.tables.log2_fx(x).add(self.tables.log2_fx(y));
        self.tables.exp2_fx(s, out_frac_bits)
    }

    /// Approximate quotient of fixed-point values.
    pub fn div_fx(&self, x: Fx, y: Fx, out_frac_bits: u32) -> Fx {
        if x.raw() <= 0 {
            return Fx::zero(out_frac_bits);
        }
        assert!(y.raw() > 0, "division by non-positive value");
        let d = self.tables.log2_fx(x).sub(self.tables.log2_fx(y));
        self.tables.exp2_fx(d, out_frac_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(a: f64, b: f64) -> f64 {
        (a - b).abs() / b.abs().max(1e-12)
    }

    #[test]
    fn multiplication_accuracy() {
        let alu = ApproxAlu::new(8);
        for &(x, y) in &[(3u64, 7u64), (100, 250), (1000, 999), (65_536, 12_345)] {
            let got = alu.mul_int(x, y) as f64;
            let want = (x * y) as f64;
            assert!(rel(got, want) < 0.02, "{x}·{y}: {got} vs {want}");
        }
    }

    #[test]
    fn division_accuracy() {
        let alu = ApproxAlu::new(8);
        for &(x, y) in &[(7u64, 3u64), (1000, 17), (5, 1000), (1 << 30, 997)] {
            let got = alu.div_int(x, y, 20).to_f64();
            let want = x as f64 / y as f64;
            assert!(rel(got, want) < 0.02, "{x}/{y}: {got} vs {want}");
        }
    }

    #[test]
    fn fx_mul_div_roundtrip() {
        let alu = ApproxAlu::new(8);
        let x = Fx::from_f64(1.19, 16);
        let y = Fx::from_f64(0.37, 16);
        let prod = alu.mul_fx(x, y, 16);
        assert!(rel(prod.to_f64(), 1.19 * 0.37) < 0.02);
        let q = alu.div_fx(prod, y, 16);
        assert!(rel(q.to_f64(), 1.19) < 0.04, "{}", q.to_f64());
    }

    #[test]
    fn zero_operands() {
        let alu = ApproxAlu::new(8);
        assert_eq!(alu.mul_int(0, 5), 0);
        assert_eq!(alu.mul_int(5, 0), 0);
        assert_eq!(alu.div_int(0, 5, 8).to_f64(), 0.0);
    }

    #[test]
    fn error_compounds_with_coarse_tables() {
        // The paper warns that approximation errors compound; with q = 4
        // the product error visibly exceeds the q = 8 error.
        let coarse = ApproxAlu::new(4);
        let fine = ApproxAlu::new(8);
        let (x, y) = (12_345u64, 6_789u64);
        let want = (x * y) as f64;
        let e_coarse = rel(coarse.mul_int(x, y) as f64, want);
        let e_fine = rel(fine.mul_int(x, y) as f64, want);
        assert!(e_fine < e_coarse, "fine {e_fine} vs coarse {e_coarse}");
    }
}
