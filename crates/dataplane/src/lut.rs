//! Logarithm and exponentiation via lookup tables (paper Appendix C).
//!
//! "Computing logarithms and exponentiating: … we can use the switch's
//! TCAM to find the most significant set bit in `x`, denoted ℓ. … consider
//! the next `q` bits of `x` … then `log₂(x) = (ℓ−q) + log₂(x_q) +
//! log₂(1+ε)` with `ε < 2^−q`."
//!
//! [`LogExpTables`] holds the two `2^q`-entry tables a P4 program would
//! install (`log₂` of a `q`-bit mantissa, and `2^f` for a `q`-bit
//! fraction) and evaluates both functions using only operations a switch
//! supports: TCAM priority match (modeled by `leading_zeros`), shifts,
//! adds, and table lookups.

use crate::fixedpoint::Fx;

/// Lookup tables for `log₂` / `2^x` with `q`-bit precision.
#[derive(Debug, Clone)]
pub struct LogExpTables {
    q: u32,
    /// `log_table[i] = log₂(i)` in `frac_bits` fixed point, for
    /// `i ∈ [2^(q−1), 2^q)` (normalized mantissas; index by `i`).
    log_table: Vec<Fx>,
    /// `exp_table[f] = 2^(f / 2^q)` in `frac_bits` fixed point.
    exp_table: Vec<Fx>,
    frac_bits: u32,
}

impl LogExpTables {
    /// Builds tables with `q` mantissa bits (the paper suggests `q = 8`,
    /// i.e. 256-entry tables) and `frac_bits` of fixed-point precision.
    pub fn new(q: u32, frac_bits: u32) -> Self {
        assert!((2..=16).contains(&q), "q must be in 2..=16");
        let size = 1usize << q;
        let log_table = (0..size)
            .map(|i| {
                let v = if i == 0 { 0.0 } else { (i as f64).log2() };
                Fx::from_f64(v, frac_bits)
            })
            .collect();
        let exp_table = (0..size)
            .map(|f| Fx::from_f64((f as f64 / size as f64).exp2(), frac_bits))
            .collect();
        Self {
            q,
            log_table,
            exp_table,
            frac_bits,
        }
    }

    /// Mantissa bits `q`.
    pub fn q(&self) -> u32 {
        self.q
    }

    /// Fixed-point format of the outputs.
    pub fn frac_bits(&self) -> u32 {
        self.frac_bits
    }

    /// Total table memory in entries (what the switch SRAM would hold).
    pub fn entries(&self) -> usize {
        self.log_table.len() + self.exp_table.len()
    }

    /// The TCAM step: index of the most significant set bit of `x`
    /// (`x ≥ 1`).
    pub fn msb(x: u64) -> u32 {
        debug_assert!(x > 0);
        63 - x.leading_zeros()
    }

    /// Approximates `log₂(x)` for an integer `x ≥ 1`.
    ///
    /// The mantissa is rounded to the nearest `q`-bit value, so the error
    /// is `≤ 0.72·2^−q` (the paper quotes `1.44·2^−q` for truncation).
    pub fn log2_int(&self, x: u64) -> Fx {
        assert!(x >= 1, "log of non-positive value");
        if x < (1 << self.q) {
            return self.log_table[x as usize];
        }
        let l = Self::msb(x);
        // Take the top q bits (the mantissa), i.e. x ≈ x_q · 2^(l+1−q),
        // rounding rather than truncating the dropped bits.
        let mut shift = l + 1 - self.q;
        let mut xq = ((x >> (shift - 1)) + 1) >> 1;
        if xq == (1 << self.q) {
            // Rounding overflowed the mantissa: renormalize.
            xq >>= 1;
            shift += 1;
        }
        let exponent = Fx::from_f64(f64::from(shift), self.frac_bits);
        exponent.add(self.log_table[xq as usize])
    }

    /// Approximates `log₂(v)` for a fixed-point `v > 0` by computing the
    /// integer logarithm of the raw value and subtracting the format bias.
    pub fn log2_fx(&self, v: Fx) -> Fx {
        assert!(v.raw() > 0, "log of non-positive value");
        let raw_log = self.log2_int(v.raw() as u64);
        raw_log.sub(Fx::from_f64(f64::from(v.frac_bits()), self.frac_bits))
    }

    /// [`Self::log2_fx`] with *stochastic* mantissa rounding driven by the
    /// uniform draw `u ∈ [0,1)`.
    ///
    /// Deterministic rounding makes iterated computations (like the HPCC
    /// EWMA of Appendix B) lock into spurious fixed points when the true
    /// per-step change is below the table resolution; stochastic rounding
    /// — the same `[·]_R` idea the paper uses for digest compression —
    /// makes the expectation track the true value.
    pub fn log2_fx_stochastic(&self, v: Fx, u: f64) -> Fx {
        assert!(v.raw() > 0, "log of non-positive value");
        let x = v.raw() as u64;
        let raw_log = if x < (1 << self.q) {
            self.log_table[x as usize]
        } else {
            let l = Self::msb(x);
            let mut shift = l + 1 - self.q;
            let rem = x & ((1u64 << shift) - 1);
            let frac = rem as f64 / (1u64 << shift) as f64;
            let mut xq = (x >> shift) + u64::from(u < frac);
            if xq == (1 << self.q) {
                xq >>= 1;
                shift += 1;
            }
            Fx::from_f64(f64::from(shift), self.frac_bits).add(self.log_table[xq as usize])
        };
        raw_log.sub(Fx::from_f64(f64::from(v.frac_bits()), self.frac_bits))
    }

    /// Approximates `2^x` for a fixed-point exponent `x` (positive or
    /// negative), returning a value in `out_frac_bits` format.
    ///
    /// Decomposes `x = n + f` with integer `n` and fraction `f ∈ [0,1)`;
    /// `2^f` comes from the table, `2^n` is a shift.
    pub fn exp2_fx(&self, x: Fx, out_frac_bits: u32) -> Fx {
        let fb = x.frac_bits();
        let raw = x.raw();
        let mut n = raw >> fb; // floor division: works for negatives too
        let frac = raw - (n << fb); // in [0, 2^fb)
                                    // Reduce the fraction to q bits of index, round to nearest.
        let mut idx = if fb >= self.q {
            let drop = fb - self.q;
            if drop == 0 {
                frac as usize
            } else {
                (((frac >> (drop - 1)) + 1) >> 1) as usize
            }
        } else {
            (frac << (self.q - fb)) as usize
        };
        if idx == self.exp_table.len() {
            idx = 0;
            n += 1;
        }
        let base = self.exp_table[idx]; // 2^f, in self.frac_bits format
        Self::scale_exp(base, n, self.frac_bits, out_frac_bits)
    }

    /// [`Self::exp2_fx`] with stochastic index rounding (see
    /// [`Self::log2_fx_stochastic`] for the rationale).
    pub fn exp2_fx_stochastic(&self, x: Fx, out_frac_bits: u32, u: f64) -> Fx {
        let fb = x.frac_bits();
        let raw = x.raw();
        let mut n = raw >> fb;
        let frac = raw - (n << fb);
        let mut idx = if fb >= self.q {
            let drop = fb - self.q;
            let base = (frac >> drop) as usize;
            let rem = frac & ((1i64 << drop) - 1);
            let f = rem as f64 / (1i64 << drop) as f64;
            base + usize::from(u < f)
        } else {
            (frac << (self.q - fb)) as usize
        };
        if idx == self.exp_table.len() {
            idx = 0;
            n += 1;
        }
        Self::scale_exp(self.exp_table[idx], n, self.frac_bits, out_frac_bits)
    }

    /// Result = base · 2^n, rescaled from `frac_bits` to `out_frac_bits`.
    fn scale_exp(base: Fx, n: i64, frac_bits: u32, out_frac_bits: u32) -> Fx {
        let shift = n as i32 + out_frac_bits as i32 - frac_bits as i32;
        let raw_out = if shift >= 0 {
            if shift >= 62 {
                i64::MAX
            } else {
                base.raw() << shift
            }
        } else if -shift >= 63 {
            0
        } else {
            // Round to nearest on the downshift.
            (base.raw() + (1 << (-shift - 1))) >> (-shift)
        };
        Fx::from_raw(raw_out, out_frac_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msb_positions() {
        assert_eq!(LogExpTables::msb(1), 0);
        assert_eq!(LogExpTables::msb(2), 1);
        assert_eq!(LogExpTables::msb(255), 7);
        assert_eq!(LogExpTables::msb(256), 8);
        assert_eq!(LogExpTables::msb(u64::MAX), 63);
    }

    #[test]
    fn log2_small_values_exact_lookup() {
        let t = LogExpTables::new(8, 16);
        for x in [1u64, 2, 3, 100, 255] {
            let got = t.log2_int(x).to_f64();
            let want = (x as f64).log2();
            assert!((got - want).abs() < 1e-3, "x={x}: {got} vs {want}");
        }
    }

    #[test]
    fn log2_large_values_bounded_error() {
        // Paper: error ≤ 1.44·2^-q ≈ 0.0056 for q=8.
        let t = LogExpTables::new(8, 16);
        for x in [300u64, 1_000, 65_535, 1 << 20, (1 << 40) + 12345] {
            let got = t.log2_int(x).to_f64();
            let want = (x as f64).log2();
            assert!((got - want).abs() < 0.006, "x={x}: {got} vs {want}");
        }
    }

    #[test]
    fn higher_q_is_more_accurate() {
        // Average the error over many inputs: one specific x can happen to
        // land near a table point even for coarse tables.
        let coarse = LogExpTables::new(4, 16);
        let fine = LogExpTables::new(12, 16);
        let mut e_coarse = 0.0;
        let mut e_fine = 0.0;
        let mut x = 1u64 << 30;
        for i in 0..1000u64 {
            x = x.wrapping_add(1_000_003 * (i + 1));
            let want = (x as f64).log2();
            e_coarse += (coarse.log2_int(x).to_f64() - want).abs();
            e_fine += (fine.log2_int(x).to_f64() - want).abs();
        }
        assert!(e_fine < e_coarse / 10.0, "fine {e_fine} coarse {e_coarse}");
    }

    #[test]
    fn exp2_positive_and_negative() {
        let t = LogExpTables::new(8, 16);
        for &x in &[0.0, 0.5, 1.0, 3.25, -1.0, -2.75, 10.1] {
            let got = t.exp2_fx(Fx::from_f64(x, 16), 16).to_f64();
            let want = x.exp2();
            let rel = (got - want).abs() / want.max(1e-9);
            assert!(rel < 0.01, "2^{x}: {got} vs {want} (rel {rel})");
        }
    }

    #[test]
    fn log_then_exp_roundtrip() {
        // Paper: "the errors of the different approximations compound".
        // With q = 8 the roundtrip must stay within ~1%.
        let t = LogExpTables::new(8, 16);
        for x in [7u64, 1000, 123_456, 10_000_000] {
            let log = t.log2_int(x);
            let back = t.exp2_fx(log, 8).to_f64();
            let rel = (back - x as f64).abs() / x as f64;
            assert!(rel < 0.012, "x={x}: roundtrip {back} (rel {rel})");
        }
    }

    #[test]
    fn log2_fx_handles_fractions() {
        let t = LogExpTables::new(8, 16);
        let v = Fx::from_f64(0.125, 16); // log2 = -3
        let got = t.log2_fx(v).to_f64();
        assert!((got + 3.0).abs() < 0.01, "{got}");
    }

    #[test]
    fn table_memory_is_small() {
        // q=8 → two 256-entry tables: trivially fits switch SRAM.
        let t = LogExpTables::new(8, 16);
        assert_eq!(t.entries(), 512);
    }
}
