//! Programmable-switch data-plane model (paper §5 and Appendices B, C).
//!
//! PINT is implemented in P4 on commodity programmable switches, which
//! cannot multiply, divide, or take logarithms natively. The paper's
//! Appendix C describes the standard workarounds, all modeled here:
//!
//! * [`fixedpoint`] — fixed-point representation of real values (a scaling
//!   factor `R` maps `m`-bit integers onto `[0, R]`).
//! * [`lut`] — `log₂`/`2^x` approximation with a TCAM most-significant-bit
//!   lookup plus a `2^q`-entry lookup table on the next `q` bits.
//! * [`arith`] — approximate multiply/divide via
//!   `x·y = 2^(log₂x + log₂y)`.
//! * [`hpcc_util`] — the switch-side link-utilization EWMA of Appendix B,
//!   computed entirely with the approximate primitives.
//! * [`pipeline`] — the match-action pipeline-stage model used to validate
//!   that PINT's queries fit a Tofino-like stage budget (Fig. 6).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arith;
pub mod fixedpoint;
pub mod hpcc_util;
pub mod lut;
pub mod pipeline;

pub use arith::ApproxAlu;
pub use fixedpoint::Fx;
pub use hpcc_util::SwitchUtilization;
pub use lut::LogExpTables;
pub use pipeline::{Op, OpKind, Pipeline, PipelineError, Stage};
