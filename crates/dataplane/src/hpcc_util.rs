//! Switch-side link-utilization EWMA (paper §4.3 "Tuning HPCC calculation
//! for switch computation" and Appendix B).
//!
//! PINT moves HPCC's utilization estimate from the host into the switch.
//! Each link maintains
//!
//! ```text
//! U ← (T−τ)/T · U  +  qlen·τ/(B·T²)  +  byte/(B·T)
//! ```
//!
//! updated on *every* dequeued packet. Per the paper's footnote 10, `τ` is
//! the packet's **time occupation** of the link — the gap since the
//! previous dequeue on this link (equal to the serialization time when the
//! link is saturated, larger when it idles), so that an idling link's
//! utilization decays. `T` is the base RTT and `B` the link bandwidth.
//!
//! The switch cannot multiply, so Appendix B evaluates each product
//! through logarithms:
//!
//! ```text
//! U_term    = log(T−τ) − log T + log U
//! qlen_term = log qlen + log τ − log B − 2·log T
//! byte_term = log byte − log B − log T
//! U         = 2^U_term + 2^qlen_term + 2^byte_term
//! ```
//!
//! All `log`/`2^x` evaluations go through the `q`-bit lookup tables of
//! [`LogExpTables`] with *stochastic* rounding — deterministic rounding
//! would freeze the EWMA at spurious fixed points because the per-packet
//! decay `log((T−τ)/T)` is of the same order as the table resolution (see
//! the `deterministic_rounding_biases_the_ewma` test).
//! [`SwitchUtilization::exact_update`] is the real-arithmetic reference
//! the tests compare against.

use crate::fixedpoint::Fx;
use crate::lut::LogExpTables;

/// Fixed-point format for utilization values.
const U_FRAC: u32 = 20;
/// Fixed-point format for the log-domain terms.
const LOG_FRAC: u32 = 20;

/// Per-link utilization EWMA computed with data-plane primitives.
#[derive(Debug, Clone)]
pub struct SwitchUtilization {
    tables: LogExpTables,
    /// Base RTT `T` in nanoseconds.
    t_ns: u64,
    /// Link bandwidth in bytes per nanosecond.
    bandwidth: f64,
    /// Current EWMA utilization `U`.
    u: Fx,
    /// Exact `log₂ T`.
    log_t: Fx,
    /// Exact `log₂ B` (B in bytes/ns; may be negative for slow links).
    log_b: Fx,
    /// Timestamp of the previous dequeue.
    last_ts: Option<u64>,
    /// Dither counter driving the stochastic table rounding (in hardware:
    /// the switch's hash unit applied to a packet counter).
    dither: u64,
}

impl SwitchUtilization {
    /// Creates the per-link state. `q` is the lookup-table precision
    /// (12 suffices; see the bias test), `t_ns` the base RTT,
    /// `bandwidth_bytes_per_ns` the link speed (e.g. 12.5 for 100 Gbps).
    pub fn new(q: u32, t_ns: u64, bandwidth_bytes_per_ns: f64) -> Self {
        assert!(t_ns > 1);
        assert!(bandwidth_bytes_per_ns > 0.0);
        let tables = LogExpTables::new(q, LOG_FRAC);
        Self {
            tables,
            t_ns,
            bandwidth: bandwidth_bytes_per_ns,
            u: Fx::zero(U_FRAC),
            log_t: Fx::from_f64((t_ns as f64).log2(), LOG_FRAC),
            log_b: Fx::from_f64(bandwidth_bytes_per_ns.log2(), LOG_FRAC),
            last_ts: None,
            dither: 0x2545_F491_4F6C_DD1D,
        }
    }

    /// Next dither draw in `[0, 1)` (SplitMix-style; a hardware hash unit).
    fn next_dither(&mut self) -> f64 {
        self.dither = self.dither.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.dither;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// The current utilization estimate.
    pub fn utilization(&self) -> f64 {
        self.u.to_f64()
    }

    /// `log₂` of a positive integer with stochastic mantissa rounding.
    fn slog(&mut self, x: u64) -> Fx {
        let d = self.next_dither();
        self.tables
            .log2_fx_stochastic(Fx::from_raw(x.max(1) as i64, 0), d)
    }

    /// Updates `U` at a dequeue happening at time `now_ns` using only
    /// data-plane operations; returns the new estimate.
    pub fn on_packet_dequeue(&mut self, now_ns: u64, qlen_bytes: u64, pkt_bytes: u64) -> f64 {
        // τ = gap since previous dequeue, clamped to (0, T).
        let tau = match self.last_ts {
            Some(last) => now_ns.saturating_sub(last).clamp(1, self.t_ns - 1),
            None => self.t_ns - 1,
        };
        self.last_ts = Some(now_ns);

        // U_term = log(T−τ) − log T + log U   (skipped while U = 0).
        let mut next = Fx::zero(U_FRAC);
        if self.u.raw() > 0 {
            let log_u = {
                let d = self.next_dither();
                self.tables.log2_fx_stochastic(self.u, d)
            };
            let u_term = self.slog(self.t_ns - tau).sub(self.log_t).add(log_u);
            let d = self.next_dither();
            next = next.add(self.tables.exp2_fx_stochastic(u_term, U_FRAC, d));
        }
        // qlen_term = log qlen + log τ − log B − 2·log T.
        if qlen_bytes > 0 {
            let qlen_term = self
                .slog(qlen_bytes)
                .add(self.slog(tau))
                .sub(self.log_b)
                .sub(self.log_t)
                .sub(self.log_t);
            let d = self.next_dither();
            next = next.add(self.tables.exp2_fx_stochastic(qlen_term, U_FRAC, d));
        }
        // byte_term = log byte − log B − log T.
        let byte_term = self.slog(pkt_bytes).sub(self.log_b).sub(self.log_t);
        let d = self.next_dither();
        next = next.add(self.tables.exp2_fx_stochastic(byte_term, U_FRAC, d));

        self.u = next;
        self.u.to_f64()
    }

    /// Reference update in exact arithmetic; used by tests to bound the
    /// data-plane approximation error.
    pub fn exact_update(
        u: f64,
        tau_ns: u64,
        qlen_bytes: u64,
        pkt_bytes: u64,
        t_ns: u64,
        b: f64,
    ) -> f64 {
        let t = t_ns as f64;
        let tau = tau_ns as f64;
        (t - tau) / t * u + (qlen_bytes as f64) * tau / (b * t * t) + pkt_bytes as f64 / (b * t)
    }

    /// The configured base RTT in nanoseconds.
    pub fn base_rtt_ns(&self) -> u64 {
        self.t_ns
    }

    /// The configured bandwidth in bytes/ns.
    pub fn bandwidth_bytes_per_ns(&self) -> f64 {
        self.bandwidth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives a saturated link: 1000B packets back-to-back at 100 Gbps
    /// (80 ns apart).
    fn saturate(su: &mut SwitchUtilization, start: u64, n: u64, qlen: u64) -> u64 {
        let mut now = start;
        for _ in 0..n {
            now += 80;
            su.on_packet_dequeue(now, qlen, 1000);
        }
        now
    }

    #[test]
    fn saturated_link_converges_to_one() {
        // Back-to-back packets, empty queue: steady state
        // U = (1−τ/T)U + byte/(B·T) with τ = byte/B ⇒ U* = 1.
        let mut su = SwitchUtilization::new(12, 13_000, 12.5);
        saturate(&mut su, 0, 5_000, 0);
        let u = su.utilization();
        assert!((u - 1.0).abs() < 0.05, "steady U {u}");
    }

    #[test]
    fn queue_buildup_raises_utilization_above_one() {
        let mut su = SwitchUtilization::new(12, 13_000, 12.5);
        saturate(&mut su, 0, 5_000, 100_000);
        assert!(su.utilization() > 1.3, "U {}", su.utilization());
    }

    #[test]
    fn half_rate_link_reads_half() {
        // One 1000B packet every 160 ns on a 12.5 B/ns link = 50% load.
        let mut su = SwitchUtilization::new(12, 13_000, 12.5);
        let mut now = 0;
        for _ in 0..10_000 {
            now += 160;
            su.on_packet_dequeue(now, 0, 1000);
        }
        let u = su.utilization();
        assert!((u - 0.5).abs() < 0.05, "U {u} at 50% load");
    }

    #[test]
    fn idle_gaps_decay_utilization() {
        let mut su = SwitchUtilization::new(12, 13_000, 12.5);
        let now = saturate(&mut su, 0, 3_000, 200_000);
        let high = su.utilization();
        // Sparse keep-alives: one small packet per ~half RTT.
        let mut t = now;
        for _ in 0..200 {
            t += 6_000;
            su.on_packet_dequeue(t, 0, 64);
        }
        let low = su.utilization();
        assert!(low < high / 10.0, "did not decay: {high} → {low}");
    }

    #[test]
    fn tracks_exact_reference() {
        let mut su = SwitchUtilization::new(12, 13_000, 12.5);
        let mut exact = 0.0;
        let mut now = 0u64;
        let mut last = 0u64;
        for i in 0..20_000u64 {
            let pkt = if i % 7 == 0 { 64 } else { 1000 };
            let qlen = if i % 100 < 30 { 50_000 } else { 0 };
            let gap = if i % 13 == 0 { 900 } else { 80 };
            now += gap;
            su.on_packet_dequeue(now, qlen, pkt);
            let tau = (now - last).clamp(1, 12_999);
            last = now;
            exact = SwitchUtilization::exact_update(exact, tau, qlen, pkt, 13_000, 12.5);
        }
        let got = su.utilization();
        assert!(
            (got - exact).abs() / exact < 0.08,
            "data-plane {got} vs exact {exact}"
        );
    }

    #[test]
    fn deterministic_rounding_biases_the_ewma() {
        // The "errors compound" caveat of Appendix C in action: iterating
        // U ← 2^(decay + log₂U) + c with *deterministic* q = 8 rounding
        // locks into a fixed point away from the true steady state 1,
        // because the per-step roundtrip error (~0.3%) is the same order
        // as the per-packet decay (τ/T ≈ 0.6%). The stochastic rounding
        // used by `SwitchUtilization` removes the bias even at q = 8.
        let tables = LogExpTables::new(8, 20);
        let decay = Fx::from_f64((1.0f64 - 80.0 / 13_000.0).log2(), 20);
        let c = Fx::from_f64(80.0 / 13_000.0, 20);
        let mut u = c;
        for _ in 0..5_000 {
            let term = decay.add(tables.log2_fx(u));
            u = tables.exp2_fx(term, 20).add(c);
        }
        let det = u.to_f64();
        assert!((det - 1.0).abs() > 0.05, "expected visible bias, got {det}");

        let mut stoch = SwitchUtilization::new(8, 13_000, 12.5);
        saturate(&mut stoch, 0, 5_000, 0);
        let s = stoch.utilization();
        assert!((s - 1.0).abs() < 0.06, "stochastic q=8 should track: {s}");
    }

    #[test]
    fn starts_at_zero() {
        let su = SwitchUtilization::new(12, 13_000, 12.5);
        assert_eq!(su.utilization(), 0.0);
    }
}
