//! Match-action pipeline model (paper §5, Fig. 6).
//!
//! Programmable switches execute a packet program as a short sequence of
//! match-action *stages*. Constraints the paper contends with (§3.5):
//! a limited number of stages, a bounded number of operations per stage,
//! and the rule that an operation may only read values produced in
//! *earlier* stages (the pipeline is feed-forward; recirculation is the
//! escape hatch).
//!
//! [`Pipeline`] validates a stage layout against these constraints. The
//! constructors under [`layouts`] reproduce the paper's placements:
//! path tracing in 4 stages, latency quantiles in 4 stages, HPCC in 8, and
//! the Fig. 6 *combined* layout that runs all three queries concurrently in
//! the same 8 stages by exploiting query independence.

use std::collections::HashSet;

/// Kinds of primitive operations a stage can host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Hash computation (CRC/`GlobalHash` unit).
    Hash,
    /// Stateful register read-modify-write.
    Register,
    /// Stateless ALU arithmetic (add/sub/shift/compare).
    Alu,
    /// SRAM/TCAM table lookup.
    TableLookup,
    /// Header field write.
    HeaderWrite,
}

/// One primitive operation, with an explicit dataflow signature.
#[derive(Debug, Clone)]
pub struct Op {
    /// Name for diagnostics (e.g. `"compute g"`).
    pub name: String,
    /// Operation class.
    pub kind: OpKind,
    /// Fields/metadata this op reads.
    pub reads: Vec<String>,
    /// Fields/metadata this op writes.
    pub writes: Vec<String>,
}

impl Op {
    /// Creates an op.
    pub fn new(name: &str, kind: OpKind, reads: &[&str], writes: &[&str]) -> Self {
        Self {
            name: name.to_owned(),
            kind,
            reads: reads.iter().map(|s| (*s).to_owned()).collect(),
            writes: writes.iter().map(|s| (*s).to_owned()).collect(),
        }
    }
}

/// One pipeline stage: a bundle of ops executing in parallel.
#[derive(Debug, Clone, Default)]
pub struct Stage {
    /// Stage label.
    pub name: String,
    /// The ops placed in this stage.
    pub ops: Vec<Op>,
}

/// Validation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// More stages than the target permits.
    TooManyStages {
        /// Stages used.
        used: usize,
        /// Stage budget.
        budget: usize,
    },
    /// A stage hosts more ops than the per-stage budget.
    StageTooWide {
        /// Offending stage index.
        stage: usize,
        /// Ops placed.
        used: usize,
        /// Per-stage budget.
        budget: usize,
    },
    /// An op reads a field written in the same or a later stage.
    DataHazard {
        /// Offending stage index.
        stage: usize,
        /// The op.
        op: String,
        /// The field with the hazard.
        field: String,
    },
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::TooManyStages { used, budget } => {
                write!(f, "{used} stages exceed budget of {budget}")
            }
            PipelineError::StageTooWide {
                stage,
                used,
                budget,
            } => {
                write!(f, "stage {stage} hosts {used} ops, budget {budget}")
            }
            PipelineError::DataHazard { stage, op, field } => {
                write!(
                    f,
                    "op '{op}' in stage {stage} reads '{field}' before it is produced"
                )
            }
        }
    }
}

impl std::error::Error for PipelineError {}

/// A pipeline program: stages plus the hardware budget.
#[derive(Debug, Clone)]
pub struct Pipeline {
    /// The stages in execution order.
    pub stages: Vec<Stage>,
    /// Maximum number of stages (Tofino-class: 12 per direction).
    pub max_stages: usize,
    /// Maximum ops per stage.
    pub max_ops_per_stage: usize,
    /// Fields available before stage 0 (packet headers, intrinsic metadata).
    pub inputs: HashSet<String>,
}

impl Pipeline {
    /// A Tofino-like budget: 12 stages, 4 parallel ops per stage.
    pub fn tofino(inputs: &[&str]) -> Self {
        Self {
            stages: Vec::new(),
            max_stages: 12,
            max_ops_per_stage: 4,
            inputs: inputs.iter().map(|s| (*s).to_owned()).collect(),
        }
    }

    /// Appends a stage.
    pub fn stage(mut self, name: &str, ops: Vec<Op>) -> Self {
        self.stages.push(Stage {
            name: name.to_owned(),
            ops,
        });
        self
    }

    /// Number of stages used.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// `true` if no stage was added.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Validates stage budget, width, and feed-forward dataflow.
    pub fn validate(&self) -> Result<(), PipelineError> {
        if self.stages.len() > self.max_stages {
            return Err(PipelineError::TooManyStages {
                used: self.stages.len(),
                budget: self.max_stages,
            });
        }
        let mut available = self.inputs.clone();
        for (i, stage) in self.stages.iter().enumerate() {
            if stage.ops.len() > self.max_ops_per_stage {
                return Err(PipelineError::StageTooWide {
                    stage: i,
                    used: stage.ops.len(),
                    budget: self.max_ops_per_stage,
                });
            }
            for op in &stage.ops {
                for r in &op.reads {
                    if !available.contains(r) {
                        return Err(PipelineError::DataHazard {
                            stage: i,
                            op: op.name.clone(),
                            field: r.clone(),
                        });
                    }
                }
            }
            // Writes become visible to *later* stages only.
            for op in &stage.ops {
                for w in &op.writes {
                    available.insert(w.clone());
                }
            }
        }
        Ok(())
    }
}

/// The paper's concrete stage placements (§5).
pub mod layouts {
    use super::*;

    /// Path tracing (static per-flow): "four pipeline stages: the first
    /// chooses a layer, another computes `g`, the third hashes the switch
    /// ID …, and the last writes the digest" (§5). Two hash instances run
    /// in parallel within the same stages.
    pub fn path_tracing() -> Pipeline {
        Pipeline::tofino(&["pkt.id", "pkt.ttl", "sw.id", "pkt.digest"])
            .stage(
                "choose layer",
                vec![Op::new(
                    "H(pid)",
                    OpKind::Hash,
                    &["pkt.id"],
                    &["meta.layer"],
                )],
            )
            .stage(
                "compute g",
                vec![
                    Op::new(
                        "g1(pid,hop)",
                        OpKind::Hash,
                        &["pkt.id", "pkt.ttl"],
                        &["meta.g1"],
                    ),
                    Op::new(
                        "g2(pid,hop)",
                        OpKind::Hash,
                        &["pkt.id", "pkt.ttl"],
                        &["meta.g2"],
                    ),
                ],
            )
            .stage(
                "hash switch id",
                vec![
                    Op::new(
                        "h1(sw,pid)",
                        OpKind::Hash,
                        &["sw.id", "pkt.id"],
                        &["meta.h1"],
                    ),
                    Op::new(
                        "h2(sw,pid)",
                        OpKind::Hash,
                        &["sw.id", "pkt.id"],
                        &["meta.h2"],
                    ),
                ],
            )
            .stage(
                "write digest",
                vec![Op::new(
                    "conditional write/xor",
                    OpKind::HeaderWrite,
                    &[
                        "meta.layer",
                        "meta.g1",
                        "meta.g2",
                        "meta.h1",
                        "meta.h2",
                        "pkt.digest",
                    ],
                    &["pkt.digest"],
                )],
            )
    }

    /// Median/tail latency (dynamic per-flow): "four pipeline stages: one
    /// for computing the latency, one for compressing it, one to compute
    /// `g`, and one to overwrite the value if needed" (§5).
    pub fn latency_quantiles() -> Pipeline {
        Pipeline::tofino(&[
            "pkt.id",
            "pkt.ttl",
            "sw.ingress_ts",
            "sw.egress_ts",
            "pkt.digest",
        ])
        .stage(
            "compute latency",
            vec![Op::new(
                "egress-ingress",
                OpKind::Alu,
                &["sw.ingress_ts", "sw.egress_ts"],
                &["meta.latency"],
            )],
        )
        .stage(
            "compress value",
            vec![Op::new(
                "log-encode",
                OpKind::TableLookup,
                &["meta.latency"],
                &["meta.compressed"],
            )],
        )
        .stage(
            "compute g",
            vec![Op::new(
                "g(pid,hop)",
                OpKind::Hash,
                &["pkt.id", "pkt.ttl"],
                &["meta.g"],
            )],
        )
        .stage(
            "write digest",
            vec![Op::new(
                "conditional overwrite",
                OpKind::HeaderWrite,
                &["meta.g", "meta.compressed", "pkt.digest"],
                &["pkt.digest"],
            )],
        )
    }

    /// HPCC congestion control (per-packet): "six pipeline stages to
    /// compute the link utilization, followed by a stage for approximating
    /// the value and another to write the digest" (§5).
    pub fn hpcc() -> Pipeline {
        Pipeline::tofino(&["pkt.id", "pkt.bytes", "port.qlen", "pkt.digest", "reg.U"])
            // Six stages of "HPCC arithmetics" (Appendix B, via log/exp).
            .stage(
                "msb/log inputs",
                vec![
                    Op::new(
                        "log qlen",
                        OpKind::TableLookup,
                        &["port.qlen"],
                        &["meta.log_qlen"],
                    ),
                    Op::new(
                        "log byte",
                        OpKind::TableLookup,
                        &["pkt.bytes"],
                        &["meta.log_byte"],
                    ),
                ],
            )
            .stage(
                "log tau",
                vec![Op::new(
                    "log τ = log byte − log B",
                    OpKind::Alu,
                    &["meta.log_byte"],
                    &["meta.log_tau"],
                )],
            )
            .stage(
                "read U",
                vec![Op::new(
                    "read reg.U",
                    OpKind::Register,
                    &["reg.U"],
                    &["meta.U"],
                )],
            )
            .stage(
                "log U",
                vec![Op::new(
                    "log U",
                    OpKind::TableLookup,
                    &["meta.U"],
                    &["meta.log_U"],
                )],
            )
            .stage(
                "terms",
                vec![
                    Op::new(
                        "U_term",
                        OpKind::Alu,
                        &["meta.log_U", "meta.log_tau"],
                        &["meta.u_term"],
                    ),
                    Op::new(
                        "qlen_term",
                        OpKind::Alu,
                        &["meta.log_qlen", "meta.log_tau"],
                        &["meta.qlen_term"],
                    ),
                    Op::new(
                        "byte_term",
                        OpKind::Alu,
                        &["meta.log_byte"],
                        &["meta.byte_term"],
                    ),
                ],
            )
            .stage(
                "exp + sum",
                vec![Op::new(
                    "2^terms sum",
                    OpKind::TableLookup,
                    &["meta.u_term", "meta.qlen_term", "meta.byte_term"],
                    &["meta.U_new"],
                )],
            )
            .stage(
                "approximate value + writeback",
                vec![
                    Op::new(
                        "multiplicative encode",
                        OpKind::TableLookup,
                        &["meta.U_new", "pkt.id"],
                        &["meta.code"],
                    ),
                    Op::new("write reg.U", OpKind::Register, &["meta.U_new"], &["reg.U"]),
                ],
            )
            .stage(
                "write digest",
                vec![Op::new(
                    "max into digest",
                    OpKind::HeaderWrite,
                    &["meta.code", "pkt.digest"],
                    &["pkt.digest"],
                )],
            )
    }

    /// The combined layout of Fig. 6: all three queries run concurrently;
    /// the query-subset choice overlaps HPCC's arithmetic stages, so the
    /// total stage count equals HPCC alone (8 stages).
    pub fn combined() -> Pipeline {
        Pipeline::tofino(&[
            "pkt.id",
            "pkt.ttl",
            "pkt.bytes",
            "sw.id",
            "sw.ingress_ts",
            "sw.egress_ts",
            "port.qlen",
            "pkt.digest",
            "reg.U",
        ])
        // Stage 1: HPCC log lookups ∥ latency computation ∥ g for tracing.
        .stage(
            "s1",
            vec![
                Op::new(
                    "log qlen",
                    OpKind::TableLookup,
                    &["port.qlen"],
                    &["meta.log_qlen"],
                ),
                Op::new(
                    "log byte",
                    OpKind::TableLookup,
                    &["pkt.bytes"],
                    &["meta.log_byte"],
                ),
                Op::new(
                    "compute latency",
                    OpKind::Alu,
                    &["sw.ingress_ts", "sw.egress_ts"],
                    &["meta.latency"],
                ),
                Op::new("choose layer", OpKind::Hash, &["pkt.id"], &["meta.layer"]),
            ],
        )
        // Stage 2: HPCC ∥ compress latency ∥ g hashes.
        .stage(
            "s2",
            vec![
                Op::new(
                    "log tau",
                    OpKind::Alu,
                    &["meta.log_byte"],
                    &["meta.log_tau"],
                ),
                Op::new(
                    "compress latency",
                    OpKind::TableLookup,
                    &["meta.latency"],
                    &["meta.lat_code"],
                ),
                Op::new("g1", OpKind::Hash, &["pkt.id", "pkt.ttl"], &["meta.g1"]),
                Op::new("g2", OpKind::Hash, &["pkt.id", "pkt.ttl"], &["meta.g2"]),
            ],
        )
        // Stage 3: HPCC register ∥ switch-ID hashes ∥ query-subset choice.
        .stage(
            "s3",
            vec![
                Op::new("read U", OpKind::Register, &["reg.U"], &["meta.U"]),
                Op::new(
                    "h1(sw,pid)",
                    OpKind::Hash,
                    &["sw.id", "pkt.id"],
                    &["meta.h1"],
                ),
                Op::new(
                    "h2(sw,pid)",
                    OpKind::Hash,
                    &["sw.id", "pkt.id"],
                    &["meta.h2"],
                ),
                Op::new(
                    "choose query subset",
                    OpKind::Hash,
                    &["pkt.id"],
                    &["meta.queries"],
                ),
            ],
        )
        .stage(
            "s4",
            vec![
                Op::new("log U", OpKind::TableLookup, &["meta.U"], &["meta.log_U"]),
                Op::new(
                    "g latency",
                    OpKind::Hash,
                    &["pkt.id", "pkt.ttl"],
                    &["meta.g_lat"],
                ),
            ],
        )
        .stage(
            "s5",
            vec![
                Op::new(
                    "U_term",
                    OpKind::Alu,
                    &["meta.log_U", "meta.log_tau"],
                    &["meta.u_term"],
                ),
                Op::new(
                    "qlen_term",
                    OpKind::Alu,
                    &["meta.log_qlen", "meta.log_tau"],
                    &["meta.qlen_term"],
                ),
                Op::new(
                    "byte_term",
                    OpKind::Alu,
                    &["meta.log_byte"],
                    &["meta.byte_term"],
                ),
            ],
        )
        .stage(
            "s6",
            vec![Op::new(
                "2^terms sum",
                OpKind::TableLookup,
                &["meta.u_term", "meta.qlen_term", "meta.byte_term"],
                &["meta.U_new"],
            )],
        )
        .stage(
            "s7",
            vec![
                Op::new(
                    "encode U",
                    OpKind::TableLookup,
                    &["meta.U_new", "pkt.id"],
                    &["meta.u_code"],
                ),
                Op::new("write reg.U", OpKind::Register, &["meta.U_new"], &["reg.U"]),
            ],
        )
        // Stage 8: write all selected query digests.
        .stage(
            "s8",
            vec![
                Op::new(
                    "write path digest",
                    OpKind::HeaderWrite,
                    &[
                        "meta.queries",
                        "meta.layer",
                        "meta.g1",
                        "meta.g2",
                        "meta.h1",
                        "meta.h2",
                        "pkt.digest",
                    ],
                    &["pkt.digest"],
                ),
                Op::new(
                    "write latency digest",
                    OpKind::HeaderWrite,
                    &["meta.queries", "meta.g_lat", "meta.lat_code", "pkt.digest"],
                    &["pkt.digest"],
                ),
                Op::new(
                    "write hpcc digest",
                    OpKind::HeaderWrite,
                    &["meta.queries", "meta.u_code", "pkt.digest"],
                    &["pkt.digest"],
                ),
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::layouts;
    use super::*;

    #[test]
    fn path_tracing_fits_four_stages() {
        let p = layouts::path_tracing();
        assert_eq!(p.len(), 4, "§5: path tracing requires four stages");
        p.validate().unwrap();
    }

    #[test]
    fn latency_fits_four_stages() {
        let p = layouts::latency_quantiles();
        assert_eq!(p.len(), 4, "§5: latency requires four stages");
        p.validate().unwrap();
    }

    #[test]
    fn hpcc_fits_eight_stages() {
        let p = layouts::hpcc();
        assert_eq!(p.len(), 8, "§5: 6 arithmetic + approximate + write");
        p.validate().unwrap();
    }

    #[test]
    fn combined_no_wider_than_hpcc_alone() {
        // Fig. 6's point: running all three queries concurrently does not
        // increase the stage count over HPCC alone.
        let combined = layouts::combined();
        combined.validate().unwrap();
        assert_eq!(combined.len(), layouts::hpcc().len());
    }

    #[test]
    fn stage_budget_enforced() {
        let p = Pipeline::tofino(&["x"]);
        let p = (0..13).fold(p, |p, i| {
            p.stage(
                &format!("s{i}"),
                vec![Op::new("nop", OpKind::Alu, &["x"], &[])],
            )
        });
        assert!(matches!(
            p.validate(),
            Err(PipelineError::TooManyStages {
                used: 13,
                budget: 12
            })
        ));
    }

    #[test]
    fn width_budget_enforced() {
        let ops: Vec<Op> = (0..5)
            .map(|i| Op::new(&format!("op{i}"), OpKind::Alu, &["x"], &[]))
            .collect();
        let p = Pipeline::tofino(&["x"]).stage("wide", ops);
        assert!(matches!(
            p.validate(),
            Err(PipelineError::StageTooWide {
                used: 5,
                budget: 4,
                ..
            })
        ));
    }

    #[test]
    fn data_hazard_detected() {
        // Reading a value in the same stage it is produced is illegal.
        let p = Pipeline::tofino(&["x"]).stage(
            "bad",
            vec![
                Op::new("produce", OpKind::Alu, &["x"], &["y"]),
                Op::new("consume", OpKind::Alu, &["y"], &["z"]),
            ],
        );
        assert!(matches!(
            p.validate(),
            Err(PipelineError::DataHazard { .. })
        ));
        // Split across two stages it becomes legal.
        let p = Pipeline::tofino(&["x"])
            .stage("a", vec![Op::new("produce", OpKind::Alu, &["x"], &["y"])])
            .stage("b", vec![Op::new("consume", OpKind::Alu, &["y"], &["z"])]);
        p.validate().unwrap();
    }
}
