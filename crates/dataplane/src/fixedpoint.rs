//! Fixed-point representation (paper Appendix C).
//!
//! "When requiring a real-valued variable in the range `[0, R]`, we can use
//! `m` bits to represent it so that the integer representation
//! `r ∈ {0, …, 2^m − 1}` stands for `R · r · 2^−m`."
//!
//! [`Fx`] is a signed fixed-point number with a compile-run chosen number
//! of fraction bits. Signed, because the logarithms of sub-unit quantities
//! (Appendix B's `log(τ/T)` terms) are negative.

/// A signed fixed-point value: `value = raw / 2^frac_bits`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Fx {
    raw: i64,
    frac_bits: u32,
}

impl Fx {
    /// Creates a fixed-point value from a raw integer representation.
    pub fn from_raw(raw: i64, frac_bits: u32) -> Self {
        assert!(frac_bits < 62);
        Self { raw, frac_bits }
    }

    /// Quantizes an `f64` (round-to-nearest).
    pub fn from_f64(v: f64, frac_bits: u32) -> Self {
        assert!(frac_bits < 62);
        let raw = (v * (1i64 << frac_bits) as f64).round() as i64;
        Self { raw, frac_bits }
    }

    /// The raw integer representation.
    pub fn raw(self) -> i64 {
        self.raw
    }

    /// Number of fraction bits.
    pub fn frac_bits(self) -> u32 {
        self.frac_bits
    }

    /// Converts back to `f64` (test/inspection path — the data plane never
    /// does this).
    pub fn to_f64(self) -> f64 {
        self.raw as f64 / (1i64 << self.frac_bits) as f64
    }

    /// The quantization step `2^-frac_bits`.
    pub fn resolution(self) -> f64 {
        1.0 / (1i64 << self.frac_bits) as f64
    }

    /// Addition — natively supported by switch ALUs.
    pub fn add(self, other: Fx) -> Fx {
        assert_eq!(self.frac_bits, other.frac_bits, "mixed formats");
        Fx {
            raw: self.raw + other.raw,
            frac_bits: self.frac_bits,
        }
    }

    /// Subtraction — natively supported by switch ALUs.
    pub fn sub(self, other: Fx) -> Fx {
        assert_eq!(self.frac_bits, other.frac_bits, "mixed formats");
        Fx {
            raw: self.raw - other.raw,
            frac_bits: self.frac_bits,
        }
    }

    /// Shift left/right (multiply/divide by a power of two) — natively
    /// supported.
    pub fn shift(self, bits: i32) -> Fx {
        let raw = if bits >= 0 {
            self.raw << bits
        } else {
            self.raw >> (-bits)
        };
        Fx {
            raw,
            frac_bits: self.frac_bits,
        }
    }

    /// Converts to a different fraction-bit format.
    pub fn rescale(self, frac_bits: u32) -> Fx {
        let diff = frac_bits as i32 - self.frac_bits as i32;
        let raw = if diff >= 0 {
            self.raw << diff
        } else {
            // Round to nearest on downscale.
            let shift = -diff;
            (self.raw + (1 << (shift - 1))) >> shift
        };
        Fx { raw, frac_bits }
    }

    /// Zero in the given format.
    pub fn zero(frac_bits: u32) -> Fx {
        Fx { raw: 0, frac_bits }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example() {
        // Appendix C: range [0,2], m = 16 bits, encoding 39131 represents
        // 2·39131·2⁻¹⁶ ≈ 1.19. In Fx terms: value with 15 fraction bits.
        let v = Fx::from_raw(39131, 15);
        assert!((v.to_f64() - 1.194).abs() < 0.001);
    }

    #[test]
    fn roundtrip_accuracy() {
        for &v in &[0.0, 0.5, 1.19, 3.75, -2.5, 100.125] {
            let fx = Fx::from_f64(v, 16);
            assert!((fx.to_f64() - v).abs() <= fx.resolution());
        }
    }

    #[test]
    fn add_sub_exact() {
        let a = Fx::from_f64(1.25, 16);
        let b = Fx::from_f64(0.75, 16);
        assert_eq!(a.add(b).to_f64(), 2.0);
        assert_eq!(a.sub(b).to_f64(), 0.5);
    }

    #[test]
    fn shifts_are_powers_of_two() {
        let a = Fx::from_f64(3.0, 16);
        assert_eq!(a.shift(2).to_f64(), 12.0);
        assert_eq!(a.shift(-1).to_f64(), 1.5);
    }

    #[test]
    fn rescale_preserves_value() {
        let a = Fx::from_f64(1.19, 20);
        let b = a.rescale(10);
        assert!((b.to_f64() - 1.19).abs() < 2.0 * b.resolution());
        let c = b.rescale(20);
        assert!((c.to_f64() - b.to_f64()).abs() < 1e-9);
    }

    #[test]
    fn negative_values() {
        let a = Fx::from_f64(-3.5, 12);
        assert_eq!(a.to_f64(), -3.5);
        assert_eq!(a.add(Fx::from_f64(3.5, 12)).to_f64(), 0.0);
    }
}
