//! Exact quantile computation (store-everything baseline).
//!
//! Used as ground truth by the evaluation harness (Fig. 9 compares PINT's
//! estimated latency quantiles against the true quantiles of the full
//! per-hop stream) and by tests of the approximate sketches.

/// Stores the full stream and answers exact quantile queries.
#[derive(Debug, Clone, Default)]
pub struct ExactQuantiles {
    values: Vec<u64>,
    sorted: bool,
}

impl ExactQuantiles {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a value to the stream.
    pub fn update(&mut self, v: u64) {
        self.values.push(v);
        self.sorted = false;
    }

    /// Number of values observed.
    pub fn count(&self) -> usize {
        self.values.len()
    }

    /// `true` if the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.values.sort_unstable();
            self.sorted = true;
        }
    }

    /// The exact ϕ-quantile using the nearest-rank definition
    /// (the smallest value whose rank is ≥ ⌈ϕ·n⌉).
    pub fn quantile(&mut self, phi: f64) -> Option<u64> {
        if self.values.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let phi = phi.clamp(0.0, 1.0);
        let n = self.values.len();
        let idx = ((phi * n as f64).ceil() as usize).clamp(1, n) - 1;
        Some(self.values[idx])
    }

    /// Exact rank of `v`: number of stream elements `< v`.
    pub fn rank(&mut self, v: u64) -> usize {
        self.ensure_sorted();
        self.values.partition_point(|&x| x < v)
    }

    /// Normalized rank in `\[0, 1\]`.
    pub fn normalized_rank(&mut self, v: u64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.rank(v) as f64 / self.values.len() as f64
    }

    /// Read-only access to the (possibly unsorted) raw values.
    pub fn values(&self) -> &[u64] {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty() {
        let mut q = ExactQuantiles::new();
        assert!(q.quantile(0.5).is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn nearest_rank_definition() {
        let mut q = ExactQuantiles::new();
        for v in [10, 20, 30, 40] {
            q.update(v);
        }
        assert_eq!(q.quantile(0.0), Some(10));
        assert_eq!(q.quantile(0.25), Some(10));
        assert_eq!(q.quantile(0.5), Some(20));
        assert_eq!(q.quantile(0.75), Some(30));
        assert_eq!(q.quantile(1.0), Some(40));
    }

    #[test]
    fn rank_and_normalized_rank() {
        let mut q = ExactQuantiles::new();
        for v in 0..100u64 {
            q.update(v);
        }
        assert_eq!(q.rank(0), 0);
        assert_eq!(q.rank(50), 50);
        assert!((q.normalized_rank(50) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn interleaved_updates_and_queries() {
        let mut q = ExactQuantiles::new();
        q.update(5);
        assert_eq!(q.quantile(0.5), Some(5));
        q.update(1);
        q.update(9);
        assert_eq!(q.quantile(0.5), Some(5));
        q.update(0);
        q.update(2);
        assert_eq!(q.quantile(0.5), Some(2));
    }
}
