//! Reservoir sampling (Vitter 1985, "Random Sampling with a Reservoir").
//!
//! PINT's dynamic per-flow aggregation (§4.1) and Baseline coding layer
//! (§4.2) are distributed variants of reservoir sampling: the `i`-th switch
//! overwrites the packet digest with probability `1/i`, so the surviving
//! value is uniform over the path. These are the centralized counterparts,
//! used by the Recording Module and by tests as the reference behaviour.

use rand::Rng;

/// A classic size-`k` reservoir sampler: after observing `n ≥ k` items,
/// the reservoir holds a uniform random subset of size `k`.
#[derive(Debug, Clone)]
pub struct ReservoirSampler<T> {
    items: Vec<T>,
    capacity: usize,
    seen: u64,
}

impl<T> ReservoirSampler<T> {
    /// Creates a reservoir holding at most `capacity` items.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            items: Vec::with_capacity(capacity),
            capacity,
            seen: 0,
        }
    }

    /// Observes one item (Algorithm R).
    pub fn observe<R: Rng>(&mut self, item: T, rng: &mut R) {
        self.seen += 1;
        if self.items.len() < self.capacity {
            self.items.push(item);
        } else {
            let j = rng.gen_range(0..self.seen);
            if (j as usize) < self.capacity {
                self.items[j as usize] = item;
            }
        }
    }

    /// The sampled items (arbitrary order).
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Number of items observed so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// `true` if nothing was observed.
    pub fn is_empty(&self) -> bool {
        self.seen == 0
    }

    /// Current number of retained items (`min(seen, capacity)`).
    pub fn len(&self) -> usize {
        self.items.len()
    }
}

/// A single-slot reservoir: the retained item is uniform over the stream.
///
/// This mirrors PINT's per-packet digest: each switch on the path overwrites
/// the digest with probability `1/i`, leaving a uniformly sampled hop.
#[derive(Debug, Clone, Default)]
pub struct SingleReservoir<T> {
    item: Option<T>,
    seen: u64,
}

impl<T> SingleReservoir<T> {
    /// Creates an empty single-item reservoir.
    pub fn new() -> Self {
        Self {
            item: None,
            seen: 0,
        }
    }

    /// Observes one item; replaces the held item with probability `1/seen`.
    pub fn observe<R: Rng>(&mut self, item: T, rng: &mut R) {
        self.seen += 1;
        if self.seen == 1 || rng.gen_range(0..self.seen) == 0 {
            self.item = Some(item);
        }
    }

    /// Deterministic variant driven by an externally supplied uniform draw
    /// in `[0,1)` — this is exactly the switch-side rule `g(p, i) < 1/i`
    /// from the paper, with `u = g(p, i)`.
    pub fn observe_with_draw(&mut self, item: T, u: f64) {
        self.seen += 1;
        if u < 1.0 / self.seen as f64 {
            self.item = Some(item);
        }
    }

    /// The surviving item, if any.
    pub fn item(&self) -> Option<&T> {
        self.item.as_ref()
    }

    /// Number of observations.
    pub fn seen(&self) -> u64 {
        self.seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn reservoir_is_uniform() {
        // chi-squared style check: each of 10 items retained ~equally often.
        let mut counts = [0u32; 10];
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..20_000 {
            let mut r = ReservoirSampler::new(1);
            for v in 0..10 {
                r.observe(v, &mut rng);
            }
            counts[r.items()[0] as usize] += 1;
        }
        for &c in &counts {
            // Expected 2000 each; allow ±15%.
            assert!((1700..=2300).contains(&c), "non-uniform: {counts:?}");
        }
    }

    #[test]
    fn reservoir_k_subset_uniform_membership() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut hits = [0u32; 20];
        for _ in 0..10_000 {
            let mut r = ReservoirSampler::new(5);
            for v in 0..20usize {
                r.observe(v, &mut rng);
            }
            for &v in r.items() {
                hits[v] += 1;
            }
        }
        // Each element should appear with probability 5/20 = 0.25.
        for &h in &hits {
            assert!((2100..=2900).contains(&h), "membership skewed: {hits:?}");
        }
    }

    #[test]
    fn fills_before_sampling() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut r = ReservoirSampler::new(8);
        for v in 0..5 {
            r.observe(v, &mut rng);
        }
        assert_eq!(r.len(), 5);
        let mut got: Vec<_> = r.items().to_vec();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn single_reservoir_uniform_with_hash_draws() {
        // Drive the single reservoir with pseudo-random unit draws the way
        // PINT switches do, and check uniformity over a k=25 path.
        use rand::Rng;
        let mut rng = SmallRng::seed_from_u64(3);
        let k = 25;
        let mut counts = vec![0u32; k];
        for _ in 0..50_000 {
            let mut r = SingleReservoir::new();
            for hop in 0..k {
                r.observe_with_draw(hop, rng.gen::<f64>());
            }
            counts[*r.item().unwrap()] += 1;
        }
        let expect = 50_000.0 / k as f64; // 2000
        for &c in &counts {
            assert!(
                (c as f64 - expect).abs() < expect * 0.15,
                "hop sampling non-uniform: {counts:?}"
            );
        }
    }

    #[test]
    fn empty_single_reservoir() {
        let r: SingleReservoir<u32> = SingleReservoir::new();
        assert!(r.item().is_none());
        assert_eq!(r.seen(), 0);
    }
}
