//! Sliding-window quantile estimation via chunked KLL sketches.
//!
//! The paper notes (§4.1) that the Recording Module "can use a
//! sliding-window sketch (e.g., \[5, 11, 13\]) to reflect only the most recent
//! measurements". This module implements the standard chunking reduction: the
//! window of the last `W` items is covered by a ring of `B` sub-sketches,
//! each summarizing `W/B` consecutive items; queries merge the live chunks.
//! The window is honoured to within one chunk (`W/B` items).

use crate::kll::KllSketch;

/// A sliding-window quantile sketch over the last `window` items.
#[derive(Debug, Clone)]
pub struct SlidingKll {
    chunks: Vec<KllSketch>,
    /// Index of the chunk currently being filled.
    head: usize,
    /// Items inserted into the head chunk so far.
    head_count: u64,
    /// Items per chunk.
    chunk_size: u64,
    /// Number of full chunks covering the window.
    buckets: usize,
    /// Effective window size (a multiple of the chunk size).
    window: u64,
    k: usize,
}

impl SlidingKll {
    /// Creates a sliding sketch covering the last `window` items using
    /// `buckets` sub-sketches of accuracy `k`.
    pub fn new(window: u64, buckets: usize, k: usize) -> Self {
        assert!(buckets >= 2, "need at least 2 buckets");
        assert!(window >= buckets as u64, "window smaller than bucket count");
        let chunk_size = window / buckets as u64;
        Self {
            chunks: vec![KllSketch::new(k)],
            head: 0,
            head_count: 0,
            chunk_size,
            buckets,
            window: chunk_size * buckets as u64,
            k,
        }
    }

    /// Number of sub-sketches retained: `buckets` full chunks plus the one
    /// being filled, so the merged view always covers ≥ `window` items.
    fn max_chunks(&self) -> usize {
        self.buckets + 1
    }

    /// The effective window size in items.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Inserts a value.
    pub fn update(&mut self, v: u64) {
        if self.head_count >= self.chunk_size {
            // Seal the head chunk and start a new one, evicting the oldest
            // if the ring is full.
            self.head = (self.head + 1) % self.max_chunks();
            if self.head < self.chunks.len() {
                self.chunks[self.head] = KllSketch::new(self.k);
            } else {
                self.chunks.push(KllSketch::new(self.k));
            }
            self.head_count = 0;
        }
        self.chunks[self.head].update(v);
        self.head_count += 1;
    }

    /// Estimated ϕ-quantile over (approximately) the last `window` items.
    pub fn quantile(&self, phi: f64) -> Option<u64> {
        let mut merged: Option<KllSketch> = None;
        for c in &self.chunks {
            if c.is_empty() {
                continue;
            }
            match &mut merged {
                None => merged = Some(c.clone()),
                Some(m) => m.merge(c),
            }
        }
        merged.and_then(|m| m.quantile(phi))
    }

    /// Total items currently summarized (≤ window + one chunk).
    pub fn covered_items(&self) -> u64 {
        self.chunks.iter().map(|c| c.count()).sum()
    }

    /// Items physically retained across the chunk sketches — the memory
    /// footprint, as opposed to [`covered_items`](Self::covered_items)
    /// which counts the (much larger) summarized stream span.
    pub fn stored_items(&self) -> usize {
        self.chunks.iter().map(|c| c.stored_items()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_recent_distribution() {
        // First 50k items are small, last 50k are large: a window covering
        // only the recent items must report a large median.
        let mut s = SlidingKll::new(10_000, 10, 128);
        for _ in 0..50_000 {
            s.update(10);
        }
        for _ in 0..50_000 {
            s.update(1_000_000);
        }
        let med = s.quantile(0.5).unwrap();
        assert_eq!(med, 1_000_000, "old items leaked into the window");
    }

    #[test]
    fn window_coverage_bounded() {
        let mut s = SlidingKll::new(10_000, 10, 64);
        for v in 0..100_000u64 {
            s.update(v);
        }
        let covered = s.covered_items();
        assert!(covered >= 9_000, "covers too little: {covered}");
        assert!(covered <= 12_000, "covers too much: {covered}");
    }

    #[test]
    fn quantile_accuracy_within_window() {
        let mut s = SlidingKll::new(20_000, 10, 256);
        // Uniform 0..20000 repeated; the window always holds ~uniform data.
        for round in 0..5 {
            for v in 0..20_000u64 {
                s.update((v * 7919 + round) % 20_000);
            }
        }
        let med = s.quantile(0.5).unwrap();
        assert!((med as i64 - 10_000).unsigned_abs() < 1_500, "median {med}");
    }

    #[test]
    fn empty_window() {
        let s = SlidingKll::new(1000, 4, 32);
        assert!(s.quantile(0.5).is_none());
    }
}
