//! The KLL streaming quantile sketch (Karnin, Lang, Liberty — FOCS 2016).
//!
//! PINT's Recording Module uses a KLL sketch per (flow, hop) pair to bound
//! the per-flow storage while answering quantile queries over the sampled
//! latency substream (paper §4.1, §6.2, Theorem 1). The sketch answers any
//! ϕ-quantile to within ε·n rank error using `O(ε⁻¹)` stored items.
//!
//! This is a self-contained implementation of the standard compactor-based
//! design: a tower of buffers ("compactors") where level `h` holds items of
//! weight `2^h`. When the sketch exceeds its capacity the lowest over-full
//! level is sorted and every other element (random offset) is promoted one
//! level up, halving the stored item count at that level.

/// Capacity decay rate between compactor levels (the `c` parameter of the
/// KLL paper; 2/3 is the value used in the authors' reference code).
const DECAY: f64 = 2.0 / 3.0;
/// Minimum capacity of any compactor.
const MIN_CAP: usize = 2;
/// Upper bound on compactor levels: level `h` items weigh `2^h`, so 64
/// levels already exhaust a `u64` weight. Also caps what
/// [`KllSketch::from_parts`] accepts from untrusted input.
const MAX_LEVELS: usize = 64;

/// A KLL quantile sketch over `u64` values.
///
/// ```
/// use pint_sketches::KllSketch;
/// let mut sk = KllSketch::new(200);
/// for v in 0..10_000u64 {
///     sk.update(v);
/// }
/// let med = sk.quantile(0.5).unwrap();
/// assert!((med as i64 - 5_000).unsigned_abs() < 500);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KllSketch {
    /// Accuracy parameter: the top compactor holds up to `k` items.
    k: usize,
    /// `compactors[h]` holds items of weight `2^h`.
    compactors: Vec<Vec<u64>>,
    /// Total items currently stored across all compactors.
    size: usize,
    /// Total capacity across all compactors; exceeded ⇒ compress.
    max_size: usize,
    /// Stream length observed so far.
    n: u64,
    /// Compaction coin state: a splitmix64 counter advanced once per
    /// coin flip. Explicit (not an opaque RNG) so the sketch is fully
    /// serializable — `pint-wire` round-trips it and a decoded sketch
    /// behaves *identically* to the original, coin flips included.
    coin: u64,
}

impl KllSketch {
    /// Creates a sketch with accuracy parameter `k` (rank error ≈ O(1/k))
    /// and a fixed default seed.
    pub fn new(k: usize) -> Self {
        Self::with_seed(k, 0x9e37_79b9_7f4a_7c15)
    }

    /// Creates a sketch with an explicit RNG seed (compaction coin flips).
    pub fn with_seed(k: usize, seed: u64) -> Self {
        assert!(k >= MIN_CAP, "KLL k must be at least {MIN_CAP}");
        let mut s = Self {
            k,
            compactors: Vec::new(),
            size: 0,
            max_size: 0,
            n: 0,
            coin: seed,
        };
        s.grow();
        s
    }

    /// One compaction coin flip: advance the splitmix64 counter and take
    /// the mixed output's low bit.
    #[inline]
    fn flip(&mut self) -> bool {
        self.coin = self.coin.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.coin;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) & 1 == 1
    }

    /// Creates a sketch whose in-memory footprint is approximately
    /// `bytes` when each stored item occupies `item_bytes` bytes.
    ///
    /// This mirrors the paper's Fig. 9 x-axis ("Sketch Size \[Bytes\]"): a
    /// `b`-bit PINT digest occupies `b/8` bytes, so a 100-byte sketch with
    /// `b = 8` keeps roughly 100 digests.
    pub fn with_byte_budget(bytes: usize, item_bytes: usize) -> Self {
        Self::with_item_budget((bytes / item_bytes.max(1)).max(MIN_CAP * 3))
    }

    /// Creates a sketch retaining at most ≈ `items` stored values (for
    /// sub-byte digests: a 100-byte budget at `b = 4` bits holds 200).
    pub fn with_item_budget(items: usize) -> Self {
        // Total capacity of a KLL tower with top-capacity k is ~ k / (1 - c)
        // = 3k, so pick k ≈ items / 3.
        Self::new((items / 3).max(MIN_CAP))
    }

    fn capacity_of(&self, h: usize) -> usize {
        let depth = self.compactors.len() - h - 1;
        let cap = (self.k as f64) * DECAY.powi(depth as i32);
        (cap.ceil() as usize).max(MIN_CAP)
    }

    fn grow(&mut self) {
        self.compactors.push(Vec::new());
        self.max_size = (0..self.compactors.len())
            .map(|h| self.capacity_of(h))
            .sum();
    }

    /// Inserts a value into the sketch.
    pub fn update(&mut self, v: u64) {
        self.compactors[0].push(v);
        self.size += 1;
        self.n += 1;
        if self.size >= self.max_size {
            self.compress();
        }
    }

    /// Inserts a value with multiplicity `weight`, in O(log weight):
    /// `weight` is decomposed into powers of two and one copy of `v` is
    /// placed in the compactor of each matching level (level `h` items
    /// carry weight `2^h`). Equivalent in expectation to calling
    /// [`update`](Self::update) `weight` times.
    pub fn update_weighted(&mut self, v: u64, weight: u64) {
        if weight == 0 {
            return;
        }
        let mut remaining = weight;
        while remaining > 0 {
            let h = 63 - remaining.leading_zeros() as usize;
            while self.compactors.len() <= h {
                self.grow();
            }
            self.compactors[h].push(v);
            self.size += 1;
            remaining -= 1u64 << h;
        }
        self.n += weight;
        self.compress_to_fit();
    }

    /// Compacts until the tower fits its capacity (or compaction stops
    /// making progress).
    fn compress_to_fit(&mut self) {
        while self.size >= self.max_size {
            let before = self.size;
            self.compress();
            if self.size == before {
                break;
            }
        }
    }

    fn compress(&mut self) {
        for h in 0..self.compactors.len() {
            if self.compactors[h].len() >= self.capacity_of(h) {
                if h + 1 >= self.compactors.len() {
                    self.grow();
                }
                // In place: sort, promote every other item upward, keep
                // the level's buffer (small sketches compact every few
                // updates — a scratch allocation here would dominate the
                // ingest hot path).
                let offset = usize::from(self.flip());
                let (lower, upper) = self.compactors.split_at_mut(h + 1);
                let items = &mut lower[h];
                items.sort_unstable();
                let len = items.len();
                let next = &mut upper[0];
                let mut i = offset;
                while i < len {
                    next.push(items[i]);
                    i += 2;
                }
                let promoted = (len - offset).div_ceil(2);
                self.size -= len;
                self.size += promoted;
                items.clear();
                // Compacting one level suffices to fall under max_size;
                // matching the reference implementation we stop here.
                break;
            }
        }
    }

    /// Number of items observed (the stream length `n`).
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Returns `true` if no item was ever inserted.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of items currently retained.
    pub fn stored_items(&self) -> usize {
        self.size
    }

    /// Approximate memory footprint assuming `item_bytes` bytes per item.
    pub fn size_in_bytes(&self, item_bytes: usize) -> usize {
        self.size * item_bytes
    }

    /// Returns all (value, weight) pairs currently held.
    fn weighted_items(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::with_capacity(self.size);
        for (h, c) in self.compactors.iter().enumerate() {
            let w = 1u64 << h;
            out.extend(c.iter().map(|&v| (v, w)));
        }
        out
    }

    /// Estimates the rank (number of stream items `< v`).
    pub fn rank(&self, v: u64) -> u64 {
        self.weighted_items()
            .iter()
            .filter(|&&(x, _)| x < v)
            .map(|&(_, w)| w)
            .sum()
    }

    /// Estimates the ϕ-quantile (ϕ ∈ \[0, 1\]) of the stream.
    ///
    /// Returns `None` on an empty sketch.
    pub fn quantile(&self, phi: f64) -> Option<u64> {
        if self.n == 0 {
            return None;
        }
        let phi = phi.clamp(0.0, 1.0);
        let mut items = self.weighted_items();
        items.sort_unstable_by_key(|&(v, _)| v);
        let total: u64 = items.iter().map(|&(_, w)| w).sum();
        let target = (phi * total as f64).ceil() as u64;
        let mut cum = 0u64;
        for &(v, w) in &items {
            cum += w;
            if cum >= target {
                return Some(v);
            }
        }
        items.last().map(|&(v, _)| v)
    }

    /// Merges another sketch into this one (levelwise concatenation
    /// followed by compaction).
    pub fn merge(&mut self, other: &KllSketch) {
        while self.compactors.len() < other.compactors.len() {
            self.grow();
        }
        for (h, c) in other.compactors.iter().enumerate() {
            self.compactors[h].extend_from_slice(c);
            self.size += c.len();
        }
        self.n += other.n;
        self.compress_to_fit();
    }

    // ---- serialization hooks (used by `pint-wire`) ----------------------

    /// The accuracy parameter `k` the sketch was built with.
    pub fn accuracy_k(&self) -> usize {
        self.k
    }

    /// The compaction coin state (see [`from_parts`](Self::from_parts)).
    pub fn coin_state(&self) -> u64 {
        self.coin
    }

    /// The compactor levels, bottom (weight 1) first. Level `h` holds
    /// items of weight `2^h`; items within a level are in insertion
    /// order. Together with [`accuracy_k`](Self::accuracy_k),
    /// [`coin_state`](Self::coin_state), and [`count`](Self::count) this
    /// is the sketch's complete state.
    pub fn levels(&self) -> impl ExactSizeIterator<Item = &[u64]> {
        self.compactors.iter().map(Vec::as_slice)
    }

    /// Rebuilds a sketch from serialized state — the exact inverse of
    /// reading [`levels`](Self::levels)/[`coin_state`](Self::coin_state):
    /// the result is `==` to the original and makes the same compaction
    /// decisions from here on.
    ///
    /// Validates untrusted input instead of panicking: `k` below the
    /// implementation minimum, more than 64 levels (a `u64` cannot weight
    /// level 64), a stored-item weight total overflowing `u64` (which
    /// would make [`quantile`](Self::quantile) panic in debug builds), or
    /// stored items without a stream (`n == 0` yet items present, and
    /// vice versa) are rejected with a static description.
    pub fn from_parts(
        k: usize,
        coin: u64,
        n: u64,
        levels: Vec<Vec<u64>>,
    ) -> Result<Self, &'static str> {
        if k < MIN_CAP {
            return Err("KLL accuracy parameter below minimum");
        }
        if levels.len() > MAX_LEVELS {
            return Err("too many KLL compactor levels");
        }
        let mut total_weight = 0u64;
        let mut size = 0usize;
        for (h, level) in levels.iter().enumerate() {
            let per_item = 1u64 << h;
            let level_weight = per_item
                .checked_mul(level.len() as u64)
                .ok_or("KLL level weight overflows u64")?;
            total_weight = total_weight
                .checked_add(level_weight)
                .ok_or("KLL total weight overflows u64")?;
            size += level.len();
        }
        if (n == 0) != (size == 0) {
            return Err("KLL stream length inconsistent with stored items");
        }
        let mut s = Self {
            k,
            compactors: levels,
            size,
            max_size: 0,
            n,
            coin,
        };
        if s.compactors.is_empty() {
            s.grow();
        } else {
            // Recompute the capacity sum for the level count as-is; do
            // NOT compact here — decode must preserve state exactly.
            s.max_size = (0..s.compactors.len()).map(|h| s.capacity_of(h)).sum();
        }
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};

    fn rank_error(sk: &KllSketch, sorted: &[u64], phi: f64) -> f64 {
        let est = sk.quantile(phi).unwrap();
        // True rank of the estimate within the sorted data.
        let rank = sorted.partition_point(|&x| x <= est);
        (rank as f64 / sorted.len() as f64 - phi).abs()
    }

    #[test]
    fn empty_sketch_has_no_quantile() {
        let sk = KllSketch::new(64);
        assert!(sk.quantile(0.5).is_none());
        assert!(sk.is_empty());
    }

    #[test]
    fn single_item() {
        let mut sk = KllSketch::new(64);
        sk.update(42);
        assert_eq!(sk.quantile(0.0), Some(42));
        assert_eq!(sk.quantile(0.5), Some(42));
        assert_eq!(sk.quantile(1.0), Some(42));
    }

    #[test]
    fn exact_below_capacity() {
        // While the stream fits in the bottom compactor the answer is exact.
        let mut sk = KllSketch::new(512);
        for v in 0..100u64 {
            sk.update(v);
        }
        // Nearest-rank: the ⌈0.5·100⌉ = 50th smallest item is 49.
        assert_eq!(sk.quantile(0.5), Some(49));
    }

    #[test]
    fn uniform_stream_accuracy() {
        let mut sk = KllSketch::with_seed(200, 7);
        let mut data: Vec<u64> = (0..100_000).collect();
        data.shuffle(&mut SmallRng::seed_from_u64(3));
        for &v in &data {
            sk.update(v);
        }
        let mut sorted = data.clone();
        sorted.sort_unstable();
        for phi in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            assert!(
                rank_error(&sk, &sorted, phi) < 0.03,
                "phi={phi} error too large"
            );
        }
    }

    #[test]
    fn skewed_stream_accuracy() {
        // Heavy-tailed stream: mostly small with rare huge values — the
        // regime of switch hop latencies.
        let mut rng = SmallRng::seed_from_u64(11);
        let mut sk = KllSketch::with_seed(200, 5);
        let mut data = Vec::new();
        for _ in 0..50_000 {
            let v = if rng.gen_bool(0.01) {
                rng.gen_range(100_000..1_000_000u64)
            } else {
                rng.gen_range(0..1_000u64)
            };
            sk.update(v);
            data.push(v);
        }
        data.sort_unstable();
        for phi in [0.5, 0.9, 0.99] {
            assert!(rank_error(&sk, &data, phi) < 0.03, "phi={phi}");
        }
    }

    #[test]
    fn space_is_bounded() {
        let mut sk = KllSketch::new(100);
        for v in 0..1_000_000u64 {
            sk.update(v);
        }
        // Capacity of the tower is ~3k; allow slack for the transient.
        assert!(sk.stored_items() < 400, "stored {}", sk.stored_items());
    }

    #[test]
    fn merge_matches_combined_stream() {
        let mut a = KllSketch::with_seed(200, 1);
        let mut b = KllSketch::with_seed(200, 2);
        let mut all = Vec::new();
        for v in 0..20_000u64 {
            a.update(v);
            all.push(v);
        }
        for v in 20_000..60_000u64 {
            b.update(v * 3);
            all.push(v * 3);
        }
        a.merge(&b);
        assert_eq!(a.count(), 60_000);
        all.sort_unstable();
        for phi in [0.25, 0.5, 0.9] {
            assert!(rank_error(&a, &all, phi) < 0.04, "phi={phi}");
        }
    }

    #[test]
    fn byte_budget_controls_size() {
        let mut small = KllSketch::with_byte_budget(100, 1);
        let mut big = KllSketch::with_byte_budget(300, 1);
        for v in 0..100_000u64 {
            small.update(v);
            big.update(v);
        }
        assert!(small.stored_items() <= 150);
        assert!(big.stored_items() <= 450);
        assert!(small.stored_items() < big.stored_items());
    }

    #[test]
    fn weighted_update_matches_repetition() {
        let mut rep = KllSketch::with_seed(200, 21);
        let mut wtd = KllSketch::with_seed(200, 21);
        let mut rng = SmallRng::seed_from_u64(8);
        for _ in 0..500 {
            let v = rng.gen_range(0..1_000_000u64);
            let w = rng.gen_range(1..400u64);
            for _ in 0..w {
                rep.update(v);
            }
            wtd.update_weighted(v, w);
        }
        assert_eq!(rep.count(), wtd.count());
        for phi in [0.1, 0.5, 0.9] {
            let a = rep.quantile(phi).unwrap() as f64;
            let b = wtd.quantile(phi).unwrap() as f64;
            let spread = 1_000_000.0;
            assert!(
                (a - b).abs() / spread < 0.05,
                "phi={phi}: repeated {a} vs weighted {b}"
            );
        }
        // Weighted inserts stay within the usual space bound.
        assert!(wtd.stored_items() < 900, "stored {}", wtd.stored_items());
    }

    #[test]
    fn weighted_update_zero_is_noop() {
        let mut sk = KllSketch::new(64);
        sk.update_weighted(5, 0);
        assert!(sk.is_empty());
        sk.update_weighted(5, 1);
        assert_eq!(sk.count(), 1);
        assert_eq!(sk.quantile(0.5), Some(5));
    }

    #[test]
    fn parts_round_trip_is_exact_including_future_updates() {
        let mut sk = KllSketch::with_seed(64, 42);
        for v in 0..10_000u64 {
            sk.update(v * 17 % 4_096);
        }
        let levels: Vec<Vec<u64>> = sk.levels().map(<[u64]>::to_vec).collect();
        let mut rebuilt =
            KllSketch::from_parts(sk.accuracy_k(), sk.coin_state(), sk.count(), levels).unwrap();
        assert_eq!(sk, rebuilt, "reconstruction is bit-exact");
        // Same future behavior: identical coin flips ⇒ identical state
        // after identical updates.
        for v in 0..5_000u64 {
            sk.update(v);
            rebuilt.update(v);
        }
        assert_eq!(sk, rebuilt, "future compactions identical");
    }

    #[test]
    fn from_parts_rejects_malformed_state() {
        assert!(KllSketch::from_parts(1, 0, 0, Vec::new()).is_err(), "k");
        assert!(
            KllSketch::from_parts(8, 0, 0, vec![Vec::new(); 65]).is_err(),
            "level count"
        );
        assert!(
            KllSketch::from_parts(8, 0, 0, vec![vec![1, 2, 3]]).is_err(),
            "items without stream length"
        );
        assert!(
            KllSketch::from_parts(8, 0, 9, vec![Vec::new()]).is_err(),
            "stream length without items"
        );
        // 2^63-weighted items overflowing the total weight.
        let mut levels = vec![Vec::new(); 64];
        levels[63] = vec![0; 3];
        assert!(
            KllSketch::from_parts(8, 0, u64::MAX, levels).is_err(),
            "weight overflow"
        );
        // An empty, never-updated sketch round-trips too.
        let empty = KllSketch::from_parts(8, 7, 0, Vec::new()).unwrap();
        assert!(empty.is_empty());
        assert_eq!(empty.quantile(0.5), None);
    }

    #[test]
    fn monotone_quantiles() {
        let mut sk = KllSketch::with_seed(64, 9);
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..10_000 {
            sk.update(rng.gen_range(0..1_000_000));
        }
        let mut prev = 0;
        for i in 0..=20 {
            let q = sk.quantile(i as f64 / 20.0).unwrap();
            assert!(q >= prev, "quantiles must be monotone");
            prev = q;
        }
    }
}
