//! Morris' approximate counter (CACM 1978).
//!
//! The paper's "randomized counting" value approximation (§4.3) cites Morris
//! \[55\]: a counter that represents counts up to `n` in `O(log log n)` bits by
//! incrementing a small register probabilistically. PINT uses this idea to
//! sum or count per-hop events (e.g. number of high-latency hops) within a
//! tiny per-packet bit budget.

use rand::Rng;

/// A Morris counter with adjustable accuracy base.
///
/// The register `c` represents an estimated count of `(a^c - 1) / (a - 1)`
/// where `a = 1 + 1/scale`. Larger `scale` trades bits for accuracy: the
/// standard-error of the estimate is roughly `1/sqrt(2·scale)`.
#[derive(Debug, Clone)]
pub struct MorrisCounter {
    /// The small register (the only state that would ride on a packet).
    c: u32,
    /// Accuracy parameter; `a = 1 + 1/scale`.
    scale: f64,
}

impl MorrisCounter {
    /// Creates a counter with accuracy parameter `scale ≥ 1`
    /// (`scale = 1` is the classic base-2 Morris counter).
    pub fn new(scale: f64) -> Self {
        assert!(scale >= 1.0, "scale must be ≥ 1");
        Self { c: 0, scale }
    }

    /// Base of the counter, `a = 1 + 1/scale`.
    pub fn base(&self) -> f64 {
        1.0 + 1.0 / self.scale
    }

    /// Probabilistically increments the register: with probability `a^-c`.
    pub fn increment<R: Rng>(&mut self, rng: &mut R) {
        let p = self.base().powi(-(self.c as i32));
        if rng.gen::<f64>() < p {
            self.c += 1;
        }
    }

    /// Adds `n` increments.
    pub fn increment_by<R: Rng>(&mut self, n: u64, rng: &mut R) {
        for _ in 0..n {
            self.increment(rng);
        }
    }

    /// Unbiased estimate of the number of increments observed.
    pub fn estimate(&self) -> f64 {
        let a = self.base();
        (a.powi(self.c as i32) - 1.0) / (a - 1.0)
    }

    /// The raw register value.
    pub fn register(&self) -> u32 {
        self.c
    }

    /// Overwrites the register (used when the counter value is decoded from
    /// a packet digest).
    pub fn set_register(&mut self, c: u32) {
        self.c = c;
    }

    /// Number of bits needed to store the register for counts up to `n`.
    ///
    /// This is the paper's `O(log ε⁻¹ + log log(…))` bit bound in concrete
    /// form: the register never exceeds `log_a(n·(a-1) + 1)`.
    pub fn bits_for(scale: f64, n: u64) -> u32 {
        let a = 1.0 + 1.0 / scale;
        let max_c = ((n as f64) * (a - 1.0) + 1.0).log(a).ceil().max(1.0);
        (max_c.log2().ceil() as u32).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn zero_initially() {
        let m = MorrisCounter::new(8.0);
        assert_eq!(m.estimate(), 0.0);
        assert_eq!(m.register(), 0);
    }

    #[test]
    fn estimate_unbiased_mean() {
        // Average over many independent counters should be close to n.
        let n = 1000u64;
        let trials = 400;
        let mut rng = SmallRng::seed_from_u64(17);
        let mut sum = 0.0;
        for _ in 0..trials {
            let mut m = MorrisCounter::new(16.0);
            m.increment_by(n, &mut rng);
            sum += m.estimate();
        }
        let mean = sum / trials as f64;
        assert!(
            (mean - n as f64).abs() < n as f64 * 0.05,
            "mean {mean} far from {n}"
        );
    }

    #[test]
    fn higher_scale_is_more_accurate() {
        let n = 5000u64;
        let trials = 300;
        let err = |scale: f64, seed: u64| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut se = 0.0;
            for _ in 0..trials {
                let mut m = MorrisCounter::new(scale);
                m.increment_by(n, &mut rng);
                let e = (m.estimate() - n as f64) / n as f64;
                se += e * e;
            }
            (se / trials as f64).sqrt()
        };
        let coarse = err(1.0, 5);
        let fine = err(32.0, 5);
        assert!(
            fine < coarse / 2.0,
            "scale 32 ({fine}) not better than scale 1 ({coarse})"
        );
    }

    #[test]
    fn register_is_small() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut m = MorrisCounter::new(1.0);
        m.increment_by(1_000_000, &mut rng);
        // Base-2 Morris: register ≈ log2(n) ≈ 20.
        assert!(m.register() < 32, "register {}", m.register());
        assert!(MorrisCounter::bits_for(1.0, 1_000_000) <= 6);
    }

    #[test]
    fn bits_bound_is_monotone_in_scale() {
        let b1 = MorrisCounter::bits_for(1.0, 1 << 30);
        let b16 = MorrisCounter::bits_for(16.0, 1 << 30);
        assert!(b16 >= b1);
    }

    #[test]
    fn set_register_roundtrip() {
        let mut m = MorrisCounter::new(4.0);
        m.set_register(10);
        let a: f64 = 1.25;
        let expect = (a.powi(10) - 1.0) / 0.25;
        assert!((m.estimate() - expect).abs() < 1e-9);
    }
}
