//! Streaming sketches used by the PINT telemetry framework.
//!
//! The PINT paper (SIGCOMM 2020) relies on a handful of classic streaming
//! data structures for its Recording and Inference modules:
//!
//! * [`KllSketch`] — the KLL quantile sketch of Karnin, Lang and Liberty
//!   (FOCS 2016), used by the Recording Module to summarize sampled per-hop
//!   latency streams with bounded space (`PINT_S` in §6.2 / Fig. 9).
//! * [`SpaceSaving`] — the Space-Saving heavy-hitters algorithm of Metwally
//!   et al. (ICDT 2005), used for the "frequent values" dynamic aggregation
//!   (Theorem 2 / Appendix A.1).
//! * [`ReservoirSampler`] — classic reservoir sampling (Vitter 1985), the
//!   conceptual basis of PINT's distributed hash-based sampling (§4.1).
//! * [`MorrisCounter`] — Morris' randomized counter (CACM 1978), the
//!   "randomized counting" value-approximation of §4.3.
//! * [`SlidingKll`] — a sliding-window quantile estimator built from chunked
//!   KLL sketches, reflecting the paper's note that "we can use a
//!   sliding-window sketch to reflect only the most recent measurements".
//! * [`ExactQuantiles`] — an exact (store-everything) baseline used by tests
//!   and by the evaluation harness to compute ground-truth quantiles.
//!
//! All structures are deterministic given an explicit seed, which the
//! reproduction harness relies on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exact;
pub mod kll;
pub mod morris;
pub mod reservoir;
pub mod sliding;
pub mod spacesaving;

pub use exact::ExactQuantiles;
pub use kll::KllSketch;
pub use morris::MorrisCounter;
pub use reservoir::{ReservoirSampler, SingleReservoir};
pub use sliding::SlidingKll;
pub use spacesaving::SpaceSaving;
