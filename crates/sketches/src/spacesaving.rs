//! The Space-Saving heavy-hitters algorithm (Metwally, Agrawal, El Abbadi —
//! ICDT 2005).
//!
//! PINT's frequent-values dynamic aggregation (Theorem 2, Appendix A.1) uses
//! Space-Saving to estimate the frequency of each value in the sampled
//! per-hop substream to within an additive `ε·n` using `O(ε⁻¹)` counters.

use std::collections::HashMap;

/// A Space-Saving summary with a fixed number of counters.
///
/// Every estimate overshoots the true count by at most `n / capacity`,
/// where `n` is the stream length.
///
/// ```
/// use pint_sketches::SpaceSaving;
/// let mut ss = SpaceSaving::new(8);
/// for _ in 0..90 { ss.update(7); }
/// for v in 0..10u64 { ss.update(v); }
/// // 7 is a 90% heavy hitter.
/// let hh = ss.heavy_hitters(0.5);
/// assert_eq!(hh[0].0, 7);
/// ```
#[derive(Debug, Clone)]
pub struct SpaceSaving {
    /// value → (count, overestimation error at insertion time)
    counters: HashMap<u64, (u64, u64)>,
    capacity: usize,
    n: u64,
}

impl SpaceSaving {
    /// Creates a summary holding at most `capacity` counters
    /// (use `capacity = ceil(1/ε)` for an additive ε·n error guarantee).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            counters: HashMap::with_capacity(capacity + 1),
            capacity,
            n: 0,
        }
    }

    /// Observes one occurrence of `v`.
    pub fn update(&mut self, v: u64) {
        self.update_by(v, 1);
    }

    /// Observes `w` occurrences of `v`.
    pub fn update_by(&mut self, v: u64, w: u64) {
        self.n += w;
        if let Some(e) = self.counters.get_mut(&v) {
            e.0 += w;
            return;
        }
        if self.counters.len() < self.capacity {
            self.counters.insert(v, (w, 0));
            return;
        }
        // Evict the minimum-count entry; the newcomer inherits its count
        // as overestimation error.
        let (&min_v, &(min_c, _)) = self
            .counters
            .iter()
            .min_by_key(|(_, &(c, _))| c)
            .expect("capacity > 0");
        self.counters.remove(&min_v);
        self.counters.insert(v, (min_c + w, min_c));
    }

    /// Stream length observed so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Upper-bound estimate of the number of occurrences of `v`.
    pub fn estimate(&self, v: u64) -> u64 {
        self.counters.get(&v).map_or(0, |&(c, _)| c)
    }

    /// Guaranteed lower bound on the number of occurrences of `v`.
    pub fn lower_bound(&self, v: u64) -> u64 {
        self.counters.get(&v).map_or(0, |&(c, e)| c - e)
    }

    /// Returns the values whose estimated frequency is at least
    /// `theta`-fraction of the stream, sorted by decreasing estimate.
    pub fn heavy_hitters(&self, theta: f64) -> Vec<(u64, u64)> {
        let thresh = (theta * self.n as f64).ceil() as u64;
        let mut out: Vec<(u64, u64)> = self
            .counters
            .iter()
            .filter(|(_, &(c, _))| c >= thresh.max(1))
            .map(|(&v, &(c, _))| (v, c))
            .collect();
        out.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Number of counters currently used.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// `true` if no element was observed.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn exact_when_under_capacity() {
        let mut ss = SpaceSaving::new(16);
        for v in 0..10u64 {
            for _ in 0..=v {
                ss.update(v);
            }
        }
        for v in 0..10u64 {
            assert_eq!(ss.estimate(v), v + 1);
            assert_eq!(ss.lower_bound(v), v + 1);
        }
    }

    #[test]
    fn error_bounded_by_n_over_capacity() {
        let cap = 50;
        let mut ss = SpaceSaving::new(cap);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut truth = std::collections::HashMap::new();
        for _ in 0..100_000 {
            // Zipf-ish: value v with probability ∝ 1/(v+1)
            let v = loop {
                let v = rng.gen_range(0..1000u64);
                if rng.gen::<f64>() < 1.0 / (v + 1) as f64 {
                    break v;
                }
            };
            ss.update(v);
            *truth.entry(v).or_insert(0u64) += 1;
        }
        let bound = ss.count() / cap as u64;
        for (&v, &c) in &truth {
            let est = ss.estimate(v);
            if est > 0 {
                assert!(est >= c, "estimate is an upper bound");
                assert!(est - c <= bound, "error above n/capacity");
            } else {
                // Missed values must be infrequent.
                assert!(c <= bound, "a heavy value was evicted");
            }
        }
    }

    #[test]
    fn heavy_hitters_found() {
        let mut ss = SpaceSaving::new(20);
        for _ in 0..600 {
            ss.update(1);
        }
        for _ in 0..300 {
            ss.update(2);
        }
        for v in 100..200u64 {
            ss.update(v);
        }
        let hh = ss.heavy_hitters(0.25);
        assert_eq!(hh[0].0, 1);
        assert_eq!(hh[1].0, 2);
        assert_eq!(hh.len(), 2);
    }

    #[test]
    fn weighted_updates() {
        let mut ss = SpaceSaving::new(4);
        ss.update_by(9, 100);
        ss.update(9);
        assert_eq!(ss.estimate(9), 101);
        assert_eq!(ss.count(), 101);
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut ss = SpaceSaving::new(8);
        for v in 0..1000u64 {
            ss.update(v);
        }
        assert_eq!(ss.len(), 8);
    }
}
