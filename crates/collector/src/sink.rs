//! Glue between `pint-netsim`'s sink tap and the collector.
//!
//! The simulator invokes its digest sink for every data packet arriving
//! at a destination host — the PINT sink of the paper's Fig. 3. This
//! module wires that tap into the collector two ways: directly into one
//! [`CollectorHandle`] ([`attach_collector`]), or through a
//! [`ParallelSinkDriver`] that fans the single-threaded simulator's
//! digest stream out to N producer threads
//! ([`attach_collector_parallel`]) — so a simulation exercises the
//! multi-producer ingest pipeline exactly the way N independent PINT
//! sinks would. It also provides a reusable switch-side
//! [`TelemetryHook`] running a latency-query Encoding Module so
//! simulations produce decodable digests end-to-end.

use crate::handle::{shard_of, CollectorHandle};
use crate::Collector;
use pint_core::dynamic::DynamicAggregator;
use pint_core::value::Digest;
use pint_core::DigestReport;
use pint_netsim::{DigestBatchSink, DigestSink, Packet, Simulator, SwitchView, TelemetryHook};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Installs `handle` as `sim`'s digest sink: every digest extracted at a
/// receiving host is batched and sharded into the collector. Remember to
/// keep another handle (or the collector) around for queries.
pub fn attach_collector(sim: &mut Simulator, handle: CollectorHandle) {
    sim.set_digest_sink(handle.into_digest_sink());
}

/// Spawns a [`ParallelSinkDriver`] with `producers` producer threads and
/// installs its batch tap on `sim`. Call
/// [`finish`](ParallelSinkDriver::finish) after `sim.run()` to join the
/// producers and learn how many digests they delivered.
pub fn attach_collector_parallel(
    sim: &mut Simulator,
    collector: &Collector,
    producers: usize,
) -> ParallelSinkDriver {
    let driver = ParallelSinkDriver::spawn(collector, producers, 256);
    sim.set_digest_batch_sink(256, driver.digest_batch_sink());
    driver
}

/// Depth, in chunks, of each producer thread's feed queue. Small: the
/// queue only decouples the simulator loop from ring backpressure.
const FEED_DEPTH: usize = 8;

/// Fans one digest stream out to N producer threads, each owning a
/// registered [`CollectorHandle`].
///
/// The simulator is single-threaded, so by itself it can only exercise
/// one producer. The driver routes each digest by flow hash to one of
/// `producers` worker threads (stable routing — per-flow order is
/// preserved through exactly one producer), ships chunks over short
/// bounded queues, and lets the workers push concurrently through their
/// own rings.
///
/// Lifecycle: install a sink via [`digest_sink`](Self::digest_sink) or
/// [`digest_batch_sink`](Self::digest_batch_sink) (the returned closure
/// flushes its route buffers when dropped, e.g. when `Simulator::run`
/// returns), then call [`finish`](Self::finish) to join the workers.
/// Undeliverable digests are counted in
/// [`CollectorStats::digests_dropped`](crate::CollectorStats), never
/// lost silently.
pub struct ParallelSinkDriver {
    txs: Vec<SyncSender<Vec<DigestReport>>>,
    /// Per-worker return lanes carrying drained chunk buffers back to
    /// the router, mirroring the ring layer's batch recycling. Wrapped
    /// for sharing across sink closures; contention-free in practice
    /// (`try_lock` in the ship path, one router at a time).
    rets: Vec<Arc<Mutex<Receiver<Vec<DigestReport>>>>>,
    workers: Vec<JoinHandle<u64>>,
    chunk: usize,
}

impl ParallelSinkDriver {
    /// Registers `producers` producers on `collector` and starts their
    /// worker threads; `chunk` is the routing buffer size per producer.
    pub fn spawn(collector: &Collector, producers: usize, chunk: usize) -> Self {
        assert!(producers >= 1, "need at least one producer");
        let chunk = chunk.max(1);
        let mut txs = Vec::with_capacity(producers);
        let mut rets = Vec::with_capacity(producers);
        let mut workers = Vec::with_capacity(producers);
        for p in 0..producers {
            let mut handle = collector.register_producer();
            let (tx, rx) = sync_channel::<Vec<DigestReport>>(FEED_DEPTH);
            let (ret_tx, ret_rx) = sync_channel::<Vec<DigestReport>>(FEED_DEPTH);
            let join = std::thread::Builder::new()
                .name(format!("pint-sink-{p}"))
                .spawn(move || {
                    let mut delivered = 0u64;
                    while let Ok(mut chunk) = rx.recv() {
                        for report in chunk.drain(..) {
                            // Failures (collector shut down mid-run) are
                            // counted by the handle itself.
                            if handle.push(report).is_ok() {
                                delivered += 1;
                            }
                        }
                        // Hand the drained buffer back for reuse; a full
                        // (or gone) return lane just drops it.
                        let _ = ret_tx.try_send(chunk);
                    }
                    let _ = handle.flush();
                    delivered
                })
                .expect("spawn sink producer");
            txs.push(tx);
            rets.push(Arc::new(Mutex::new(ret_rx)));
            workers.push(join);
        }
        Self {
            txs,
            rets,
            workers,
            chunk,
        }
    }

    /// Producer threads driven by this sink.
    pub fn producers(&self) -> usize {
        self.txs.len()
    }

    fn router(&self) -> Router {
        Router {
            bufs: self
                .txs
                .iter()
                .map(|_| Vec::with_capacity(self.chunk))
                .collect(),
            txs: self.txs.clone(),
            rets: self.rets.clone(),
            chunk: self.chunk,
        }
    }

    /// A per-digest sink for `Simulator::set_digest_sink`.
    pub fn digest_sink(&self) -> DigestSink {
        let mut router = self.router();
        Box::new(move |report| router.route(report))
    }

    /// A batched sink for `Simulator::set_digest_batch_sink` (fewer
    /// closure dispatches on the simulator's hot path).
    pub fn digest_batch_sink(&self) -> DigestBatchSink {
        let mut router = self.router();
        Box::new(move |reports| {
            for report in reports {
                router.route(report);
            }
        })
    }

    /// Joins the producer threads and returns how many digests they
    /// delivered. Call after every sink closure created from this driver
    /// has been dropped (e.g. after `Simulator::run` returned) — the
    /// workers run until those closures' queues close.
    pub fn finish(self) -> u64 {
        drop(self.txs);
        self.workers
            .into_iter()
            .map(|w| w.join().expect("sink producer panicked"))
            .sum()
    }
}

/// The routing state captured by a driver's sink closures: per-producer
/// chunk buffers, flushed on drop.
struct Router {
    bufs: Vec<Vec<DigestReport>>,
    txs: Vec<SyncSender<Vec<DigestReport>>>,
    rets: Vec<Arc<Mutex<Receiver<Vec<DigestReport>>>>>,
    chunk: usize,
}

impl Router {
    fn route(&mut self, report: DigestReport) {
        // Stable flow→producer routing keeps per-flow order intact.
        let p = shard_of(report.flow, self.txs.len());
        self.bufs[p].push(report);
        if self.bufs[p].len() >= self.chunk {
            self.ship(p);
        }
    }

    fn ship(&mut self, p: usize) {
        let next = self.recycled(p);
        let chunk = std::mem::replace(&mut self.bufs[p], next);
        // A gone worker means the driver is shutting down; the digests
        // of this chunk are accounted by the collector-side counters
        // when the worker's handle drops.
        let _ = self.txs[p].send(chunk);
    }

    /// A drained buffer returned by worker `p`, or a fresh allocation.
    /// `try_lock` never blocks the routing hot path: contention (a
    /// second router shipping to the same worker) just allocates.
    fn recycled(&self, p: usize) -> Vec<DigestReport> {
        if let Ok(ret) = self.rets[p].try_lock() {
            match ret.try_recv() {
                Ok(buf) => return buf,
                Err(TryRecvError::Empty | TryRecvError::Disconnected) => {}
            }
        }
        Vec::with_capacity(self.chunk)
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        for p in 0..self.bufs.len() {
            if !self.bufs[p].is_empty() {
                self.ship(p);
            }
        }
    }
}

/// A switch-side [`TelemetryHook`] running PINT's dynamic-aggregation
/// Encoding Module on hop latency: each switch compresses its observed
/// hop latency and conditionally overwrites digest lane 0 under the
/// reservoir rule. The digest reaching the sink is exactly what a
/// latency-query [`DynamicRecorder`](pint_core::dynamic::DynamicRecorder)
/// decodes.
#[derive(Debug, Clone)]
pub struct LatencyTelemetry {
    agg: DynamicAggregator,
    /// Digest bytes on the wire (PINT's constant overhead).
    digest_bytes: u32,
}

impl LatencyTelemetry {
    /// Builds the hook from the query's aggregator; wire overhead is the
    /// aggregator's bit budget rounded up to whole bytes.
    pub fn new(agg: DynamicAggregator) -> Self {
        let digest_bytes = agg.bits().div_ceil(8);
        Self { agg, digest_bytes }
    }

    /// The aggregator (shared with recorders/decoders).
    pub fn aggregator(&self) -> &DynamicAggregator {
        &self.agg
    }
}

impl TelemetryHook for LatencyTelemetry {
    fn initial_bytes(&self) -> u32 {
        self.digest_bytes
    }

    fn on_dequeue(&mut self, view: &SwitchView, pkt: &mut Packet) {
        if pkt.digest.lanes() == 0 {
            pkt.digest = Digest::new(1);
        }
        self.agg.encode_hop(
            pkt.id,
            view.hop,
            view.hop_latency_ns.max(1) as f64,
            &mut pkt.digest,
            0,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Collector, CollectorConfig};
    use pint_core::dynamic::DynamicRecorder;
    use pint_core::FlowRecorder;
    use pint_netsim::sim::SimConfig;
    use pint_netsim::topology::Topology;
    use pint_netsim::transport::reno::Reno;
    use pint_netsim::NodeKind;
    use std::sync::Arc;

    fn pair_topology() -> Topology {
        let mut topo = Topology::new("pair");
        let h0 = topo.add_node(NodeKind::Host);
        let s = topo.add_node(NodeKind::Switch);
        let h1 = topo.add_node(NodeKind::Host);
        topo.add_duplex(h0, s, 10_000_000_000, 1_000);
        topo.add_duplex(s, h1, 10_000_000_000, 1_000);
        topo
    }

    fn exact_latency_collector(agg: &DynamicAggregator, shards: usize) -> Collector {
        let rec_agg = agg.clone();
        Collector::spawn(
            CollectorConfig {
                shards,
                batch_size: 32,
                ..CollectorConfig::default()
            },
            Arc::new(move |_flow, report: &DigestReport| {
                Box::new(DynamicRecorder::new_exact(
                    rec_agg.clone(),
                    usize::from(report.path_len).max(1),
                )) as Box<dyn FlowRecorder>
            }),
        )
    }

    #[test]
    fn simulator_digests_flow_into_collector_end_to_end() {
        // host0 — switch — host1; one 500 KB flow under PINT latency
        // telemetry; the sink forwards digests into a 2-shard collector.
        let topo = pair_topology();
        let agg = DynamicAggregator::new(77, 8, 100.0, 1.0e9);
        let collector = exact_latency_collector(&agg, 2);

        let mut sim = Simulator::new(
            topo,
            SimConfig::default(),
            Box::new(|meta| Box::new(Reno::new(meta))),
            Box::new(LatencyTelemetry::new(agg.clone())),
        );
        attach_collector(&mut sim, collector.handle());
        let hosts = sim.topology().hosts();
        sim.add_flow(hosts[0], hosts[1], 500_000, 0);
        // `run` consumes the simulator; the sink closure (and its
        // handle) is dropped on return, flushing the tail batch.
        let report = sim.run();
        assert_eq!(report.finished().count(), 1, "flow must complete");
        let snap = collector.snapshot().expect("snapshot");
        assert_eq!(snap.num_flows(), 1, "one flow tracked");
        let (_, summary) = snap.flows().next().unwrap();
        assert!(
            summary.packets >= 500,
            "digests recorded: {}",
            summary.packets
        );
        // Hop 1 has latency samples; the merged quantile decodes sanely.
        let q = snap.latency_quantile(1, 0.5, &agg);
        assert!(q.is_some(), "median hop latency available");
        assert!(q.unwrap() >= 1.0);
        let stats = collector.shutdown();
        assert!(stats.ingested >= 500);
        assert_eq!(stats.active_flows, 1);
    }

    #[test]
    fn parallel_driver_feeds_n_producers_without_loss() {
        // Several flows through the parallel driver: every extracted
        // digest must reach the collector exactly once, via 3 producer
        // threads.
        let topo = pair_topology();
        let agg = DynamicAggregator::new(78, 8, 100.0, 1.0e9);
        let collector = exact_latency_collector(&agg, 4);

        let mut sim = Simulator::new(
            topo,
            SimConfig::default(),
            Box::new(|meta| Box::new(Reno::new(meta))),
            Box::new(LatencyTelemetry::new(agg.clone())),
        );
        let driver = attach_collector_parallel(&mut sim, &collector, 3);
        assert_eq!(driver.producers(), 3);
        let hosts = sim.topology().hosts();
        for i in 0..6 {
            sim.add_flow(hosts[0], hosts[1], 100_000, i * 1_000);
        }
        let report = sim.run();
        assert_eq!(report.finished().count(), 6, "all flows complete");
        let delivered = driver.finish();
        assert!(delivered >= 600, "delivered {delivered}");
        collector.barrier().expect("barrier");
        let stats = collector.stats();
        assert_eq!(stats.ingested, delivered, "no digest lost or duplicated");
        assert_eq!(stats.digests_dropped, 0);
        let snap = collector.snapshot().expect("snapshot");
        assert_eq!(snap.num_flows(), 6);
        assert_eq!(snap.total_packets(), delivered);
        collector.shutdown();
    }
}
