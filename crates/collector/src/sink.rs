//! Glue between `pint-netsim`'s sink tap and the collector.
//!
//! The simulator invokes its digest sink for every data packet arriving
//! at a destination host — the PINT sink of the paper's Fig. 3. This
//! module wires that tap into a [`CollectorHandle`], and provides a
//! reusable switch-side [`TelemetryHook`] that runs a latency-query
//! Encoding Module so simulations produce decodable digests end-to-end.

use crate::handle::CollectorHandle;
use pint_core::dynamic::DynamicAggregator;
use pint_core::value::Digest;
use pint_netsim::{Packet, Simulator, SwitchView, TelemetryHook};

/// Installs `handle` as `sim`'s digest sink: every digest extracted at a
/// receiving host is batched and sharded into the collector. Remember to
/// keep another handle (or the collector) around for queries.
pub fn attach_collector(sim: &mut Simulator, handle: CollectorHandle) {
    sim.set_digest_sink(handle.into_digest_sink());
}

/// A switch-side [`TelemetryHook`] running PINT's dynamic-aggregation
/// Encoding Module on hop latency: each switch compresses its observed
/// hop latency and conditionally overwrites digest lane 0 under the
/// reservoir rule. The digest reaching the sink is exactly what a
/// latency-query [`DynamicRecorder`](pint_core::dynamic::DynamicRecorder)
/// decodes.
#[derive(Debug, Clone)]
pub struct LatencyTelemetry {
    agg: DynamicAggregator,
    /// Digest bytes on the wire (PINT's constant overhead).
    digest_bytes: u32,
}

impl LatencyTelemetry {
    /// Builds the hook from the query's aggregator; wire overhead is the
    /// aggregator's bit budget rounded up to whole bytes.
    pub fn new(agg: DynamicAggregator) -> Self {
        let digest_bytes = agg.bits().div_ceil(8);
        Self { agg, digest_bytes }
    }

    /// The aggregator (shared with recorders/decoders).
    pub fn aggregator(&self) -> &DynamicAggregator {
        &self.agg
    }
}

impl TelemetryHook for LatencyTelemetry {
    fn initial_bytes(&self) -> u32 {
        self.digest_bytes
    }

    fn on_dequeue(&mut self, view: &SwitchView, pkt: &mut Packet) {
        if pkt.digest.lanes() == 0 {
            pkt.digest = Digest::new(1);
        }
        self.agg.encode_hop(
            pkt.id,
            view.hop,
            view.hop_latency_ns.max(1) as f64,
            &mut pkt.digest,
            0,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Collector, CollectorConfig};
    use pint_core::dynamic::DynamicRecorder;
    use pint_core::FlowRecorder;
    use pint_netsim::sim::SimConfig;
    use pint_netsim::topology::Topology;
    use pint_netsim::transport::reno::Reno;
    use pint_netsim::NodeKind;
    use std::sync::Arc;

    #[test]
    fn simulator_digests_flow_into_collector_end_to_end() {
        // host0 — switch — host1; one 500 KB flow under PINT latency
        // telemetry; the sink forwards digests into a 2-shard collector.
        let mut topo = Topology::new("pair");
        let h0 = topo.add_node(NodeKind::Host);
        let s = topo.add_node(NodeKind::Switch);
        let h1 = topo.add_node(NodeKind::Host);
        topo.add_duplex(h0, s, 10_000_000_000, 1_000);
        topo.add_duplex(s, h1, 10_000_000_000, 1_000);

        let agg = DynamicAggregator::new(77, 8, 100.0, 1.0e9);
        let rec_agg = agg.clone();
        let collector = Collector::spawn(
            CollectorConfig {
                shards: 2,
                batch_size: 32,
                ..CollectorConfig::default()
            },
            Arc::new(move |_flow, report| {
                Box::new(DynamicRecorder::new_exact(
                    rec_agg.clone(),
                    usize::from(report.path_len).max(1),
                )) as Box<dyn FlowRecorder>
            }),
        );

        let mut sim = Simulator::new(
            topo,
            SimConfig::default(),
            Box::new(|meta| Box::new(Reno::new(meta))),
            Box::new(LatencyTelemetry::new(agg)),
        );
        attach_collector(&mut sim, collector.handle());
        let hosts = sim.topology().hosts();
        sim.add_flow(hosts[0], hosts[1], 500_000, 0);
        // `run` consumes the simulator; the sink closure (and its
        // handle) is dropped on return, flushing the tail batch.
        let report = sim.run();
        assert_eq!(report.finished().count(), 1, "flow must complete");
        let snap = collector.snapshot().expect("snapshot");
        assert_eq!(snap.num_flows(), 1, "one flow tracked");
        let (_, summary) = snap.flows().next().unwrap();
        assert!(
            summary.packets >= 500,
            "digests recorded: {}",
            summary.packets
        );
        // Hop 1 has latency samples; the merged quantile decodes sanely.
        let q = snap.latency_quantile(1, 0.5, collector_agg());
        assert!(q.is_some(), "median hop latency available");
        assert!(q.unwrap() >= 1.0);
        let stats = collector.shutdown();
        assert!(stats.ingested >= 500);
        assert_eq!(stats.active_flows, 1);
    }

    fn collector_agg() -> &'static DynamicAggregator {
        use std::sync::OnceLock;
        static AGG: OnceLock<DynamicAggregator> = OnceLock::new();
        AGG.get_or_init(|| DynamicAggregator::new(77, 8, 100.0, 1.0e9))
    }
}
