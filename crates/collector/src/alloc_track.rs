//! Counting global allocator for the `measure-alloc` feature.
//!
//! Wraps the system allocator and keeps a *per-thread* net-bytes cell:
//! allocations add on the allocating thread, frees subtract on the
//! freeing thread. Shard workers both build and evict their recorders
//! on their own thread, so the worker's running net delta across
//! `apply_batch` is the allocator's view of recorder-state growth — the
//! ground truth the flow table's `state_bytes` estimate (and with it
//! byte-cap eviction) is cross-checked against.
//!
//! Feature-gated because a `#[global_allocator]` taxes every allocation
//! in the process; this is a test/diagnostic mode, never a default.

// A global allocator cannot be written without `unsafe`; this is the
// one carve-out besides the SPSC ring.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    // i64 + const init: no destructor is registered, so the cell is
    // accessible for the whole thread lifetime (including inside the
    // allocator during thread teardown) and `with` never allocates.
    static NET_BYTES: Cell<i64> = const { Cell::new(0) };
}

/// System allocator wrapper maintaining the per-thread net-bytes cell.
pub struct CountingAlloc;

// SAFETY: defers entirely to `System` for memory; bookkeeping touches
// only a non-allocating thread-local `Cell<i64>`.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            NET_BYTES.with(|c| c.set(c.get() + layout.size() as i64));
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc_zeroed(layout) };
        if !p.is_null() {
            NET_BYTES.with(|c| c.set(c.get() + layout.size() as i64));
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        NET_BYTES.with(|c| c.set(c.get() - layout.size() as i64));
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            NET_BYTES.with(|c| c.set(c.get() + new_size as i64 - layout.size() as i64));
        }
        p
    }
}

#[global_allocator]
static COUNTING_ALLOC: CountingAlloc = CountingAlloc;

/// Net bytes the calling thread has allocated minus freed since start.
///
/// Negative when a thread frees memory other threads allocated (e.g. a
/// consumer dropping producer-built batches).
pub fn thread_net_bytes() -> i64 {
    NET_BYTES.with(|c| c.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_alloc_and_free_on_this_thread() {
        let before = thread_net_bytes();
        let v: Vec<u8> = Vec::with_capacity(4096);
        let held = thread_net_bytes();
        assert!(held - before >= 4096, "allocation not counted");
        drop(v);
        // Freeing returns the bytes (other incidental allocations may
        // have moved the needle; only the Vec's 4096 are guaranteed).
        assert!(thread_net_bytes() < held);
    }
}
