//! Ingestion handles: how sinks feed digests into the collector.
//!
//! A [`CollectorHandle`] is one registered *producer*: it owns a private
//! lock-free SPSC ring to every shard (see
//! [`Collector::register_producer`](crate::Collector::register_producer)),
//! buffers digests per destination shard, and ships them as batches, so
//! ring synchronization is amortized over `batch_size` digests. Handles
//! are `Clone` — a clone registers a *sibling* producer with fresh rings
//! — so every sink thread owns its own, and producers never contend with
//! each other on the data path.
//!
//! Ordering: a flow always maps to one shard, and one handle's pushes
//! for it stay in push order — per-flow-per-producer ordering is exact.
//! Digests for one flow pushed through *different* handles interleave
//! arbitrarily (they ride different rings), so route any one flow
//! through one producer when stream order matters.

use crate::collector::ProducerRegistry;
use crate::config::FlowId;
use crate::error::CollectorError;
use crate::ring::{PushError, RingProducer};
use pint_core::DigestReport;
use std::sync::Arc;

/// Stable shard choice via `pint-core`'s splitmix64 finalizer —
/// decouples the partition from any structure in flow IDs.
#[inline]
pub(crate) fn shard_of(flow: FlowId, shards: usize) -> usize {
    (pint_core::hash::mix64(flow.wrapping_add(0x9E37_79B9_7F4A_7C15)) % shards as u64) as usize
}

/// One producer's buffering front-end to a [`Collector`](crate::Collector).
pub struct CollectorHandle {
    producers: Vec<RingProducer>,
    bufs: Vec<Vec<DigestReport>>,
    batch_size: usize,
    registry: Arc<ProducerRegistry>,
}

impl CollectorHandle {
    pub(crate) fn new(
        producers: Vec<RingProducer>,
        batch_size: usize,
        registry: Arc<ProducerRegistry>,
    ) -> Self {
        let bufs = producers
            .iter()
            .map(|_| Vec::with_capacity(batch_size))
            .collect();
        Self {
            producers,
            bufs,
            batch_size,
            registry,
        }
    }

    /// Number of shards digests fan out to.
    pub fn shards(&self) -> usize {
        self.producers.len()
    }

    /// Digests lost collector-wide because a batch could not be
    /// delivered (shard gone mid-shipment — see
    /// [`CollectorStats::digests_dropped`](crate::CollectorStats)).
    /// Shared across all handles of one collector.
    pub fn dropped_digests(&self) -> u64 {
        self.registry.dropped.get()
    }

    /// Queues one digest; ships the destination shard's batch when it
    /// reaches `batch_size`. Parks (backpressure) while that shard's
    /// ring is full. With a configured pre-filter, off-watch-list flows
    /// are dropped here (counted in `digests_prefiltered`) before any
    /// buffering.
    pub fn push(&mut self, report: DigestReport) -> Result<(), CollectorError> {
        if self.prefiltered(&report) {
            return Ok(());
        }
        let shard = shard_of(report.flow, self.producers.len());
        self.bufs[shard].push(report);
        if self.bufs[shard].len() >= self.batch_size {
            self.ship(shard)?;
        }
        Ok(())
    }

    /// True when the watch-list pre-filter rejects `report` — checked
    /// before buffering so an uninteresting flow costs two hashes, not
    /// a ring crossing and a flow-table touch.
    #[inline]
    fn prefiltered(&self, report: &DigestReport) -> bool {
        match &self.registry.prefilter {
            Some(bloom) if !bloom.may_contain(report.flow) => {
                self.registry.prefiltered.add(1);
                true
            }
            _ => false,
        }
    }

    /// Non-blocking [`push`](Self::push): if the destination shard's
    /// ring is full *and* the handle's buffer for it already holds a
    /// full batch, returns [`CollectorError::WouldBlock`] without
    /// accepting the digest — the caller chooses whether to retry,
    /// reroute, or drop. Buffering stays bounded at one batch per shard.
    pub fn try_push(&mut self, report: DigestReport) -> Result<(), CollectorError> {
        if self.prefiltered(&report) {
            return Ok(());
        }
        let shard = shard_of(report.flow, self.producers.len());
        if self.bufs[shard].len() >= self.batch_size {
            self.try_ship(shard)?;
        }
        self.bufs[shard].push(report);
        if self.bufs[shard].len() >= self.batch_size {
            // Opportunistic: a full ring is fine, the digest is buffered.
            match self.try_ship(shard) {
                Err(CollectorError::WouldBlock) => Ok(()),
                other => other,
            }
        } else {
            Ok(())
        }
    }

    /// Queues a pre-assembled batch (e.g. from an upstream aggregator).
    pub fn push_batch(
        &mut self,
        reports: impl IntoIterator<Item = DigestReport>,
    ) -> Result<(), CollectorError> {
        for r in reports {
            self.push(r)?;
        }
        Ok(())
    }

    /// Ships all partially filled buffers now (parking if rings are
    /// full). Every shard's buffer is attempted even if an earlier one
    /// fails — so after a disconnect, all undeliverable digests land in
    /// the dropped counter rather than vanishing with the buffers — and
    /// the first error is returned.
    pub fn flush(&mut self) -> Result<(), CollectorError> {
        let mut result = Ok(());
        for shard in 0..self.bufs.len() {
            if !self.bufs[shard].is_empty() {
                let shipped = self.ship(shard);
                if result.is_ok() {
                    result = shipped;
                }
            }
        }
        result
    }

    /// The next buffer for `shard`: a recycled one from the shard's
    /// reverse lane when available — the steady state, and thanks to the
    /// seed buffer registration plants in each lane, the very first ship
    /// too — else a fresh allocation (the lane ran dry, e.g. the worker
    /// fell far enough behind that ships outpaced recycles).
    fn fresh_buf(&mut self, shard: usize) -> Vec<DigestReport> {
        match self.producers[shard].take_recycled() {
            Some(buf) => {
                self.registry.recycled.inc();
                buf
            }
            None => {
                self.registry.batch_allocs.inc();
                Vec::with_capacity(self.batch_size)
            }
        }
    }

    /// Publishes this producer's live backoff policy for `shard`. With
    /// several producers the gauges show the most recent shipper (last
    /// writer wins) — a sample of the adaptive state, not an aggregate.
    fn publish_backoff(&self, shard: usize) {
        self.registry
            .producer_spin
            .set(u64::from(self.producers[shard].adaptive_spin()));
        self.registry
            .producer_park_us
            .set(self.producers[shard].adaptive_park_us());
    }

    fn ship(&mut self, shard: usize) -> Result<(), CollectorError> {
        let batch = std::mem::take(&mut self.bufs[shard]);
        // One enqueue-latency sample per shipped batch: cheap enough to
        // be always-on, and a parked producer (full ring) shows up as a
        // fat tail in `collector_stage_enqueue_ns`.
        let t0 = self.registry.clock.now_ns();
        match self.producers[shard].push(batch) {
            Ok(()) => {
                self.registry
                    .enqueue
                    .record(self.registry.clock.now_ns().saturating_sub(t0));
                self.publish_backoff(shard);
                // Re-arm only after the hand-off: a park on the full
                // ring may be exactly what refills the recycle lane.
                self.bufs[shard] = self.fresh_buf(shard);
                Ok(())
            }
            Err(PushError::Closed(lost)) => {
                // The batch cannot be delivered anywhere; account for
                // every digest of it before reporting the disconnect.
                // The buffer stays empty — further pushes to a dead
                // shard are error-path, not worth pool traffic.
                self.registry.dropped.add(lost.len() as u64);
                Err(CollectorError::Disconnected)
            }
            Err(PushError::Full(_)) => unreachable!("blocking push never reports Full"),
        }
    }

    fn try_ship(&mut self, shard: usize) -> Result<(), CollectorError> {
        let batch = std::mem::take(&mut self.bufs[shard]);
        match self.producers[shard].try_push(batch) {
            Ok(()) => {
                self.publish_backoff(shard);
                self.bufs[shard] = self.fresh_buf(shard);
                Ok(())
            }
            Err(PushError::Full(batch)) => {
                self.bufs[shard] = batch;
                Err(CollectorError::WouldBlock)
            }
            Err(PushError::Closed(lost)) => {
                self.registry.dropped.add(lost.len() as u64);
                Err(CollectorError::Disconnected)
            }
        }
    }

    /// Adapts the handle into a `pint-netsim` digest sink: install with
    /// `Simulator::set_digest_sink(handle.into_digest_sink())`. Digests
    /// still ship in batches; the handle's `Drop` flushes the tail.
    ///
    /// The collector disappearing mid-simulation is a shutdown race, not
    /// a data-path error, so the sink keeps running — but nothing is
    /// lost *silently*: every undeliverable digest is counted in
    /// [`dropped_digests`](Self::dropped_digests) /
    /// [`CollectorStats::digests_dropped`](crate::CollectorStats).
    pub fn into_digest_sink(mut self) -> Box<dyn FnMut(DigestReport)> {
        Box::new(move |report| {
            // Delivery failures are counted inside `ship`.
            let _ = self.push(report);
        })
    }
}

impl Clone for CollectorHandle {
    /// Registers a sibling producer: the clone gets fresh rings of its
    /// own, so two clones never synchronize on the data path.
    fn clone(&self) -> Self {
        self.registry.register()
    }
}

impl Drop for CollectorHandle {
    fn drop(&mut self) {
        let _ = self.flush();
        // Dropping the `RingProducer`s closes the rings; shards drain
        // what was shipped, then detach them.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_of_is_stable_and_in_range() {
        for shards in [1usize, 2, 4, 8, 13] {
            for flow in 0..10_000u64 {
                let s = shard_of(flow, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(flow, shards));
            }
        }
    }

    #[test]
    fn shard_of_balances_sequential_ids() {
        let shards = 8;
        let mut counts = vec![0usize; shards];
        let n = 100_000u64;
        for flow in 0..n {
            counts[shard_of(flow, shards)] += 1;
        }
        let expect = n as usize / shards;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                c.abs_diff(expect) < expect / 10,
                "shard {i} got {c} of expected {expect}: {counts:?}"
            );
        }
    }
}
