//! Ingestion handles: how sinks feed digests into the collector.
//!
//! A [`CollectorHandle`] buffers digests per destination shard and ships
//! them as batches over the bounded channels, amortizing channel
//! synchronization over `batch_size` digests. Handles are cheap to clone
//! (each clone gets private buffers), so every sink thread owns one.
//! Per-flow ordering is preserved: a flow always maps to one shard, and
//! one handle's pushes for it stay in push order.

use crate::config::FlowId;
use crate::error::CollectorError;
use crate::shard::ShardMsg;
use pint_core::DigestReport;
use std::sync::mpsc::SyncSender;

/// Stable shard choice via `pint-core`'s splitmix64 finalizer —
/// decouples the partition from any structure in flow IDs.
#[inline]
pub(crate) fn shard_of(flow: FlowId, shards: usize) -> usize {
    (pint_core::hash::mix64(flow.wrapping_add(0x9E37_79B9_7F4A_7C15)) % shards as u64) as usize
}

/// A cloneable, buffering front-end to a [`Collector`](crate::Collector).
pub struct CollectorHandle {
    senders: Vec<SyncSender<ShardMsg>>,
    bufs: Vec<Vec<DigestReport>>,
    batch_size: usize,
}

impl CollectorHandle {
    pub(crate) fn new(senders: Vec<SyncSender<ShardMsg>>, batch_size: usize) -> Self {
        let bufs = senders
            .iter()
            .map(|_| Vec::with_capacity(batch_size))
            .collect();
        Self {
            senders,
            bufs,
            batch_size,
        }
    }

    /// Number of shards digests fan out to.
    pub fn shards(&self) -> usize {
        self.senders.len()
    }

    /// Queues one digest; ships the destination shard's batch when it
    /// reaches `batch_size`. Blocks (backpressure) when that shard's
    /// channel is full.
    pub fn push(&mut self, report: DigestReport) -> Result<(), CollectorError> {
        let shard = shard_of(report.flow, self.senders.len());
        self.bufs[shard].push(report);
        if self.bufs[shard].len() >= self.batch_size {
            self.ship(shard)?;
        }
        Ok(())
    }

    /// Queues a pre-assembled batch (e.g. from an upstream aggregator).
    pub fn push_batch(
        &mut self,
        reports: impl IntoIterator<Item = DigestReport>,
    ) -> Result<(), CollectorError> {
        for r in reports {
            self.push(r)?;
        }
        Ok(())
    }

    /// Ships all partially filled buffers now.
    pub fn flush(&mut self) -> Result<(), CollectorError> {
        for shard in 0..self.bufs.len() {
            if !self.bufs[shard].is_empty() {
                self.ship(shard)?;
            }
        }
        Ok(())
    }

    fn ship(&mut self, shard: usize) -> Result<(), CollectorError> {
        let batch = std::mem::replace(&mut self.bufs[shard], Vec::with_capacity(self.batch_size));
        self.senders[shard]
            .send(ShardMsg::Batch(batch))
            .map_err(|_| CollectorError::Disconnected)
    }

    /// Adapts the handle into a `pint-netsim` digest sink: install with
    /// `Simulator::set_digest_sink(handle.into_digest_sink())`. Digests
    /// still ship in batches; the handle's `Drop` flushes the tail.
    pub fn into_digest_sink(mut self) -> Box<dyn FnMut(DigestReport)> {
        Box::new(move |report| {
            // The collector disappearing mid-simulation is a shutdown
            // race, not a data-path error; drop the digest.
            let _ = self.push(report);
        })
    }
}

impl Clone for CollectorHandle {
    fn clone(&self) -> Self {
        Self::new(self.senders.clone(), self.batch_size)
    }
}

impl Drop for CollectorHandle {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_of_is_stable_and_in_range() {
        for shards in [1usize, 2, 4, 8, 13] {
            for flow in 0..10_000u64 {
                let s = shard_of(flow, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(flow, shards));
            }
        }
    }

    #[test]
    fn shard_of_balances_sequential_ids() {
        let shards = 8;
        let mut counts = vec![0usize; shards];
        let n = 100_000u64;
        for flow in 0..n {
            counts[shard_of(flow, shards)] += 1;
        }
        let expect = n as usize / shards;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                c.abs_diff(expect) < expect / 10,
                "shard {i} got {c} of expected {expect}: {counts:?}"
            );
        }
    }
}
