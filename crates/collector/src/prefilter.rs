//! Ingest-side watch-list pre-filter.
//!
//! A deployment that only cares about a known set of flows (a watch
//! list) still pays the full flow-table touch for every digest that
//! arrives. The pre-filter drops uninteresting flows at the producer,
//! *before* they are buffered into a batch, so off-list traffic never
//! crosses the ring or touches shard state.
//!
//! The filter is a classic bloom filter specialised for this use:
//!
//! - Membership is over [`FlowId`]s, hashed with two independent
//!   splitmix64 probes (the same [`mix64`] finaliser used for shard
//!   routing, salted differently so the probes are uncorrelated with
//!   shard placement).
//! - **No false negatives**: a watch-listed flow always passes. This is
//!   the hard guarantee the equivalence proptests pin — enabling the
//!   pre-filter can never lose wanted telemetry.
//! - False positives are possible and harmless: an off-list flow that
//!   collides simply gets ingested as if the filter were off. Because
//!   membership is a pure function of the flow id, a given flow is
//!   either *fully* ingested or *fully* dropped — never a partial
//!   stream — which keeps per-flow aggregates exact for every flow
//!   that passes.
//!
//! Sizing: `bits_per_flow` bits per watch-list entry, rounded up to a
//! power of two (minimum 64 bits). At the default 16 bits/flow with two
//! probes the false-positive rate is under 2%.

use crate::config::FlowId;
use pint_core::hash::mix64;

/// Salts decorrelating the two bloom probes from each other and from
/// the shard-routing hash in `handle.rs`.
const SALT_A: u64 = 0x9E6C_63D0_876A_3F6B;
const SALT_B: u64 = 0xD2B5_4A32_D192_ED03;

/// Configuration for the optional ingest-side watch-list pre-filter.
///
/// When set on [`CollectorConfig::prefilter`](crate::CollectorConfig),
/// producers drop digests whose flow is (probably) not on `watch`
/// before buffering them. Watch-listed flows are never dropped; an
/// off-list flow may still pass (bloom false positive) and is then
/// ingested normally.
///
/// An **empty watch list drops everything**: the filter answers "not
/// watched" for every flow. Use `prefilter: None` to ingest all flows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefilterConfig {
    /// Flows the collector should keep. Everything else is dropped at
    /// the producer (modulo bloom false positives).
    pub watch: Vec<FlowId>,
    /// Filter size budget in bits per watch-list entry. Larger is more
    /// selective; 16 keeps the false-positive rate under 2%.
    pub bits_per_flow: usize,
}

impl Default for PrefilterConfig {
    fn default() -> Self {
        Self {
            watch: Vec::new(),
            bits_per_flow: 16,
        }
    }
}

impl PrefilterConfig {
    /// Pre-filter for the given watch list with the default sizing.
    pub fn new(watch: Vec<FlowId>) -> Self {
        Self {
            watch,
            ..Self::default()
        }
    }
}

/// Immutable two-probe bloom filter over the watch list, shared by all
/// producer handles via `Arc`.
#[derive(Debug)]
pub(crate) struct Bloom {
    words: Box<[u64]>,
    /// Bit-index mask; `words.len() * 64` is a power of two.
    bit_mask: u64,
}

impl Bloom {
    pub(crate) fn build(config: &PrefilterConfig) -> Self {
        let bits_per_flow = config.bits_per_flow.max(1);
        let want = config.watch.len().saturating_mul(bits_per_flow).max(64);
        let bits = want.next_power_of_two();
        let mut words = vec![0u64; bits / 64].into_boxed_slice();
        let bit_mask = (bits as u64) - 1;
        for &flow in &config.watch {
            for bit in probes(flow) {
                let bit = bit & bit_mask;
                words[(bit / 64) as usize] |= 1u64 << (bit % 64);
            }
        }
        Self { words, bit_mask }
    }

    /// True when `flow` may be on the watch list. Never false for a
    /// flow that was inserted at build time.
    pub(crate) fn may_contain(&self, flow: FlowId) -> bool {
        probes(flow).into_iter().all(|bit| {
            let bit = bit & self.bit_mask;
            self.words[(bit / 64) as usize] & (1u64 << (bit % 64)) != 0
        })
    }
}

fn probes(flow: FlowId) -> [u64; 2] {
    [mix64(flow ^ SALT_A), mix64(flow ^ SALT_B)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watch_listed_flows_always_pass() {
        let watch: Vec<FlowId> = (0..10_000).map(|i| i * 31 + 7).collect();
        let bloom = Bloom::build(&PrefilterConfig::new(watch.clone()));
        for flow in watch {
            assert!(bloom.may_contain(flow), "false negative for flow {flow}");
        }
    }

    #[test]
    fn off_list_flows_mostly_rejected() {
        let watch: Vec<FlowId> = (0..1_000).collect();
        let bloom = Bloom::build(&PrefilterConfig::new(watch));
        let passes = (1_000_000u64..1_010_000)
            .filter(|&f| bloom.may_contain(f))
            .count();
        // 16 bits/flow, two probes: expect well under 2% false positives.
        assert!(passes < 400, "false-positive rate too high: {passes}/10000");
    }

    #[test]
    fn empty_watch_list_rejects_everything() {
        let bloom = Bloom::build(&PrefilterConfig::default());
        assert!((0..1_000u64).all(|f| !bloom.may_contain(f)));
    }

    #[test]
    fn tiny_bits_budget_still_has_no_false_negatives() {
        let watch: Vec<FlowId> = (0..5_000).map(mix64).collect();
        let config = PrefilterConfig {
            watch: watch.clone(),
            bits_per_flow: 1,
        };
        let bloom = Bloom::build(&config);
        for flow in watch {
            assert!(bloom.may_contain(flow));
        }
    }
}
