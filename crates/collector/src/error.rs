//! Collector error types.

use std::fmt;

/// Errors surfaced by collector handles and queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CollectorError {
    /// The collector's worker threads have shut down; the digest or
    /// request cannot be delivered.
    Disconnected,
    /// A shard did not answer a snapshot request (worker panicked or the
    /// collector is shutting down concurrently).
    SnapshotFailed {
        /// The shard that failed to answer.
        shard: usize,
    },
}

impl fmt::Display for CollectorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CollectorError::Disconnected => {
                write!(f, "collector is shut down; digest channel disconnected")
            }
            CollectorError::SnapshotFailed { shard } => {
                write!(f, "shard {shard} did not answer the snapshot request")
            }
        }
    }
}

impl std::error::Error for CollectorError {}
