//! Collector error types.

use std::fmt;

/// Errors surfaced by collector handles and queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CollectorError {
    /// The collector's worker threads have shut down; the digest or
    /// request cannot be delivered.
    Disconnected,
    /// A shard did not answer a snapshot request (worker panicked or the
    /// collector is shutting down concurrently).
    SnapshotFailed {
        /// The shard that failed to answer.
        shard: usize,
    },
    /// A non-blocking push found the destination shard's ring full and
    /// the handle's buffer for it already at one batch: accepting the
    /// digest would require blocking. The digest was *not* queued; retry,
    /// reroute, or drop it.
    WouldBlock,
    /// A persisted checkpoint could not be decoded during
    /// [`Collector::restore`](crate::Collector::restore) — the store
    /// file's CRCs were intact but the payload is not a snapshot frame
    /// this build understands.
    RestoreFailed {
        /// What failed to decode.
        reason: &'static str,
    },
}

impl fmt::Display for CollectorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CollectorError::Disconnected => {
                write!(f, "collector is shut down; digest channel disconnected")
            }
            CollectorError::SnapshotFailed { shard } => {
                write!(f, "shard {shard} did not answer the snapshot request")
            }
            CollectorError::WouldBlock => {
                write!(f, "shard ring full; digest not queued (backpressure)")
            }
            CollectorError::RestoreFailed { reason } => {
                write!(f, "restore failed: {reason}")
            }
        }
    }
}

impl std::error::Error for CollectorError {}

impl From<CollectorError> for pint_query::QueryError {
    /// Collector failures surface as backend errors of the unified
    /// query tier (stringified — `pint-query` has no collector
    /// dependency).
    fn from(e: CollectorError) -> Self {
        pint_query::QueryError::Backend(e.to_string())
    }
}
