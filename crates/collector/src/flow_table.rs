//! Per-shard flow state with bounded memory.
//!
//! Each shard worker owns one `FlowTable` exclusively (share-nothing), so
//! no synchronization appears on the ingest path. The table enforces two
//! caps — flow count and approximate recorder-state bytes — by evicting
//! the least-recently-updated flows, plus an optional idle TTL measured
//! in sink timestamps. The collector therefore survives unbounded flow
//! churn: old flows age out instead of accumulating forever.

use crate::config::FlowId;
use pint_core::FlowRecorder;
use std::collections::{BTreeMap, HashMap};

/// Per-flow bookkeeping around the boxed recorder.
pub struct FlowEntry {
    /// The flow's Recording + Inference module.
    pub rec: Box<dyn FlowRecorder>,
    /// Latest sink timestamp observed for this flow.
    pub last_ts: u64,
    /// LRU stamp (monotonic per table).
    touch: u64,
    /// Bitmask of event rules already fired for this flow.
    pub fired_rules: u64,
    /// `rec.packets()` at the last event-rule evaluation (amortizes
    /// quantile recomputation on the ingest path).
    pub last_eval_packets: u64,
    /// Cached `state_bytes` estimate (refreshed after each batch).
    bytes: usize,
}

/// Eviction/ingest counters for one shard.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TableStats {
    /// Flows created.
    pub created: u64,
    /// Flows evicted by the flow-count or byte cap (LRU order).
    pub evicted_lru: u64,
    /// Flows evicted by idle TTL.
    pub evicted_ttl: u64,
}

/// One shard's flow map with LRU + TTL eviction and byte accounting.
pub struct FlowTable {
    flows: HashMap<FlowId, FlowEntry>,
    /// touch stamp → flow, oldest first. Stamps are unique.
    lru: BTreeMap<u64, FlowId>,
    next_touch: u64,
    total_bytes: usize,
    max_flows: usize,
    max_bytes: usize,
    ttl: Option<u64>,
    /// Clock of the last TTL sweep (sweeps are amortized; see
    /// [`expire`](Self::expire)).
    last_sweep: u64,
    /// Counters exposed to the shard worker.
    pub stats: TableStats,
}

impl FlowTable {
    /// Creates a table with the given caps.
    pub fn new(max_flows: usize, max_bytes: usize, ttl: Option<u64>) -> Self {
        Self {
            flows: HashMap::new(),
            lru: BTreeMap::new(),
            next_touch: 0,
            total_bytes: 0,
            max_flows,
            max_bytes,
            ttl,
            last_sweep: 0,
            stats: TableStats::default(),
        }
    }

    /// Tracked flows.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// `true` when no flow is tracked.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Approximate recorder-state bytes across all flows.
    pub fn total_bytes(&self) -> usize {
        self.total_bytes
    }

    /// Fetches the entry for `flow`, creating it via `make` on first
    /// sight, stamping LRU recency and `last_ts`, and evicting other
    /// flows if the caps are exceeded by the insertion.
    pub fn entry_mut(
        &mut self,
        flow: FlowId,
        ts: u64,
        make: impl FnOnce() -> Box<dyn FlowRecorder>,
    ) -> &mut FlowEntry {
        if !self.flows.contains_key(&flow) {
            // Make room first so the new flow is never its own victim.
            while self.flows.len() >= self.max_flows {
                self.evict_oldest();
            }
            let rec = make();
            let bytes = rec.state_bytes();
            self.total_bytes += bytes;
            self.stats.created += 1;
            self.flows.insert(
                flow,
                FlowEntry {
                    rec,
                    last_ts: ts,
                    touch: 0,
                    fired_rules: 0,
                    last_eval_packets: 0,
                    bytes,
                },
            );
        }
        self.touch(flow, ts);
        self.flows.get_mut(&flow).expect("just inserted")
    }

    fn touch(&mut self, flow: FlowId, ts: u64) {
        let entry = self.flows.get_mut(&flow).expect("touch of tracked flow");
        if entry.touch != 0 {
            self.lru.remove(&entry.touch);
        }
        self.next_touch += 1;
        entry.touch = self.next_touch;
        entry.last_ts = entry.last_ts.max(ts);
        self.lru.insert(self.next_touch, flow);
    }

    /// Re-reads `state_bytes` for `flow` (call after absorbing a batch)
    /// and evicts LRU flows until the byte cap holds again.
    pub fn refresh_bytes(&mut self, flow: FlowId) {
        if let Some(entry) = self.flows.get_mut(&flow) {
            let now = entry.rec.state_bytes();
            self.total_bytes = self.total_bytes - entry.bytes + now;
            entry.bytes = now;
        }
        while self.total_bytes > self.max_bytes && self.flows.len() > 1 {
            self.evict_oldest();
        }
    }

    /// Evicts flows whose `last_ts` is older than `now − ttl`.
    ///
    /// A sweep is O(flows), so sweeps are amortized: at most ~4 per TTL
    /// window (the first sweep after each `ttl/4` of clock advance).
    /// Flows therefore linger at most ~1.25·ttl — acceptable slack for
    /// an idle-eviction policy, and the ingest hot path stays O(batch).
    pub fn expire(&mut self, now: u64) {
        let Some(ttl) = self.ttl else {
            return;
        };
        let stride = (ttl / 4).max(1);
        if now < self.last_sweep.saturating_add(stride) {
            return;
        }
        self.last_sweep = now;
        let cutoff = now.saturating_sub(ttl);
        // Collect victims first: the LRU index is ordered by recency, and
        // recency order matches last_ts order closely but not exactly
        // (last_ts is monotone per flow, touches are global), so scan all.
        let victims: Vec<FlowId> = self
            .flows
            .iter()
            .filter(|(_, e)| e.last_ts < cutoff)
            .map(|(&f, _)| f)
            .collect();
        for f in victims {
            self.remove(f);
            self.stats.evicted_ttl += 1;
        }
    }

    fn evict_oldest(&mut self) {
        let Some((&stamp, &flow)) = self.lru.iter().next() else {
            return;
        };
        debug_assert!(self.flows.contains_key(&flow), "LRU index out of sync");
        let _ = stamp;
        self.remove(flow);
        self.stats.evicted_lru += 1;
    }

    fn remove(&mut self, flow: FlowId) {
        if let Some(entry) = self.flows.remove(&flow) {
            self.total_bytes -= entry.bytes;
            if entry.touch != 0 {
                self.lru.remove(&entry.touch);
            }
        }
    }

    /// Iterates over `(flow, entry)` pairs (snapshot production).
    pub fn iter(&self) -> impl Iterator<Item = (&FlowId, &FlowEntry)> {
        self.flows.iter()
    }

    /// Mutable access without touching LRU recency (event evaluation).
    pub fn get_mut(&mut self, flow: FlowId) -> Option<&mut FlowEntry> {
        self.flows.get_mut(&flow)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pint_core::dynamic::{DynamicAggregator, DynamicRecorder};
    use pint_core::value::Digest;

    fn recorder() -> Box<dyn FlowRecorder> {
        let agg = DynamicAggregator::new(1, 8, 100.0, 1.0e7);
        Box::new(DynamicRecorder::new_sketched(agg, 3, 64))
    }

    #[test]
    fn lru_evicts_least_recently_updated() {
        let mut t = FlowTable::new(3, usize::MAX, None);
        for f in 1..=3u64 {
            t.entry_mut(f, f, recorder);
        }
        // Touch flow 1 again: flow 2 becomes the oldest.
        t.entry_mut(1, 10, recorder);
        t.entry_mut(4, 11, recorder);
        assert_eq!(t.len(), 3);
        assert!(t.iter().all(|(&f, _)| f != 2), "flow 2 should be evicted");
        assert_eq!(t.stats.evicted_lru, 1);
        assert_eq!(t.stats.created, 4);
    }

    #[test]
    fn byte_cap_evicts_until_it_fits() {
        let mut t = FlowTable::new(usize::MAX, 4_000, None);
        let agg = DynamicAggregator::new(1, 8, 100.0, 1.0e7);
        for f in 0..20u64 {
            let e = t.entry_mut(f, f, recorder);
            // Grow the recorder's state with real samples.
            for pid in 0..200u64 {
                let mut d = Digest::new(1);
                for hop in 1..=3 {
                    agg.encode_hop(pid, hop, 1_000.0, &mut d, 0);
                }
                e.rec.absorb(pid, &d);
            }
            t.refresh_bytes(f);
        }
        assert!(t.total_bytes() <= 4_000, "bytes {}", t.total_bytes());
        assert!(t.stats.evicted_lru > 0);
        assert!(t.len() < 20);
    }

    #[test]
    fn ttl_expires_idle_flows_only() {
        let mut t = FlowTable::new(usize::MAX, usize::MAX, Some(100));
        t.entry_mut(1, 0, recorder);
        t.entry_mut(2, 150, recorder);
        t.expire(200);
        assert_eq!(t.len(), 1, "flow 1 idle since ts=0 must expire");
        assert!(t.iter().any(|(&f, _)| f == 2));
        assert_eq!(t.stats.evicted_ttl, 1);
        // Updating the survivor keeps it alive forever.
        t.entry_mut(2, 300, recorder);
        t.expire(350);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn accounting_stays_consistent_across_churn() {
        let mut t = FlowTable::new(8, usize::MAX, None);
        for f in 0..1000u64 {
            t.entry_mut(f, f, recorder);
            t.refresh_bytes(f);
        }
        assert_eq!(t.len(), 8);
        let manual: usize = t.iter().map(|(_, e)| e.rec.state_bytes()).sum();
        assert_eq!(t.total_bytes(), manual);
        assert_eq!(t.stats.created, 1000);
        assert_eq!(t.stats.evicted_lru, 992);
    }
}
