//! Per-shard flow state with bounded memory.
//!
//! Each shard worker owns one `FlowTable` exclusively (share-nothing), so
//! no synchronization appears on the ingest path. The table enforces two
//! caps — flow count and approximate recorder-state bytes — by evicting
//! the least-recently-updated flows, plus an optional idle TTL measured
//! in sink timestamps. The collector therefore survives unbounded flow
//! churn: old flows age out instead of accumulating forever.
//!
//! The table is built for the ingest hot path:
//!
//! * flows live in a slab of slots linked into an intrusive LRU list, so
//!   a recency touch is O(1) pointer surgery (no tree rebalance, no
//!   allocation);
//! * the flow→slot map hashes `u64` IDs with a salted splitmix64
//!   finalizer instead of SipHash;
//! * recency and byte accounting are *batch-granular*: a flow is touched
//!   once per batch (callers pass a batch stamp), and `state_bytes` is
//!   re-read only on a fixed packet stride, so the per-digest
//!   cost is one map probe plus the recorder update.

use crate::config::FlowId;
use pint_core::FlowRecorder;
use std::collections::HashMap;
use std::hash::Hasher;

/// Sentinel for "no slot" in the intrusive list.
const NIL: u32 = u32::MAX;

/// Re-read a flow's `state_bytes` estimate only after this many absorbed
/// packets. Recorder state grows by at most a few words per packet, so
/// the byte-cap enforcement lags the true footprint by a bounded, small
/// amount in exchange for dropping the estimator call from the hot path.
const REFRESH_STRIDE: u64 = 16;

/// `u64`-key hasher: one splitmix64 finalizer round instead of SipHash.
/// Flow IDs are already arbitrary 64-bit values; the finalizer's
/// avalanche is what HashMap needs, at a fraction of the cost. The
/// per-table random salt keeps the map keyed: mix64 alone is an
/// invertible public function, so without the salt an adversary could
/// craft flow IDs that all collide (hash-flooding) — flow IDs come off
/// the wire.
#[derive(Default, Clone)]
pub struct Mix64Hasher {
    salt: u64,
    out: u64,
}

impl Hasher for Mix64Hasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.out
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.out = pint_core::hash::mix64(v ^ self.salt);
    }

    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (unused by the u64 key path): fold 8-byte
        // chunks through the same finalizer.
        self.out ^= self.salt;
        for chunk in bytes.chunks(8) {
            let mut w = [0u8; 8];
            w[..chunk.len()].copy_from_slice(chunk);
            self.out = pint_core::hash::mix64(self.out ^ u64::from_le_bytes(w));
        }
    }
}

/// Builds salted [`Mix64Hasher`]s; one random salt per table.
#[derive(Clone)]
struct Mix64Build {
    salt: u64,
}

impl Mix64Build {
    fn new() -> Self {
        // Derive the salt from std's process-random SipHash keys — the
        // same entropy source `HashMap::new` relies on, with no new
        // dependency.
        use std::hash::BuildHasher;
        Self {
            salt: std::collections::hash_map::RandomState::new()
                .build_hasher()
                .finish(),
        }
    }
}

impl std::hash::BuildHasher for Mix64Build {
    type Hasher = Mix64Hasher;

    fn build_hasher(&self) -> Mix64Hasher {
        Mix64Hasher {
            salt: self.salt,
            out: 0,
        }
    }
}

/// Per-flow bookkeeping around the boxed recorder.
pub struct FlowEntry {
    /// The flow's Recording + Inference module.
    pub rec: Box<dyn FlowRecorder>,
    /// Latest sink timestamp observed for this flow.
    pub last_ts: u64,
    /// Bitmask of event rules currently fired (armed again on cooldown).
    pub fired_rules: u64,
    /// Per-rule timestamp of the last firing; allocated lazily, only for
    /// flows that fire a cooldown rule (indexed by rule).
    pub fired_ts: Vec<u64>,
    /// `rec.packets()` at the last event-rule evaluation (amortizes
    /// quantile recomputation on the ingest path).
    pub last_eval_packets: u64,
    /// Cached `state_bytes` estimate (refreshed every `REFRESH_STRIDE`
    /// packets).
    bytes: usize,
    /// `rec.packets()` at the last estimate refresh.
    packets_at_refresh: u64,
    /// Batch stamp of the last touch (dedups touches within a batch).
    seen: u64,
}

/// One slab slot: a flow entry plus its LRU links. `entry == None` marks
/// a free slot awaiting reuse.
struct Slot {
    flow: FlowId,
    entry: Option<FlowEntry>,
    /// Next-older flow (towards the eviction end).
    prev: u32,
    /// Next-newer flow.
    next: u32,
}

/// Eviction/ingest counters for one shard.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TableStats {
    /// Flows created.
    pub created: u64,
    /// Flows evicted by the flow-count or byte cap (LRU order).
    pub evicted_lru: u64,
    /// Flows evicted by idle TTL.
    pub evicted_ttl: u64,
}

/// One shard's flow map with LRU + TTL eviction and byte accounting.
pub struct FlowTable {
    map: HashMap<FlowId, u32, Mix64Build>,
    slots: Vec<Slot>,
    free: Vec<u32>,
    /// Oldest (next eviction victim).
    lru_head: u32,
    /// Most recently touched.
    lru_tail: u32,
    total_bytes: usize,
    max_flows: usize,
    max_bytes: usize,
    ttl: Option<u64>,
    /// Clock of the last TTL sweep (sweeps are amortized; see
    /// [`expire`](Self::expire)).
    last_sweep: u64,
    /// Stamp source for the compatibility wrapper [`entry_mut`](Self::entry_mut).
    auto_stamp: u64,
    /// Counters exposed to the shard worker.
    pub stats: TableStats,
}

impl FlowTable {
    /// Creates a table with the given caps.
    pub fn new(max_flows: usize, max_bytes: usize, ttl: Option<u64>) -> Self {
        Self {
            map: HashMap::with_hasher(Mix64Build::new()),
            slots: Vec::new(),
            free: Vec::new(),
            lru_head: NIL,
            lru_tail: NIL,
            total_bytes: 0,
            max_flows,
            max_bytes,
            ttl,
            last_sweep: 0,
            auto_stamp: 0,
            stats: TableStats::default(),
        }
    }

    /// Tracked flows.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when no flow is tracked.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Approximate recorder-state bytes across all flows.
    pub fn total_bytes(&self) -> usize {
        self.total_bytes
    }

    // ----- intrusive LRU list surgery -------------------------------

    fn unlink(&mut self, idx: u32) {
        let (prev, next) = {
            let s = &self.slots[idx as usize];
            (s.prev, s.next)
        };
        if prev == NIL {
            self.lru_head = next;
        } else {
            self.slots[prev as usize].next = next;
        }
        if next == NIL {
            self.lru_tail = prev;
        } else {
            self.slots[next as usize].prev = prev;
        }
    }

    fn push_newest(&mut self, idx: u32) {
        let tail = self.lru_tail;
        {
            let s = &mut self.slots[idx as usize];
            s.prev = tail;
            s.next = NIL;
        }
        if tail == NIL {
            self.lru_head = idx;
        } else {
            self.slots[tail as usize].next = idx;
        }
        self.lru_tail = idx;
    }

    // ----- ingest hot path ------------------------------------------

    /// Looks up (or creates) the slot for `flow`, stamping recency and
    /// `last_ts` at batch granularity: the LRU touch happens only the
    /// first time a given `stamp` sees the flow. Returns the slot index
    /// and whether this was that first touch (callers collect touched
    /// slots without a sort/dedup pass).
    ///
    /// Creation may evict other flows to honor the flow-count cap; the
    /// new flow is never its own victim.
    pub fn upsert(
        &mut self,
        flow: FlowId,
        ts: u64,
        stamp: u64,
        make: impl FnOnce() -> Box<dyn FlowRecorder>,
    ) -> (u32, bool) {
        if let Some(&idx) = self.map.get(&flow) {
            let first = {
                let entry = self.slots[idx as usize]
                    .entry
                    .as_mut()
                    .expect("mapped slot");
                entry.last_ts = entry.last_ts.max(ts);
                let first = entry.seen != stamp;
                entry.seen = stamp;
                first
            };
            if first && self.lru_tail != idx {
                self.unlink(idx);
                self.push_newest(idx);
            }
            return (idx, first);
        }
        // Make room first so the new flow is never its own victim.
        while self.map.len() >= self.max_flows {
            self.evict_oldest();
        }
        let rec = make();
        let bytes = rec.state_bytes();
        self.total_bytes += bytes;
        self.stats.created += 1;
        let entry = FlowEntry {
            rec,
            last_ts: ts,
            fired_rules: 0,
            fired_ts: Vec::new(),
            last_eval_packets: 0,
            bytes,
            packets_at_refresh: 0,
            seen: stamp,
        };
        let idx = match self.free.pop() {
            Some(idx) => {
                let s = &mut self.slots[idx as usize];
                s.flow = flow;
                s.entry = Some(entry);
                idx
            }
            None => {
                let idx = u32::try_from(self.slots.len()).expect("≤ 4G flows per shard");
                self.slots.push(Slot {
                    flow,
                    entry: Some(entry),
                    prev: NIL,
                    next: NIL,
                });
                idx
            }
        };
        self.push_newest(idx);
        self.map.insert(flow, idx);
        (idx, true)
    }

    /// Compatibility wrapper around [`upsert`](Self::upsert): every call
    /// counts as its own batch (touches recency unconditionally).
    pub fn entry_mut(
        &mut self,
        flow: FlowId,
        ts: u64,
        make: impl FnOnce() -> Box<dyn FlowRecorder>,
    ) -> &mut FlowEntry {
        self.auto_stamp += 1;
        let stamp = self.auto_stamp;
        let (idx, _) = self.upsert(flow, ts, stamp, make);
        self.slots[idx as usize]
            .entry
            .as_mut()
            .expect("just upserted")
    }

    /// Direct slot access, validated against the expected flow: `None`
    /// if the slot was evicted (and possibly reused) since the index was
    /// obtained.
    pub fn entry_if(&mut self, idx: u32, flow: FlowId) -> Option<&mut FlowEntry> {
        let slot = self.slots.get_mut(idx as usize)?;
        if slot.flow != flow {
            return None;
        }
        slot.entry.as_mut()
    }

    /// Re-reads `state_bytes` for the flow in slot `idx` if it absorbed
    /// at least `REFRESH_STRIDE` (16) packets since the last estimate, then
    /// evicts LRU flows until the byte cap holds again.
    pub fn refresh_bytes_at(&mut self, idx: u32, flow: FlowId) {
        if let Some(entry) = self.entry_if(idx, flow) {
            let packets = entry.rec.packets();
            if packets.wrapping_sub(entry.packets_at_refresh) >= REFRESH_STRIDE {
                entry.packets_at_refresh = packets;
                let now = entry.rec.state_bytes();
                let before = entry.bytes;
                entry.bytes = now;
                self.total_bytes = self.total_bytes - before + now;
            }
        }
        while self.total_bytes > self.max_bytes && self.map.len() > 1 {
            self.evict_oldest();
        }
    }

    /// [`refresh_bytes_at`](Self::refresh_bytes_at) by flow ID.
    pub fn refresh_bytes(&mut self, flow: FlowId) {
        if let Some(&idx) = self.map.get(&flow) {
            self.refresh_bytes_at(idx, flow);
        }
    }

    /// Evicts flows whose `last_ts` is older than `now − ttl`.
    ///
    /// A sweep is O(flows), so sweeps are amortized: at most ~4 per TTL
    /// window (the first sweep after each `ttl/4` of clock advance).
    /// Flows therefore linger at most ~1.25·ttl — acceptable slack for
    /// an idle-eviction policy, and the ingest hot path stays O(batch).
    pub fn expire(&mut self, now: u64) {
        let Some(ttl) = self.ttl else {
            return;
        };
        let stride = (ttl / 4).max(1);
        if now < self.last_sweep.saturating_add(stride) {
            return;
        }
        self.last_sweep = now;
        let cutoff = now.saturating_sub(ttl);
        // Walk the LRU list oldest-first; recency order matches last_ts
        // order closely but not exactly (batch-granular touches), so the
        // walk covers the whole list but victims cluster at the front.
        let victims: Vec<u32> = self
            .iter_slots()
            .filter(|&(_, slot)| slot.entry.as_ref().is_some_and(|e| e.last_ts < cutoff))
            .map(|(idx, _)| idx)
            .collect();
        for idx in victims {
            self.remove_slot(idx);
            self.stats.evicted_ttl += 1;
        }
    }

    fn evict_oldest(&mut self) {
        let idx = self.lru_head;
        if idx == NIL {
            return;
        }
        debug_assert!(
            self.slots[idx as usize].entry.is_some(),
            "LRU list out of sync"
        );
        self.remove_slot(idx);
        self.stats.evicted_lru += 1;
    }

    fn remove_slot(&mut self, idx: u32) {
        let flow = self.slots[idx as usize].flow;
        if let Some(entry) = self.slots[idx as usize].entry.take() {
            self.total_bytes -= entry.bytes;
            self.unlink(idx);
            self.map.remove(&flow);
            self.free.push(idx);
        }
    }

    fn iter_slots(&self) -> impl Iterator<Item = (u32, &Slot)> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.entry.is_some())
            .map(|(i, s)| (i as u32, s))
    }

    /// Iterates over `(flow, entry)` pairs (snapshot production).
    pub fn iter(&self) -> impl Iterator<Item = (&FlowId, &FlowEntry)> {
        self.slots
            .iter()
            .filter_map(|s| s.entry.as_ref().map(|e| (&s.flow, e)))
    }

    /// Shared access without touching LRU recency (snapshot production).
    pub fn get(&self, flow: FlowId) -> Option<&FlowEntry> {
        let idx = *self.map.get(&flow)?;
        self.slots[idx as usize].entry.as_ref()
    }

    /// Mutable access without touching LRU recency (event evaluation).
    pub fn get_mut(&mut self, flow: FlowId) -> Option<&mut FlowEntry> {
        let idx = *self.map.get(&flow)?;
        self.slots[idx as usize].entry.as_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pint_core::dynamic::{DynamicAggregator, DynamicRecorder};
    use pint_core::value::Digest;

    fn recorder() -> Box<dyn FlowRecorder> {
        let agg = DynamicAggregator::new(1, 8, 100.0, 1.0e7);
        Box::new(DynamicRecorder::new_sketched(agg, 3, 64))
    }

    #[test]
    fn lru_evicts_least_recently_updated() {
        let mut t = FlowTable::new(3, usize::MAX, None);
        for f in 1..=3u64 {
            t.entry_mut(f, f, recorder);
        }
        // Touch flow 1 again: flow 2 becomes the oldest.
        t.entry_mut(1, 10, recorder);
        t.entry_mut(4, 11, recorder);
        assert_eq!(t.len(), 3);
        assert!(t.iter().all(|(&f, _)| f != 2), "flow 2 should be evicted");
        assert_eq!(t.stats.evicted_lru, 1);
        assert_eq!(t.stats.created, 4);
    }

    #[test]
    fn batch_stamp_touches_once_per_batch() {
        let mut t = FlowTable::new(2, usize::MAX, None);
        let (idx, first) = t.upsert(1, 0, 100, recorder);
        assert!(first, "creation is a first touch");
        let (idx2, first2) = t.upsert(1, 1, 100, recorder);
        assert_eq!(idx, idx2);
        assert!(!first2, "same stamp: no second touch");
        let (_, first3) = t.upsert(1, 2, 101, recorder);
        assert!(first3, "new stamp: touched again");
        // Recency within stamp 100 still ordered flow 1 < flow 2.
        t.upsert(2, 3, 100, recorder);
        t.upsert(3, 4, 102, recorder); // evicts flow 1 (oldest touch)
        assert!(t.iter().all(|(&f, _)| f != 1), "flow 1 evicted first");
    }

    #[test]
    fn entry_if_rejects_stale_slots() {
        let mut t = FlowTable::new(1, usize::MAX, None);
        let (idx, _) = t.upsert(1, 0, 1, recorder);
        assert!(t.entry_if(idx, 1).is_some());
        t.upsert(2, 1, 2, recorder); // evicts flow 1, reuses the slot
        assert!(t.entry_if(idx, 1).is_none(), "stale (idx, flow) rejected");
        assert!(t.entry_if(idx, 2).is_some(), "current occupant accessible");
    }

    #[test]
    fn byte_cap_evicts_until_it_fits() {
        let mut t = FlowTable::new(usize::MAX, 4_000, None);
        let agg = DynamicAggregator::new(1, 8, 100.0, 1.0e7);
        for f in 0..20u64 {
            let e = t.entry_mut(f, f, recorder);
            // Grow the recorder's state with real samples.
            for pid in 0..200u64 {
                let mut d = Digest::new(1);
                for hop in 1..=3 {
                    agg.encode_hop(pid, hop, 1_000.0, &mut d, 0);
                }
                e.rec.absorb(pid, &d);
            }
            t.refresh_bytes(f);
        }
        assert!(t.total_bytes() <= 4_000, "bytes {}", t.total_bytes());
        assert!(t.stats.evicted_lru > 0);
        assert!(t.len() < 20);
    }

    #[test]
    fn ttl_expires_idle_flows_only() {
        let mut t = FlowTable::new(usize::MAX, usize::MAX, Some(100));
        t.entry_mut(1, 0, recorder);
        t.entry_mut(2, 150, recorder);
        t.expire(200);
        assert_eq!(t.len(), 1, "flow 1 idle since ts=0 must expire");
        assert!(t.iter().any(|(&f, _)| f == 2));
        assert_eq!(t.stats.evicted_ttl, 1);
        // Updating the survivor keeps it alive forever.
        t.entry_mut(2, 300, recorder);
        t.expire(350);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn accounting_stays_consistent_across_churn() {
        let mut t = FlowTable::new(8, usize::MAX, None);
        for f in 0..1000u64 {
            t.entry_mut(f, f, recorder);
            t.refresh_bytes(f);
        }
        assert_eq!(t.len(), 8);
        let manual: usize = t.iter().map(|(_, e)| e.rec.state_bytes()).sum();
        assert_eq!(t.total_bytes(), manual);
        assert_eq!(t.stats.created, 1000);
        assert_eq!(t.stats.evicted_lru, 992);
    }

    #[test]
    fn slot_reuse_keeps_list_consistent() {
        // Churn through far more flows than slots, with interleaved
        // touches, and verify map/list/free-list agreement throughout.
        let mut t = FlowTable::new(4, usize::MAX, None);
        for round in 0..500u64 {
            t.entry_mut(round % 11, round, recorder);
            if round % 3 == 0 {
                t.entry_mut(round % 5, round, recorder);
            }
            assert!(t.len() <= 4);
            let walked = {
                let mut n = 0;
                let mut idx = t.lru_head;
                while idx != NIL {
                    n += 1;
                    idx = t.slots[idx as usize].next;
                }
                n
            };
            assert_eq!(walked, t.len(), "LRU list covers exactly the live flows");
        }
        assert_eq!(
            t.free.len() + t.len(),
            t.slots.len(),
            "every slot is live or free"
        );
    }
}
