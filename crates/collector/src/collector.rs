//! The collector: worker lifecycle, snapshots, events, stats.

use crate::config::{CollectorConfig, RecorderFactory};
use crate::error::CollectorError;
use crate::events::Event;
use crate::handle::CollectorHandle;
use crate::inference::CollectorSnapshot;
use crate::shard::{ShardMsg, ShardStats, ShardWorker};
use std::sync::atomic::Ordering;
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Aggregated live counters across all shards.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CollectorStats {
    /// Digests applied.
    pub ingested: u64,
    /// Batches applied.
    pub batches: u64,
    /// Currently tracked flows.
    pub active_flows: u64,
    /// Approximate recorder-state bytes held.
    pub state_bytes: u64,
    /// Flows evicted by the count/byte caps.
    pub evicted_lru: u64,
    /// Flows evicted by idle TTL.
    pub evicted_ttl: u64,
    /// Events fired.
    pub events: u64,
    /// Events discarded because the bounded event queue was full.
    pub events_dropped: u64,
}

/// A sharded, multi-threaded telemetry collector.
///
/// Spawn with a [`CollectorConfig`] and a [`RecorderFactory`]; feed it
/// [`DigestReport`](pint_core::DigestReport)s through cloneable
/// [`CollectorHandle`]s; query it via merged [`snapshot`](Self::snapshot)s;
/// subscribe to rule-driven [`Event`]s; and [`shutdown`](Self::shutdown)
/// to join the workers.
pub struct Collector {
    senders: Vec<SyncSender<ShardMsg>>,
    workers: Vec<JoinHandle<()>>,
    events_rx: Mutex<Receiver<Event>>,
    stats: Vec<Arc<ShardStats>>,
    batch_size: usize,
}

impl Collector {
    /// Spawns `config.shards` worker threads and returns the running
    /// collector.
    pub fn spawn(config: CollectorConfig, factory: RecorderFactory) -> Self {
        config.validate();
        // Bounded: a consumer that never drains costs dropped events
        // (counted), not unbounded memory.
        let (events_tx, events_rx) = sync_channel(config.event_capacity);
        let mut senders = Vec::with_capacity(config.shards);
        let mut workers = Vec::with_capacity(config.shards);
        let mut stats = Vec::with_capacity(config.shards);
        for shard in 0..config.shards {
            let (tx, rx) = sync_channel(config.channel_capacity);
            let shard_stats = Arc::new(ShardStats::default());
            let worker = ShardWorker::new(
                shard,
                &config,
                Arc::clone(&factory),
                events_tx.clone(),
                Arc::clone(&shard_stats),
            );
            let join = std::thread::Builder::new()
                .name(format!("pint-collector-{shard}"))
                .spawn(move || worker.run(rx))
                .expect("spawn shard worker");
            senders.push(tx);
            workers.push(join);
            stats.push(shard_stats);
        }
        Self {
            senders,
            workers,
            events_rx: Mutex::new(events_rx),
            stats,
            batch_size: config.batch_size,
        }
    }

    /// Number of shard workers.
    pub fn shards(&self) -> usize {
        self.senders.len()
    }

    /// A new ingestion handle (cheap; one per sink thread).
    pub fn handle(&self) -> CollectorHandle {
        CollectorHandle::new(self.senders.clone(), self.batch_size)
    }

    /// Requests a snapshot from every shard and merges the results.
    ///
    /// The request is ordered after batches already *sent* on each shard
    /// channel; digests still sitting in un-flushed handle buffers are
    /// not included — flush the handles first for a precise cut.
    pub fn snapshot(&self) -> Result<CollectorSnapshot, CollectorError> {
        self.fanout(ShardMsg::Snapshot)
            .map(CollectorSnapshot::from_shards)
    }

    /// Blocks until every batch already queued on the shard channels has
    /// been applied — a cheap sync point (no state is serialized, unlike
    /// [`snapshot`](Self::snapshot)). Digests still in un-flushed handle
    /// buffers are not covered; flush the handles first.
    pub fn barrier(&self) -> Result<(), CollectorError> {
        self.fanout(ShardMsg::Barrier).map(|_| ())
    }

    /// Sends a request carrying a reply channel to every shard, then
    /// collects one reply per shard (in shard order).
    fn fanout<T>(
        &self,
        make_msg: impl Fn(Sender<T>) -> ShardMsg,
    ) -> Result<Vec<T>, CollectorError> {
        let mut pending = Vec::with_capacity(self.senders.len());
        for (shard, tx) in self.senders.iter().enumerate() {
            let (reply_tx, reply_rx) = channel();
            tx.send(make_msg(reply_tx))
                .map_err(|_| CollectorError::Disconnected)?;
            pending.push((shard, reply_rx));
        }
        let mut out = Vec::with_capacity(pending.len());
        for (shard, rx) in pending {
            out.push(
                rx.recv()
                    .map_err(|_| CollectorError::SnapshotFailed { shard })?,
            );
        }
        Ok(out)
    }

    /// Drains all events fired since the last drain.
    pub fn drain_events(&self) -> Vec<Event> {
        self.events_rx
            .lock()
            .expect("event receiver poisoned")
            .try_iter()
            .collect()
    }

    /// Aggregated live counters (relaxed reads; exact after `shutdown`
    /// or a snapshot barrier).
    pub fn stats(&self) -> CollectorStats {
        let mut out = CollectorStats::default();
        for s in &self.stats {
            out.ingested += s.ingested.load(Ordering::Relaxed);
            out.batches += s.batches.load(Ordering::Relaxed);
            out.active_flows += s.active_flows.load(Ordering::Relaxed);
            out.state_bytes += s.state_bytes.load(Ordering::Relaxed);
            out.evicted_lru += s.evicted_lru.load(Ordering::Relaxed);
            out.evicted_ttl += s.evicted_ttl.load(Ordering::Relaxed);
            out.events += s.events.load(Ordering::Relaxed);
            out.events_dropped += s.events_dropped.load(Ordering::Relaxed);
        }
        out
    }

    /// Stops the workers (after they drain already-queued batches) and
    /// returns the final counters. Outstanding handles error on further
    /// pushes.
    pub fn shutdown(mut self) -> CollectorStats {
        self.stop();
        self.stats()
    }

    fn stop(&mut self) {
        for tx in &self.senders {
            let _ = tx.send(ShardMsg::Shutdown);
        }
        self.senders.clear();
        for w in std::mem::take(&mut self.workers) {
            let _ = w.join();
        }
    }
}

impl Drop for Collector {
    /// Dropping without [`shutdown`](Collector::shutdown) still stops
    /// and joins the workers — outstanding handles cannot keep orphaned
    /// shard threads alive (their next push errors `Disconnected`-side
    /// once the workers exit).
    fn drop(&mut self) {
        self.stop();
    }
}
