//! The collector: worker lifecycle, producer registration, snapshots,
//! events, stats.

use crate::config::{CollectorConfig, FlowId, RecorderFactory};
use crate::error::CollectorError;
use crate::events::Event;
use crate::handle::{shard_of, CollectorHandle};
use crate::inference::CollectorSnapshot;
use crate::ring::{self, RingTuning, Waiter};
use crate::shard::{ShardMsg, ShardStats, ShardWorker};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Depth of each shard's control channel. Control traffic is low-rate
/// (registrations, snapshots, shutdown); the bound only matters as a
/// memory cap when a caller registers producers far faster than shards
/// can adopt them.
const CTRL_CAPACITY: usize = 64;

/// Aggregated live counters across all shards.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CollectorStats {
    /// Digests applied.
    pub ingested: u64,
    /// Batches applied.
    pub batches: u64,
    /// Producer rings currently attached across shards.
    pub producers: u64,
    /// Currently tracked flows.
    pub active_flows: u64,
    /// Approximate recorder-state bytes held.
    pub state_bytes: u64,
    /// Flows evicted by the count/byte caps.
    pub evicted_lru: u64,
    /// Flows evicted by idle TTL.
    pub evicted_ttl: u64,
    /// Events fired.
    pub events: u64,
    /// Events discarded because the bounded event queue was full.
    pub events_dropped: u64,
    /// Digests lost by handles: a batch could not be delivered because
    /// the collector had shut down (counts every digest of the lost
    /// batch — nothing disappears silently).
    pub digests_dropped: u64,
    /// Times a producer parked on a full ring (backpressure pressure
    /// gauge: rising fast means shards cannot keep up).
    pub producer_parks: u64,
}

/// Everything a [`CollectorHandle`] needs to mint sibling producers:
/// per-shard control senders and waiters, ring sizing, and the shared
/// loss/backpressure counters. Owned by the [`Collector`] and by every
/// handle (so `CollectorHandle::clone` can register a fresh producer
/// even after the collector value itself moved).
pub(crate) struct ProducerRegistry {
    ctrl: Vec<SyncSender<ShardMsg>>,
    waiters: Vec<Arc<Waiter>>,
    batch_size: usize,
    ring_capacity: usize,
    tuning: RingTuning,
    /// Digests lost in undeliverable batches (see `CollectorStats`).
    pub(crate) dropped: AtomicU64,
    /// Producer park count across all rings ever registered.
    pub(crate) parks: Arc<AtomicU64>,
}

impl ProducerRegistry {
    /// Creates rings to every shard and announces them; the returned
    /// handle is the producer's exclusive front-end.
    ///
    /// If a shard cannot adopt the ring (worker already exited), the
    /// consumer endpoint drops here and the handle's pushes to that
    /// shard fail with [`CollectorError::Disconnected`] — same contract
    /// as any other post-shutdown push.
    pub(crate) fn register(self: &Arc<Self>) -> CollectorHandle {
        let mut producers = Vec::with_capacity(self.ctrl.len());
        for (shard, ctrl) in self.ctrl.iter().enumerate() {
            let (tx, rx) = ring::ring(
                self.ring_capacity,
                self.tuning,
                Arc::clone(&self.waiters[shard]),
                Arc::clone(&self.parks),
            );
            if ctrl.send(ShardMsg::Attach(rx)).is_ok() {
                self.waiters[shard].wake();
            }
            producers.push(tx);
        }
        CollectorHandle::new(producers, self.batch_size, Arc::clone(self))
    }
}

/// A sharded, multi-threaded telemetry collector.
///
/// Spawn with a [`CollectorConfig`] and a [`RecorderFactory`]; register
/// producers with [`register_producer`](Self::register_producer) — each
/// gets its own lock-free ring per shard — and feed them
/// [`DigestReport`](pint_core::DigestReport)s; query via merged
/// [`snapshot`](Self::snapshot)s (full, [flow-filtered](Self::snapshot_flows),
/// or [top-K](Self::snapshot_top_k)); subscribe to rule-driven
/// [`Event`]s; and [`shutdown`](Self::shutdown) to join the workers.
pub struct Collector {
    ctrl: Vec<SyncSender<ShardMsg>>,
    waiters: Vec<Arc<Waiter>>,
    workers: Vec<JoinHandle<()>>,
    events_rx: Mutex<Receiver<Event>>,
    stats: Vec<Arc<ShardStats>>,
    registry: Arc<ProducerRegistry>,
}

impl Collector {
    /// Spawns `config.shards` worker threads and returns the running
    /// collector.
    pub fn spawn(config: CollectorConfig, factory: RecorderFactory) -> Self {
        config.validate();
        // Bounded: a consumer that never drains costs dropped events
        // (counted), not unbounded memory.
        let (events_tx, events_rx) = sync_channel(config.event_capacity);
        let mut ctrl = Vec::with_capacity(config.shards);
        let mut waiters = Vec::with_capacity(config.shards);
        let mut workers = Vec::with_capacity(config.shards);
        let mut stats = Vec::with_capacity(config.shards);
        for shard in 0..config.shards {
            let (tx, rx) = sync_channel(CTRL_CAPACITY);
            let waiter = Arc::new(Waiter::new());
            let shard_stats = Arc::new(ShardStats::default());
            let worker = ShardWorker::new(
                shard,
                &config,
                Arc::clone(&factory),
                events_tx.clone(),
                Arc::clone(&shard_stats),
                Arc::clone(&waiter),
            );
            let join = std::thread::Builder::new()
                .name(format!("pint-collector-{shard}"))
                .spawn(move || worker.run(rx))
                .expect("spawn shard worker");
            ctrl.push(tx);
            waiters.push(waiter);
            workers.push(join);
            stats.push(shard_stats);
        }
        let registry = Arc::new(ProducerRegistry {
            ctrl: ctrl.clone(),
            waiters: waiters.clone(),
            batch_size: config.batch_size,
            ring_capacity: config.ring_capacity,
            tuning: RingTuning {
                spin_limit: config.spin_limit,
                park_timeout: Duration::from_micros(config.park_timeout_us.max(1)),
            },
            dropped: AtomicU64::new(0),
            parks: Arc::new(AtomicU64::new(0)),
        });
        Self {
            ctrl,
            waiters,
            workers,
            events_rx: Mutex::new(events_rx),
            stats,
            registry,
        }
    }

    /// Number of shard workers.
    pub fn shards(&self) -> usize {
        self.ctrl.len()
    }

    /// Registers a new producer: a [`CollectorHandle`] owning one
    /// lock-free SPSC ring to every shard. One per producing thread;
    /// per-flow ordering is preserved within each producer.
    pub fn register_producer(&self) -> CollectorHandle {
        self.registry.register()
    }

    /// A new ingestion handle — alias for
    /// [`register_producer`](Self::register_producer).
    pub fn handle(&self) -> CollectorHandle {
        self.register_producer()
    }

    /// Requests a snapshot from every shard and merges the results.
    ///
    /// Each shard drains every producer ring before answering, so the
    /// snapshot covers all batches shipped (flushed) before this call.
    /// Digests still sitting in un-flushed handle buffers are not
    /// included — flush the handles first for a precise cut.
    pub fn snapshot(&self) -> Result<CollectorSnapshot, CollectorError> {
        self.fanout(ShardMsg::Snapshot)
            .map(CollectorSnapshot::from_shards)
    }

    /// A snapshot restricted to `flows` — dashboards polling a watch
    /// list pay for those flows only, not a clone of every hop sketch
    /// the collector holds. Flows not currently tracked are simply
    /// absent from the result. Only the shards owning the requested
    /// flows are consulted, so the snapshot's aggregate fields
    /// (`ingested`, `shard_stats`) cover *those shards only* — read
    /// fleet-wide totals from [`stats`](Self::stats) or a full
    /// [`snapshot`](Self::snapshot) instead.
    ///
    /// Edge cases: an empty watch list yields an empty snapshot without
    /// consulting any shard; unknown IDs cost one probe on their owning
    /// shard and are absent from the result; duplicate IDs in `flows`
    /// are deduplicated before fan-out.
    ///
    /// ```
    /// use pint_collector::{Collector, CollectorConfig};
    /// use pint_core::dynamic::{DynamicAggregator, DynamicRecorder};
    /// use pint_core::{Digest, DigestReport, FlowRecorder};
    /// use std::sync::Arc;
    ///
    /// let agg = DynamicAggregator::new(1, 8, 100.0, 1.0e7);
    /// let factory_agg = agg.clone();
    /// let collector = Collector::spawn(
    ///     CollectorConfig::with_shards(2),
    ///     Arc::new(move |_flow, report: &DigestReport| {
    ///         Box::new(DynamicRecorder::new_sketched(
    ///             factory_agg.clone(),
    ///             usize::from(report.path_len).max(1),
    ///             64,
    ///         )) as Box<dyn FlowRecorder>
    ///     }),
    /// );
    /// let mut handle = collector.handle();
    /// for flow in 0..10u64 {
    ///     for pid in 0..=flow {
    ///         let mut d = Digest::new(1);
    ///         agg.encode_hop(flow * 100 + pid, 1, 1_000.0, &mut d, 0);
    ///         handle
    ///             .push(DigestReport::new(flow, flow * 100 + pid, d, 1, 0))
    ///             .unwrap();
    ///     }
    /// }
    /// handle.flush().unwrap();
    ///
    /// // Only the watch list is serialized; unknown flow 999 is absent.
    /// let watch = collector.snapshot_flows(&[3, 3, 999]).unwrap();
    /// assert_eq!(watch.num_flows(), 1);
    /// assert_eq!(watch.flow(3).unwrap().packets, 4);
    /// assert_eq!(collector.snapshot_flows(&[]).unwrap().num_flows(), 0);
    /// collector.shutdown();
    /// ```
    pub fn snapshot_flows(&self, flows: &[FlowId]) -> Result<CollectorSnapshot, CollectorError> {
        let shards = self.shards();
        let mut per_shard: Vec<Vec<FlowId>> = vec![Vec::new(); shards];
        let mut sorted: Vec<FlowId> = flows.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        for flow in sorted {
            per_shard[shard_of(flow, shards)].push(flow);
        }
        let mut pending = Vec::new();
        for (shard, wanted) in per_shard.into_iter().enumerate() {
            if wanted.is_empty() {
                continue;
            }
            let (reply_tx, reply_rx) = channel();
            self.ctrl[shard]
                .send(ShardMsg::SnapshotFlows(wanted, reply_tx))
                .map_err(|_| CollectorError::Disconnected)?;
            self.waiters[shard].wake();
            pending.push((shard, reply_rx));
        }
        let mut out = Vec::with_capacity(pending.len());
        for (shard, rx) in pending {
            out.push(
                rx.recv()
                    .map_err(|_| CollectorError::SnapshotFailed { shard })?,
            );
        }
        Ok(CollectorSnapshot::from_shards(out))
    }

    /// A snapshot of the `k` flows with the most recorded packets
    /// (ties broken by ascending flow ID) — the "heaviest flows" panel
    /// without serializing the full flow population. Each shard ranks
    /// locally and returns its own top `k`; the merge keeps the global
    /// top `k` (correct because every globally-heavy flow is heavy in
    /// its owning shard).
    ///
    /// Edge cases: `k = 0` yields an empty snapshot, and `k` larger
    /// than the tracked-flow population yields every flow.
    ///
    /// ```
    /// use pint_collector::{Collector, CollectorConfig};
    /// use pint_core::dynamic::{DynamicAggregator, DynamicRecorder};
    /// use pint_core::{Digest, DigestReport, FlowRecorder};
    /// use std::sync::Arc;
    ///
    /// let agg = DynamicAggregator::new(1, 8, 100.0, 1.0e7);
    /// let factory_agg = agg.clone();
    /// let collector = Collector::spawn(
    ///     CollectorConfig::with_shards(2),
    ///     Arc::new(move |_flow, report: &DigestReport| {
    ///         Box::new(DynamicRecorder::new_sketched(
    ///             factory_agg.clone(),
    ///             usize::from(report.path_len).max(1),
    ///             64,
    ///         )) as Box<dyn FlowRecorder>
    ///     }),
    /// );
    /// let mut handle = collector.handle();
    /// // Flow f records f + 1 packets, so flows 8 and 9 are heaviest.
    /// for flow in 0..10u64 {
    ///     for pid in 0..=flow {
    ///         let mut d = Digest::new(1);
    ///         agg.encode_hop(flow * 100 + pid, 1, 1_000.0, &mut d, 0);
    ///         handle
    ///             .push(DigestReport::new(flow, flow * 100 + pid, d, 1, 0))
    ///             .unwrap();
    ///     }
    /// }
    /// handle.flush().unwrap();
    ///
    /// let top = collector.snapshot_top_k(2).unwrap();
    /// let ids: Vec<u64> = top.flows().map(|&(f, _)| f).collect();
    /// assert_eq!(ids, vec![8, 9], "heaviest two, ascending by ID");
    /// assert_eq!(collector.snapshot_top_k(100).unwrap().num_flows(), 10);
    /// assert_eq!(collector.snapshot_top_k(0).unwrap().num_flows(), 0);
    /// collector.shutdown();
    /// ```
    pub fn snapshot_top_k(&self, k: usize) -> Result<CollectorSnapshot, CollectorError> {
        let merged = self
            .fanout(|reply| ShardMsg::SnapshotTopK(k, reply))
            .map(CollectorSnapshot::from_shards)?;
        Ok(merged.into_top_k(k))
    }

    /// Takes a full [`snapshot`](Self::snapshot) and encodes it as a
    /// ready-to-send wire frame (header included) keyed by this
    /// collector's identity and an `epoch` sequence number — the unit a
    /// fleet aggregator (`pint-fleet`) ingests. Epochs must increase
    /// monotonically per collector; the aggregator discards frames whose
    /// epoch is older than what it already holds for `collector_id`.
    pub fn export_snapshot_frame(
        &self,
        collector_id: u64,
        epoch: u64,
    ) -> Result<Vec<u8>, CollectorError> {
        let snapshot = self.snapshot()?;
        Ok(crate::wire::SnapshotFrame {
            collector_id,
            epoch,
            snapshot,
        }
        .to_frame_bytes())
    }

    /// Blocks until every batch shipped to the shard rings before this
    /// call has been applied — a cheap sync point (no state is
    /// serialized, unlike [`snapshot`](Self::snapshot)). Digests still
    /// in un-flushed handle buffers are not covered; flush the handles
    /// first.
    pub fn barrier(&self) -> Result<(), CollectorError> {
        self.fanout(ShardMsg::Barrier).map(|_| ())
    }

    /// Sends a request carrying a reply channel to every shard, then
    /// collects one reply per shard (in shard order).
    fn fanout<T>(
        &self,
        make_msg: impl Fn(Sender<T>) -> ShardMsg,
    ) -> Result<Vec<T>, CollectorError> {
        let mut pending = Vec::with_capacity(self.ctrl.len());
        for (shard, tx) in self.ctrl.iter().enumerate() {
            let (reply_tx, reply_rx) = channel();
            tx.send(make_msg(reply_tx))
                .map_err(|_| CollectorError::Disconnected)?;
            self.waiters[shard].wake();
            pending.push((shard, reply_rx));
        }
        let mut out = Vec::with_capacity(pending.len());
        for (shard, rx) in pending {
            out.push(
                rx.recv()
                    .map_err(|_| CollectorError::SnapshotFailed { shard })?,
            );
        }
        Ok(out)
    }

    /// Drains all events fired since the last drain.
    pub fn drain_events(&self) -> Vec<Event> {
        self.events_rx
            .lock()
            .expect("event receiver poisoned")
            .try_iter()
            .collect()
    }

    /// Aggregated live counters (relaxed reads; exact after `shutdown`
    /// or a snapshot barrier).
    pub fn stats(&self) -> CollectorStats {
        let mut out = CollectorStats::default();
        for s in &self.stats {
            out.ingested += s.ingested.load(Ordering::Relaxed);
            out.batches += s.batches.load(Ordering::Relaxed);
            out.producers += s.producers.load(Ordering::Relaxed);
            out.active_flows += s.active_flows.load(Ordering::Relaxed);
            out.state_bytes += s.state_bytes.load(Ordering::Relaxed);
            out.evicted_lru += s.evicted_lru.load(Ordering::Relaxed);
            out.evicted_ttl += s.evicted_ttl.load(Ordering::Relaxed);
            out.events += s.events.load(Ordering::Relaxed);
            out.events_dropped += s.events_dropped.load(Ordering::Relaxed);
        }
        out.digests_dropped = self.registry.dropped.load(Ordering::Relaxed);
        out.producer_parks = self.registry.parks.load(Ordering::Relaxed);
        out
    }

    /// Stops the workers (after they drain already-queued batches) and
    /// returns the final counters. Outstanding handles error on further
    /// pushes.
    pub fn shutdown(mut self) -> CollectorStats {
        self.stop();
        self.stats()
    }

    fn stop(&mut self) {
        for (shard, tx) in self.ctrl.iter().enumerate() {
            let _ = tx.send(ShardMsg::Shutdown);
            self.waiters[shard].wake();
        }
        self.ctrl.clear();
        for w in std::mem::take(&mut self.workers) {
            let _ = w.join();
        }
    }
}

impl Drop for Collector {
    /// Dropping without [`shutdown`](Collector::shutdown) still stops
    /// and joins the workers — outstanding handles cannot keep orphaned
    /// shard threads alive (their next push fails `Disconnected` once
    /// the workers exit).
    fn drop(&mut self) {
        self.stop();
    }
}
