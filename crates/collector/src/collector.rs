//! The collector: worker lifecycle, producer registration, snapshots,
//! events, stats.

use crate::config::{CollectorConfig, FlowId, RecorderFactory};
use crate::error::CollectorError;
use crate::events::Event;
use crate::flow_table::TableStats;
use crate::handle::{shard_of, CollectorHandle};
use crate::inference::{CollectorSnapshot, FlowSummary, ShardSnapshot};
use crate::prefilter::Bloom;
use crate::ring::{self, RingTuning, Waiter};
use crate::shard::{ShardMsg, ShardQuery, ShardSelect, ShardStats, ShardWorker};
use pint_obs::{ClockHandle, Counter, Gauge, Histogram, MetricsRegistry};
use pint_query::{
    QueryBackend, QueryError, QueryPlan, QueryResult, Selector, TableTotals, Watermark,
};
use pint_store::{Journal, Replayer, StoreReader};
use pint_wire::store::CoveredSource;
use pint_wire::WireDecode;
use std::sync::atomic::AtomicU64;
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Depth of each shard's control channel. Control traffic is low-rate
/// (registrations, snapshots, shutdown); the bound only matters as a
/// memory cap when a caller registers producers far faster than shards
/// can adopt them.
const CTRL_CAPACITY: usize = 64;

/// Aggregated live counters across all shards.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CollectorStats {
    /// Digests applied.
    pub ingested: u64,
    /// Batches applied.
    pub batches: u64,
    /// Producer rings currently attached across shards.
    pub producers: u64,
    /// Currently tracked flows.
    pub active_flows: u64,
    /// Approximate recorder-state bytes held.
    pub state_bytes: u64,
    /// Flows evicted by the count/byte caps.
    pub evicted_lru: u64,
    /// Flows evicted by idle TTL.
    pub evicted_ttl: u64,
    /// Events fired.
    pub events: u64,
    /// Events discarded because the bounded event queue was full.
    pub events_dropped: u64,
    /// Digests lost by handles: a batch could not be delivered because
    /// the collector had shut down (counts every digest of the lost
    /// batch — nothing disappears silently).
    pub digests_dropped: u64,
    /// Times a producer parked on a full ring (backpressure pressure
    /// gauge: rising fast means shards cannot keep up).
    pub producer_parks: u64,
    /// Digests dropped by the ingest-side watch-list pre-filter before
    /// buffering (zero when `prefilter` is unset).
    pub digests_prefiltered: u64,
}

/// Everything a [`CollectorHandle`] needs to mint sibling producers:
/// per-shard control senders and waiters, ring sizing, and the shared
/// loss/backpressure counters. Owned by the [`Collector`] and by every
/// handle (so `CollectorHandle::clone` can register a fresh producer
/// even after the collector value itself moved).
pub(crate) struct ProducerRegistry {
    ctrl: Vec<SyncSender<ShardMsg>>,
    waiters: Vec<Arc<Waiter>>,
    batch_size: usize,
    ring_capacity: usize,
    tuning: RingTuning,
    /// Digests lost in undeliverable batches (see `CollectorStats`);
    /// exposed as `collector_digests_dropped_total`.
    pub(crate) dropped: Counter,
    /// Producer park count across all rings ever registered; the ring
    /// layer owns the cell, the registry exposes it as
    /// `collector_producer_parks_total`.
    pub(crate) parks: Arc<AtomicU64>,
    /// Batch enqueue latency (`collector_stage_enqueue_ns`): one sample
    /// per shipped batch, recorded producer-side.
    pub(crate) enqueue: Histogram,
    /// Clock the enqueue timing reads (the registry's clock).
    pub(crate) clock: ClockHandle,
    /// Watch-list bloom filter shared by every producer handle; `None`
    /// ingests all flows.
    pub(crate) prefilter: Option<Arc<Bloom>>,
    /// Digests dropped by the pre-filter
    /// (`collector_digests_prefiltered_total`).
    pub(crate) prefiltered: Counter,
    /// Ship-path batch buffers allocated fresh because the recycle lane
    /// was empty (`collector_batch_allocs_total`); flat after warmup in
    /// steady state.
    pub(crate) batch_allocs: Counter,
    /// Ship-path batch buffers reused from the recycle lane
    /// (`collector_batches_recycled_total`).
    pub(crate) recycled: Counter,
    /// Live producer backoff policy (`collector_producer_adaptive_spin`
    /// / `_park_us`). Producers publish after each ship; with several
    /// producers the gauges show the most recent shipper (last writer
    /// wins) — a sample of the fleet, not an aggregate.
    pub(crate) producer_spin: Gauge,
    pub(crate) producer_park_us: Gauge,
}

impl ProducerRegistry {
    /// Creates rings to every shard and announces them; the returned
    /// handle is the producer's exclusive front-end.
    ///
    /// If a shard cannot adopt the ring (worker already exited), the
    /// consumer endpoint drops here and the handle's pushes to that
    /// shard fail with [`CollectorError::Disconnected`] — same contract
    /// as any other post-shutdown push.
    pub(crate) fn register(self: &Arc<Self>) -> CollectorHandle {
        let mut producers = Vec::with_capacity(self.ctrl.len());
        for (shard, ctrl) in self.ctrl.iter().enumerate() {
            let (tx, mut rx) = ring::ring(
                self.ring_capacity,
                self.tuning,
                Arc::clone(&self.waiters[shard]),
                Arc::clone(&self.parks),
            );
            // Seed the recycle lane before the consumer endpoint leaves
            // this thread: with the handle's initial buffer that makes
            // *two* buffers per lane from the first ship, so a re-arm
            // finds the lane non-empty even when the shard has not yet
            // drained the batch just pushed — steady-state recycling
            // must not depend on the drain winning that race.
            rx.recycle(Vec::with_capacity(self.batch_size));
            if ctrl.send(ShardMsg::Attach(rx)).is_ok() {
                self.waiters[shard].wake();
            }
            producers.push(tx);
        }
        CollectorHandle::new(producers, self.batch_size, Arc::clone(self))
    }
}

/// A sharded, multi-threaded telemetry collector.
///
/// Spawn with a [`CollectorConfig`] and a [`RecorderFactory`]; register
/// producers with [`register_producer`](Self::register_producer) — each
/// gets its own lock-free ring per shard — and feed them
/// [`DigestReport`](pint_core::DigestReport)s; read via typed
/// [`query`](Self::query) plans (selectors × projections, routed only
/// to the shards that can answer) or a full merged
/// [`snapshot`](Self::snapshot); subscribe to rule-driven [`Event`]s;
/// and [`shutdown`](Self::shutdown) to join the workers.
pub struct Collector {
    ctrl: Vec<SyncSender<ShardMsg>>,
    waiters: Vec<Arc<Waiter>>,
    workers: Vec<JoinHandle<()>>,
    events_rx: Mutex<Receiver<Event>>,
    stats: Vec<Arc<ShardStats>>,
    registry: Arc<ProducerRegistry>,
    metrics: MetricsRegistry,
    /// Per-shard `collector_newest_ts` gauges (shared cells with the
    /// shard workers) — read by [`watermark`](Self::watermark).
    newest_ts: Vec<pint_obs::Gauge>,
    /// The durability journal, once
    /// [`attach_store`](Self::attach_store) installs one.
    journal: Mutex<Option<Journal>>,
    /// Checkpoint state a compacted-log [`restore`](Self::restore)
    /// seeded — merged under live shard state on every read.
    base: Option<BaseOverlay>,
}

/// The decoded checkpoint a compacted-log restore seeds: replay can no
/// longer reach the origin, so this state is held as a read-time
/// overlay (fresh recorders cannot be reconstructed from summaries)
/// and merged under live rows exactly like a `FleetView` merges two
/// collectors.
struct BaseOverlay {
    /// Checkpoint flows, ascending by ID.
    flows: Vec<(FlowId, FlowSummary)>,
    /// Checkpoint-time shard eviction counters.
    shard_stats: Vec<TableStats>,
    /// Digests the checkpointed collector had applied.
    ingested: u64,
    /// Newest flow timestamp in the checkpoint (folded into
    /// [`Collector::watermark`]).
    newest_ts: u64,
}

/// What [`Collector::restore`] rebuilt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestoreReport {
    /// The newest consistent epoch the log reached (the restore
    /// target), `None` for an empty log.
    pub epoch: Option<u64>,
    /// Whether state was seeded from a checkpoint overlay (compacted
    /// log) instead of replaying the full delta chain.
    pub from_checkpoint: bool,
    /// Delta batches replayed into the collector.
    pub batches: u64,
    /// Digest reports inside them.
    pub digests: u64,
    /// Persisted duplicates (or checkpoint-covered deltas) skipped.
    pub duplicates: u64,
}

impl Collector {
    /// Spawns `config.shards` worker threads and returns the running
    /// collector.
    pub fn spawn(config: CollectorConfig, factory: RecorderFactory) -> Self {
        config.validate();
        let metrics = config.metrics.clone().unwrap_or_default();
        // Bounded: a consumer that never drains costs dropped events
        // (counted), not unbounded memory.
        let (events_tx, events_rx) = sync_channel(config.event_capacity);
        let mut ctrl = Vec::with_capacity(config.shards);
        let mut waiters = Vec::with_capacity(config.shards);
        let mut workers = Vec::with_capacity(config.shards);
        let mut stats = Vec::with_capacity(config.shards);
        for shard in 0..config.shards {
            let (tx, rx) = sync_channel(CTRL_CAPACITY);
            let waiter = Arc::new(Waiter::new());
            let shard_stats = Arc::new(ShardStats::register(&metrics, shard as u32));
            let worker = ShardWorker::new(
                shard,
                &config,
                Arc::clone(&factory),
                events_tx.clone(),
                Arc::clone(&shard_stats),
                Arc::clone(&waiter),
                &metrics,
            );
            let join = std::thread::Builder::new()
                .name(format!("pint-collector-{shard}"))
                .spawn(move || worker.run(rx))
                .expect("spawn shard worker");
            ctrl.push(tx);
            waiters.push(waiter);
            workers.push(join);
            stats.push(shard_stats);
        }
        let registry = Arc::new(ProducerRegistry {
            ctrl: ctrl.clone(),
            waiters: waiters.clone(),
            batch_size: config.batch_size,
            ring_capacity: config.ring_capacity,
            tuning: RingTuning {
                spin_limit: config.spin_limit,
                park_timeout: Duration::from_micros(config.park_timeout_us.max(1)),
            },
            dropped: metrics.counter("collector_digests_dropped_total"),
            parks: {
                let cell = Arc::new(AtomicU64::new(0));
                metrics.counter_cell("collector_producer_parks_total", Arc::clone(&cell));
                cell
            },
            enqueue: metrics.histogram("collector_stage_enqueue_ns"),
            clock: metrics.clock(),
            prefilter: config.prefilter.as_ref().map(|p| Arc::new(Bloom::build(p))),
            prefiltered: metrics.counter("collector_digests_prefiltered_total"),
            batch_allocs: metrics.counter("collector_batch_allocs_total"),
            recycled: metrics.counter("collector_batches_recycled_total"),
            producer_spin: metrics.gauge("collector_producer_adaptive_spin"),
            producer_park_us: metrics.gauge("collector_producer_adaptive_park_us"),
        });
        let newest_ts = (0..config.shards)
            .map(|shard| metrics.gauge_shard("collector_newest_ts", shard as u32))
            .collect();
        Self {
            ctrl,
            waiters,
            workers,
            events_rx: Mutex::new(events_rx),
            stats,
            registry,
            metrics,
            newest_ts,
            journal: Mutex::new(None),
            base: None,
        }
    }

    /// Attaches a durability journal: from now on every applied batch
    /// is teed — off the shard hot path, never blocking; a full queue
    /// drops and counts into `store_journal_dropped_total` — into the
    /// journal's store file, and [`checkpoint`](Self::checkpoint)
    /// writes full-state snapshots into the same log. Each shard
    /// numbers its journaled deltas above what the log already holds
    /// for it, so re-attaching after a restore appends a new
    /// generation instead of colliding with the old one in replay's
    /// dedup window.
    pub fn attach_store(&self, journal: Journal) {
        for (shard, tx) in self.ctrl.iter().enumerate() {
            let msg = ShardMsg::AttachJournal {
                sender: journal.sender(),
                start_seq: journal.delta_floor(shard as u64),
            };
            if tx.send(msg).is_ok() {
                self.waiters[shard].wake();
            }
        }
        *self.journal.lock().expect("journal slot") = Some(journal);
    }

    /// Journals a full-state checkpoint stamped `epoch` (monotonically
    /// increasing, caller-driven — every N seconds or every N applied
    /// batches, whatever cadence fits). Each shard reports the seq of
    /// its last teed delta *in the same reply* as its rows, and that
    /// explicit list rides the checkpoint as its `covered` coverage —
    /// so the checkpoint claims exactly the deltas whose data its
    /// snapshot holds. Deltas shards apply after answering stay
    /// uncovered even when the journal writes them before the
    /// checkpoint record dequeues; compaction keeps them and restore
    /// replays them. `Ok(false)` when no store is attached (or the
    /// journal already stopped).
    pub fn checkpoint(&self, epoch: u64) -> Result<bool, CollectorError> {
        let shards = self.gather(&Selector::All, None)?;
        let covered = shards
            .iter()
            .filter(|s| s.journal_seq > 0)
            .map(|s| CoveredSource::floor_only(s.shard as u64, s.journal_seq))
            .collect();
        let snapshot = self.overlay(CollectorSnapshot::from_shards(shards));
        let guard = self.journal.lock().expect("journal slot");
        let Some(journal) = guard.as_ref() else {
            return Ok(false);
        };
        let payload = crate::wire::SnapshotFrame {
            collector_id: 0,
            epoch,
            snapshot,
        }
        .to_frame_bytes();
        Ok(journal.checkpoint(0, epoch, payload, covered))
    }

    /// Blocks until every journaled record enqueued so far is written
    /// and synced to the store file. No-op without an attached store.
    pub fn flush_store(&self) {
        if let Some(journal) = self.journal.lock().expect("journal slot").as_ref() {
            journal.flush();
        }
    }

    /// Rebuilds a collector from a persisted store log, replaying to
    /// the newest consistent epoch the log holds.
    ///
    /// * **Uncompacted log** — every delta replays (in journal order,
    ///   deduplicated by the same `SourceDedup` window live receivers
    ///   run) through fresh recorders: the result answers every query
    ///   plan byte-identically to a collector that never restarted
    ///   (pinned by `tests/persistence.rs`).
    /// * **Compacted log** — the delta chain no longer reaches the
    ///   origin, so the newest checkpoint decodes into a base overlay,
    ///   the replay windows are primed with the checkpoint's exact
    ///   `covered` coverage, and only uncovered deltas replay. Reads
    ///   then merge
    ///   base under live exactly like a `FleetView` merges two
    ///   collectors.
    ///
    /// Replay runs through an ordinary producer handle, so per-shard
    /// apply order matches journal order; delivered batches count into
    /// `store_restore_replayed_total` in the collector's registry.
    /// Restore does not itself attach a journal — call
    /// [`attach_store`](Self::attach_store) afterwards (typically on
    /// the same file, reopened) to resume journaling.
    pub fn restore(
        config: CollectorConfig,
        factory: RecorderFactory,
        reader: &StoreReader,
    ) -> Result<(Self, RestoreReport), CollectorError> {
        let mut collector = Self::spawn(config, factory);
        let mut replayer = Replayer::new(reader).observed(&collector.metrics);
        let mut report = RestoreReport {
            epoch: reader.newest_epoch(),
            from_checkpoint: false,
            batches: 0,
            digests: 0,
            duplicates: 0,
        };
        if reader.is_compacted() {
            if let Some(i) = reader.newest_checkpoint() {
                let pint_wire::store::StoreRecord::Checkpoint(c) = &reader.records()[i] else {
                    unreachable!("newest_checkpoint indexes a checkpoint record");
                };
                collector.base = Some(decode_checkpoint(&c.payload)?);
                replayer = replayer.primed(&c.covered);
                report.from_checkpoint = true;
            }
        }
        let mut handle = collector.register_producer();
        let mut push_err = None;
        let stats = replayer.replay(&mut |_, reports| {
            for r in reports {
                if let Err(e) = handle.push(r) {
                    push_err.get_or_insert(e);
                }
            }
        });
        if let Some(e) = push_err {
            return Err(e);
        }
        handle.flush()?;
        collector.barrier()?;
        report.batches = stats.batches;
        report.digests = stats.digests;
        report.duplicates = stats.duplicates;
        Ok((collector, report))
    }

    /// The collector's freshness stamp: the newest report timestamp any
    /// shard has applied (a collector applies everything it is fed, so
    /// `newest_seen == newest_applied`), with one source per shard.
    /// Relaxed reads — exact after a [`barrier`](Self::barrier).
    pub fn watermark(&self) -> Watermark {
        let mut newest = self.newest_ts.iter().map(|g| g.get()).max().unwrap_or(0);
        if let Some(base) = &self.base {
            // A restored-from-checkpoint collector is at least as fresh
            // as the state it restored.
            newest = newest.max(base.newest_ts);
        }
        Watermark {
            newest_applied: newest,
            newest_seen: newest,
            sources: self.newest_ts.len() as u64,
        }
    }

    /// The registry this collector publishes its self-telemetry into —
    /// the one from [`CollectorConfig::metrics`], or a private default.
    /// Snapshot it locally, render it as text, or serve it over the
    /// `Metrics` wire frame by sharing it with a fleet tier.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Number of shard workers.
    pub fn shards(&self) -> usize {
        self.ctrl.len()
    }

    /// Registers a new producer: a [`CollectorHandle`] owning one
    /// lock-free SPSC ring to every shard. One per producing thread;
    /// per-flow ordering is preserved within each producer.
    pub fn register_producer(&self) -> CollectorHandle {
        self.registry.register()
    }

    /// A new ingestion handle — alias for
    /// [`register_producer`](Self::register_producer).
    pub fn handle(&self) -> CollectorHandle {
        self.register_producer()
    }

    /// Requests a snapshot from every shard and merges the results.
    ///
    /// Each shard drains every producer ring before answering, so the
    /// snapshot covers all batches shipped (flushed) before this call.
    /// Digests still sitting in un-flushed handle buffers are not
    /// included — flush the handles first for a precise cut.
    ///
    /// For targeted reads (a flow set, top-K, delta polls), prefer
    /// [`query`](Self::query): it serializes only the selected flows.
    pub fn snapshot(&self) -> Result<CollectorSnapshot, CollectorError> {
        let live = self
            .gather(&Selector::All, None)
            .map(CollectorSnapshot::from_shards)?;
        Ok(self.overlay(live))
    }

    /// Folds the restore base (if any) under a live merge: per-flow
    /// summaries merge base-then-live via the shared
    /// [`FlowSummary::merge`], shard stats concatenate, ingested
    /// counts sum — the same associative fold `FleetView::merge` runs,
    /// so a compacted restore answers like the fleet merge of
    /// "checkpoint" and "replayed tail".
    ///
    /// Creation counters are reconciled: a flow present in both halves
    /// was created once in the original history but counted by the
    /// checkpoint *and* by the replay's fresh table, so the overlap is
    /// subtracted from the concatenated `created` totals. Residual
    /// drift remains for flows the replay created and then evicted
    /// before this read (absent from the live rows, so the overlap is
    /// invisible) — eviction counters likewise track this process's
    /// history, not the pre-crash twin's, once replay-era evictions
    /// differ.
    fn overlay(&self, live: CollectorSnapshot) -> CollectorSnapshot {
        let Some(base) = &self.base else { return live };
        let (live_flows, live_stats, live_ingested) = live.into_parts();
        let mut all = base.flows.clone();
        all.extend(live_flows);
        // Stable sort: base rows precede live rows per flow, so the
        // fold merges base-then-live deterministically.
        all.sort_by_key(|&(f, _)| f);
        let mut merged: Vec<(FlowId, FlowSummary)> = Vec::with_capacity(all.len());
        let mut rejoined = 0u64;
        for (flow, summary) in all {
            match merged.last_mut() {
                Some((last, dst)) if *last == flow => {
                    dst.merge(summary);
                    rejoined += 1;
                }
                _ => merged.push((flow, summary)),
            }
        }
        let mut stats = base.shard_stats.clone();
        stats.extend(live_stats);
        // Spread the double-count correction across the concatenated
        // entries; only the summed totals are read downstream.
        let mut excess = rejoined;
        for s in stats.iter_mut().rev() {
            let take = s.created.min(excess);
            s.created -= take;
            excess -= take;
            if excess == 0 {
                break;
            }
        }
        CollectorSnapshot::from_parts(merged, stats, base.ingested.saturating_add(live_ingested))
    }

    /// Executes a compiled [`QueryPlan`] against live shard state — the
    /// collector's tier of the workspace-wide query API (the same plan
    /// runs unchanged on a fleet view or over TCP, with identical
    /// results on identical state).
    ///
    /// Routing is selector-aware: a flow-set or watch-list plan
    /// consults only the shards owning those flows, and every selector
    /// narrows *before* summaries are serialized, so a targeted query
    /// on a large table costs a small fraction of a full
    /// [`snapshot`](Self::snapshot) (priced in `BENCH_query.json`).
    /// Like snapshots, each consulted shard drains its rings first, so
    /// the answer covers everything flushed before the call.
    ///
    /// ```
    /// use pint_collector::{Collector, CollectorConfig};
    /// use pint_core::dynamic::{DynamicAggregator, DynamicRecorder};
    /// use pint_core::{Digest, DigestReport, FlowRecorder};
    /// use pint_query::{QueryResult, TelemetryQuery};
    /// use std::sync::Arc;
    ///
    /// let agg = DynamicAggregator::new(1, 8, 100.0, 1.0e7);
    /// let factory_agg = agg.clone();
    /// let collector = Collector::spawn(
    ///     CollectorConfig::with_shards(2),
    ///     Arc::new(move |_flow, report: &DigestReport| {
    ///         Box::new(DynamicRecorder::new_sketched(
    ///             factory_agg.clone(),
    ///             usize::from(report.path_len).max(1),
    ///             64,
    ///         )) as Box<dyn FlowRecorder>
    ///     }),
    /// );
    /// let mut handle = collector.handle();
    /// // Flow f records f + 1 packets, so flows 8 and 9 are heaviest.
    /// for flow in 0..10u64 {
    ///     for pid in 0..=flow {
    ///         let mut d = Digest::new(1);
    ///         agg.encode_hop(flow * 100 + pid, 1, 1_000.0, &mut d, 0);
    ///         handle
    ///             .push(DigestReport::new(flow, flow * 100 + pid, d, 1, 0))
    ///             .unwrap();
    ///     }
    /// }
    /// handle.flush().unwrap();
    ///
    /// // Top-2 by packets: heaviest first, only two flows serialized.
    /// let top = collector
    ///     .query(&TelemetryQuery::new().top_k(2).plan().unwrap())
    ///     .unwrap();
    /// match top {
    ///     QueryResult::Summaries(rows) => {
    ///         let ids: Vec<u64> = rows.iter().map(|&(f, _)| f).collect();
    ///         assert_eq!(ids, vec![9, 8], "heaviest first");
    ///     }
    ///     other => panic!("unexpected {other:?}"),
    /// }
    ///
    /// // A watch list keeps request order; unknown flow 999 is absent.
    /// let watch = collector
    ///     .query(&TelemetryQuery::new().watch([7, 999, 3]).plan().unwrap())
    ///     .unwrap();
    /// match watch {
    ///     QueryResult::Summaries(rows) => {
    ///         let ids: Vec<u64> = rows.iter().map(|&(f, _)| f).collect();
    ///         assert_eq!(ids, vec![7, 3], "request order, unknown absent");
    ///     }
    ///     other => panic!("unexpected {other:?}"),
    /// }
    /// collector.shutdown();
    /// ```
    pub fn query(&self, plan: &QueryPlan) -> Result<QueryResult, QueryError> {
        plan.validate()?;
        if self.base.is_some() {
            return self.query_overlaid(plan);
        }
        let shards = self.gather(&plan.selector, plan.options.updated_since)?;
        // Table totals are whole-collector counters; only a full-table
        // selector consults every shard, so only it reports them.
        let table = matches!(plan.selector, Selector::All).then(|| {
            let mut t = TableTotals::default();
            for s in &shards {
                t.created += s.table_stats.created;
                t.evicted_lru += s.table_stats.evicted_lru;
                t.evicted_ttl += s.table_stats.evicted_ttl;
                t.ingested += s.ingested;
            }
            t
        });
        let mut rows: Vec<(FlowId, FlowSummary)> =
            shards.into_iter().flat_map(|s| s.flows).collect();
        rows.sort_by_key(|&(f, _)| f);
        // Shards only pre-narrowed; the shared refinement owns final
        // ordering and tie-breaking, identically on every backend.
        let rows = pint_query::refine(rows, plan);
        Ok(pint_query::project(rows, &plan.projection, table))
    }

    /// The read path of a compacted restore: shard-side narrowing
    /// would lose base contributions (a flow's rank or path may only
    /// complete once its checkpoint half merges in), so plans run
    /// against the full overlaid snapshot. `refine` is documented
    /// superset-idempotent, so passing every merged row yields exactly
    /// the narrow result the selector names.
    fn query_overlaid(&self, plan: &QueryPlan) -> Result<QueryResult, QueryError> {
        let snap = self.snapshot()?;
        let table = matches!(plan.selector, Selector::All).then(|| {
            let mut t = TableTotals {
                ingested: snap.ingested,
                ..TableTotals::default()
            };
            for s in &snap.shard_stats {
                t.created += s.created;
                t.evicted_lru += s.evicted_lru;
                t.evicted_ttl += s.evicted_ttl;
            }
            t
        });
        // The delta cutoff filters *selection*, not history: a merged
        // row keeps its base half even when only the live half is
        // fresh, so it is applied here on merged rows, never before
        // the merge.
        let since = plan.options.updated_since;
        let rows: Vec<(FlowId, FlowSummary)> = snap
            .flows()
            .filter(|(_, s)| since.is_none_or(|t| s.last_ts > t))
            .map(|(f, s)| (*f, s.clone()))
            .collect();
        let rows = pint_query::refine(rows, plan);
        Ok(pint_query::project(rows, &plan.projection, table))
    }

    /// Routes one selector to the shards that can answer it and
    /// collects their replies: flow sets and watch lists go only to
    /// the owning shards (with each shard's slice of the IDs); other
    /// selectors fan out, already narrowed shard-side (per-shard
    /// top-K, path predicate, delta cutoff). This is the routing layer
    /// under both [`query`](Self::query) and the legacy snapshot
    /// methods.
    fn gather(
        &self,
        selector: &Selector,
        since: Option<u64>,
    ) -> Result<Vec<ShardSnapshot>, CollectorError> {
        let select_all = |select: ShardSelect| ShardQuery { select, since };
        match selector {
            Selector::All => self.fanout(|r| ShardMsg::Query(select_all(ShardSelect::All), r)),
            Selector::TopK(k) => {
                self.fanout(|r| ShardMsg::Query(select_all(ShardSelect::TopK(*k)), r))
            }
            Selector::PathThroughSwitch(s) => {
                self.fanout(|r| ShardMsg::Query(select_all(ShardSelect::PathThrough(*s)), r))
            }
            // Kind membership is per-flow state every shard holds; fan
            // out unfiltered and let the shared refinement drop
            // non-matching rows (no serialization happens in-process,
            // so there is nothing to narrow ahead of).
            Selector::OfKind(_) => {
                self.fanout(|r| ShardMsg::Query(select_all(ShardSelect::All), r))
            }
            Selector::FlowSet(ids) | Selector::WatchList(ids) => {
                let shards = self.shards();
                let mut sorted = ids.clone();
                sorted.sort_unstable();
                sorted.dedup();
                let mut per_shard: Vec<Vec<FlowId>> = vec![Vec::new(); shards];
                for flow in sorted {
                    per_shard[shard_of(flow, shards)].push(flow);
                }
                let mut pending = Vec::new();
                for (shard, wanted) in per_shard.into_iter().enumerate() {
                    if wanted.is_empty() {
                        continue;
                    }
                    let (reply_tx, reply_rx) = channel();
                    self.ctrl[shard]
                        .send(ShardMsg::Query(
                            ShardQuery {
                                select: ShardSelect::Flows(wanted),
                                since,
                            },
                            reply_tx,
                        ))
                        .map_err(|_| CollectorError::Disconnected)?;
                    self.waiters[shard].wake();
                    pending.push((shard, reply_rx));
                }
                Self::collect(pending)
            }
        }
    }

    /// Collects one reply per pending shard request (in request order).
    fn collect<T>(pending: Vec<(usize, Receiver<T>)>) -> Result<Vec<T>, CollectorError> {
        let mut out = Vec::with_capacity(pending.len());
        for (shard, rx) in pending {
            out.push(
                rx.recv()
                    .map_err(|_| CollectorError::SnapshotFailed { shard })?,
            );
        }
        Ok(out)
    }

    /// A snapshot restricted to `flows` — only the owning shards are
    /// consulted, and the snapshot's aggregate fields (`ingested`,
    /// `shard_stats`) cover *those shards only*. Flows not currently
    /// tracked are simply absent; duplicates are deduplicated; an
    /// empty list consults no shard.
    ///
    /// Deprecated shim over the query tier's plan routing — kept for
    /// one release. Use [`query`](Self::query) with
    /// [`TelemetryQuery::flows`](pint_query::TelemetryQuery::flows)
    /// (or `watch` for request-ordered rows) to get typed
    /// [`QueryResult`] rows instead of a snapshot.
    #[deprecated(
        note = "use `Collector::query` with `TelemetryQuery::new().flows(..)` — same shard routing, typed rows"
    )]
    pub fn snapshot_flows(&self, flows: &[FlowId]) -> Result<CollectorSnapshot, CollectorError> {
        self.gather(&Selector::FlowSet(flows.to_vec()), None)
            .map(CollectorSnapshot::from_shards)
    }

    /// A snapshot of the `k` flows with the most recorded packets
    /// (ties broken by ascending flow ID; the returned snapshot is
    /// ID-sorted). `k = 0` yields an empty snapshot; `k` past the
    /// population yields every flow.
    ///
    /// Deprecated shim over the query tier's plan routing — kept for
    /// one release. Use [`query`](Self::query) with
    /// [`TelemetryQuery::top_k`](pint_query::TelemetryQuery::top_k),
    /// which returns rank-ordered rows (heaviest first).
    #[deprecated(
        note = "use `Collector::query` with `TelemetryQuery::new().top_k(k)` — same shard routing, typed rows"
    )]
    pub fn snapshot_top_k(&self, k: usize) -> Result<CollectorSnapshot, CollectorError> {
        let merged = self
            .gather(&Selector::TopK(k), None)
            .map(CollectorSnapshot::from_shards)?;
        Ok(merged.into_top_k(k))
    }

    /// Takes a full [`snapshot`](Self::snapshot) and encodes it as a
    /// ready-to-send wire frame (header included) keyed by this
    /// collector's identity and an `epoch` sequence number — the unit a
    /// fleet aggregator (`pint-fleet`) ingests. Epochs must increase
    /// monotonically per collector; the aggregator discards frames whose
    /// epoch is older than what it already holds for `collector_id`.
    pub fn export_snapshot_frame(
        &self,
        collector_id: u64,
        epoch: u64,
    ) -> Result<Vec<u8>, CollectorError> {
        let snapshot = self.snapshot()?;
        Ok(crate::wire::SnapshotFrame {
            collector_id,
            epoch,
            snapshot,
        }
        .to_frame_bytes())
    }

    /// Blocks until every batch shipped to the shard rings before this
    /// call has been applied — a cheap sync point (no state is
    /// serialized, unlike [`snapshot`](Self::snapshot)). Digests still
    /// in un-flushed handle buffers are not covered; flush the handles
    /// first.
    pub fn barrier(&self) -> Result<(), CollectorError> {
        self.fanout(ShardMsg::Barrier).map(|_| ())
    }

    /// Sends a request carrying a reply channel to every shard, then
    /// collects one reply per shard (in shard order).
    fn fanout<T>(
        &self,
        make_msg: impl Fn(Sender<T>) -> ShardMsg,
    ) -> Result<Vec<T>, CollectorError> {
        let mut pending = Vec::with_capacity(self.ctrl.len());
        for (shard, tx) in self.ctrl.iter().enumerate() {
            let (reply_tx, reply_rx) = channel();
            tx.send(make_msg(reply_tx))
                .map_err(|_| CollectorError::Disconnected)?;
            self.waiters[shard].wake();
            pending.push((shard, reply_rx));
        }
        Self::collect(pending)
    }

    /// Drains all events fired since the last drain.
    pub fn drain_events(&self) -> Vec<Event> {
        self.events_rx
            .lock()
            .expect("event receiver poisoned")
            .try_iter()
            .collect()
    }

    /// Aggregated live counters (relaxed reads; exact after `shutdown`
    /// or a snapshot barrier).
    pub fn stats(&self) -> CollectorStats {
        let mut out = CollectorStats::default();
        for s in &self.stats {
            out.ingested += s.ingested.get();
            out.batches += s.batches.get();
            out.producers += s.producers.get();
            out.active_flows += s.active_flows.get();
            out.state_bytes += s.state_bytes.get();
            out.evicted_lru += s.evicted_lru.get();
            out.evicted_ttl += s.evicted_ttl.get();
            out.events += s.events.get();
            out.events_dropped += s.events_dropped.get();
        }
        out.digests_dropped = self.registry.dropped.get();
        out.producer_parks = self
            .registry
            .parks
            .load(std::sync::atomic::Ordering::Relaxed);
        out.digests_prefiltered = self.registry.prefiltered.get();
        out
    }

    /// Stops the workers (after they drain already-queued batches) and
    /// returns the final counters. Outstanding handles error on further
    /// pushes.
    pub fn shutdown(mut self) -> CollectorStats {
        self.stop();
        self.stats()
    }

    fn stop(&mut self) {
        for (shard, tx) in self.ctrl.iter().enumerate() {
            let _ = tx.send(ShardMsg::Shutdown);
            self.waiters[shard].wake();
        }
        self.ctrl.clear();
        for w in std::mem::take(&mut self.workers) {
            let _ = w.join();
        }
    }
}

/// Decodes a checkpoint payload (a `SnapshotFrame` wire frame, as
/// [`Collector::checkpoint`] writes) into a restore base overlay.
fn decode_checkpoint(payload: &[u8]) -> Result<BaseOverlay, CollectorError> {
    let (ty, body) =
        pint_wire::parse_frame(payload).map_err(|_| CollectorError::RestoreFailed {
            reason: "checkpoint payload is not a wire frame",
        })?;
    if ty != pint_wire::FrameType::Snapshot {
        return Err(CollectorError::RestoreFailed {
            reason: "checkpoint payload is not a snapshot frame",
        });
    }
    let frame =
        crate::wire::SnapshotFrame::decode(body).map_err(|_| CollectorError::RestoreFailed {
            reason: "checkpoint snapshot failed to decode",
        })?;
    let newest_ts = frame
        .snapshot
        .flows()
        .map(|(_, s)| s.last_ts)
        .max()
        .unwrap_or(0);
    let (flows, shard_stats, ingested) = frame.snapshot.into_parts();
    Ok(BaseOverlay {
        flows,
        shard_stats,
        ingested,
        newest_ts,
    })
}

impl Drop for Collector {
    /// Dropping without [`shutdown`](Collector::shutdown) still stops
    /// and joins the workers — outstanding handles cannot keep orphaned
    /// shard threads alive (their next push fails `Disconnected` once
    /// the workers exit).
    fn drop(&mut self) {
        self.stop();
    }
}

impl QueryBackend for Collector {
    /// The local backend of the unified query API — also what a
    /// [`QueryResponder`](pint_query::QueryResponder) serves over TCP
    /// (`QueryResponder::bind(addr, Arc::new(collector))`).
    fn query(&self, plan: &QueryPlan) -> Result<QueryResult, QueryError> {
        Collector::query(self, plan)
    }

    fn watermark(&self) -> Option<Watermark> {
        Some(Collector::watermark(self))
    }
}
