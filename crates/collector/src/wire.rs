//! Wire-codec impls for the collector's snapshot types, and the
//! [`SnapshotFrame`] a collector ships to a fleet aggregator.
//!
//! `pint-wire` owns the format primitives (frames, varints, typed
//! errors) and the leaf-type codecs (digests, KLL sketches, path
//! progress), `pint-query` owns the [`FlowSummary`] row codec shared
//! with query responses; this module composes them into
//! [`CollectorSnapshot`] encodings plus the collector-id + epoch
//! envelope the fleet tier keys on. See
//! [`Collector::export_snapshot_frame`](crate::Collector::export_snapshot_frame)
//! for the one-call export path.

use crate::flow_table::TableStats;
use crate::inference::{CollectorSnapshot, FlowSummary};
use pint_wire::{frame_into, FrameType, WireDecode, WireEncode, WireError, WireReader, WireWriter};

impl WireEncode for TableStats {
    fn encode_into(&self, out: &mut Vec<u8>) {
        let mut w = WireWriter::new(out);
        w.put_varint(self.created);
        w.put_varint(self.evicted_lru);
        w.put_varint(self.evicted_ttl);
    }
}

impl WireDecode for TableStats {
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(TableStats {
            created: r.get_varint()?,
            evicted_lru: r.get_varint()?,
            evicted_ttl: r.get_varint()?,
        })
    }
}

impl WireEncode for CollectorSnapshot {
    fn encode_into(&self, out: &mut Vec<u8>) {
        let mut w = WireWriter::new(out);
        w.put_varint(self.ingested);
        w.put_varint(self.shard_stats.len() as u64);
        for t in &self.shard_stats {
            t.encode_into(out);
        }
        WireWriter::new(out).put_varint(self.num_flows() as u64);
        for (flow, summary) in self.flows() {
            WireWriter::new(out).put_varint(*flow);
            summary.encode_into(out);
        }
    }
}

impl WireDecode for CollectorSnapshot {
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let ingested = r.get_varint()?;
        // Counts are validated against the remaining wire bytes, but an
        // in-memory element costs far more than its wire minimum — so
        // cap the *pre-reservation* and let the vectors grow only as
        // elements actually decode (hostile counts then cost nothing).
        let shards = r.get_count(3)?;
        let mut shard_stats = Vec::with_capacity(shards.min(1_024));
        for _ in 0..shards {
            shard_stats.push(TableStats::decode_from(r)?);
        }
        // Each flow entry is ≥ 19 bytes (id + minimal summary).
        let n = r.get_count(19)?;
        let mut flows = Vec::with_capacity(n.min(4_096));
        for _ in 0..n {
            let flow = r.get_varint()?;
            flows.push((flow, FlowSummary::decode_from(r)?));
        }
        Ok(CollectorSnapshot::from_parts(flows, shard_stats, ingested))
    }
}

/// The envelope a collector process ships to the fleet tier: which
/// collector this is, a monotonically increasing epoch (snapshot
/// sequence number — the aggregator keeps only the newest per
/// collector), and the full snapshot.
#[derive(Debug, Clone)]
pub struct SnapshotFrame {
    /// Stable identity of the producing collector process.
    pub collector_id: u64,
    /// Snapshot sequence number; later epochs replace earlier ones.
    pub epoch: u64,
    /// The merged state of every shard at export time.
    pub snapshot: CollectorSnapshot,
}

impl WireEncode for SnapshotFrame {
    fn encode_into(&self, out: &mut Vec<u8>) {
        let mut w = WireWriter::new(out);
        w.put_varint(self.collector_id);
        w.put_varint(self.epoch);
        self.snapshot.encode_into(out);
    }
}

impl WireDecode for SnapshotFrame {
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(SnapshotFrame {
            collector_id: r.get_varint()?,
            epoch: r.get_varint()?,
            snapshot: CollectorSnapshot::decode_from(r)?,
        })
    }
}

impl SnapshotFrame {
    /// Encodes the complete wire frame (header included) ready to write
    /// to a transport.
    pub fn to_frame_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        frame_into(FrameType::Snapshot, self, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inference::ShardSnapshot;
    use pint_core::{PathProgress, RecorderKind};
    use pint_sketches::KllSketch;
    use pint_wire::parse_frame;

    fn summary(values: &[u64], hops: usize) -> FlowSummary {
        let mut sketches = vec![KllSketch::with_seed(32, 5)];
        for h in 1..=hops {
            let mut sk = KllSketch::with_seed(32, h as u64);
            for &v in values {
                sk.update(v + h as u64);
            }
            sketches.push(sk);
        }
        FlowSummary {
            kind: RecorderKind::LatencyQuantiles,
            packets: values.len() as u64,
            state_bytes: values.len() * 8,
            last_ts: 77,
            hop_sketches: sketches,
            path: None,
            inconsistencies: 1,
        }
    }

    fn sample_snapshot() -> CollectorSnapshot {
        let path_summary = FlowSummary {
            kind: RecorderKind::PathTracing,
            packets: 40,
            state_bytes: 320,
            last_ts: 99,
            hop_sketches: Vec::new(),
            path: Some(PathProgress {
                resolved: 3,
                k: 3,
                path: Some(vec![4, 11, 19]),
                inconsistencies: 0,
            }),
            inconsistencies: 0,
        };
        CollectorSnapshot::from_shards(vec![
            ShardSnapshot {
                shard: 0,
                flows: vec![(9, summary(&[10, 20, 30, 40], 2)), (2, path_summary)],
                table_stats: TableStats {
                    created: 4,
                    evicted_lru: 1,
                    evicted_ttl: 0,
                },
                ingested: 44,
                journal_seq: 0,
            },
            ShardSnapshot {
                shard: 1,
                flows: vec![(5, summary(&(0..200).collect::<Vec<_>>(), 3))],
                table_stats: TableStats::default(),
                ingested: 200,
                journal_seq: 0,
            },
        ])
    }

    #[test]
    fn snapshot_round_trip_preserves_answers() {
        let snap = sample_snapshot();
        let decoded = CollectorSnapshot::decode(&snap.encode()).unwrap();
        assert_eq!(decoded.num_flows(), snap.num_flows());
        assert_eq!(decoded.total_packets(), snap.total_packets());
        assert_eq!(decoded.ingested, snap.ingested);
        assert_eq!(decoded.state_bytes(), snap.state_bytes());
        assert_eq!(decoded.evicted_flows(), snap.evicted_flows());
        assert_eq!(decoded.path_counts(), snap.path_counts());
        for phi in [0.1, 0.5, 0.99] {
            for hop in 1..=3 {
                assert_eq!(
                    decoded.merged_hop_sketch(hop).and_then(|s| s.quantile(phi)),
                    snap.merged_hop_sketch(hop).and_then(|s| s.quantile(phi)),
                    "hop {hop} phi {phi}"
                );
            }
        }
        assert_eq!(
            decoded.flow(2).unwrap().path,
            snap.flow(2).unwrap().path,
            "decoded path survives"
        );
    }

    #[test]
    fn snapshot_frame_round_trips_through_a_wire_frame() {
        let frame = SnapshotFrame {
            collector_id: 3,
            epoch: 12,
            snapshot: sample_snapshot(),
        };
        let bytes = frame.to_frame_bytes();
        let (ty, payload) = parse_frame(&bytes).unwrap();
        assert_eq!(ty, FrameType::Snapshot);
        let decoded = SnapshotFrame::decode(payload).unwrap();
        assert_eq!(decoded.collector_id, 3);
        assert_eq!(decoded.epoch, 12);
        assert_eq!(decoded.snapshot.num_flows(), 3);
    }

    #[test]
    fn corrupted_snapshot_bytes_error_not_panic() {
        let bytes = sample_snapshot().encode();
        for cut in 0..bytes.len() {
            assert!(
                CollectorSnapshot::decode(&bytes[..cut]).is_err(),
                "truncation at {cut}"
            );
        }
        // Flip each byte in the prefix region; decode must never panic
        // (it may still succeed when the flip lands in a don't-care
        // bit, e.g. a coin state).
        for i in 0..bytes.len().min(64) {
            let mut bad = bytes.clone();
            bad[i] ^= 0x55;
            let _ = CollectorSnapshot::decode(&bad);
        }
    }
}
