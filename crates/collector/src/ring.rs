//! Bounded lock-free SPSC ring buffers — the ingest fabric.
//!
//! Every registered producer owns one `Ring` per shard, carrying digest
//! *batches* (`Vec<DigestReport>`) at slot granularity: a slot exchange
//! costs two atomic ops amortized over `batch_size` digests. Head and
//! tail live on separate cache lines so the producer and consumer cores
//! never false-share, and each endpoint keeps a local cache of the other
//! side's position so the common case touches no shared line at all.
//!
//! Backpressure is park-based, not spin-based: a producer that finds the
//! ring full (or a shard worker that finds all its rings empty) spins
//! briefly and then parks its thread, to be unparked by the other side.
//! Parking uses a double-checked flag plus a bounded `park_timeout`, so a
//! lost wakeup costs at most one timeout, never a hang. This matters on
//! small machines: an idle thread must get *off* the core so the other
//! side can run.
//!
//! Each ring also carries a *reverse* SPSC lane — the batch pool — on
//! which the consumer hands drained `Vec<DigestReport>` buffers back to
//! the producer. A producer that finds a pooled buffer on ship reuses
//! it instead of allocating, so steady-state ingest performs zero batch
//! allocations; the lane is purely an optimization (a full lane drops
//! the buffer, an empty lane falls back to allocation).
//!
//! This is the one module in the crate that uses `unsafe` (the slot
//! arrays are shared between exactly two threads). The safety argument
//! is the classic SPSC protocol, spelled out at each unsafe block:
//!
//! * the producer writes slot `i` only while `i - head < capacity`, and
//!   publishes it with a release store of `tail = i + 1`;
//! * the consumer reads slot `i` only after an acquire load observes
//!   `tail > i`, and releases it with a release store of `head = i + 1`;
//! * `RingProducer`/`RingConsumer` are not `Clone`, so each side has
//!   exactly one owner;
//! * the pool lane runs the identical protocol with the roles swapped
//!   (the consumer is the lane's writer, the producer its reader).

#![allow(unsafe_code)]

use pint_core::DigestReport;
use std::cell::UnsafeCell;
use std::sync::atomic::{fence, AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::Thread;
use std::time::Duration;

/// The unit of exchange: one pre-assembled digest batch.
pub(crate) type Batch = Vec<DigestReport>;

/// Pads a value to its own 64-byte cache line (head/tail separation).
#[repr(align(64))]
struct CachePadded<T>(T);

/// A parkable thread slot with a double-checked "is parked" flag.
///
/// Protocol: the sleeper calls [`prepare`](Self::prepare), re-checks its
/// wait condition, then [`park`](Self::park)s; the waker publishes its
/// state change, issues a `SeqCst` fence, and calls [`wake`](Self::wake),
/// which unparks only if the flag is set (the common-case cost for the
/// waker is one relaxed load). The bounded park timeout turns any residual
/// race into bounded latency instead of a lost wakeup.
pub(crate) struct Waiter {
    parked: AtomicBool,
    thread: Mutex<Option<Thread>>,
}

impl Waiter {
    pub(crate) fn new() -> Self {
        Self {
            parked: AtomicBool::new(false),
            thread: Mutex::new(None),
        }
    }

    /// Records the calling thread as the (sole) sleeper on this waiter.
    pub(crate) fn register_current(&self) {
        *self.thread.lock().expect("waiter mutex") = Some(std::thread::current());
    }

    /// Announces intent to park. Re-check the wait condition *after* this
    /// (a `SeqCst` fence is included) and either [`cancel`](Self::cancel)
    /// or [`park`](Self::park).
    pub(crate) fn prepare(&self) {
        self.parked.store(true, Ordering::SeqCst);
    }

    /// Withdraws a [`prepare`](Self::prepare) (the re-check found work).
    pub(crate) fn cancel(&self) {
        self.parked.store(false, Ordering::SeqCst);
    }

    /// Parks for at most `timeout`; always clears the flag on return.
    pub(crate) fn park(&self, timeout: Duration) {
        std::thread::park_timeout(timeout);
        self.parked.store(false, Ordering::SeqCst);
    }

    /// Unparks the sleeper iff it announced itself parked.
    pub(crate) fn wake(&self) {
        if self.parked.load(Ordering::Relaxed) && self.parked.swap(false, Ordering::SeqCst) {
            if let Some(t) = self.thread.lock().expect("waiter mutex").as_ref() {
                t.unpark();
            }
        }
    }
}

/// One slot; owned by the producer until published, then by the consumer
/// until taken. `None` means empty (consumed or never written).
struct Slot(UnsafeCell<Option<Batch>>);

/// The shared core of one producer→shard ring.
struct Ring {
    slots: Box<[Slot]>,
    /// `capacity - 1`; capacity is a power of two.
    mask: u64,
    /// Next position the producer will write (monotonic, not wrapped).
    tail: CachePadded<AtomicU64>,
    /// Next position the consumer will read (monotonic, not wrapped).
    head: CachePadded<AtomicU64>,
    /// Reverse lane: drained batch buffers travelling consumer→producer
    /// (same capacity and protocol as `slots`, roles swapped).
    pool: Box<[Slot]>,
    /// Next pool position the consumer (the lane's writer) will write.
    pool_tail: CachePadded<AtomicU64>,
    /// Next pool position the producer (the lane's reader) will read.
    pool_head: CachePadded<AtomicU64>,
    /// Cleared when the producer endpoint drops: no more batches coming.
    producer_open: AtomicBool,
    /// Cleared when the consumer endpoint drops: pushes fail from now on.
    consumer_open: AtomicBool,
    /// Parking slot for a producer blocked on a full ring.
    producer_waiter: Waiter,
    /// The owning shard's waiter (shared by all rings of that shard).
    consumer_waiter: Arc<Waiter>,
    /// Times the producer had to park (collector-wide backpressure stat).
    parks: Arc<AtomicU64>,
}

// SAFETY: the `UnsafeCell` slots are the only non-Sync state; the SPSC
// protocol documented at the module level guarantees a slot is accessed
// by at most one thread at a time, with release/acquire pairs on
// tail/head ordering every hand-off.
unsafe impl Send for Ring {}
unsafe impl Sync for Ring {}

/// Spin/park tuning shared by both endpoints. These are *upper bounds*:
/// each endpoint runs a [`BackoffController`] that adapts its live spin
/// budget and park timeout inside them.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RingTuning {
    /// Upper bound on polls before parking.
    pub spin_limit: u32,
    /// Upper bound on one park (safety net against wakeup races).
    pub park_timeout: Duration,
}

/// Smallest spin budget the controller decays to: enough to catch an
/// in-flight hand-off without holding the core when the other side is
/// clearly idle.
const SPIN_MIN: u32 = 4;

/// Adaptive spin/park policy for one blocked endpoint.
///
/// The controller widens the spin budget when spinning *pays* (progress
/// arrived before a park — sustained occupancy, the other side is
/// actively moving) and shrinks it toward [`SPIN_MIN`] whenever a park
/// was unavoidable (idle — get off the core early). Park timeouts start
/// at 1/16th of the configured bound and only ever lengthen toward it
/// (per consecutive park): the timeout is purely a safety net against
/// wakeup races, because hot-path parks are ended by the other side's
/// explicit wakes — a timer that fired *during* sustained traffic would
/// preempt the very thread being waited on, which measurably collapses
/// throughput when both endpoints share a core. Both stay inside the
/// [`RingTuning`] bounds.
#[derive(Debug, Clone, Copy)]
pub(crate) struct BackoffController {
    spin: u32,
    park: Duration,
    spin_max: u32,
    park_max: Duration,
}

impl BackoffController {
    pub(crate) fn new(tuning: RingTuning) -> Self {
        let spin_max = tuning.spin_limit.max(SPIN_MIN);
        let park_max = tuning.park_timeout.max(Duration::from_micros(1));
        let park_min = (park_max / 16).max(Duration::from_micros(1));
        Self {
            // Optimistic start: full spin budget, shortest park.
            spin: spin_max,
            park: park_min,
            spin_max,
            park_max,
        }
    }

    /// Current spin budget (polls before parking).
    pub(crate) fn spin_limit(&self) -> u32 {
        self.spin
    }

    /// Current park timeout.
    pub(crate) fn park_timeout(&self) -> Duration {
        self.park
    }

    /// Progress arrived while spinning: occupancy is sustained, widen
    /// the spin budget. The park bound is left alone: while traffic is
    /// hot the other side's explicit wakes end parks, so a short
    /// safety-net timer would only fire mid-drain and preempt the very
    /// thread being waited on (measurably brutal when endpoints share a
    /// core).
    pub(crate) fn on_spin_win(&mut self) {
        self.spin = self.spin.saturating_mul(2).clamp(SPIN_MIN, self.spin_max);
    }

    /// Spinning did not pay and the endpoint parked: halve the spin
    /// budget (park earlier while idle) and lengthen the next park.
    pub(crate) fn on_park(&mut self) {
        self.spin = (self.spin / 2).max(SPIN_MIN);
        self.park = self.park.saturating_mul(2).min(self.park_max);
    }
}

/// Creates a connected producer/consumer pair over a fresh ring.
///
/// `capacity` (in batches) is rounded up to a power of two. `waiter` is
/// the consuming shard's park slot; `parks` the shared backpressure
/// counter the producer bumps when it has to sleep.
pub(crate) fn ring(
    capacity: usize,
    tuning: RingTuning,
    waiter: Arc<Waiter>,
    parks: Arc<AtomicU64>,
) -> (RingProducer, RingConsumer) {
    let cap = capacity.max(1).next_power_of_two();
    let slots = (0..cap).map(|_| Slot(UnsafeCell::new(None))).collect();
    let pool = (0..cap).map(|_| Slot(UnsafeCell::new(None))).collect();
    let ring = Arc::new(Ring {
        slots,
        mask: cap as u64 - 1,
        tail: CachePadded(AtomicU64::new(0)),
        head: CachePadded(AtomicU64::new(0)),
        pool,
        pool_tail: CachePadded(AtomicU64::new(0)),
        pool_head: CachePadded(AtomicU64::new(0)),
        producer_open: AtomicBool::new(true),
        consumer_open: AtomicBool::new(true),
        producer_waiter: Waiter::new(),
        consumer_waiter: waiter,
        parks,
    });
    (
        RingProducer {
            ring: Arc::clone(&ring),
            tail: 0,
            head_cache: 0,
            pool_head: 0,
            pool_tail_cache: 0,
            backoff: BackoffController::new(tuning),
            registered: None,
        },
        RingConsumer {
            ring,
            head: 0,
            tail_cache: 0,
            pool_tail: 0,
            pool_head_cache: 0,
        },
    )
}

/// Why a push did not complete.
pub(crate) enum PushError {
    /// The ring is full right now (only returned by `try_push`); the
    /// batch is handed back untouched.
    Full(Batch),
    /// The consumer endpoint is gone; the batch is handed back.
    Closed(Batch),
}

/// The producing endpoint (exactly one per ring; `!Clone`).
pub(crate) struct RingProducer {
    ring: Arc<Ring>,
    /// Local copy of `ring.tail` (we are its only writer).
    tail: u64,
    /// Last observed consumer position; refreshed only when apparently
    /// full, so the fast path reads no shared cache line.
    head_cache: u64,
    /// Local copy of `ring.pool_head` (we are its only writer).
    pool_head: u64,
    /// Last observed recycler position on the pool lane.
    pool_tail_cache: u64,
    /// Adaptive spin/park policy for full-ring backpressure.
    backoff: BackoffController,
    /// Thread whose handle is registered with the producer waiter; the
    /// endpoint is `Send`, so re-register whenever it parks from a
    /// different thread than last time.
    registered: Option<std::thread::ThreadId>,
}

impl RingProducer {
    /// Capacity in batches.
    fn capacity(&self) -> u64 {
        self.ring.mask + 1
    }

    /// True if a slot is free *without* waiting (may refresh `head_cache`).
    fn has_room(&mut self) -> bool {
        if self.tail.wrapping_sub(self.head_cache) < self.capacity() {
            return true;
        }
        self.head_cache = self.ring.head.0.load(Ordering::Acquire);
        self.tail.wrapping_sub(self.head_cache) < self.capacity()
    }

    /// Writes and publishes one batch; caller guarantees room.
    fn commit(&mut self, batch: Batch) {
        let idx = (self.tail & self.ring.mask) as usize;
        // SAFETY: `tail - head < capacity`, so the consumer has consumed
        // this slot (or it was never written) and will not touch it until
        // it observes the release store of `tail + 1` below.
        unsafe { *self.ring.slots[idx].0.get() = Some(batch) };
        self.tail = self.tail.wrapping_add(1);
        self.ring.tail.0.store(self.tail, Ordering::Release);
        // Publish-then-check-sleeper ordering (see `Waiter` docs).
        fence(Ordering::SeqCst);
        self.ring.consumer_waiter.wake();
    }

    /// Enqueues `batch`, parking under backpressure until the consumer
    /// frees a slot. Fails only when the consumer endpoint is gone.
    /// Contended pushes adapt the spin/park policy (see
    /// [`BackoffController`]).
    pub(crate) fn push(&mut self, batch: Batch) -> Result<(), PushError> {
        let mut spins = 0u32;
        loop {
            if !self.ring.consumer_open.load(Ordering::Acquire) {
                return Err(PushError::Closed(batch));
            }
            if self.has_room() {
                if spins > 0 {
                    // The consumer freed a slot while we spun: spinning
                    // paid, widen the budget.
                    self.backoff.on_spin_win();
                }
                self.commit(batch);
                return Ok(());
            }
            if spins < self.backoff.spin_limit() {
                spins += 1;
                std::hint::spin_loop();
                continue;
            }
            // Park: register this thread, announce, re-check (fence
            // inside `prepare` orders the announce before the re-read),
            // sleep.
            let me = std::thread::current().id();
            if self.registered != Some(me) {
                self.ring.producer_waiter.register_current();
                self.registered = Some(me);
            }
            self.ring.producer_waiter.prepare();
            self.head_cache = self.ring.head.0.load(Ordering::SeqCst);
            if self.tail.wrapping_sub(self.head_cache) < self.capacity()
                || !self.ring.consumer_open.load(Ordering::SeqCst)
            {
                self.ring.producer_waiter.cancel();
            } else {
                self.ring.parks.fetch_add(1, Ordering::Relaxed);
                self.backoff.on_park();
                self.ring.producer_waiter.park(self.backoff.park_timeout());
            }
            spins = 0;
        }
    }

    /// Takes a drained buffer off the pool lane, if one is waiting.
    /// Never blocks — an empty lane means the caller allocates.
    pub(crate) fn take_recycled(&mut self) -> Option<Batch> {
        if self.pool_head == self.pool_tail_cache {
            self.pool_tail_cache = self.ring.pool_tail.0.load(Ordering::Acquire);
            if self.pool_head == self.pool_tail_cache {
                return None;
            }
        }
        let idx = (self.pool_head & self.ring.mask) as usize;
        // SAFETY: reverse-lane SPSC — `pool_head < pool_tail` was
        // observed with acquire ordering, so the consumer's write of
        // this pool slot happens-before this read, and the consumer
        // will not rewrite it until it observes `pool_head + 1`.
        let batch = unsafe { (*self.ring.pool[idx].0.get()).take() };
        debug_assert!(batch.is_some(), "SPSC protocol: published pool slot empty");
        self.pool_head = self.pool_head.wrapping_add(1);
        self.ring
            .pool_head
            .0
            .store(self.pool_head, Ordering::Release);
        batch
    }

    /// The live adaptive spin budget (for policy gauges).
    pub(crate) fn adaptive_spin(&self) -> u32 {
        self.backoff.spin_limit()
    }

    /// The live adaptive park timeout in µs (for policy gauges).
    pub(crate) fn adaptive_park_us(&self) -> u64 {
        self.backoff.park_timeout().as_micros() as u64
    }

    /// Non-blocking enqueue: `Full` hands the batch back immediately
    /// instead of parking.
    pub(crate) fn try_push(&mut self, batch: Batch) -> Result<(), PushError> {
        if !self.ring.consumer_open.load(Ordering::Acquire) {
            return Err(PushError::Closed(batch));
        }
        if self.has_room() {
            self.commit(batch);
            Ok(())
        } else {
            Err(PushError::Full(batch))
        }
    }
}

impl Drop for RingProducer {
    fn drop(&mut self) {
        self.ring.producer_open.store(false, Ordering::Release);
        fence(Ordering::SeqCst);
        // The shard must notice the closure to detach the ring.
        self.ring.consumer_waiter.wake();
    }
}

/// The consuming endpoint (exactly one per ring; `!Clone`).
pub(crate) struct RingConsumer {
    ring: Arc<Ring>,
    /// Local copy of `ring.head` (we are its only writer).
    head: u64,
    /// Last observed producer position; refreshed when apparently empty.
    tail_cache: u64,
    /// Local copy of `ring.pool_tail` (we are its only writer).
    pool_tail: u64,
    /// Last observed taker position on the pool lane.
    pool_head_cache: u64,
}

impl RingConsumer {
    /// Dequeues the oldest batch, or `None` if the ring is momentarily
    /// empty. Never blocks — the shard worker multiplexes many rings.
    pub(crate) fn pop(&mut self) -> Option<Batch> {
        if self.head == self.tail_cache {
            self.tail_cache = self.ring.tail.0.load(Ordering::Acquire);
            if self.head == self.tail_cache {
                return None;
            }
        }
        let idx = (self.head & self.ring.mask) as usize;
        // SAFETY: `head < tail` was observed with acquire ordering, so the
        // producer's write of this slot happens-before this read, and the
        // producer will not rewrite it until it observes `head + 1`.
        let batch = unsafe { (*self.ring.slots[idx].0.get()).take() };
        debug_assert!(batch.is_some(), "SPSC protocol: published slot empty");
        self.head = self.head.wrapping_add(1);
        self.ring.head.0.store(self.head, Ordering::Release);
        fence(Ordering::SeqCst);
        self.ring.producer_waiter.wake();
        batch
    }

    /// Hands a drained batch buffer back to the producer via the pool
    /// lane. The buffer is cleared here (cheap — `DigestReport` is
    /// dropped by the drain, clearing only resets the length); a full
    /// lane simply drops it, because recycling is an optimization, never
    /// required for correctness.
    pub(crate) fn recycle(&mut self, mut batch: Batch) {
        batch.clear();
        let cap = self.ring.mask + 1;
        if self.pool_tail.wrapping_sub(self.pool_head_cache) >= cap {
            self.pool_head_cache = self.ring.pool_head.0.load(Ordering::Acquire);
            if self.pool_tail.wrapping_sub(self.pool_head_cache) >= cap {
                return; // lane full: drop the buffer
            }
        }
        let idx = (self.pool_tail & self.ring.mask) as usize;
        // SAFETY: reverse-lane SPSC — `pool_tail - pool_head < capacity`,
        // so the producer has taken this pool slot (or it was never
        // written) and will not read it until it observes the release
        // store of `pool_tail + 1` below.
        unsafe { *self.ring.pool[idx].0.get() = Some(batch) };
        self.pool_tail = self.pool_tail.wrapping_add(1);
        self.ring
            .pool_tail
            .0
            .store(self.pool_tail, Ordering::Release);
        // No wake: the producer polls the lane on ship and falls back to
        // allocation when it is empty — nobody ever sleeps on the pool.
    }

    /// No batch is currently queued (racy by nature; exact once the
    /// producer endpoint is closed).
    pub(crate) fn is_empty(&self) -> bool {
        self.ring.tail.0.load(Ordering::Acquire) == self.head
    }

    /// Monotonic count of batches the producer has published (the
    /// ring's write epoch). With [`consumed`](Self::consumed) this lets
    /// a shard answer "has everything enqueued before time T been
    /// applied?" without draining to a quiesce point.
    pub(crate) fn published(&self) -> u64 {
        self.ring.tail.0.load(Ordering::Acquire)
    }

    /// Monotonic count of batches this consumer has popped (the ring's
    /// read epoch).
    pub(crate) fn consumed(&self) -> u64 {
        self.head
    }

    /// Batches currently queued (a snapshot — the producer may enqueue
    /// more immediately after). Used to bound drains: popping `pending()`
    /// batches covers everything enqueued before the call.
    pub(crate) fn pending(&self) -> u64 {
        self.ring
            .tail
            .0
            .load(Ordering::Acquire)
            .wrapping_sub(self.head)
    }

    /// Producer endpoint dropped *and* everything it queued was consumed:
    /// the ring can be detached.
    pub(crate) fn is_finished(&self) -> bool {
        // Order matters: check closure before emptiness, so a push racing
        // the producer's drop is never missed.
        !self.ring.producer_open.load(Ordering::Acquire) && self.is_empty()
    }
}

impl Drop for RingConsumer {
    fn drop(&mut self) {
        self.ring.consumer_open.store(false, Ordering::Release);
        fence(Ordering::SeqCst);
        // A producer parked on a full ring must wake up and fail over.
        self.ring.producer_waiter.wake();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_pair(cap: usize) -> (RingProducer, RingConsumer) {
        ring(
            cap,
            RingTuning {
                spin_limit: 16,
                park_timeout: Duration::from_micros(200),
            },
            Arc::new(Waiter::new()),
            Arc::new(AtomicU64::new(0)),
        )
    }

    fn batch(tag: u64) -> Batch {
        vec![DigestReport::new(
            tag,
            tag,
            pint_core::Digest::new(1),
            1,
            tag,
        )]
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        let (p, _c) = test_pair(5);
        assert_eq!(p.capacity(), 8);
        let (p, _c) = test_pair(1);
        assert_eq!(p.capacity(), 1);
    }

    #[test]
    fn full_and_empty_boundaries() {
        let (mut p, mut c) = test_pair(4);
        assert!(c.pop().is_none(), "fresh ring is empty");
        for i in 0..4 {
            p.try_push(batch(i)).ok().expect("room");
        }
        match p.try_push(batch(99)) {
            Err(PushError::Full(b)) => assert_eq!(b[0].flow, 99, "batch handed back"),
            _ => panic!("5th push into capacity-4 ring must report Full"),
        }
        for i in 0..4 {
            assert_eq!(c.pop().expect("queued")[0].flow, i);
        }
        assert!(c.pop().is_none(), "drained ring is empty");
        assert!(!c.is_finished(), "producer still open");
    }

    #[test]
    fn wrap_around_preserves_fifo_order() {
        let (mut p, mut c) = test_pair(4);
        // Many laps over a 4-slot ring, interleaving pushes and pops.
        let mut next_pop = 0u64;
        for i in 0..1000u64 {
            p.push(batch(i)).ok().expect("consumer open");
            if i % 3 == 0 {
                while let Some(b) = c.pop() {
                    assert_eq!(b[0].flow, next_pop, "FIFO across wrap");
                    next_pop += 1;
                }
            }
        }
        while let Some(b) = c.pop() {
            assert_eq!(b[0].flow, next_pop);
            next_pop += 1;
        }
        assert_eq!(next_pop, 1000);
    }

    #[test]
    fn closed_consumer_fails_push_and_returns_batch() {
        let (mut p, c) = test_pair(4);
        drop(c);
        match p.push(batch(7)) {
            Err(PushError::Closed(b)) => assert_eq!(b[0].flow, 7),
            _ => panic!("push into consumer-less ring must fail Closed"),
        }
        match p.try_push(batch(8)) {
            Err(PushError::Closed(_)) => {}
            _ => panic!("try_push must also fail Closed"),
        }
    }

    #[test]
    fn closed_producer_finishes_after_drain() {
        let (mut p, mut c) = test_pair(4);
        p.push(batch(1)).ok().expect("open");
        drop(p);
        assert!(!c.is_finished(), "still has a queued batch");
        assert_eq!(c.pop().expect("queued")[0].flow, 1);
        assert!(c.is_finished(), "closed and drained");
    }

    #[test]
    fn concurrent_producer_consumer_keeps_order_under_wrap_and_parking() {
        // Tiny capacity forces constant wrap-around and real parking on
        // both sides; every batch must still arrive exactly once, in
        // order.
        const N: u64 = 20_000;
        let (mut p, mut c) = test_pair(2);
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                p.push(batch(i)).ok().expect("consumer open");
            }
            // `p` drops here, closing the ring.
        });
        let mut expect = 0u64;
        let mut idle = 0u32;
        loop {
            match c.pop() {
                Some(b) => {
                    assert_eq!(b[0].flow, expect, "order violated at {expect}");
                    expect += 1;
                    idle = 0;
                }
                None if c.is_finished() => break,
                None => {
                    idle += 1;
                    if idle > 64 {
                        std::thread::yield_now();
                    }
                }
            }
        }
        assert_eq!(expect, N, "every batch delivered exactly once");
        producer.join().expect("producer thread");
    }

    #[test]
    fn recycle_lane_returns_cleared_buffers_in_fifo_order() {
        let (mut p, mut c) = test_pair(4);
        assert!(p.take_recycled().is_none(), "fresh lane is empty");
        p.try_push(batch(1)).ok().expect("room");
        let b = c.pop().expect("queued");
        let cap_before = b.capacity();
        c.recycle(b);
        let back = p.take_recycled().expect("recycled buffer waiting");
        assert!(back.is_empty(), "recycled buffer is cleared");
        assert_eq!(back.capacity(), cap_before, "backing store preserved");
        assert!(p.take_recycled().is_none(), "lane drained");
    }

    #[test]
    fn recycle_lane_wraps_across_many_laps() {
        // Far more recycles than lane capacity: every buffer must come
        // back (none lost, none duplicated) as long as the producer
        // keeps draining the lane.
        let (mut p, mut c) = test_pair(2);
        let mut returned = 0u64;
        for i in 0..1_000u64 {
            p.push(batch(i)).ok().expect("consumer open");
            let b = c.pop().expect("queued");
            c.recycle(b);
            while p.take_recycled().is_some() {
                returned += 1;
            }
        }
        assert_eq!(returned, 1_000, "every recycled buffer came back");
    }

    #[test]
    fn full_recycle_lane_drops_excess_buffers() {
        let (mut p, mut c) = test_pair(2);
        // Feed 5 batches through; never take from the lane, so only the
        // lane capacity (2) can be held — the rest are dropped.
        for i in 0..5u64 {
            p.push(batch(i)).ok().expect("room");
            let b = c.pop().expect("queued");
            c.recycle(b);
        }
        let mut held = 0;
        while p.take_recycled().is_some() {
            held += 1;
        }
        assert_eq!(held, 2, "lane holds exactly its capacity");
    }

    #[test]
    fn recycled_buffers_survive_consumer_shutdown() {
        // Buffers parked in the lane stay takeable after the consumer
        // endpoint closes (they are free memory, not data), and dropping
        // both endpoints frees whatever is still pooled.
        let (mut p, mut c) = test_pair(4);
        for i in 0..2u64 {
            p.try_push(batch(i)).ok().expect("room");
            let b = c.pop().expect("queued");
            c.recycle(b);
        }
        drop(c);
        assert!(p.take_recycled().is_some());
        assert!(p.take_recycled().is_some());
        assert!(p.take_recycled().is_none());
        // One more lap: recycle again is impossible (consumer gone), and
        // dropping the producer releases the ring with pooled buffers
        // still inside — covered by the first pair above where `c`
        // dropped while the lane was full.
    }

    #[test]
    fn concurrent_recycling_loses_no_order_and_reuses_buffers() {
        // The forward lane's FIFO contract must hold while the reverse
        // lane is in constant use from both threads.
        const N: u64 = 20_000;
        let (mut p, mut c) = test_pair(2);
        let producer = std::thread::spawn(move || {
            let mut reused = 0u64;
            for i in 0..N {
                let buf = match p.take_recycled() {
                    Some(mut b) => {
                        reused += 1;
                        b.extend(batch(i));
                        b
                    }
                    None => batch(i),
                };
                p.push(buf).ok().expect("consumer open");
            }
            reused
        });
        let mut expect = 0u64;
        loop {
            match c.pop() {
                Some(b) => {
                    assert_eq!(b[0].flow, expect, "order violated at {expect}");
                    expect += 1;
                    c.recycle(b);
                }
                None if c.is_finished() => break,
                None => std::hint::spin_loop(),
            }
        }
        assert_eq!(expect, N, "every batch delivered exactly once");
        let reused = producer.join().expect("producer thread");
        assert!(reused > 0, "steady state must reuse pooled buffers");
    }

    #[test]
    fn published_and_consumed_track_ring_epochs() {
        let (mut p, mut c) = test_pair(4);
        assert_eq!((c.published(), c.consumed()), (0, 0));
        p.try_push(batch(0)).ok().expect("room");
        p.try_push(batch(1)).ok().expect("room");
        assert_eq!((c.published(), c.consumed()), (2, 0));
        c.pop().expect("queued");
        assert_eq!((c.published(), c.consumed()), (2, 1));
        c.pop().expect("queued");
        assert_eq!((c.published(), c.consumed()), (2, 2));
    }

    #[test]
    fn backoff_controller_adapts_within_configured_bounds() {
        let tuning = RingTuning {
            spin_limit: 64,
            park_timeout: Duration::from_micros(1_600),
        };
        let mut b = BackoffController::new(tuning);
        assert_eq!(b.spin_limit(), 64, "starts at the spin bound");
        assert_eq!(
            b.park_timeout(),
            Duration::from_micros(100),
            "starts at park_max / 16"
        );
        // Sustained idleness: spin decays to the floor, park grows to
        // the configured bound — and both saturate there.
        for _ in 0..20 {
            b.on_park();
        }
        assert_eq!(b.spin_limit(), SPIN_MIN);
        assert_eq!(b.park_timeout(), Duration::from_micros(1_600));
        // Sustained occupancy: spin recovers to the bound. The park
        // bound stays put — hot-path parks end via explicit wakes, so
        // a tight safety-net timer would only preempt the other side.
        for _ in 0..20 {
            b.on_spin_win();
        }
        assert_eq!(b.spin_limit(), 64);
        assert_eq!(b.park_timeout(), Duration::from_micros(1_600));
    }

    #[test]
    fn parked_producer_wakes_when_consumer_frees_a_slot() {
        let (mut p, mut c) = test_pair(1);
        let parks = Arc::clone(&p.ring.parks);
        p.push(batch(0)).ok().expect("room");
        let producer = std::thread::spawn(move || {
            // Full ring: this blocks (parks) until the main thread pops.
            p.push(batch(1)).ok().expect("consumer open");
        });
        // Give the producer time to reach the parked state.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(c.pop().expect("first batch")[0].flow, 0);
        producer.join().expect("producer thread");
        assert_eq!(c.pop().expect("second batch")[0].flow, 1);
        assert!(
            parks.load(Ordering::Relaxed) >= 1,
            "producer should have parked at least once"
        );
    }
}
