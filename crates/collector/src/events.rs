//! Streaming event detection.
//!
//! Post-hoc analysis answers "what was the p99 yesterday"; operators also
//! need "tell me *now* when a hop's tail latency crosses X" (cf.
//! *Programmable Event Detection for In-Band Network Telemetry*). Rules
//! are evaluated on the shard workers as digest batches are applied, so
//! detection latency is one batch, not one query cycle.
//!
//! A rule is a [`RuleCondition`] plus an optional per-rule *cooldown*,
//! with full hysteresis: rules report both edges of a condition.
//!
//! * **Rising edge** — an armed rule whose condition starts holding
//!   fires once (its condition-specific [`EventKind`]).
//! * **Falling edge** — a fired rule whose condition later *stops*
//!   holding emits an explicit [`EventKind::Cleared`] event and
//!   re-arms, so operators see recoveries instead of inferring them
//!   from silence, and the rule can fire again on the next rising edge.
//! * **Cooldown** — with [`EventRule::with_cooldown`], a fired rule is
//!   re-checked only after the given quiet period (in sink-timestamp
//!   units): if the condition still holds it re-fires (bounded alarm
//!   stream for a persistently hot flow); if it cleared meanwhile, the
//!   `Cleared` event is emitted then. Without a cooldown, clearing is
//!   detected at the normal evaluation stride.
//!
//! The fired set is a bitmask in the flow table, so a flow that is
//! evicted and later recreated starts re-armed (with no `Cleared`
//! event — eviction is not a recovery signal). Fired events go to a
//! bounded queue — see `CollectorConfig::event_capacity`.

use crate::config::FlowId;
use pint_core::FlowRecorder;

/// The observable predicate of a rule — what to test on a flow's
/// recorder.
#[derive(Debug, Clone)]
pub enum RuleCondition {
    /// Holds when hop `hop`'s ϕ-quantile of the flow's value stream
    /// exceeds `threshold` (value space, e.g. nanoseconds) with at least
    /// `min_samples` recorded packets backing the estimate.
    QuantileAbove {
        /// 1-based hop index.
        hop: usize,
        /// Quantile in `[0, 1]`, e.g. `0.99`.
        phi: f64,
        /// Value-space threshold.
        threshold: f64,
        /// Minimum recorded packets before the rule may fire (suppresses
        /// noise from tiny samples).
        min_samples: u64,
    },
    /// Holds when a path-tracing flow's route is fully reconstructed.
    PathResolved,
    /// Holds when a flow's digests contradict its inferred path at least
    /// `min_inconsistencies` times — the paper's §7 routing-change /
    /// multipath signal.
    PathChanged {
        /// Contradictory digests required before firing.
        min_inconsistencies: u64,
    },
    /// Holds when some value appears in at least a `theta` fraction of
    /// hop `hop`'s stream (with `min_samples` backing it).
    FrequentValue {
        /// 1-based hop index.
        hop: usize,
        /// Frequency threshold in `(0, 1]`.
        theta: f64,
        /// Minimum recorded packets before the rule may fire.
        min_samples: u64,
    },
}

/// A user-registered detection rule: a condition plus firing policy.
#[derive(Debug, Clone)]
pub struct EventRule {
    /// The predicate evaluated against each touched flow's recorder.
    pub condition: RuleCondition,
    /// Quiet period (sink-timestamp units) after a firing during which
    /// the rule stays silent for that flow; once elapsed the rule
    /// re-arms. `None` (default) = fire once per flow residency.
    pub cooldown: Option<u64>,
}

impl EventRule {
    /// A rule that fires once per flow residency (rising edge).
    pub fn new(condition: RuleCondition) -> Self {
        Self {
            condition,
            cooldown: None,
        }
    }

    /// Lets the rule re-fire after `quiet` sink-timestamp units of
    /// silence (see the module docs for semantics).
    pub fn with_cooldown(mut self, quiet: u64) -> Self {
        self.cooldown = Some(quiet.max(1));
        self
    }
}

impl From<RuleCondition> for EventRule {
    fn from(condition: RuleCondition) -> Self {
        Self::new(condition)
    }
}

/// What a fired rule observed.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// Quantile estimate that crossed the threshold.
    QuantileAbove {
        /// 1-based hop index.
        hop: usize,
        /// The quantile queried.
        phi: f64,
        /// The estimate (value space).
        value: f64,
    },
    /// The reconstructed path.
    PathResolved {
        /// Switch IDs, hop 1..k.
        path: Vec<u64>,
    },
    /// Routing-change signal.
    PathChanged {
        /// Contradictory digests seen.
        inconsistencies: u64,
    },
    /// Heavy-hitter value detected.
    FrequentValue {
        /// 1-based hop index.
        hop: usize,
        /// The frequent value.
        value: u64,
        /// Its estimated fraction of the hop's stream.
        fraction: f64,
    },
    /// A previously fired rule's condition stopped holding for this
    /// flow (falling edge). The rule index is in [`Event::rule`]; the
    /// rule is re-armed and will fire again on its next rising edge.
    Cleared,
}

/// A fired event, as delivered to the collector's event stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Flow the event concerns.
    pub flow: FlowId,
    /// Shard that detected it.
    pub shard: usize,
    /// Index of the triggering rule in `CollectorConfig::rules`.
    pub rule: usize,
    /// Observation details.
    pub kind: EventKind,
    /// Sink timestamp of the batch that triggered the rule.
    pub ts: u64,
}

impl RuleCondition {
    /// Evaluates the condition against one flow's recorder; `Some(kind)`
    /// means the rule fires now. Called only for rules currently armed
    /// for this flow.
    pub(crate) fn evaluate(&self, rec: &mut dyn FlowRecorder) -> Option<EventKind> {
        match *self {
            RuleCondition::QuantileAbove {
                hop,
                phi,
                threshold,
                min_samples,
            } => {
                if rec.packets() < min_samples {
                    return None;
                }
                let value = rec.quantile(hop, phi)?;
                (value > threshold).then_some(EventKind::QuantileAbove { hop, phi, value })
            }
            RuleCondition::PathResolved => {
                let progress = rec.path_progress()?;
                let path = progress.path?;
                Some(EventKind::PathResolved { path })
            }
            RuleCondition::PathChanged {
                min_inconsistencies,
            } => {
                let inconsistencies = rec.inconsistencies();
                (inconsistencies >= min_inconsistencies)
                    .then_some(EventKind::PathChanged { inconsistencies })
            }
            RuleCondition::FrequentValue {
                hop,
                theta,
                min_samples,
            } => {
                if rec.packets() < min_samples {
                    return None;
                }
                let (value, fraction) = rec.frequent(hop, theta).into_iter().next()?;
                Some(EventKind::FrequentValue {
                    hop,
                    value,
                    fraction,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pint_core::dynamic::{DynamicAggregator, DynamicRecorder};
    use pint_core::statictrace::{PathTracer, TracerConfig};
    use pint_core::value::Digest;

    #[test]
    fn quantile_rule_requires_samples_then_fires() {
        let agg = DynamicAggregator::new(3, 8, 100.0, 1.0e7);
        let mut rec = DynamicRecorder::new_exact(agg.clone(), 2);
        let rule = EventRule::new(RuleCondition::QuantileAbove {
            hop: 1,
            phi: 0.5,
            threshold: 5_000.0,
            min_samples: 100,
        });
        for pid in 0..500u64 {
            let mut d = Digest::new(1);
            for hop in 1..=2 {
                agg.encode_hop(pid, hop, 10_000.0, &mut d, 0);
            }
            rec.record(pid, &d, 0);
            let fired = rule.condition.evaluate(&mut rec).is_some();
            if rec.packets() < 100 {
                assert!(!fired, "fired below min_samples at {pid}");
            }
        }
        match rule.condition.evaluate(&mut rec) {
            Some(EventKind::QuantileAbove { hop: 1, value, .. }) => {
                assert!(value > 5_000.0, "median {value}");
            }
            other => panic!("expected fire, got {other:?}"),
        }
    }

    #[test]
    fn path_resolved_rule_fires_on_completion() {
        let tracer = PathTracer::new(TracerConfig::paper(8, 2, 5));
        let path = [2u64, 11, 19];
        let mut dec = tracer.decoder((0..32).collect(), path.len());
        let rule = EventRule::new(RuleCondition::PathResolved);
        let mut pid = 0u64;
        loop {
            pid += 1;
            assert!(pid < 100_000, "no convergence");
            if pint_core::statictrace::PathDecoder::absorb(
                &mut dec,
                pid,
                &tracer.encode_path(pid, &path),
            ) {
                break;
            }
            assert!(rule.condition.evaluate(&mut dec).is_none(), "fired early");
        }
        match rule.condition.evaluate(&mut dec) {
            Some(EventKind::PathResolved { path: p }) => assert_eq!(p, path),
            other => panic!("expected fire, got {other:?}"),
        }
    }

    #[test]
    fn cooldown_builder_clamps_to_positive() {
        let rule = EventRule::new(RuleCondition::PathResolved).with_cooldown(0);
        assert_eq!(rule.cooldown, Some(1), "zero cooldown clamps to 1 tick");
        let rule: EventRule = RuleCondition::PathResolved.into();
        assert_eq!(rule.cooldown, None, "From keeps rising-edge default");
    }
}
