//! # pint-collector — sharded, multi-producer telemetry ingestion & inference
//!
//! The paper's Recording/Inference module (Fig. 3) is a single-threaded
//! consumer of one flow's digests. This crate is the production-shaped
//! version: a collector that absorbs digest streams from many sinks for
//! very large flow counts, on a share-nothing sharded architecture with
//! an explicitly multi-producer, lock-free ingest pipeline.
//!
//! ```text
//!  producers (PINT sinks, netsim drivers)      shard workers (threads)
//!  ┌──────────────────┐   SPSC rings           ┌────────────────────────┐
//!  │ CollectorHandle  │══════════════════════▶ │ shard 0: FlowTable     │
//!  │  (one ring per   │══╗                     │  flow → FlowRecorder   │
//!  │   shard)         │  ║ (1 ring per         │  O(1) LRU + TTL        │
//!  └──────────────────┘  ║  producer × shard)  │  EventRule evaluation  │
//!  ┌──────────────────┐  ║                     └────────────────────────┘
//!  │ CollectorHandle  │══╩═══════════════════▶        … shard N-1
//!  └──────────────────┘    control channel ─▶  (attach, snapshot,
//!        hash(flow) % N                         barrier, shutdown)
//!                                                      │ snapshots
//!                                                      ▼
//!                                      CollectorSnapshot (merged KLL,
//!                                      path completion, top-K, per-flow)
//! ```
//!
//! * **Producer registration** — every producer calls
//!   [`Collector::register_producer`] (or clones a handle) and receives
//!   its own bounded SPSC [ring](`CollectorConfig::ring_capacity`) to
//!   each shard: producers never contend with each other, and the data
//!   path has no locks at all. Control traffic (registration, snapshots,
//!   barriers, shutdown) rides a separate low-rate channel.
//! * **Batched, park-based backpressure** — handles buffer `batch_size`
//!   digests per shard and ship batch-granular ring slots; a producer
//!   that outruns a shard fills its ring, spins briefly
//!   ([`spin_limit`](CollectorConfig::spin_limit)), and parks until the
//!   shard frees a slot — bounded memory, no burned cores.
//! * **Ordering** — a flow maps to one shard, and one producer's pushes
//!   for it stay in order: per-flow-per-producer ordering is exact, and
//!   cross-shard merges are deterministic, so answers are identical at
//!   any (producer, shard) combination — pinned by the
//!   `collector_equivalence` property test.
//! * **Bounded state** — per-shard flow-count and byte caps with
//!   least-recently-updated eviction plus idle TTL ([`flow_table`]); the
//!   collector survives unbounded flow churn.
//! * **Uniform recorders** — per-flow state is any
//!   [`FlowRecorder`](pint_core::FlowRecorder): latency quantiles, path
//!   reconstruction, frequent values, or user-defined.
//! * **Cross-shard inference & queries** — [`snapshot`](Collector::snapshot)
//!   merges per-shard state deterministically ([`inference`]), and
//!   [`query`](Collector::query) executes typed
//!   [`QueryPlan`]s (selectors × projections ×
//!   delta options) routed only to the shards that can answer — the
//!   local backend of the workspace-wide `pint-query` API, so the same
//!   plan also runs on a fleet view or over TCP with identical
//!   results.
//! * **Streaming events** — threshold rules ([`events`]) are evaluated
//!   on the workers as digests arrive; per-rule cooldowns re-arm alarms
//!   after a quiet period.
//! * **Nothing lost silently** — undeliverable batches are counted
//!   ([`CollectorStats::digests_dropped`]), as is producer backpressure
//!   ([`CollectorStats::producer_parks`]).
//! * **Fleet export** — [`Collector::export_snapshot_frame`] encodes a
//!   snapshot as a versioned `pint-wire` frame keyed by collector id +
//!   epoch ([`wire`]); a `pint-fleet` aggregator merges frames from
//!   many collector processes into one fleet view (collector → wire →
//!   fleet).
//!
//! `unsafe` is confined to the [`ring`](crate) module's slot hand-off
//! (two threads, release/acquire protocol) and denied everywhere else.

#![deny(unsafe_code)]
#![warn(missing_docs)]

#[cfg(feature = "measure-alloc")]
pub mod alloc_track;
mod collector;
pub mod config;
pub mod error;
pub mod events;
pub mod flow_table;
pub mod handle;
pub mod inference;
pub mod prefilter;
mod ring;
mod shard;
pub mod sink;
pub mod wire;

pub use collector::{Collector, CollectorStats, RestoreReport};
pub use config::{CollectorConfig, FlowId, RecorderFactory};
pub use error::CollectorError;
pub use events::{Event, EventKind, EventRule, RuleCondition};
pub use handle::CollectorHandle;
pub use inference::{CollectorSnapshot, FlowSummary, ShardSnapshot};
pub use prefilter::PrefilterConfig;
pub use shard::ShardStats;
pub use sink::{attach_collector, attach_collector_parallel, LatencyTelemetry, ParallelSinkDriver};
pub use wire::SnapshotFrame;
// The query tier this collector is a backend of, re-exported so
// callers can build plans without naming `pint-query` separately.
pub use pint_query::{
    Projection, QueryBackend, QueryError, QueryPlan, QueryResult, Selector, TelemetryQuery,
    ValueDecodeSpec,
};

#[cfg(test)]
mod tests {
    use super::*;
    use pint_core::dynamic::{DynamicAggregator, DynamicRecorder};
    use pint_core::statictrace::{PathTracer, TracerConfig};
    use pint_core::value::Digest;
    use pint_core::{DigestReport, FlowRecorder};
    use std::sync::Arc;

    fn latency_factory(agg: DynamicAggregator, sketch_bytes: usize) -> RecorderFactory {
        Arc::new(move |_flow, report: &DigestReport| {
            Box::new(DynamicRecorder::new_sketched(
                agg.clone(),
                usize::from(report.path_len).max(1),
                sketch_bytes,
            )) as Box<dyn FlowRecorder>
        })
    }

    fn encode_latency(
        agg: &DynamicAggregator,
        flow: u64,
        pid: u64,
        k: usize,
        ns_per_hop: f64,
    ) -> DigestReport {
        let mut d = Digest::new(1);
        for hop in 1..=k {
            agg.encode_hop(pid, hop, ns_per_hop * hop as f64, &mut d, 0);
        }
        DigestReport::new(flow, pid, d, k as u16, pid)
    }

    #[test]
    fn many_flows_across_shards_with_live_quantiles() {
        let agg = DynamicAggregator::new(5, 8, 100.0, 1.0e7);
        let collector = Collector::spawn(
            CollectorConfig {
                shards: 4,
                batch_size: 64,
                ..CollectorConfig::default()
            },
            latency_factory(agg.clone(), 128),
        );
        let mut handle = collector.handle();
        let flows = 200u64;
        let per_flow = 300u64;
        for pid in 0..per_flow {
            for flow in 0..flows {
                handle
                    .push(encode_latency(
                        &agg,
                        flow,
                        flow * per_flow + pid,
                        3,
                        1_000.0,
                    ))
                    .unwrap();
            }
        }
        handle.flush().unwrap();
        let snap = collector.snapshot().unwrap();
        assert_eq!(snap.num_flows(), flows as usize);
        assert_eq!(snap.total_packets(), flows * per_flow);
        // Hop 2 carries ~2µs samples; fleet-wide median decodes close.
        let q = snap.latency_quantile(2, 0.5, &agg).unwrap();
        assert!((q / 2_000.0 - 1.0).abs() < 0.25, "fleet median {q}");
        let stats = collector.shutdown();
        assert_eq!(stats.ingested, flows * per_flow);
        assert_eq!(stats.active_flows, flows);
        assert_eq!(stats.evicted_lru + stats.evicted_ttl, 0);
        assert_eq!(stats.digests_dropped, 0, "no digest lost");
    }

    #[test]
    fn concurrent_producers_preserve_per_flow_streams() {
        // 4 producers on their own threads, each owning a disjoint flow
        // set; totals and per-flow packet counts must be exact.
        let agg = DynamicAggregator::new(11, 8, 100.0, 1.0e7);
        let collector = Collector::spawn(
            CollectorConfig {
                shards: 4,
                batch_size: 32,
                ring_capacity: 8,
                ..CollectorConfig::default()
            },
            latency_factory(agg.clone(), 96),
        );
        let producers = 4u64;
        let flows = 64u64;
        let per_flow = 200u64;
        std::thread::scope(|s| {
            for p in 0..producers {
                let mut handle = collector.register_producer();
                let agg = agg.clone();
                s.spawn(move || {
                    for pid in 0..per_flow {
                        for flow in (0..flows).filter(|f| f % producers == p) {
                            handle
                                .push(encode_latency(
                                    &agg,
                                    flow,
                                    flow * per_flow + pid,
                                    3,
                                    1_000.0,
                                ))
                                .unwrap();
                        }
                    }
                    handle.flush().unwrap();
                });
            }
        });
        let snap = collector.snapshot().unwrap();
        assert_eq!(snap.num_flows(), flows as usize);
        assert_eq!(snap.total_packets(), flows * per_flow);
        for flow in 0..flows {
            assert_eq!(
                snap.flow(flow).unwrap().packets,
                per_flow,
                "flow {flow} complete"
            );
        }
        let stats = collector.shutdown();
        assert_eq!(stats.ingested, flows * per_flow);
        assert_eq!(stats.digests_dropped, 0);
    }

    #[test]
    fn flow_churn_is_bounded_by_eviction() {
        let agg = DynamicAggregator::new(6, 8, 100.0, 1.0e7);
        let collector = Collector::spawn(
            CollectorConfig {
                shards: 2,
                batch_size: 32,
                max_flows_per_shard: 50,
                ..CollectorConfig::default()
            },
            latency_factory(agg.clone(), 64),
        );
        let mut handle = collector.handle();
        for flow in 0..5_000u64 {
            for pid in 0..3u64 {
                handle
                    .push(encode_latency(&agg, flow, flow * 3 + pid, 2, 500.0))
                    .unwrap();
            }
        }
        handle.flush().unwrap();
        let snap = collector.snapshot().unwrap();
        assert!(
            snap.num_flows() <= 100,
            "flows bounded: {}",
            snap.num_flows()
        );
        assert!(
            snap.evicted_flows() >= 4_900,
            "churn evicted: {}",
            snap.evicted_flows()
        );
        let stats = collector.shutdown();
        assert_eq!(stats.ingested, 15_000);
        assert!(stats.active_flows <= 100);
    }

    #[test]
    fn ttl_evicts_idle_flows_deterministically() {
        let agg = DynamicAggregator::new(8, 8, 100.0, 1.0e7);
        let collector = Collector::spawn(
            CollectorConfig {
                shards: 1,
                batch_size: 16,
                flow_ttl: Some(1_000),
                ..CollectorConfig::default()
            },
            latency_factory(agg.clone(), 64),
        );
        let mut handle = collector.handle();
        // Flow 1 active at ts 0..100; flow 2 keeps the clock advancing.
        for pid in 0..100u64 {
            let mut r = encode_latency(&agg, 1, pid, 2, 500.0);
            r.ts = pid;
            handle.push(r).unwrap();
        }
        for pid in 0..200u64 {
            let mut r = encode_latency(&agg, 2, 10_000 + pid, 2, 500.0);
            r.ts = 5_000 + pid;
            handle.push(r).unwrap();
        }
        handle.flush().unwrap();
        let snap = collector.snapshot().unwrap();
        assert_eq!(snap.num_flows(), 1, "idle flow 1 must expire");
        assert!(snap.flow(2).is_some());
        let stats = collector.shutdown();
        assert_eq!(stats.evicted_ttl, 1);
    }

    #[test]
    fn filtered_and_top_k_queries_answer_cheaply() {
        let agg = DynamicAggregator::new(21, 8, 100.0, 1.0e7);
        let collector = Collector::spawn(
            CollectorConfig {
                shards: 4,
                batch_size: 16,
                ..CollectorConfig::default()
            },
            latency_factory(agg.clone(), 64),
        );
        let mut handle = collector.handle();
        // Flow f gets f+1 packets: flow 63 is the heaviest.
        for flow in 0..64u64 {
            for pid in 0..=flow {
                handle
                    .push(encode_latency(&agg, flow, flow * 100 + pid, 2, 700.0))
                    .unwrap();
            }
        }
        handle.flush().unwrap();

        let watch = collector
            .query(
                &TelemetryQuery::new()
                    .flows([3, 17, 42, 999])
                    .plan()
                    .unwrap(),
            )
            .unwrap();
        match watch {
            QueryResult::Summaries(rows) => {
                assert_eq!(rows.len(), 3, "untracked flow 999 absent");
                for (f, s) in rows {
                    assert_eq!(s.packets, f + 1);
                }
            }
            other => panic!("unexpected {other:?}"),
        }

        let top = collector
            .query(&TelemetryQuery::new().top_k(5).plan().unwrap())
            .unwrap();
        match top {
            QueryResult::Summaries(rows) => {
                let ids: Vec<u64> = rows.iter().map(|&(f, _)| f).collect();
                assert_eq!(ids, vec![63, 62, 61, 60, 59], "five heaviest, rank order");
            }
            other => panic!("unexpected {other:?}"),
        }

        // Hop quantiles over the whole table: one sketch's worth of
        // numbers back, never 64 summaries.
        let q = collector
            .query(
                &TelemetryQuery::new()
                    .hop_quantiles(2, [0.5])
                    .plan()
                    .unwrap(),
            )
            .unwrap();
        let decoded = q.decode_quantiles(&agg);
        assert_eq!(decoded.len(), 1);
        assert!(
            (decoded[0].1 / 1_400.0 - 1.0).abs() < 0.3,
            "hop-2 median ~1.4us, got {}",
            decoded[0].1
        );

        let full = collector.snapshot().unwrap();
        assert_eq!(full.num_flows(), 64);
        collector.shutdown();
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_snapshot_shims_match_query_plans() {
        // The one-release compatibility shims must answer exactly like
        // the plans they wrap.
        let agg = DynamicAggregator::new(33, 8, 100.0, 1.0e7);
        let collector = Collector::spawn(
            CollectorConfig::with_shards(4),
            latency_factory(agg.clone(), 64),
        );
        let mut handle = collector.handle();
        for flow in 0..32u64 {
            for pid in 0..=(flow % 7) {
                handle
                    .push(encode_latency(&agg, flow, flow * 100 + pid, 2, 700.0))
                    .unwrap();
            }
        }
        handle.flush().unwrap();

        let shim = collector.snapshot_flows(&[5, 5, 11, 999]).unwrap();
        let plan = collector
            .query(&TelemetryQuery::new().flows([5, 5, 11, 999]).plan().unwrap())
            .unwrap();
        match plan {
            QueryResult::Summaries(rows) => {
                assert_eq!(rows.len(), shim.num_flows());
                for (f, s) in rows {
                    assert_eq!(&s, shim.flow(f).unwrap());
                }
            }
            other => panic!("unexpected {other:?}"),
        }

        let shim = collector.snapshot_top_k(6).unwrap();
        let plan = collector
            .query(&TelemetryQuery::new().top_k(6).plan().unwrap())
            .unwrap();
        match plan {
            QueryResult::Summaries(mut rows) => {
                rows.sort_by_key(|&(f, _)| f); // shim is ID-sorted
                assert_eq!(
                    rows.iter().map(|&(f, _)| f).collect::<Vec<_>>(),
                    shim.flows().map(|&(f, _)| f).collect::<Vec<_>>(),
                    "same selection, shim re-sorted by ID"
                );
            }
            other => panic!("unexpected {other:?}"),
        }
        collector.shutdown();
    }

    #[test]
    fn tail_latency_alarm_fires_once_per_flow() {
        let agg = DynamicAggregator::new(9, 8, 100.0, 1.0e7);
        let collector = Collector::spawn(
            CollectorConfig {
                shards: 2,
                batch_size: 32,
                rules: vec![EventRule::new(RuleCondition::QuantileAbove {
                    hop: 1,
                    phi: 0.9,
                    threshold: 50_000.0,
                    min_samples: 50,
                })],
                ..CollectorConfig::default()
            },
            latency_factory(agg.clone(), 256),
        );
        let mut handle = collector.handle();
        // Flow 7 runs hot (~100µs hop latency); flows 1..=5 stay cool.
        for pid in 0..400u64 {
            for flow in 1..=5u64 {
                handle
                    .push(encode_latency(&agg, flow, flow * 1_000 + pid, 2, 1_000.0))
                    .unwrap();
            }
            handle
                .push(encode_latency(&agg, 7, 900_000 + pid, 2, 100_000.0))
                .unwrap();
        }
        handle.flush().unwrap();
        // Barrier: snapshot answers arrive after all batches applied.
        let _ = collector.snapshot().unwrap();
        let events = collector.drain_events();
        assert_eq!(events.len(), 1, "exactly one alarm: {events:?}");
        let e = &events[0];
        assert_eq!(e.flow, 7);
        assert_eq!(e.rule, 0);
        match &e.kind {
            EventKind::QuantileAbove { hop: 1, value, .. } => {
                assert!(*value > 50_000.0, "p90 {value}")
            }
            other => panic!("unexpected kind {other:?}"),
        }
        collector.shutdown();
    }

    #[test]
    fn rule_clears_on_falling_edge_then_refires() {
        // Rising → Cleared → rising again: full hysteresis on one flow.
        let agg = DynamicAggregator::new(17, 8, 100.0, 1.0e7);
        let collector = Collector::spawn(
            CollectorConfig {
                shards: 1,
                batch_size: 8,
                rules: vec![EventRule::new(RuleCondition::QuantileAbove {
                    hop: 1,
                    phi: 0.5,
                    threshold: 50_000.0,
                    min_samples: 8,
                })],
                ..CollectorConfig::default()
            },
            latency_factory(agg.clone(), 512),
        );
        let mut handle = collector.handle();
        let mut pid = 0u64;
        let mut burst = |handle: &mut CollectorHandle, n: u64, ns: f64| {
            for _ in 0..n {
                handle.push(encode_latency(&agg, 1, pid, 1, ns)).unwrap();
                pid += 1;
            }
            handle.flush().unwrap();
        };
        // 64 hot digests: the median is ~100µs, the rule fires.
        burst(&mut handle, 64, 100_000.0);
        // 200 cool digests: the median sinks to ~1µs, the rule clears.
        burst(&mut handle, 200, 1_000.0);
        // 600 hot digests: the median is hot again, the rule re-fires.
        burst(&mut handle, 600, 100_000.0);
        let _ = collector.snapshot().unwrap();
        let events = collector.drain_events();
        let kinds: Vec<&EventKind> = events.iter().map(|e| &e.kind).collect();
        assert_eq!(events.len(), 3, "fire, clear, re-fire: {events:?}");
        assert!(
            matches!(kinds[0], EventKind::QuantileAbove { .. }),
            "rising edge first"
        );
        assert_eq!(*kinds[1], EventKind::Cleared, "explicit falling edge");
        assert!(
            matches!(kinds[2], EventKind::QuantileAbove { .. }),
            "re-fires after clearing"
        );
        assert!(events.iter().all(|e| e.flow == 1 && e.rule == 0));
        collector.shutdown();
    }

    #[test]
    fn query_edge_cases() {
        let agg = DynamicAggregator::new(29, 8, 100.0, 1.0e7);
        let collector = Collector::spawn(
            CollectorConfig::with_shards(4),
            latency_factory(agg.clone(), 64),
        );
        let mut handle = collector.handle();
        for flow in 0..6u64 {
            handle
                .push(encode_latency(&agg, flow, flow, 2, 700.0))
                .unwrap();
        }
        handle.flush().unwrap();

        let rows = |result: QueryResult| match result {
            QueryResult::Summaries(rows) => rows,
            other => panic!("unexpected {other:?}"),
        };
        let q = |tq: TelemetryQuery| rows(collector.query(&tq.plan().unwrap()).unwrap());

        // k = 0: empty result, no flows serialized.
        assert!(q(TelemetryQuery::new().top_k(0)).is_empty());
        // k beyond the population: everything, rank-ordered.
        assert_eq!(q(TelemetryQuery::new().top_k(64)).len(), 6);

        // Unknown-only flow set: empty result. Empty flow set: no
        // shard consulted at all.
        assert!(q(TelemetryQuery::new().flows([100, 200])).is_empty());
        assert!(q(TelemetryQuery::new().flows(Vec::new())).is_empty());
        // Duplicates collapse; known and unknown IDs mix.
        let dup = q(TelemetryQuery::new().flows([2, 2, 2, 100]));
        assert_eq!(dup.len(), 1);
        assert_eq!(dup[0].0, 2);
        assert_eq!(dup[0].1.packets, 1);

        // A delta query past the newest timestamp returns nothing; one
        // from before returns everything.
        assert!(q(TelemetryQuery::new().since(u64::MAX)).is_empty());
        assert_eq!(q(TelemetryQuery::new()).len(), 6);
        // max_flows caps the response.
        assert_eq!(q(TelemetryQuery::new().max_flows(2)).len(), 2);

        // Path predicates on a latency-only table match nothing.
        assert!(q(TelemetryQuery::new().through_switch(1)).is_empty());

        // An invalid hand-built plan is rejected, not executed.
        let bad = QueryPlan {
            selector: Selector::All,
            projection: Projection::HopQuantiles {
                hop: 0,
                phis: vec![0.5],
                decode: None,
            },
            options: Default::default(),
        };
        assert!(matches!(
            collector.query(&bad),
            Err(QueryError::InvalidPlan(_))
        ));
        collector.shutdown();
    }

    #[test]
    fn cooldown_rule_refires_after_quiet_period() {
        let agg = DynamicAggregator::new(13, 8, 100.0, 1.0e7);
        let collector = Collector::spawn(
            CollectorConfig {
                shards: 1,
                batch_size: 8,
                rules: vec![EventRule::new(RuleCondition::QuantileAbove {
                    hop: 1,
                    phi: 0.5,
                    threshold: 50_000.0,
                    min_samples: 20,
                })
                .with_cooldown(1_000)],
                ..CollectorConfig::default()
            },
            latency_factory(agg.clone(), 256),
        );
        let mut handle = collector.handle();
        // A persistently hot flow across 10 cooldown windows: timestamps
        // advance 100 per digest, so each 1_000-tick cooldown spans ~10
        // digests.
        for pid in 0..400u64 {
            let mut r = encode_latency(&agg, 1, pid, 2, 100_000.0);
            r.ts = pid * 100;
            handle.push(r).unwrap();
        }
        handle.flush().unwrap();
        let _ = collector.snapshot().unwrap();
        let events = collector.drain_events();
        assert!(
            events.len() >= 3,
            "cooldown must allow re-fires, got {}",
            events.len()
        );
        // Consecutive firings respect the quiet period.
        for pair in events.windows(2) {
            assert!(
                pair[1].ts.saturating_sub(pair[0].ts) >= 1_000,
                "fires {} and {} closer than the cooldown",
                pair[0].ts,
                pair[1].ts
            );
        }
        collector.shutdown();
    }

    #[test]
    fn path_tracing_flows_resolve_and_alert() {
        let tracer = PathTracer::new(TracerConfig::paper(8, 2, 5));
        let universe: Vec<u64> = (0..64).collect();
        let factory_tracer = tracer.clone();
        let factory_universe = universe.clone();
        let collector = Collector::spawn(
            CollectorConfig {
                shards: 4,
                batch_size: 16,
                rules: vec![EventRule::new(RuleCondition::PathResolved)],
                ..CollectorConfig::default()
            },
            Arc::new(move |_flow, report: &DigestReport| {
                Box::new(factory_tracer.decoder(
                    factory_universe.clone(),
                    usize::from(report.path_len).max(1),
                )) as Box<dyn FlowRecorder>
            }),
        );
        let mut handle = collector.handle();
        let paths: Vec<Vec<u64>> = (0..20u64)
            .map(|f| (0..4).map(|h| (f * 7 + h * 13) % 64).collect())
            .collect();
        for pid in 1..=400u64 {
            for (f, path) in paths.iter().enumerate() {
                let digest = tracer.encode_path(pid, path);
                handle
                    .push(DigestReport::new(
                        f as u64,
                        pid,
                        digest,
                        path.len() as u16,
                        pid,
                    ))
                    .unwrap();
            }
        }
        handle.flush().unwrap();
        let snap = collector.snapshot().unwrap();
        assert_eq!(snap.path_completion(), Some(1.0), "all paths resolve");
        for (f, path) in paths.iter().enumerate() {
            let summary = snap.flow(f as u64).unwrap();
            assert_eq!(
                summary.path.as_ref().unwrap().path.as_ref().unwrap(),
                path,
                "flow {f}"
            );
        }
        let events = collector.drain_events();
        assert_eq!(events.len(), paths.len(), "one PathResolved per flow");
        collector.shutdown();
    }

    #[test]
    fn handle_errors_after_shutdown_and_counts_losses() {
        let agg = DynamicAggregator::new(3, 8, 100.0, 1.0e7);
        let collector = Collector::spawn(
            CollectorConfig {
                shards: 1,
                batch_size: 1,
                ..CollectorConfig::default()
            },
            latency_factory(agg.clone(), 64),
        );
        let mut handle = collector.handle();
        collector.shutdown();
        let err = handle
            .push(encode_latency(&agg, 1, 1, 2, 500.0))
            .unwrap_err();
        assert_eq!(err, CollectorError::Disconnected);
        assert_eq!(
            handle.dropped_digests(),
            1,
            "undeliverable digest must be counted, not silently dropped"
        );
    }

    #[test]
    fn try_push_reports_backpressure_without_blocking() {
        let agg = DynamicAggregator::new(4, 8, 100.0, 1.0e7);
        let collector = Collector::spawn(
            CollectorConfig {
                shards: 1,
                batch_size: 4,
                ring_capacity: 1,
                ..CollectorConfig::default()
            },
            latency_factory(agg.clone(), 64),
        );
        let mut handle = collector.handle();
        // Stall the only shard with a barrier we never... cannot stall
        // the worker from outside; instead rely on capacity: with a
        // 1-slot ring and batch_size 4, pushing fast enough eventually
        // sees WouldBlock or succeeds — both are valid; the invariant
        // under test is that try_push never loses an accepted digest.
        let mut accepted = 0u64;
        for pid in 0..100_000u64 {
            match handle.try_push(encode_latency(&agg, 1, pid, 2, 500.0)) {
                Ok(()) => accepted += 1,
                Err(CollectorError::WouldBlock) => {}
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        handle.flush().unwrap();
        collector.barrier().unwrap();
        let stats = collector.stats();
        assert_eq!(stats.ingested, accepted, "every accepted digest applied");
        assert_eq!(stats.digests_dropped, 0);
        collector.shutdown();
    }
}
