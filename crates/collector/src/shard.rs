//! Shard worker: the thread that owns one slice of flow state.
//!
//! A worker multiplexes two inputs: a low-rate *control* channel
//! (producer attachment, snapshot/barrier requests, shutdown) and one
//! SPSC *data ring* per registered producer. The run loop polls control
//! first, then takes one batch from each ring per pass — round-robin, so
//! no producer can starve the others — and parks when everything is
//! momentarily idle. Because flows are hash-partitioned, a worker never
//! shares recorder state with another thread: the ingest hot path takes
//! no locks, and the only synchronization is the ring hand-off itself.

use crate::config::{CollectorConfig, FlowId, RecorderFactory};
use crate::events::{Event, EventKind, EventRule};
use crate::flow_table::FlowTable;
use crate::inference::{FlowSummary, ShardSnapshot};
use crate::ring::{RingConsumer, Waiter};
use pint_core::DigestReport;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender, TryRecvError, TrySendError};
use std::sync::Arc;
use std::time::Duration;

/// Messages a shard worker consumes on its control channel. Data batches
/// arrive on the per-producer rings, never here.
pub(crate) enum ShardMsg {
    /// A new producer registered; adopt its ring.
    Attach(RingConsumer),
    /// Read request: the worker drains all rings, resolves the
    /// selection against its slice of flow state, and answers on the
    /// provided channel. Every read — full snapshots, watch lists,
    /// top-K, path predicates, delta polls — is this one message: the
    /// shard tier of a compiled [`QueryPlan`](pint_query::QueryPlan).
    Query(ShardQuery, Sender<ShardSnapshot>),
    /// Sync point: the worker acknowledges once every batch enqueued
    /// before this message was sent has been applied.
    Barrier(Sender<()>),
    /// Drain all rings and exit.
    Shutdown,
}

/// The shard-level slice of a query plan: which of this shard's flows
/// to summarize. The collector pre-routes (a flow set is split to
/// owning shards) and post-refines (per-shard top-K lists are trimmed
/// globally); the shard only narrows what it serializes.
pub(crate) struct ShardQuery {
    /// Which flows to summarize.
    pub(crate) select: ShardSelect,
    /// Delta reads: skip flows whose `last_ts` is not strictly greater
    /// (cold flows cost nothing — they are never summarized).
    pub(crate) since: Option<u64>,
}

/// Shard-side selection (the distributable subset of
/// [`Selector`](pint_query::Selector) — watch lists and flow sets both
/// arrive as the owning shard's `Flows` slice).
pub(crate) enum ShardSelect {
    /// Every tracked flow.
    All,
    /// Exactly these flows (already routed to this shard's partition).
    Flows(Vec<FlowId>),
    /// This shard's `k` heaviest flows by packets (ties broken by
    /// ascending flow ID — the k-list trims globally later).
    TopK(usize),
    /// Flows whose fully decoded path contains the switch.
    PathThrough(u64),
}

/// Live counters one shard publishes (read from any thread).
#[derive(Debug, Default)]
pub struct ShardStats {
    /// Digests applied.
    pub ingested: AtomicU64,
    /// Batches applied.
    pub batches: AtomicU64,
    /// Currently attached producer rings.
    pub producers: AtomicU64,
    /// Currently tracked flows.
    pub active_flows: AtomicU64,
    /// Approximate recorder-state bytes held.
    pub state_bytes: AtomicU64,
    /// Flows evicted by the count/byte caps.
    pub evicted_lru: AtomicU64,
    /// Flows evicted by idle TTL.
    pub evicted_ttl: AtomicU64,
    /// Events fired and delivered to the event queue.
    pub events: AtomicU64,
    /// Events fired but discarded — the bounded event channel was full
    /// (consumer stopped draining) or the consumer was gone.
    pub events_dropped: AtomicU64,
}

pub(crate) struct ShardWorker {
    shard: usize,
    table: FlowTable,
    factory: RecorderFactory,
    rules: Vec<EventRule>,
    events_tx: SyncSender<Event>,
    stats: Arc<ShardStats>,
    /// This shard's park slot; producers and the collector wake it.
    waiter: Arc<Waiter>,
    spin_limit: u32,
    park_timeout: Duration,
    /// Scratch: `(slot, flow)` touched by the current batch (unique per
    /// batch via the table's stamp — no sort/dedup pass).
    touched: Vec<(u32, FlowId)>,
    /// Monotonic batch stamp driving touch dedup.
    batch_stamp: u64,
    /// Latest sink timestamp seen (drives TTL expiry).
    clock: u64,
}

impl ShardWorker {
    pub(crate) fn new(
        shard: usize,
        config: &CollectorConfig,
        factory: RecorderFactory,
        events_tx: SyncSender<Event>,
        stats: Arc<ShardStats>,
        waiter: Arc<Waiter>,
    ) -> Self {
        Self {
            shard,
            table: FlowTable::new(
                config.max_flows_per_shard,
                config.max_bytes_per_shard,
                config.flow_ttl,
            ),
            factory,
            rules: config.rules.clone(),
            events_tx,
            stats,
            waiter,
            spin_limit: config.spin_limit,
            park_timeout: Duration::from_micros(config.park_timeout_us.max(1)),
            touched: Vec::new(),
            batch_stamp: 0,
            clock: 0,
        }
    }

    /// The worker loop; runs until `Shutdown` (or the collector and all
    /// producers are gone).
    pub(crate) fn run(mut self, ctrl: Receiver<ShardMsg>) {
        self.waiter.register_current();
        let mut rings: Vec<RingConsumer> = Vec::new();
        let mut ctrl_open = true;
        let mut idle = 0u32;
        loop {
            let mut progressed = false;
            // Control first: attachment must precede any sync request
            // sent after it (the channel preserves that order).
            while ctrl_open {
                match ctrl.try_recv() {
                    Ok(msg) => {
                        progressed = true;
                        if !self.on_ctrl(msg, &mut rings) {
                            return; // Shutdown: rings already drained
                        }
                    }
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        // Collector gone without a Shutdown message:
                        // finish the remaining producers, then exit.
                        ctrl_open = false;
                    }
                }
            }
            // One batch per ring per pass (fair across producers);
            // closed-and-drained rings detach as soon as they run dry,
            // so producer churn cannot accumulate dead rings.
            let before = rings.len();
            rings.retain_mut(|ring| match ring.pop() {
                Some(batch) => {
                    self.apply_batch(batch);
                    progressed = true;
                    true
                }
                None => !ring.is_finished(),
            });
            if rings.len() != before {
                self.stats
                    .producers
                    .store(rings.len() as u64, Ordering::Relaxed);
            }
            if progressed {
                idle = 0;
                continue;
            }
            if !ctrl_open && rings.is_empty() {
                return;
            }
            idle += 1;
            if idle <= self.spin_limit {
                std::hint::spin_loop();
                continue;
            }
            // Park until a producer pushes or the collector sends
            // control traffic (both wake this waiter). `prepare` orders
            // the announce before the re-checks; both inputs must be
            // re-checked after it, or a wake racing the announce is
            // lost and the request stalls a full park_timeout.
            self.waiter.prepare();
            if rings.iter().any(|r| !r.is_empty()) {
                self.waiter.cancel();
            } else {
                match ctrl.try_recv() {
                    Ok(msg) => {
                        self.waiter.cancel();
                        if !self.on_ctrl(msg, &mut rings) {
                            return;
                        }
                    }
                    Err(TryRecvError::Empty) => self.waiter.park(self.park_timeout),
                    Err(TryRecvError::Disconnected) => {
                        ctrl_open = false;
                        self.waiter.park(self.park_timeout);
                    }
                }
            }
            idle = 0;
        }
    }

    /// Handles one control message; `false` means exit now.
    fn on_ctrl(&mut self, msg: ShardMsg, rings: &mut Vec<RingConsumer>) -> bool {
        match msg {
            ShardMsg::Attach(ring) => {
                rings.push(ring);
                self.stats
                    .producers
                    .store(rings.len() as u64, Ordering::Relaxed);
            }
            ShardMsg::Query(query, reply) => {
                self.drain_all(rings);
                // The requester may have given up; ignore send errors.
                let _ = reply.send(self.answer(&query));
            }
            ShardMsg::Barrier(reply) => {
                self.drain_all(rings);
                let _ = reply.send(());
            }
            ShardMsg::Shutdown => {
                self.drain_all(rings);
                return false;
            }
        }
        true
    }

    /// Applies every batch queued on any ring *at the moment of the
    /// call*: the sync point behind snapshots, barriers, and shutdown.
    /// Batches enqueued by a producer before the triggering request was
    /// sent are guaranteed in (they were visible in its ring). The drain
    /// is bounded by a per-ring quota taken up front, so a producer
    /// sustaining line-rate ingest cannot starve the request — batches
    /// racing in behind the quota catch the next cycle.
    fn drain_all(&mut self, rings: &mut [RingConsumer]) {
        let quotas: Vec<u64> = rings.iter().map(|r| r.pending()).collect();
        for (ring, quota) in rings.iter_mut().zip(quotas) {
            for _ in 0..quota {
                match ring.pop() {
                    Some(batch) => self.apply_batch(batch),
                    None => break,
                }
            }
        }
    }

    fn apply_batch(&mut self, batch: Vec<DigestReport>) {
        self.touched.clear();
        self.batch_stamp += 1;
        let stamp = self.batch_stamp;
        let n = batch.len() as u64;
        for report in batch {
            self.clock = self.clock.max(report.ts);
            let flow = report.flow;
            let factory = &self.factory;
            let (idx, first) = self
                .table
                .upsert(flow, report.ts, stamp, || factory(flow, &report));
            if first {
                self.touched.push((idx, flow));
            }
            self.table
                .entry_if(idx, flow)
                .expect("slot just upserted")
                .rec
                .absorb(report.pid, &report.digest);
        }
        // Memory accounting + byte-cap eviction for the flows that grew
        // (the estimate itself refreshes on a packet stride inside the
        // table).
        for i in 0..self.touched.len() {
            let (idx, flow) = self.touched[i];
            self.table.refresh_bytes_at(idx, flow);
        }
        self.table.expire(self.clock);
        self.detect_events();
        self.publish_stats(n);
    }

    /// Evaluates armed rules against every flow this batch touched (the
    /// flow may have been evicted meanwhile — skip then).
    ///
    /// Evaluation is amortized: rules (which may recompute quantiles)
    /// run eagerly while a flow is young, then only after every
    /// [`EVAL_STRIDE`] new packets — so a long-lived flow that never
    /// crosses a threshold costs O(1/EVAL_STRIDE) evaluations per
    /// digest, and detection lags a firing condition by at most one
    /// batch plus `EVAL_STRIDE` packets.
    ///
    /// Hysteresis: a fired rule keeps being evaluated (at the stride);
    /// when its condition stops holding the worker emits an explicit
    /// [`EventKind::Cleared`](crate::events::EventKind::Cleared) event
    /// and re-arms the rule, so the next rising edge fires again. A
    /// fired rule *with* a cooldown is re-checked only once the quiet
    /// period elapses: still holding ⇒ re-fire (cooldown restarts),
    /// cleared ⇒ the `Cleared` event is emitted then.
    fn detect_events(&mut self) {
        /// Re-evaluate after this many new packets (steady state).
        const EVAL_STRIDE: u64 = 16;
        /// Evaluate on every batch below this packet count, so
        /// fast-converging rules (e.g. path resolution) alert promptly.
        const EVAL_EAGER: u64 = 64;
        if self.rules.is_empty() {
            return;
        }
        let nrules = self.rules.len();
        let ts = self.clock;
        let mut fired = 0u64;
        for i in 0..self.touched.len() {
            let (idx, flow) = self.touched[i];
            let Some(entry) = self.table.entry_if(idx, flow) else {
                continue;
            };
            let packets = entry.rec.packets();
            if packets >= EVAL_EAGER && packets < entry.last_eval_packets + EVAL_STRIDE {
                continue;
            }
            entry.last_eval_packets = packets;
            for (rule_idx, rule) in self.rules.iter().enumerate() {
                let bit = 1u64 << rule_idx;
                let was_fired = entry.fired_rules & bit != 0;
                if was_fired {
                    if let Some(quiet) = rule.cooldown {
                        // A fired cooldown rule stays silent (and
                        // unevaluated) until its quiet period elapses;
                        // then it either re-fires or clears below.
                        let since = ts.saturating_sub(entry.fired_ts[rule_idx]);
                        if since < quiet {
                            continue;
                        }
                    }
                    // Fired, no cooldown: keep evaluating at the stride
                    // so the falling edge is observed and reported.
                }
                match rule.condition.evaluate(entry.rec.as_mut()) {
                    Some(kind) => {
                        // Rising edge, or a cooldown re-fire; a fired
                        // non-cooldown rule whose condition still holds
                        // stays fired silently.
                        if was_fired && rule.cooldown.is_none() {
                            continue;
                        }
                        entry.fired_rules |= bit;
                        if rule.cooldown.is_some() {
                            if entry.fired_ts.len() < nrules {
                                entry.fired_ts.resize(nrules, 0);
                            }
                            entry.fired_ts[rule_idx] = ts;
                        }
                        fired += Self::deliver(
                            &self.events_tx,
                            &self.stats,
                            Event {
                                flow,
                                shard: self.shard,
                                rule: rule_idx,
                                kind,
                                ts,
                            },
                        );
                    }
                    None => {
                        // Falling edge: a fired rule whose condition
                        // stopped holding clears explicitly and re-arms.
                        entry.fired_rules &= !bit;
                        if was_fired {
                            fired += Self::deliver(
                                &self.events_tx,
                                &self.stats,
                                Event {
                                    flow,
                                    shard: self.shard,
                                    rule: rule_idx,
                                    kind: EventKind::Cleared,
                                    ts,
                                },
                            );
                        }
                    }
                }
            }
        }
        if fired > 0 {
            self.stats.events.fetch_add(fired, Ordering::Relaxed);
        }
    }

    /// Sends one event without ever blocking the ingest path: returns 1
    /// on delivery; a full queue or gone consumer counts into
    /// `events_dropped` and returns 0. (Associated fn over the two
    /// fields it needs, so callers can hold a flow-table borrow.)
    fn deliver(events_tx: &SyncSender<Event>, stats: &ShardStats, event: Event) -> u64 {
        match events_tx.try_send(event) {
            Ok(()) => 1,
            Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => {
                stats.events_dropped.fetch_add(1, Ordering::Relaxed);
                0
            }
        }
    }

    fn publish_stats(&self, batch_digests: u64) {
        let s = &self.stats;
        s.ingested.fetch_add(batch_digests, Ordering::Relaxed);
        s.batches.fetch_add(1, Ordering::Relaxed);
        s.active_flows
            .store(self.table.len() as u64, Ordering::Relaxed);
        s.state_bytes
            .store(self.table.total_bytes() as u64, Ordering::Relaxed);
        s.evicted_lru
            .store(self.table.stats.evicted_lru, Ordering::Relaxed);
        s.evicted_ttl
            .store(self.table.stats.evicted_ttl, Ordering::Relaxed);
    }

    fn summarize(entry: &crate::flow_table::FlowEntry) -> FlowSummary {
        let rec = entry.rec.as_ref();
        FlowSummary {
            kind: rec.kind(),
            packets: rec.packets(),
            state_bytes: rec.state_bytes(),
            last_ts: entry.last_ts,
            hop_sketches: rec.hop_sketches(),
            path: rec.path_progress(),
            inconsistencies: rec.inconsistencies(),
        }
    }

    fn snapshot_with(&self, flows: Vec<(FlowId, FlowSummary)>) -> ShardSnapshot {
        ShardSnapshot {
            shard: self.shard,
            flows,
            table_stats: self.table.stats,
            ingested: self.stats.ingested.load(Ordering::Relaxed),
        }
    }

    /// Resolves one shard query: pick the flows the selection names
    /// (respecting the delta cutoff), summarize *only* those, and wrap
    /// them with this shard's counters. Summarizing clones hop
    /// sketches, so narrowing here — not after — is what makes
    /// targeted queries an order of magnitude cheaper than full
    /// snapshots.
    fn answer(&self, query: &ShardQuery) -> ShardSnapshot {
        let fresh =
            |entry: &crate::flow_table::FlowEntry| query.since.is_none_or(|t| entry.last_ts > t);
        let flows: Vec<(FlowId, FlowSummary)> = match &query.select {
            ShardSelect::All => self
                .table
                .iter()
                .filter(|&(_, entry)| fresh(entry))
                .map(|(&flow, entry)| (flow, Self::summarize(entry)))
                .collect(),
            // The collector pre-routes the list to this shard, so a
            // direct per-ID probe beats scanning the whole table.
            ShardSelect::Flows(wanted) => wanted
                .iter()
                .filter_map(|&flow| {
                    self.table
                        .get(flow)
                        .filter(|&entry| fresh(entry))
                        .map(|entry| (flow, Self::summarize(entry)))
                })
                .collect(),
            ShardSelect::TopK(k) => {
                let mut ranked: Vec<(u64, FlowId)> = self
                    .table
                    .iter()
                    .filter(|&(_, entry)| fresh(entry))
                    .map(|(&flow, entry)| (entry.rec.packets(), flow))
                    .collect();
                // The shared top-K order (most packets first, ties by
                // ascending flow ID): local truncation must agree with
                // the global re-rank or tied flows could be lost.
                ranked.sort_unstable_by(|a, b| pint_query::top_k_order(*a, *b));
                ranked.truncate(*k);
                ranked
                    .into_iter()
                    .filter_map(|(_, flow)| {
                        self.table
                            .get(flow)
                            .map(|entry| (flow, Self::summarize(entry)))
                    })
                    .collect()
            }
            // Probe path progress first (cheap) and summarize — hop
            // sketches and all — only the matching flows.
            ShardSelect::PathThrough(switch) => self
                .table
                .iter()
                .filter(|&(_, entry)| fresh(entry))
                .filter(|(_, entry)| {
                    entry
                        .rec
                        .path_progress()
                        .and_then(|p| p.path)
                        .is_some_and(|p| p.contains(switch))
                })
                .map(|(&flow, entry)| (flow, Self::summarize(entry)))
                .collect(),
        };
        self.snapshot_with(flows)
    }
}
