//! Shard worker: the thread that owns one slice of flow state.
//!
//! Workers drain batches from a bounded channel, apply each digest to the
//! owning flow's recorder, refresh memory accounting, run TTL expiry, and
//! evaluate event rules for the flows the batch touched. Because flows
//! are hash-partitioned, a worker never shares recorder state with
//! another thread — the ingest hot path takes no locks.

use crate::config::{CollectorConfig, FlowId, RecorderFactory};
use crate::events::{Event, EventRule};
use crate::flow_table::FlowTable;
use crate::inference::{FlowSummary, ShardSnapshot};
use pint_core::DigestReport;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender, TrySendError};
use std::sync::Arc;

/// Messages a shard worker consumes.
pub(crate) enum ShardMsg {
    /// A batch of digests to apply.
    Batch(Vec<DigestReport>),
    /// Snapshot request; the worker answers on the provided channel.
    Snapshot(Sender<ShardSnapshot>),
    /// Sync point: the worker acknowledges once every batch queued ahead
    /// of this message has been applied.
    Barrier(Sender<()>),
    /// Drain and exit.
    Shutdown,
}

/// Live counters one shard publishes (read from any thread).
#[derive(Debug, Default)]
pub struct ShardStats {
    /// Digests applied.
    pub ingested: AtomicU64,
    /// Batches applied.
    pub batches: AtomicU64,
    /// Currently tracked flows.
    pub active_flows: AtomicU64,
    /// Approximate recorder-state bytes held.
    pub state_bytes: AtomicU64,
    /// Flows evicted by the count/byte caps.
    pub evicted_lru: AtomicU64,
    /// Flows evicted by idle TTL.
    pub evicted_ttl: AtomicU64,
    /// Events fired and delivered to the event queue.
    pub events: AtomicU64,
    /// Events fired but discarded — the bounded event channel was full
    /// (consumer stopped draining) or the consumer was gone.
    pub events_dropped: AtomicU64,
}

pub(crate) struct ShardWorker {
    shard: usize,
    table: FlowTable,
    factory: RecorderFactory,
    rules: Vec<EventRule>,
    events_tx: SyncSender<Event>,
    stats: Arc<ShardStats>,
    /// Scratch: flows touched by the current batch (dedup'd).
    touched: Vec<FlowId>,
    /// Latest sink timestamp seen (drives TTL expiry).
    clock: u64,
}

impl ShardWorker {
    pub(crate) fn new(
        shard: usize,
        config: &CollectorConfig,
        factory: RecorderFactory,
        events_tx: SyncSender<Event>,
        stats: Arc<ShardStats>,
    ) -> Self {
        Self {
            shard,
            table: FlowTable::new(
                config.max_flows_per_shard,
                config.max_bytes_per_shard,
                config.flow_ttl,
            ),
            factory,
            rules: config.rules.clone(),
            events_tx,
            stats,
            touched: Vec::new(),
            clock: 0,
        }
    }

    /// The worker loop; runs until `Shutdown` or channel disconnect.
    pub(crate) fn run(mut self, rx: Receiver<ShardMsg>) {
        while let Ok(msg) = rx.recv() {
            match msg {
                ShardMsg::Batch(batch) => self.apply_batch(batch),
                ShardMsg::Snapshot(reply) => {
                    // The requester may have given up; ignore send errors.
                    let _ = reply.send(self.snapshot());
                }
                ShardMsg::Barrier(reply) => {
                    let _ = reply.send(());
                }
                ShardMsg::Shutdown => break,
            }
        }
    }

    fn apply_batch(&mut self, batch: Vec<DigestReport>) {
        self.touched.clear();
        let n = batch.len() as u64;
        for report in batch {
            self.clock = self.clock.max(report.ts);
            let flow = report.flow;
            let factory = &self.factory;
            let entry = self
                .table
                .entry_mut(flow, report.ts, || factory(flow, &report));
            entry.rec.absorb(report.pid, &report.digest);
            self.touched.push(flow);
        }
        self.touched.sort_unstable();
        self.touched.dedup();
        // Memory accounting + byte-cap eviction for the flows that grew.
        for i in 0..self.touched.len() {
            self.table.refresh_bytes(self.touched[i]);
        }
        self.table.expire(self.clock);
        self.detect_events();
        self.publish_stats(n);
    }

    /// Evaluates not-yet-fired rules against every flow this batch
    /// touched (the flow may have been evicted meanwhile — skip then).
    ///
    /// Evaluation is amortized: rules (which may recompute quantiles)
    /// run eagerly while a flow is young, then only after every
    /// [`EVAL_STRIDE`] new packets — so a long-lived flow that never
    /// crosses a threshold costs O(1/EVAL_STRIDE) evaluations per
    /// digest, and detection lags a firing condition by at most one
    /// batch plus `EVAL_STRIDE` packets.
    fn detect_events(&mut self) {
        /// Re-evaluate after this many new packets (steady state).
        const EVAL_STRIDE: u64 = 16;
        /// Evaluate on every batch below this packet count, so
        /// fast-converging rules (e.g. path resolution) alert promptly.
        const EVAL_EAGER: u64 = 64;
        if self.rules.is_empty() {
            return;
        }
        let all_rules = if self.rules.len() == 64 {
            u64::MAX
        } else {
            (1u64 << self.rules.len()) - 1
        };
        let mut fired = 0u64;
        for idx in 0..self.touched.len() {
            let flow = self.touched[idx];
            let ts = self.clock;
            let Some(entry) = self.table.get_mut(flow) else {
                continue;
            };
            if entry.fired_rules == all_rules {
                continue;
            }
            let packets = entry.rec.packets();
            if packets >= EVAL_EAGER && packets < entry.last_eval_packets + EVAL_STRIDE {
                continue;
            }
            entry.last_eval_packets = packets;
            for (rule_idx, rule) in self.rules.iter().enumerate() {
                let bit = 1u64 << rule_idx;
                if entry.fired_rules & bit != 0 {
                    continue;
                }
                if let Some(kind) = rule.evaluate(entry.rec.as_mut()) {
                    entry.fired_rules |= bit;
                    let event = Event {
                        flow,
                        shard: self.shard,
                        rule: rule_idx,
                        kind,
                        ts,
                    };
                    // Never block the ingest path on the event queue:
                    // `events` counts deliveries, `events_dropped` counts
                    // firings lost to a full queue or a gone consumer.
                    match self.events_tx.try_send(event) {
                        Ok(()) => fired += 1,
                        Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => {
                            self.stats.events_dropped.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            }
        }
        if fired > 0 {
            self.stats.events.fetch_add(fired, Ordering::Relaxed);
        }
    }

    fn publish_stats(&self, batch_digests: u64) {
        let s = &self.stats;
        s.ingested.fetch_add(batch_digests, Ordering::Relaxed);
        s.batches.fetch_add(1, Ordering::Relaxed);
        s.active_flows
            .store(self.table.len() as u64, Ordering::Relaxed);
        s.state_bytes
            .store(self.table.total_bytes() as u64, Ordering::Relaxed);
        s.evicted_lru
            .store(self.table.stats.evicted_lru, Ordering::Relaxed);
        s.evicted_ttl
            .store(self.table.stats.evicted_ttl, Ordering::Relaxed);
    }

    fn snapshot(&self) -> ShardSnapshot {
        let flows = self
            .table
            .iter()
            .map(|(&flow, entry)| {
                let rec = entry.rec.as_ref();
                let summary = FlowSummary {
                    kind: rec.kind(),
                    packets: rec.packets(),
                    state_bytes: rec.state_bytes(),
                    last_ts: entry.last_ts,
                    hop_sketches: rec.hop_sketches(),
                    path: rec.path_progress(),
                    inconsistencies: rec.inconsistencies(),
                };
                (flow, summary)
            })
            .collect();
        ShardSnapshot {
            shard: self.shard,
            flows,
            table_stats: self.table.stats,
            ingested: self.stats.ingested.load(Ordering::Relaxed),
        }
    }
}
