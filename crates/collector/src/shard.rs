//! Shard worker: the thread that owns one slice of flow state.
//!
//! A worker multiplexes two inputs: a low-rate *control* channel
//! (producer attachment, snapshot/barrier requests, shutdown) and one
//! SPSC *data ring* per registered producer. The run loop polls control
//! first, then drains a bounded run of batches from each ring per pass —
//! round-robin with a per-ring quota, so no producer can starve the
//! others while consecutive batches from one producer still hit warm
//! flow state — and parks when everything is momentarily idle. Because
//! flows are hash-partitioned, a worker never
//! shares recorder state with another thread: the ingest hot path takes
//! no locks, and the only synchronization is the ring hand-off itself.

use crate::config::{CollectorConfig, FlowId, RecorderFactory};
use crate::events::{Event, EventKind, EventRule};
use crate::flow_table::FlowTable;
use crate::inference::{FlowSummary, ShardSnapshot};
use crate::ring::{BackoffController, RingConsumer, RingTuning, Waiter};
use pint_core::DigestReport;
use pint_obs::{
    ClockHandle, Counter, FlightRecorder, Gauge, Histogram, MetricsRegistry, TraceStage,
};
use pint_store::JournalSender;
use pint_wire::DigestBatch;
use std::collections::VecDeque;
use std::sync::mpsc::{Receiver, Sender, SyncSender, TryRecvError, TrySendError};
use std::sync::Arc;
use std::time::Duration;

/// Per-operation stage timing (flow-table touch, KLL update) samples one
/// digest in this many: individual `Clock` reads around every digest
/// would dominate the ~100 ns ingest path, while a deterministic 1-in-64
/// sample keeps overhead well under the 5% budget and still populates
/// the histograms at any realistic rate.
const STAGE_SAMPLE: u64 = 64;

/// Messages a shard worker consumes on its control channel. Data batches
/// arrive on the per-producer rings, never here.
pub(crate) enum ShardMsg {
    /// A new producer registered; adopt its ring.
    Attach(RingConsumer),
    /// Read request: once every batch published before this message was
    /// received has been applied, the worker resolves the selection
    /// against its slice of flow state and answers on the provided
    /// channel. Every read — full snapshots, watch lists, top-K, path
    /// predicates, delta polls — is this one message: the shard tier of
    /// a compiled [`QueryPlan`](pint_query::QueryPlan).
    Query(ShardQuery, Sender<ShardSnapshot>),
    /// Sync point: the worker acknowledges once every batch enqueued
    /// before this message was sent has been applied.
    Barrier(Sender<()>),
    /// Start teeing applied batches into a durability journal. The
    /// worker numbers its journaled deltas from `start_seq + 1` —
    /// above whatever the journal's file already holds for this shard,
    /// so generations never collide in replay's dedup window.
    AttachJournal {
        /// The journal's non-blocking hot-path handle.
        sender: JournalSender,
        /// Highest delta seq already persisted for this shard.
        start_seq: u64,
    },
    /// Drain all rings and exit.
    Shutdown,
}

/// A producer ring with the identity the sync machinery keys on.
struct AttachedRing {
    ring: RingConsumer,
    /// Stable within one worker; dense indices would be reused after a
    /// detach and alias stale sync targets.
    id: u64,
}

/// What a satisfied sync point answers with.
enum SyncKind {
    Query(ShardQuery, Sender<ShardSnapshot>),
    Barrier(Sender<()>),
}

/// One in-flight `Query`/`Barrier`: per-ring epoch targets captured at
/// receipt. The request is answerable once every named ring has
/// *consumed* up to its target (or detached, which implies it drained).
///
/// This replaces stop-the-world draining: instead of pulling every
/// queued batch before answering — a global quiesce that let one
/// line-rate producer stall a snapshot — the worker keeps its normal
/// fair round-robin and answers as soon as the epochs pass. Batches
/// published *after* the request arrived are never waited on.
struct PendingSync {
    /// `(ring id, published epoch at receipt)`.
    targets: Vec<(u64, u64)>,
    kind: SyncKind,
}

/// The shard-level slice of a query plan: which of this shard's flows
/// to summarize. The collector pre-routes (a flow set is split to
/// owning shards) and post-refines (per-shard top-K lists are trimmed
/// globally); the shard only narrows what it serializes.
pub(crate) struct ShardQuery {
    /// Which flows to summarize.
    pub(crate) select: ShardSelect,
    /// Delta reads: skip flows whose `last_ts` is not strictly greater
    /// (cold flows cost nothing — they are never summarized).
    pub(crate) since: Option<u64>,
}

/// Shard-side selection (the distributable subset of
/// [`Selector`](pint_query::Selector) — watch lists and flow sets both
/// arrive as the owning shard's `Flows` slice).
pub(crate) enum ShardSelect {
    /// Every tracked flow.
    All,
    /// Exactly these flows (already routed to this shard's partition).
    Flows(Vec<FlowId>),
    /// This shard's `k` heaviest flows by packets (ties broken by
    /// ascending flow ID — the k-list trims globally later).
    TopK(usize),
    /// Flows whose fully decoded path contains the switch.
    PathThrough(u64),
}

/// Live counters one shard publishes (read from any thread).
///
/// A view over the collector's [`MetricsRegistry`]: every field is a
/// cached handle to a registry cell labelled with the shard index, so
/// the same numbers are visible locally, in text exposition, and over
/// the `Metrics` wire frame. See the README's "Observability" section
/// for the metric catalogue.
#[derive(Debug, Clone)]
pub struct ShardStats {
    /// Digests applied (`collector_ingested_total`).
    pub ingested: Counter,
    /// Batches applied (`collector_batches_total`).
    pub batches: Counter,
    /// Currently attached producer rings (`collector_producers`).
    pub producers: Gauge,
    /// Currently tracked flows (`collector_active_flows`).
    pub active_flows: Gauge,
    /// Approximate recorder-state bytes held (`collector_state_bytes`).
    pub state_bytes: Gauge,
    /// Flows evicted by the count/byte caps (`collector_evicted_lru`).
    pub evicted_lru: Gauge,
    /// Flows evicted by idle TTL (`collector_evicted_ttl`).
    pub evicted_ttl: Gauge,
    /// Events fired and delivered (`collector_events_total`).
    pub events: Counter,
    /// Events fired but discarded — the bounded event channel was full
    /// (consumer stopped draining) or the consumer was gone
    /// (`collector_events_dropped_total`).
    pub events_dropped: Counter,
    /// Allocator-measured recorder-state bytes
    /// (`collector_state_bytes_measured`) — the ground truth the
    /// `state_bytes` estimate is validated against. Only maintained
    /// with the `measure-alloc` feature.
    #[cfg(feature = "measure-alloc")]
    pub state_bytes_measured: Gauge,
}

impl ShardStats {
    pub(crate) fn register(registry: &MetricsRegistry, shard: u32) -> Self {
        Self {
            ingested: registry.counter_shard("collector_ingested_total", shard),
            batches: registry.counter_shard("collector_batches_total", shard),
            producers: registry.gauge_shard("collector_producers", shard),
            active_flows: registry.gauge_shard("collector_active_flows", shard),
            state_bytes: registry.gauge_shard("collector_state_bytes", shard),
            evicted_lru: registry.gauge_shard("collector_evicted_lru", shard),
            evicted_ttl: registry.gauge_shard("collector_evicted_ttl", shard),
            events: registry.counter_shard("collector_events_total", shard),
            events_dropped: registry.counter_shard("collector_events_dropped_total", shard),
            #[cfg(feature = "measure-alloc")]
            state_bytes_measured: registry.gauge_shard("collector_state_bytes_measured", shard),
        }
    }
}

pub(crate) struct ShardWorker {
    shard: usize,
    table: FlowTable,
    factory: RecorderFactory,
    rules: Vec<EventRule>,
    events_tx: SyncSender<Event>,
    stats: Arc<ShardStats>,
    /// This shard's park slot; producers and the collector wake it.
    waiter: Arc<Waiter>,
    /// Adaptive spin/park policy: spin widens toward `spin_limit` while
    /// polls keep finding work, decays when the worker ends up parking.
    backoff: BackoffController,
    /// Live backoff policy (`collector_adaptive_spin{shard}`).
    adaptive_spin: Gauge,
    /// Live backoff policy (`collector_adaptive_park_us{shard}`).
    adaptive_park_us: Gauge,
    /// Outstanding sync points (`collector_sync_pending{shard}`).
    sync_pending: Gauge,
    /// Monotonic id for the next attached ring.
    next_ring_id: u64,
    /// Scratch: `(slot, flow)` touched by the current batch (unique per
    /// batch via the table's stamp — no sort/dedup pass).
    touched: Vec<(u32, FlowId)>,
    /// Monotonic batch stamp driving touch dedup.
    batch_stamp: u64,
    /// Latest sink timestamp seen (drives TTL expiry).
    clock: u64,
    /// Wall clock for stage timing (shared registry clock, so netsim and
    /// tests can drive it virtually).
    obs_clock: ClockHandle,
    /// Whole-batch apply latency, ns (`collector_stage_drain_ns`).
    stage_drain: Histogram,
    /// Sampled per-digest flow-table touch latency, ns
    /// (`collector_stage_touch_ns`).
    stage_touch: Histogram,
    /// Sampled per-digest recorder/KLL update latency, ns
    /// (`collector_stage_kll_ns`).
    stage_kll: Histogram,
    /// Digest counter driving the deterministic [`STAGE_SAMPLE`] pick.
    sample_tick: u64,
    /// Newest report timestamp applied (`collector_newest_ts{shard}`)
    /// — the per-shard freshness watermark.
    newest_ts: Gauge,
    /// Pipeline tracing: one `CollectorBatch` event per applied batch.
    recorder: Option<FlightRecorder>,
    /// Durability tee: applied batches are offered (never blocking) to
    /// this journal before being drained into flow state.
    journal: Option<JournalSender>,
    /// Seq stamp of the last journaled delta (source = shard index).
    journal_seq: u64,
    /// Cumulative allocator-measured net bytes this shard thread holds.
    #[cfg(feature = "measure-alloc")]
    measured_net: i64,
}

/// Most batches one ring may contribute per drain pass. Large enough
/// that a backed-up producer's flow working set is revisited while its
/// recorders are still resident (the locality the run exists to buy),
/// small enough that the worker returns to the other rings — and to
/// sync answering — within a bounded slice of work.
const DRAIN_RUN_BATCHES: u64 = 32;

impl ShardWorker {
    pub(crate) fn new(
        shard: usize,
        config: &CollectorConfig,
        factory: RecorderFactory,
        events_tx: SyncSender<Event>,
        stats: Arc<ShardStats>,
        waiter: Arc<Waiter>,
        registry: &MetricsRegistry,
    ) -> Self {
        Self {
            obs_clock: registry.clock(),
            stage_drain: registry.histogram_shard("collector_stage_drain_ns", shard as u32),
            stage_touch: registry.histogram_shard("collector_stage_touch_ns", shard as u32),
            stage_kll: registry.histogram_shard("collector_stage_kll_ns", shard as u32),
            sample_tick: 0,
            newest_ts: registry.gauge_shard("collector_newest_ts", shard as u32),
            recorder: config.trace.clone(),
            #[cfg(feature = "measure-alloc")]
            measured_net: 0,
            shard,
            table: FlowTable::new(
                config.max_flows_per_shard,
                config.max_bytes_per_shard,
                config.flow_ttl,
            ),
            factory,
            rules: config.rules.clone(),
            events_tx,
            stats,
            waiter,
            backoff: BackoffController::new(RingTuning {
                spin_limit: config.spin_limit,
                park_timeout: Duration::from_micros(config.park_timeout_us.max(1)),
            }),
            adaptive_spin: registry.gauge_shard("collector_adaptive_spin", shard as u32),
            adaptive_park_us: registry.gauge_shard("collector_adaptive_park_us", shard as u32),
            sync_pending: registry.gauge_shard("collector_sync_pending", shard as u32),
            next_ring_id: 0,
            touched: Vec::new(),
            batch_stamp: 0,
            clock: 0,
            journal: None,
            journal_seq: 0,
        }
    }

    /// The worker loop; runs until `Shutdown` (or the collector and all
    /// producers are gone).
    pub(crate) fn run(mut self, ctrl: Receiver<ShardMsg>) {
        self.waiter.register_current();
        let mut rings: Vec<AttachedRing> = Vec::new();
        let mut pending: VecDeque<PendingSync> = VecDeque::new();
        let mut ctrl_open = true;
        let mut idle = 0u32;
        self.publish_backoff();
        loop {
            let mut progressed = false;
            // Control first: attachment must precede any sync request
            // sent after it (the channel preserves that order).
            while ctrl_open {
                match ctrl.try_recv() {
                    Ok(msg) => {
                        progressed = true;
                        if !self.on_ctrl(msg, &mut rings, &mut pending) {
                            return; // Shutdown: rings drained, syncs answered
                        }
                    }
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        // Collector gone without a Shutdown message:
                        // finish the remaining producers, then exit.
                        ctrl_open = false;
                    }
                }
            }
            // A bounded *run* of batches per ring per pass, then move to
            // the next ring. Runs, not single batches: one producer's
            // digests cluster on the flows it forwards, so consecutive
            // batches from the same ring touch flow state that is still
            // resident — under eviction pressure (more live flows than
            // `max_flows_per_shard`) interleaving producers batch-by-
            // batch degrades the table to a scan-thrash where nearly
            // every digest rebuilds an evicted recorder. The quota is
            // captured at run start and capped, so one line-rate
            // producer still cannot monopolize the pass; closed-and-
            // drained rings detach as soon as they run dry, and drained
            // buffers go back to the producer via the recycle lane.
            let before = rings.len();
            rings.retain_mut(|attached| {
                let mut quota = attached.ring.pending().min(DRAIN_RUN_BATCHES);
                let mut drained = false;
                while quota > 0 {
                    let Some(mut batch) = attached.ring.pop() else {
                        break;
                    };
                    self.apply_batch(&mut batch);
                    attached.ring.recycle(batch);
                    drained = true;
                    quota -= 1;
                }
                if drained {
                    progressed = true;
                    true
                } else {
                    !attached.ring.is_finished()
                }
            });
            if rings.len() != before {
                self.stats.producers.set(rings.len() as u64);
            }
            // Sync points resolve as their epoch targets pass — no
            // stop-the-world drain. A detached ring counts as satisfied
            // (detach implies it drained fully).
            if !pending.is_empty() {
                self.answer_ready(&mut pending, &rings);
            }
            if progressed {
                if idle > 0 {
                    // Work arrived while spinning: widen the spin window.
                    self.backoff.on_spin_win();
                }
                idle = 0;
                continue;
            }
            if !ctrl_open && rings.is_empty() {
                debug_assert!(pending.is_empty(), "syncs outlive their rings");
                return;
            }
            idle += 1;
            if idle <= self.backoff.spin_limit() {
                std::hint::spin_loop();
                continue;
            }
            // Park until a producer pushes or the collector sends
            // control traffic (both wake this waiter). `prepare` orders
            // the announce before the re-checks; both inputs must be
            // re-checked after it, or a wake racing the announce is
            // lost and the request stalls a full park_timeout.
            //
            // An unsatisfied sync can never park us forever: its target
            // epoch is below some ring's published epoch, so that ring
            // is non-empty and the re-check (or the producer's wake)
            // keeps the loop progressing.
            self.waiter.prepare();
            if rings.iter().any(|r| !r.ring.is_empty()) {
                self.waiter.cancel();
            } else {
                match ctrl.try_recv() {
                    Ok(msg) => {
                        self.waiter.cancel();
                        if !self.on_ctrl(msg, &mut rings, &mut pending) {
                            return;
                        }
                    }
                    Err(TryRecvError::Empty) => self.park(),
                    Err(TryRecvError::Disconnected) => {
                        ctrl_open = false;
                        self.park();
                    }
                }
            }
            idle = 0;
        }
    }

    /// One adaptive park: decays the spin window and widens the next
    /// timeout before sleeping, so an idle worker converges to long
    /// sleeps instead of burning its core.
    fn park(&mut self) {
        self.backoff.on_park();
        self.waiter.park(self.backoff.park_timeout());
    }

    /// Publishes the live policy. Called at work-time (per applied
    /// batch), never from the idle path — a quiesced collector's
    /// registry stays byte-stable for scrapes and snapshot diffs, and
    /// the gauges read as "the policy in effect during recent work".
    fn publish_backoff(&self) {
        self.adaptive_spin.set(self.backoff.spin_limit() as u64);
        self.adaptive_park_us
            .set(self.backoff.park_timeout().as_micros() as u64);
    }

    /// Handles one control message; `false` means exit now.
    fn on_ctrl(
        &mut self,
        msg: ShardMsg,
        rings: &mut Vec<AttachedRing>,
        pending: &mut VecDeque<PendingSync>,
    ) -> bool {
        match msg {
            ShardMsg::Attach(ring) => {
                let id = self.next_ring_id;
                self.next_ring_id += 1;
                rings.push(AttachedRing { ring, id });
                self.stats.producers.set(rings.len() as u64);
            }
            ShardMsg::Query(query, reply) => {
                self.enqueue_sync(SyncKind::Query(query, reply), rings, pending);
            }
            ShardMsg::Barrier(reply) => {
                self.enqueue_sync(SyncKind::Barrier(reply), rings, pending);
            }
            ShardMsg::AttachJournal { sender, start_seq } => {
                self.journal = Some(sender);
                self.journal_seq = start_seq;
            }
            ShardMsg::Shutdown => {
                // Exit is the one true quiesce point: pull everything
                // still queued, then answer whatever sync requests are
                // in flight (their targets are necessarily passed).
                // Gauge before replies: a requester must never observe
                // its answer while the registry still shows it pending.
                self.drain_all(rings);
                self.sync_pending.set(0);
                while let Some(sync) = pending.pop_front() {
                    self.answer_sync(sync.kind);
                }
                return false;
            }
        }
        true
    }

    /// Captures a sync point: per-ring published epochs at receipt.
    /// Batches already applied count immediately, so an idle shard
    /// answers on the spot; under load the request waits only for
    /// batches that were already in flight, never for the producers'
    /// ongoing stream.
    fn enqueue_sync(
        &mut self,
        kind: SyncKind,
        rings: &[AttachedRing],
        pending: &mut VecDeque<PendingSync>,
    ) {
        let targets = rings
            .iter()
            .filter(|r| r.ring.consumed() < r.ring.published())
            .map(|r| (r.id, r.ring.published()))
            .collect();
        pending.push_back(PendingSync { targets, kind });
        self.sync_pending.set(pending.len() as u64);
        self.answer_ready(pending, rings);
    }

    /// Answers every queued sync whose targets have all been consumed.
    /// Targets are captured from monotone published epochs, so the
    /// queue satisfies in FIFO order — stop at the first unsatisfied.
    fn answer_ready(&mut self, pending: &mut VecDeque<PendingSync>, rings: &[AttachedRing]) {
        let satisfied = |&(id, target): &(u64, u64)| {
            rings
                .iter()
                .find(|r| r.id == id)
                // Detached ⇒ the ring was fully drained before removal.
                .is_none_or(|r| r.ring.consumed() >= target)
        };
        while pending
            .front()
            .is_some_and(|sync| sync.targets.iter().all(satisfied))
        {
            let sync = pending.pop_front().expect("front just checked");
            // Gauge before the reply: once the requester unblocks, the
            // registry must already be done moving on its behalf.
            self.sync_pending.set(pending.len() as u64);
            self.answer_sync(sync.kind);
        }
    }

    fn answer_sync(&mut self, kind: SyncKind) {
        match kind {
            // The requester may have given up; ignore send errors.
            SyncKind::Query(query, reply) => {
                let _ = reply.send(self.answer(&query));
            }
            SyncKind::Barrier(reply) => {
                let _ = reply.send(());
            }
        }
    }

    /// Applies every batch queued on any ring *at the moment of the
    /// call* — only used at shutdown, where a full quiesce is the
    /// point. The drain is bounded by a per-ring quota taken up front,
    /// so a producer racing more batches in cannot extend it.
    fn drain_all(&mut self, rings: &mut [AttachedRing]) {
        let quotas: Vec<u64> = rings.iter().map(|r| r.ring.pending()).collect();
        for (attached, quota) in rings.iter_mut().zip(quotas) {
            for _ in 0..quota {
                match attached.ring.pop() {
                    Some(mut batch) => {
                        self.apply_batch(&mut batch);
                        attached.ring.recycle(batch);
                    }
                    None => break,
                }
            }
        }
    }

    /// Applies one batch in place. The buffer comes back empty: the
    /// caller returns it to the producer via the recycle lane, so in
    /// steady state neither side allocates or frees batch backing store
    /// (and the measure-alloc window sees no batch traffic) — unless a
    /// journal is attached, in which case the applied reports move to
    /// the journal thread whole and the producer re-grows its buffers.
    fn apply_batch(&mut self, batch: &mut Vec<DigestReport>) {
        let t_batch = self.obs_clock.now_ns();
        #[cfg(feature = "measure-alloc")]
        let alloc_before = crate::alloc_track::thread_net_bytes();
        self.touched.clear();
        self.batch_stamp += 1;
        let stamp = self.batch_stamp;
        let n = batch.len() as u64;
        for report in batch.iter() {
            self.clock = self.clock.max(report.ts);
            let flow = report.flow;
            let factory = &self.factory;
            let sampled = self.sample_tick.is_multiple_of(STAGE_SAMPLE);
            self.sample_tick += 1;
            let t0 = if sampled { self.obs_clock.now_ns() } else { 0 };
            let (idx, first) = self
                .table
                .upsert(flow, report.ts, stamp, || factory(flow, report));
            if first {
                self.touched.push((idx, flow));
            }
            let t1 = if sampled {
                let t1 = self.obs_clock.now_ns();
                self.stage_touch.record(t1.saturating_sub(t0));
                t1
            } else {
                0
            };
            self.table
                .entry_if(idx, flow)
                .expect("slot just upserted")
                .rec
                .absorb(report.pid, &report.digest);
            if sampled {
                self.stage_kll
                    .record(self.obs_clock.now_ns().saturating_sub(t1));
            }
        }
        // Durability tee: the apply loop above reads the reports by
        // reference, so the applied batch can be handed to the journal
        // *whole* — a pointer swap, no clone. `try_delta` never blocks
        // (a full queue drops and counts), so the hot path pays a
        // channel offer, never an allocation or disk latency; the
        // recycle lane just gets an empty buffer this round.
        if n > 0 {
            if let Some(journal) = &self.journal {
                self.journal_seq += 1;
                journal.try_delta(DigestBatch {
                    source: self.shard as u64,
                    seq: self.journal_seq,
                    reports: std::mem::take(batch),
                    trace: None,
                });
            } else {
                batch.clear();
            }
        }
        // Memory accounting + byte-cap eviction for the flows that grew
        // (the estimate itself refreshes on a packet stride inside the
        // table).
        for i in 0..self.touched.len() {
            let (idx, flow) = self.touched[i];
            self.table.refresh_bytes_at(idx, flow);
        }
        self.table.expire(self.clock);
        self.detect_events();
        if let Some(rec) = &self.recorder {
            // One event per batch, not per digest: the hot path stays
            // within the tracing overhead budget at any batch size.
            rec.record_at(
                self.shard as u32,
                TraceStage::CollectorBatch,
                self.shard as u64,
                stamp,
                t_batch,
            );
        }
        self.publish_stats(n);
        #[cfg(feature = "measure-alloc")]
        self.account_measured(alloc_before);
        self.stage_drain
            .record(self.obs_clock.now_ns().saturating_sub(t_batch));
    }

    /// Folds this batch's allocator delta into the shard's measured
    /// recorder footprint and cross-checks the flow table's estimate.
    ///
    /// Batch buffers need no compensation: `apply_batch` empties (or,
    /// journaling, hands off) the producer-allocated `Vec` and the
    /// recycle (or drop, if the pool lane is full) happens outside this
    /// window, so the delta is recorder state only.
    ///
    /// The bound is deliberately loose (allocator slack, `Vec` growth
    /// headroom, and recorder scratch all land in the measurement but
    /// not the estimate): it catches order-of-magnitude accounting bugs
    /// — the kind that would mis-drive byte-cap eviction — not slack.
    #[cfg(feature = "measure-alloc")]
    fn account_measured(&mut self, alloc_before: i64) {
        let delta = crate::alloc_track::thread_net_bytes() - alloc_before;
        self.measured_net += delta;
        self.stats
            .state_bytes_measured
            .set(self.measured_net.max(0) as u64);
        let estimate = self.table.total_bytes() as i64;
        if estimate > (1 << 20) {
            debug_assert!(
                self.measured_net >= estimate / 8
                    && self.measured_net <= estimate.saturating_mul(16),
                "state_bytes estimate {estimate} vs measured {} diverged beyond 8x/16x",
                self.measured_net
            );
        }
    }

    /// Evaluates armed rules against every flow this batch touched (the
    /// flow may have been evicted meanwhile — skip then).
    ///
    /// Evaluation is amortized: rules (which may recompute quantiles)
    /// run eagerly while a flow is young, then only after every
    /// [`EVAL_STRIDE`] new packets — so a long-lived flow that never
    /// crosses a threshold costs O(1/EVAL_STRIDE) evaluations per
    /// digest, and detection lags a firing condition by at most one
    /// batch plus `EVAL_STRIDE` packets.
    ///
    /// Hysteresis: a fired rule keeps being evaluated (at the stride);
    /// when its condition stops holding the worker emits an explicit
    /// [`EventKind::Cleared`](crate::events::EventKind::Cleared) event
    /// and re-arms the rule, so the next rising edge fires again. A
    /// fired rule *with* a cooldown is re-checked only once the quiet
    /// period elapses: still holding ⇒ re-fire (cooldown restarts),
    /// cleared ⇒ the `Cleared` event is emitted then.
    fn detect_events(&mut self) {
        /// Re-evaluate after this many new packets (steady state).
        const EVAL_STRIDE: u64 = 16;
        /// Evaluate on every batch below this packet count, so
        /// fast-converging rules (e.g. path resolution) alert promptly.
        const EVAL_EAGER: u64 = 64;
        if self.rules.is_empty() {
            return;
        }
        let nrules = self.rules.len();
        let ts = self.clock;
        let mut fired = 0u64;
        for i in 0..self.touched.len() {
            let (idx, flow) = self.touched[i];
            let Some(entry) = self.table.entry_if(idx, flow) else {
                continue;
            };
            let packets = entry.rec.packets();
            if packets >= EVAL_EAGER && packets < entry.last_eval_packets + EVAL_STRIDE {
                continue;
            }
            entry.last_eval_packets = packets;
            for (rule_idx, rule) in self.rules.iter().enumerate() {
                let bit = 1u64 << rule_idx;
                let was_fired = entry.fired_rules & bit != 0;
                if was_fired {
                    if let Some(quiet) = rule.cooldown {
                        // A fired cooldown rule stays silent (and
                        // unevaluated) until its quiet period elapses;
                        // then it either re-fires or clears below.
                        let since = ts.saturating_sub(entry.fired_ts[rule_idx]);
                        if since < quiet {
                            continue;
                        }
                    }
                    // Fired, no cooldown: keep evaluating at the stride
                    // so the falling edge is observed and reported.
                }
                match rule.condition.evaluate(entry.rec.as_mut()) {
                    Some(kind) => {
                        // Rising edge, or a cooldown re-fire; a fired
                        // non-cooldown rule whose condition still holds
                        // stays fired silently.
                        if was_fired && rule.cooldown.is_none() {
                            continue;
                        }
                        entry.fired_rules |= bit;
                        if rule.cooldown.is_some() {
                            if entry.fired_ts.len() < nrules {
                                entry.fired_ts.resize(nrules, 0);
                            }
                            entry.fired_ts[rule_idx] = ts;
                        }
                        fired += Self::deliver(
                            &self.events_tx,
                            &self.stats,
                            Event {
                                flow,
                                shard: self.shard,
                                rule: rule_idx,
                                kind,
                                ts,
                            },
                        );
                    }
                    None => {
                        // Falling edge: a fired rule whose condition
                        // stopped holding clears explicitly and re-arms.
                        entry.fired_rules &= !bit;
                        if was_fired {
                            fired += Self::deliver(
                                &self.events_tx,
                                &self.stats,
                                Event {
                                    flow,
                                    shard: self.shard,
                                    rule: rule_idx,
                                    kind: EventKind::Cleared,
                                    ts,
                                },
                            );
                        }
                    }
                }
            }
        }
        if fired > 0 {
            self.stats.events.add(fired);
        }
    }

    /// Sends one event without ever blocking the ingest path: returns 1
    /// on delivery; a full queue or gone consumer counts into
    /// `events_dropped` and returns 0. (Associated fn over the two
    /// fields it needs, so callers can hold a flow-table borrow.)
    fn deliver(events_tx: &SyncSender<Event>, stats: &ShardStats, event: Event) -> u64 {
        match events_tx.try_send(event) {
            Ok(()) => 1,
            Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => {
                stats.events_dropped.inc();
                0
            }
        }
    }

    fn publish_stats(&self, batch_digests: u64) {
        self.publish_backoff();
        let s = &self.stats;
        s.ingested.add(batch_digests);
        s.batches.inc();
        s.active_flows.set(self.table.len() as u64);
        s.state_bytes.set(self.table.total_bytes() as u64);
        s.evicted_lru.set(self.table.stats.evicted_lru);
        s.evicted_ttl.set(self.table.stats.evicted_ttl);
        self.newest_ts.set(self.clock);
    }

    fn summarize(entry: &crate::flow_table::FlowEntry) -> FlowSummary {
        let rec = entry.rec.as_ref();
        FlowSummary {
            kind: rec.kind(),
            packets: rec.packets(),
            state_bytes: rec.state_bytes(),
            last_ts: entry.last_ts,
            hop_sketches: rec.hop_sketches(),
            path: rec.path_progress(),
            inconsistencies: rec.inconsistencies(),
        }
    }

    fn snapshot_with(&self, flows: Vec<(FlowId, FlowSummary)>) -> ShardSnapshot {
        ShardSnapshot {
            shard: self.shard,
            flows,
            table_stats: self.table.stats,
            ingested: self.stats.ingested.get(),
            // Captured in the same reply as the rows: everything teed
            // at or below this seq is in this snapshot, nothing above
            // it is — the exact coverage a checkpoint may claim.
            journal_seq: self.journal_seq,
        }
    }

    /// Resolves one shard query: pick the flows the selection names
    /// (respecting the delta cutoff), summarize *only* those, and wrap
    /// them with this shard's counters. Summarizing clones hop
    /// sketches, so narrowing here — not after — is what makes
    /// targeted queries an order of magnitude cheaper than full
    /// snapshots.
    fn answer(&self, query: &ShardQuery) -> ShardSnapshot {
        let fresh =
            |entry: &crate::flow_table::FlowEntry| query.since.is_none_or(|t| entry.last_ts > t);
        let flows: Vec<(FlowId, FlowSummary)> = match &query.select {
            ShardSelect::All => self
                .table
                .iter()
                .filter(|&(_, entry)| fresh(entry))
                .map(|(&flow, entry)| (flow, Self::summarize(entry)))
                .collect(),
            // The collector pre-routes the list to this shard, so a
            // direct per-ID probe beats scanning the whole table.
            ShardSelect::Flows(wanted) => wanted
                .iter()
                .filter_map(|&flow| {
                    self.table
                        .get(flow)
                        .filter(|&entry| fresh(entry))
                        .map(|entry| (flow, Self::summarize(entry)))
                })
                .collect(),
            ShardSelect::TopK(k) => {
                let mut ranked: Vec<(u64, FlowId)> = self
                    .table
                    .iter()
                    .filter(|&(_, entry)| fresh(entry))
                    .map(|(&flow, entry)| (entry.rec.packets(), flow))
                    .collect();
                // The shared top-K order (most packets first, ties by
                // ascending flow ID): local truncation must agree with
                // the global re-rank or tied flows could be lost.
                ranked.sort_unstable_by(|a, b| pint_query::top_k_order(*a, *b));
                ranked.truncate(*k);
                ranked
                    .into_iter()
                    .filter_map(|(_, flow)| {
                        self.table
                            .get(flow)
                            .map(|entry| (flow, Self::summarize(entry)))
                    })
                    .collect()
            }
            // Probe path progress first (cheap) and summarize — hop
            // sketches and all — only the matching flows.
            ShardSelect::PathThrough(switch) => self
                .table
                .iter()
                .filter(|&(_, entry)| fresh(entry))
                .filter(|(_, entry)| {
                    entry
                        .rec
                        .path_progress()
                        .and_then(|p| p.path)
                        .is_some_and(|p| p.contains(switch))
                })
                .map(|(&flow, entry)| (flow, Self::summarize(entry)))
                .collect(),
        };
        self.snapshot_with(flows)
    }
}
