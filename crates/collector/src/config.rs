//! Collector configuration.

use crate::events::EventRule;
use crate::prefilter::PrefilterConfig;
use pint_core::{DigestReport, FlowRecorder};
use std::sync::Arc;

/// Flow identifier (matches `pint_netsim::FlowId`; defined by the
/// query tier so every backend shares it).
pub use pint_query::FlowId;

/// Builds the per-flow Recording Module when a shard first sees a flow.
///
/// The factory receives the flow ID and the first [`DigestReport`] of the
/// flow, so it can size the recorder by the observed path length. That
/// first report is authoritative: later digests are absorbed into the
/// recorder as built, and a mid-flow route change shows up as decoder
/// inconsistencies (the `PathChanged` rule), not a re-size. It runs on
/// shard worker threads, hence `Send + Sync`.
pub type RecorderFactory =
    Arc<dyn Fn(FlowId, &DigestReport) -> Box<dyn FlowRecorder> + Send + Sync>;

/// Tuning knobs for a [`Collector`](crate::Collector).
#[derive(Debug, Clone)]
pub struct CollectorConfig {
    /// Worker shards. Flows are hash-partitioned across shards, so every
    /// digest of one flow lands on the same worker and per-flow state
    /// needs no locking.
    pub shards: usize,
    /// Bounded depth, in batches, of each producer→shard SPSC ring. A
    /// producer that outruns a shard fills its ring and parks
    /// (backpressure) instead of buffering without limit. Rounded up to a
    /// power of two. Total ingest buffering is
    /// `producers × shards × ring_capacity × batch_size` digests.
    pub ring_capacity: usize,
    /// Digests a handle buffers per shard before shipping a batch.
    pub batch_size: usize,
    /// Upper bound on busy-poll iterations before a blocked side
    /// (producer on a full ring, shard worker with nothing to do) parks
    /// its thread. Each ring endpoint adapts its actual spin budget
    /// within `[4, spin_limit]`: sustained occupancy widens spin toward
    /// this bound, sustained idleness decays it so an idle thread stops
    /// stealing the core the other side needs. The live policy is
    /// published as `collector_adaptive_spin` gauges.
    pub spin_limit: u32,
    /// Upper bound, in microseconds, on one park. The adaptive
    /// controller starts at 1/16th of this and doubles toward it while
    /// a thread keeps parking without work, so a quiet collector
    /// converges to long sleeps while a busy one wakes quickly. Explicit
    /// wakes make the common case much faster than either bound.
    pub park_timeout_us: u64,
    /// Per-shard cap on tracked flows; least-recently-updated flows are
    /// evicted beyond it.
    pub max_flows_per_shard: usize,
    /// Per-shard cap on approximate recorder state bytes; LRU eviction
    /// runs until the estimate fits.
    pub max_bytes_per_shard: usize,
    /// Evict flows idle for longer than this (measured in report
    /// timestamps, i.e. the sink's clock — deterministic in simulation).
    /// `None` disables TTL eviction.
    pub flow_ttl: Option<u64>,
    /// Bound on undelivered events: if the consumer stops draining,
    /// further events are counted as dropped instead of buffering
    /// without limit (the collector's memory stays bounded even with a
    /// negligent consumer).
    pub event_capacity: usize,
    /// Streaming event-detection rules, evaluated on shard workers as
    /// batches are applied. At most 64 rules.
    pub rules: Vec<EventRule>,
    /// Optional ingest-side watch-list pre-filter. When set, producer
    /// handles drop digests whose flow is (probably) not on the watch
    /// list *before* buffering them, so off-list traffic never crosses
    /// a ring or touches shard state. Watch-listed flows are never
    /// dropped (the bloom filter has no false negatives); drops are
    /// counted in `digests_prefiltered`. An empty watch list drops
    /// everything — use `None` to ingest all flows.
    pub prefilter: Option<PrefilterConfig>,
    /// Metrics registry the collector publishes its self-telemetry into
    /// (per-shard counters/gauges, stage-timing histograms). Share one
    /// registry across tiers to serve whole-process metrics from a
    /// single `Metrics` wire frame; `None` gives the collector a
    /// private registry (read it via
    /// [`Collector::metrics`](crate::Collector::metrics)).
    pub metrics: Option<pint_obs::MetricsRegistry>,
    /// Flight recorder for pipeline tracing: each applied batch is
    /// stamped as a `CollectorBatch` trace event on the applying
    /// shard's lane. `None` disables tracing (the hot path pays
    /// nothing). Share one recorder across tiers — and drive it from
    /// the same clock as `metrics` — to read one end-to-end timeline.
    pub trace: Option<pint_obs::FlightRecorder>,
}

impl Default for CollectorConfig {
    /// Defaults tuned from the `collector_ingest_sweep` bench matrix
    /// (ring capacity × batch size, then spin limit at the winning
    /// geometry — recorded alongside `BENCH_ingest.json`; the sweep runs
    /// the contended 2-producer × 2-shard cell under flow-cap eviction
    /// churn, the geometry most sensitive to these knobs):
    ///
    /// * `batch_size: 1024` — batch size dominated the sweep; 1024 ran
    ///   at or ahead of 256 (typically 15–30% ahead) and far ahead of 64
    ///   at every ring depth, because ring synchronization (and a
    ///   possible wake) is paid per batch. The cost is buffering latency
    ///   and up to `ring_capacity` pooled buffers of this size retained
    ///   per producer×shard lane; latency-sensitive deployments should
    ///   dial it down and `flush()` often.
    /// * `ring_capacity: 64` — r16 was consistently behind (producers
    ///   stall before the shard's drain runs can amortize); r256 bought
    ///   a further few-to-20% on some runs by letting backed-up lanes
    ///   decouple longer, but at 4× the buffering and pool ceiling.
    ///   64 is the balance; raise it when memory is cheap and producers
    ///   are bursty.
    /// * `spin_limit: 256` — the spin column (16/64/256 at r64/b1024)
    ///   stayed within the churn cell's run-to-run noise: this is an
    ///   *upper bound* on an adaptive budget that decays toward 4 when
    ///   spinning stops paying, so a generous bound costs CPU only
    ///   while the other side is actively making progress, and it spares
    ///   a park/unpark round trip when it is.
    /// * `park_timeout_us: 200` — unchanged: explicit wakes cover the
    ///   common case, and adaptive parking starts at 1/16th of this and
    ///   doubles, so the bound mostly sets worst-case wake latency for
    ///   lost races.
    fn default() -> Self {
        Self {
            shards: 4,
            ring_capacity: 64,
            batch_size: 1_024,
            spin_limit: 256,
            park_timeout_us: 200,
            max_flows_per_shard: 65_536,
            max_bytes_per_shard: 64 << 20,
            flow_ttl: None,
            event_capacity: 65_536,
            rules: Vec::new(),
            prefilter: None,
            metrics: None,
            trace: None,
        }
    }
}

impl CollectorConfig {
    /// A config with `shards` workers and defaults elsewhere.
    pub fn with_shards(shards: usize) -> Self {
        Self {
            shards,
            ..Self::default()
        }
    }

    /// Validates invariants (positive sizes, rule-count limit).
    pub(crate) fn validate(&self) {
        assert!(self.shards >= 1, "need at least one shard");
        assert!(self.ring_capacity >= 1, "ring capacity must be positive");
        assert!(self.batch_size >= 1, "batch size must be positive");
        assert!(
            self.park_timeout_us >= 1,
            "park timeout must be positive (it bounds wakeup races)"
        );
        assert!(self.max_flows_per_shard >= 1, "flow cap must be positive");
        assert!(self.event_capacity >= 1, "event capacity must be positive");
        assert!(
            self.rules.len() <= 64,
            "at most 64 event rules (per-flow fired-state is a u64 bitmask)"
        );
    }
}
