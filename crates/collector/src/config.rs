//! Collector configuration.

use crate::events::EventRule;
use pint_core::{DigestReport, FlowRecorder};
use std::sync::Arc;

/// Flow identifier (matches `pint_netsim::FlowId`; defined by the
/// query tier so every backend shares it).
pub use pint_query::FlowId;

/// Builds the per-flow Recording Module when a shard first sees a flow.
///
/// The factory receives the flow ID and the first [`DigestReport`] of the
/// flow, so it can size the recorder by the observed path length. That
/// first report is authoritative: later digests are absorbed into the
/// recorder as built, and a mid-flow route change shows up as decoder
/// inconsistencies (the `PathChanged` rule), not a re-size. It runs on
/// shard worker threads, hence `Send + Sync`.
pub type RecorderFactory =
    Arc<dyn Fn(FlowId, &DigestReport) -> Box<dyn FlowRecorder> + Send + Sync>;

/// Tuning knobs for a [`Collector`](crate::Collector).
#[derive(Debug, Clone)]
pub struct CollectorConfig {
    /// Worker shards. Flows are hash-partitioned across shards, so every
    /// digest of one flow lands on the same worker and per-flow state
    /// needs no locking.
    pub shards: usize,
    /// Bounded depth, in batches, of each producer→shard SPSC ring. A
    /// producer that outruns a shard fills its ring and parks
    /// (backpressure) instead of buffering without limit. Rounded up to a
    /// power of two. Total ingest buffering is
    /// `producers × shards × ring_capacity × batch_size` digests.
    pub ring_capacity: usize,
    /// Digests a handle buffers per shard before shipping a batch.
    pub batch_size: usize,
    /// Busy-poll iterations before a blocked side (producer on a full
    /// ring, shard worker with nothing to do) parks its thread. Keep
    /// small on machines with few cores — a spinning thread steals the
    /// core the other side needs.
    pub spin_limit: u32,
    /// Upper bound, in microseconds, on one park. This is a safety net
    /// that turns wakeup races into bounded latency; explicit wakes make
    /// the common case much faster than this.
    pub park_timeout_us: u64,
    /// Per-shard cap on tracked flows; least-recently-updated flows are
    /// evicted beyond it.
    pub max_flows_per_shard: usize,
    /// Per-shard cap on approximate recorder state bytes; LRU eviction
    /// runs until the estimate fits.
    pub max_bytes_per_shard: usize,
    /// Evict flows idle for longer than this (measured in report
    /// timestamps, i.e. the sink's clock — deterministic in simulation).
    /// `None` disables TTL eviction.
    pub flow_ttl: Option<u64>,
    /// Bound on undelivered events: if the consumer stops draining,
    /// further events are counted as dropped instead of buffering
    /// without limit (the collector's memory stays bounded even with a
    /// negligent consumer).
    pub event_capacity: usize,
    /// Streaming event-detection rules, evaluated on shard workers as
    /// batches are applied. At most 64 rules.
    pub rules: Vec<EventRule>,
    /// Metrics registry the collector publishes its self-telemetry into
    /// (per-shard counters/gauges, stage-timing histograms). Share one
    /// registry across tiers to serve whole-process metrics from a
    /// single `Metrics` wire frame; `None` gives the collector a
    /// private registry (read it via
    /// [`Collector::metrics`](crate::Collector::metrics)).
    pub metrics: Option<pint_obs::MetricsRegistry>,
}

impl Default for CollectorConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            ring_capacity: 64,
            batch_size: 256,
            spin_limit: 64,
            park_timeout_us: 200,
            max_flows_per_shard: 65_536,
            max_bytes_per_shard: 64 << 20,
            flow_ttl: None,
            event_capacity: 65_536,
            rules: Vec::new(),
            metrics: None,
        }
    }
}

impl CollectorConfig {
    /// A config with `shards` workers and defaults elsewhere.
    pub fn with_shards(shards: usize) -> Self {
        Self {
            shards,
            ..Self::default()
        }
    }

    /// Validates invariants (positive sizes, rule-count limit).
    pub(crate) fn validate(&self) {
        assert!(self.shards >= 1, "need at least one shard");
        assert!(self.ring_capacity >= 1, "ring capacity must be positive");
        assert!(self.batch_size >= 1, "batch size must be positive");
        assert!(
            self.park_timeout_us >= 1,
            "park timeout must be positive (it bounds wakeup races)"
        );
        assert!(self.max_flows_per_shard >= 1, "flow cap must be positive");
        assert!(self.event_capacity >= 1, "event capacity must be positive");
        assert!(
            self.rules.len() <= 64,
            "at most 64 event rules (per-flow fired-state is a u64 bitmask)"
        );
    }
}
