//! Cross-shard inference: snapshot queries merged over all workers.
//!
//! Shards own their flow state exclusively, so queries are answered from
//! *snapshots*: each worker serializes its flows into [`FlowSummary`]s
//! (per-hop KLL sketches in code space, path progress, heavy hitters) and
//! the collector merges them into one [`CollectorSnapshot`]. Merging is
//! deterministic: flows are sorted by ID before KLL merging, so the same
//! digest stream yields the same answers at any shard count — the
//! property the shard-equivalence test pins down.

use crate::config::FlowId;
use crate::flow_table::TableStats;
use pint_core::dynamic::DynamicAggregator;
use pint_sketches::KllSketch;

/// One flow's state, as exported by a shard snapshot. Defined by the
/// query tier (`pint-query`), which every read backend shares.
pub use pint_query::FlowSummary;

/// Everything one shard reports at snapshot time.
#[derive(Debug, Clone)]
pub struct ShardSnapshot {
    /// The shard index.
    pub shard: usize,
    /// `(flow, summary)` for every tracked flow.
    pub flows: Vec<(FlowId, FlowSummary)>,
    /// Eviction counters at snapshot time.
    pub table_stats: TableStats,
    /// Digests the shard has applied.
    pub ingested: u64,
    /// Seq of the last delta this shard teed to an attached journal
    /// (0 when none is attached). Reported in the same reply as the
    /// rows, so a checkpoint built from this snapshot can claim
    /// *exactly* the deltas whose data the snapshot holds — deltas the
    /// shard applies after answering stay uncovered even if the journal
    /// writes them before the checkpoint record.
    pub journal_seq: u64,
}

/// A merged, queryable view over all shards at one point in time.
#[derive(Debug, Clone)]
pub struct CollectorSnapshot {
    /// All flows, sorted by flow ID (deterministic merge order).
    flows: Vec<(FlowId, FlowSummary)>,
    /// Table stats of the consulted shards, in shard order (all shards
    /// for a full snapshot; only the owning shards for a filtered one).
    pub shard_stats: Vec<TableStats>,
    /// Digests applied across the consulted shards.
    pub ingested: u64,
}

impl CollectorSnapshot {
    /// Merges shard snapshots (sorts flows by ID; shard count does not
    /// affect any downstream answer).
    pub fn from_shards(shards: Vec<ShardSnapshot>) -> Self {
        let mut by_shard: Vec<(usize, ShardSnapshot)> =
            shards.into_iter().map(|s| (s.shard, s)).collect();
        by_shard.sort_by_key(|&(idx, _)| idx);
        let mut flows = Vec::new();
        let mut shard_stats = Vec::new();
        let mut ingested = 0;
        for (_, s) in by_shard {
            flows.extend(s.flows);
            shard_stats.push(s.table_stats);
            ingested += s.ingested;
        }
        flows.sort_by_key(|&(f, _)| f);
        Self {
            flows,
            shard_stats,
            ingested,
        }
    }

    /// Builds a snapshot directly from its parts (the decode path of the
    /// wire codec, and `pint-fleet`'s merged-view construction). `flows`
    /// is sorted by flow ID if it isn't already; duplicate IDs are kept
    /// (then [`flow`](Self::flow) returns one of them arbitrarily —
    /// fleet-level merging dedupes before calling this).
    pub fn from_parts(
        mut flows: Vec<(FlowId, FlowSummary)>,
        shard_stats: Vec<TableStats>,
        ingested: u64,
    ) -> Self {
        if !flows.windows(2).all(|w| w[0].0 <= w[1].0) {
            flows.sort_by_key(|&(f, _)| f);
        }
        Self {
            flows,
            shard_stats,
            ingested,
        }
    }

    /// Decomposes the snapshot into `(flows, shard_stats, ingested)` —
    /// the inverse of [`from_parts`](Self::from_parts). Flows come out
    /// ascending by ID.
    pub fn into_parts(self) -> (Vec<(FlowId, FlowSummary)>, Vec<TableStats>, u64) {
        (self.flows, self.shard_stats, self.ingested)
    }

    /// Keeps only the `k` flows with the most recorded packets (ties
    /// broken by ascending flow ID), preserving the sorted-by-ID
    /// invariant of the survivors. Used by
    /// [`Collector::snapshot_top_k`](crate::Collector::snapshot_top_k)
    /// to trim the union of per-shard top-`k` lists to the global
    /// top-`k`.
    pub fn into_top_k(mut self, k: usize) -> Self {
        if self.flows.len() > k {
            self.flows
                .sort_by(|a, b| pint_query::top_k_order((a.1.packets, a.0), (b.1.packets, b.0)));
            self.flows.truncate(k);
            self.flows.sort_by_key(|&(f, _)| f);
        }
        self
    }

    /// Tracked flows.
    pub fn num_flows(&self) -> usize {
        self.flows.len()
    }

    /// All flows, ascending by ID.
    pub fn flows(&self) -> impl Iterator<Item = &(FlowId, FlowSummary)> {
        self.flows.iter()
    }

    /// One flow's summary.
    pub fn flow(&self, id: FlowId) -> Option<&FlowSummary> {
        self.flows
            .binary_search_by_key(&id, |&(f, _)| f)
            .ok()
            .map(|i| &self.flows[i].1)
    }

    /// Digests recorded across all tracked flows. Saturating: snapshots
    /// may have been decoded from the wire, where per-flow counts are
    /// untrusted.
    pub fn total_packets(&self) -> u64 {
        self.flows
            .iter()
            .fold(0u64, |acc, (_, s)| acc.saturating_add(s.packets))
    }

    /// Merges hop `hop`'s code-space sketches across every latency flow
    /// (ascending flow ID — deterministic). `None` if no flow has data
    /// for that hop. Delegates to the query tier's shared
    /// [`merge_hop_sketches`](pint_query::merge_hop_sketches), so local
    /// snapshots and query backends produce identical merges.
    pub fn merged_hop_sketch(&self, hop: usize) -> Option<KllSketch> {
        pint_query::merge_hop_sketches(&self.flows, hop)
    }

    /// Fleet-wide ϕ-quantile of hop `hop`'s value stream, decompressed
    /// through `agg`'s codec (all latency flows must share the codec —
    /// they do when one [`RecorderFactory`](crate::RecorderFactory)
    /// built them).
    pub fn latency_quantile(&self, hop: usize, phi: f64, agg: &DynamicAggregator) -> Option<f64> {
        let code = self.merged_hop_sketch(hop)?.quantile(phi)?;
        Some(agg.decode(code))
    }

    /// `(complete, total)` path-tracing flows.
    pub fn path_counts(&self) -> (usize, usize) {
        let mut complete = 0;
        let mut total = 0;
        for (_, s) in &self.flows {
            if let Some(p) = &s.path {
                total += 1;
                if p.is_complete() {
                    complete += 1;
                }
            }
        }
        (complete, total)
    }

    /// Fraction of path-tracing flows whose route is fully reconstructed;
    /// `None` when no path flows are tracked.
    pub fn path_completion(&self) -> Option<f64> {
        let (complete, total) = self.path_counts();
        (total > 0).then(|| complete as f64 / total as f64)
    }

    /// Decoded paths, ascending by flow ID.
    pub fn decoded_paths(&self) -> impl Iterator<Item = (FlowId, &[u64])> {
        self.flows.iter().filter_map(|(f, s)| {
            s.path
                .as_ref()
                .and_then(|p| p.path.as_deref())
                .map(|path| (*f, path))
        })
    }

    /// Sum of per-flow state-byte estimates (saturating — see
    /// [`total_packets`](Self::total_packets)).
    pub fn state_bytes(&self) -> usize {
        self.flows
            .iter()
            .fold(0usize, |acc, (_, s)| acc.saturating_add(s.state_bytes))
    }

    /// Total flows evicted (LRU + TTL) across shards.
    pub fn evicted_flows(&self) -> u64 {
        self.shard_stats
            .iter()
            .map(|t| t.evicted_lru + t.evicted_ttl)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pint_core::{PathProgress, RecorderKind};

    fn latency_summary(values: &[u64]) -> FlowSummary {
        let mut sk = KllSketch::with_seed(64, 1);
        for &v in values {
            sk.update(v);
        }
        FlowSummary {
            kind: RecorderKind::LatencyQuantiles,
            packets: values.len() as u64,
            state_bytes: values.len() * 8,
            last_ts: 0,
            hop_sketches: vec![KllSketch::with_seed(64, 1), sk],
            path: None,
            inconsistencies: 0,
        }
    }

    fn shard(idx: usize, flows: Vec<(FlowId, FlowSummary)>) -> ShardSnapshot {
        ShardSnapshot {
            shard: idx,
            flows,
            table_stats: TableStats::default(),
            ingested: 0,
            journal_seq: 0,
        }
    }

    #[test]
    fn merge_is_shard_count_invariant() {
        let a = latency_summary(&(0..500).collect::<Vec<_>>());
        let b = latency_summary(&(500..1000).collect::<Vec<_>>());
        let c = latency_summary(&(1000..1500).collect::<Vec<_>>());

        let one = CollectorSnapshot::from_shards(vec![shard(
            0,
            vec![(1, a.clone()), (2, b.clone()), (3, c.clone())],
        )]);
        // Different shard partition AND reversed arrival order.
        let three = CollectorSnapshot::from_shards(vec![
            shard(2, vec![(3, c)]),
            shard(0, vec![(2, b)]),
            shard(1, vec![(1, a)]),
        ]);

        for phi in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(
                one.merged_hop_sketch(1).unwrap().quantile(phi),
                three.merged_hop_sketch(1).unwrap().quantile(phi),
                "phi={phi}"
            );
        }
        assert_eq!(one.total_packets(), 1500);
        assert_eq!(three.total_packets(), 1500);
    }

    #[test]
    fn merged_quantiles_track_combined_stream() {
        let flows: Vec<(FlowId, FlowSummary)> = (0..10)
            .map(|f| {
                let lo = f * 1000;
                (f, latency_summary(&(lo..lo + 1000).collect::<Vec<_>>()))
            })
            .collect();
        let snap = CollectorSnapshot::from_shards(vec![shard(0, flows)]);
        let med = snap.merged_hop_sketch(1).unwrap().quantile(0.5).unwrap();
        assert!((med as i64 - 5_000).abs() < 400, "median {med}");
    }

    #[test]
    fn top_k_keeps_heaviest_flows_sorted_by_id() {
        let with_packets = |packets: u64| {
            let mut s = latency_summary(&[1, 2, 3]);
            s.packets = packets;
            s
        };
        let snap = CollectorSnapshot::from_shards(vec![
            shard(0, vec![(10, with_packets(5)), (11, with_packets(50))]),
            shard(1, vec![(12, with_packets(50)), (13, with_packets(500))]),
        ]);
        let top = snap.into_top_k(2);
        // 13 (500) and the tie-break winner 11 (50, lower ID than 12).
        let ids: Vec<FlowId> = top.flows().map(|&(f, _)| f).collect();
        assert_eq!(ids, vec![11, 13], "heaviest two, re-sorted by ID");
        assert!(top.flow(11).is_some() && top.flow(13).is_some());
        assert!(top.flow(12).is_none());
    }

    #[test]
    fn top_k_tie_break_is_ascending_flow_id() {
        // Every flow has identical packet counts, scattered across
        // shards in adversarial insertion order: the k survivors must
        // be exactly the k smallest IDs — never hash- or
        // insertion-order dependent.
        let with_packets = |packets: u64| {
            let mut s = latency_summary(&[1]);
            s.packets = packets;
            s
        };
        let snap = CollectorSnapshot::from_shards(vec![
            shard(1, vec![(40, with_packets(9)), (12, with_packets(9))]),
            shard(0, vec![(99, with_packets(9)), (7, with_packets(9))]),
            shard(2, vec![(55, with_packets(9))]),
        ]);
        let ids: Vec<FlowId> = snap.into_top_k(3).flows().map(|&(f, _)| f).collect();
        assert_eq!(ids, vec![7, 12, 40], "equal packets: ascending-ID winners");
    }

    #[test]
    fn path_counts_and_lookup() {
        let progress = |resolved, k: usize| PathProgress {
            resolved,
            k,
            path: (resolved == k).then(|| (0..k as u64).collect()),
            inconsistencies: 0,
        };
        let path_summary = |resolved, k| FlowSummary {
            kind: RecorderKind::PathTracing,
            packets: 10,
            state_bytes: 100,
            last_ts: 0,
            hop_sketches: Vec::new(),
            path: Some(progress(resolved, k)),
            inconsistencies: 0,
        };
        let snap = CollectorSnapshot::from_shards(vec![
            shard(0, vec![(5, path_summary(5, 5)), (7, path_summary(2, 5))]),
            shard(1, vec![(6, path_summary(5, 5))]),
        ]);
        assert_eq!(snap.path_counts(), (2, 3));
        assert_eq!(snap.path_completion(), Some(2.0 / 3.0));
        assert_eq!(snap.decoded_paths().count(), 2);
        assert!(snap.flow(7).is_some());
        assert!(snap.flow(99).is_none());
        assert_eq!(snap.num_flows(), 3);
    }
}
