//! Recorder memory honesty: with the `measure-alloc` feature, shard
//! workers fold real allocator deltas into a per-shard gauge that
//! cross-checks the flow table's `state_bytes` estimate — and the
//! counting allocator doubles as the referee for the pooled-batch
//! claim: a warmed producer ships batches without allocating.

#![cfg(feature = "measure-alloc")]

use pint_collector::alloc_track::thread_net_bytes;
use pint_collector::{Collector, CollectorConfig};
use pint_core::dynamic::{DynamicAggregator, DynamicRecorder};
use pint_core::{Digest, DigestReport, FlowRecorder};
use std::sync::Arc;

#[test]
fn measured_bytes_track_the_estimate() {
    let agg = DynamicAggregator::new(4, 8, 100.0, 1.0e7);
    let factory_agg = agg.clone();
    let collector = Collector::spawn(
        CollectorConfig {
            shards: 2,
            ..CollectorConfig::default()
        },
        Arc::new(move |_flow, report: &DigestReport| {
            Box::new(DynamicRecorder::new_sketched(
                factory_agg.clone(),
                usize::from(report.path_len).max(1),
                256,
            )) as Box<dyn FlowRecorder>
        }),
    );
    let mut handle = collector.handle();
    for flow in 0..512u64 {
        for pid in 0..64u64 {
            let mut d = Digest::new(1);
            agg.encode_hop(flow * 1_000 + pid, 1, 1_000.0, &mut d, 0);
            handle
                .push(DigestReport::new(flow, flow * 1_000 + pid, d, 4, pid))
                .unwrap();
        }
    }
    handle.flush().unwrap();
    collector.barrier().unwrap();

    let snap = collector.metrics().snapshot();
    let estimate = snap.gauge_total("collector_state_bytes");
    let measured = snap.gauge_total("collector_state_bytes_measured");
    assert!(estimate > 0, "estimate gauge not published");
    assert!(measured > 0, "measured gauge not published");
    // The loose bound from the shard-side debug assert, checked here in
    // release-compiled tests too: the estimate must be the same order of
    // magnitude as what the allocator actually handed out.
    assert!(
        measured >= estimate / 8 && measured <= estimate * 16,
        "estimate {estimate} vs measured {measured} diverged"
    );
    collector.shutdown();
}

/// The pooled-batch tentpole, pinned by the allocator itself: once the
/// recycle lane is primed, the producer hot path (buffer → ship →
/// re-arm from the lane) runs with a net allocator delta of exactly
/// zero bytes on the producer thread. Digests carry one lane, which
/// `pint_core::Digest` stores inline — so any nonzero delta is a batch
/// allocation leaking back into steady state.
#[test]
fn steady_state_pushes_allocate_no_batches() {
    let agg = DynamicAggregator::new(4, 8, 100.0, 1.0e7);
    let factory_agg = agg.clone();
    let config = CollectorConfig {
        shards: 1,
        ..CollectorConfig::default()
    };
    let batch = config.batch_size;
    let collector = Collector::spawn(
        config,
        Arc::new(move |_flow, report: &DigestReport| {
            Box::new(DynamicRecorder::new_sketched(
                factory_agg.clone(),
                usize::from(report.path_len).max(1),
                64,
            )) as Box<dyn FlowRecorder>
        }),
    );
    let mut handle = collector.handle();
    let mut pkt = 0u64;
    let mut push_cycle = |handle: &mut pint_collector::CollectorHandle| {
        for i in 0..batch as u64 {
            let mut d = Digest::new(1);
            agg.encode_hop(pkt, 1, 1_000.0, &mut d, 0);
            handle
                .push(DigestReport::new(i % 32, pkt, d, 4, pkt))
                .unwrap();
            pkt += 1;
        }
    };
    // Warmup: circulate buffers until the lane holds enough to re-arm
    // every ship. The barrier quiesces the shard, so each warmed buffer
    // is back in the lane before the next cycle starts.
    for _ in 0..4 {
        push_cycle(&mut handle);
        collector.barrier().unwrap();
    }
    // Steady state: measure only the push segments. The barrier between
    // cycles re-primes the lane outside the measured window (and its
    // control-channel traffic allocates on this thread, so it must not
    // be inside it).
    let mut delta = 0i64;
    for _ in 0..8 {
        let before = thread_net_bytes();
        push_cycle(&mut handle);
        delta += thread_net_bytes() - before;
        collector.barrier().unwrap();
    }
    assert_eq!(
        delta, 0,
        "warmed producer hot path moved the allocator by {delta} net bytes"
    );
    let snap = collector.metrics().snapshot();
    assert!(
        snap.counter_total("collector_batches_recycled_total") >= 8,
        "steady-state ships were not fed from the recycle lane"
    );
    collector.shutdown();
}
