//! Recorder memory honesty: with the `measure-alloc` feature, shard
//! workers fold real allocator deltas into a per-shard gauge that
//! cross-checks the flow table's `state_bytes` estimate.

#![cfg(feature = "measure-alloc")]

use pint_collector::{Collector, CollectorConfig};
use pint_core::dynamic::{DynamicAggregator, DynamicRecorder};
use pint_core::{Digest, DigestReport, FlowRecorder};
use std::sync::Arc;

#[test]
fn measured_bytes_track_the_estimate() {
    let agg = DynamicAggregator::new(4, 8, 100.0, 1.0e7);
    let factory_agg = agg.clone();
    let collector = Collector::spawn(
        CollectorConfig {
            shards: 2,
            ..CollectorConfig::default()
        },
        Arc::new(move |_flow, report: &DigestReport| {
            Box::new(DynamicRecorder::new_sketched(
                factory_agg.clone(),
                usize::from(report.path_len).max(1),
                256,
            )) as Box<dyn FlowRecorder>
        }),
    );
    let mut handle = collector.handle();
    for flow in 0..512u64 {
        for pid in 0..64u64 {
            let mut d = Digest::new(1);
            agg.encode_hop(flow * 1_000 + pid, 1, 1_000.0, &mut d, 0);
            handle
                .push(DigestReport::new(flow, flow * 1_000 + pid, d, 4, pid))
                .unwrap();
        }
    }
    handle.flush().unwrap();
    collector.barrier().unwrap();

    let snap = collector.metrics().snapshot();
    let estimate = snap.gauge_total("collector_state_bytes");
    let measured = snap.gauge_total("collector_state_bytes_measured");
    assert!(estimate > 0, "estimate gauge not published");
    assert!(measured > 0, "measured gauge not published");
    // The loose bound from the shard-side debug assert, checked here in
    // release-compiled tests too: the estimate must be the same order of
    // magnitude as what the allocator actually handed out.
    assert!(
        measured >= estimate / 8 && measured <= estimate * 16,
        "estimate {estimate} vs measured {measured} diverged"
    );
    collector.shutdown();
}
