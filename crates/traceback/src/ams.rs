//! Advanced Marking Scheme II (Song & Perrig, INFOCOM 2001),
//! reservoir-improved per Sattari \[63\].
//!
//! Each marking router writes an 11-bit hash of its identity under one of
//! `m` globally known hash functions (the function index is derived from
//! the packet, so different packets exercise different functions) plus
//! distance 0; later hops increment the distance.
//!
//! The victim knows the router universe and the `m` hash functions. For
//! each hop it maintains the candidate set of routers consistent with every
//! observed (function, value) pair. With `m = 6` the scheme needs more
//! packets than `m = 5` (more coupons to collect) but has a lower
//! false-positive probability (`|V|·2^−11m`) — the trade-off the paper
//! cites. Following the original scheme's acceptance rule, a hop is
//! *identified* only when all `m` hash values have been observed and
//! exactly one candidate matches them all.

use crate::Mark;
use pint_core::hash::GlobalHash;

/// Bits of the hash value in the 16-bit field (16 − 5 distance = 11).
pub const HASH_BITS: u32 = 11;

/// The AMS2 marking scheme (switch side).
#[derive(Debug, Clone)]
pub struct Ams {
    /// Number of hash functions (paper: m = 5 or m = 6).
    m: u32,
    /// Reservoir / function-selection hash.
    g: GlobalHash,
    /// Family of m identity-hash functions.
    h: GlobalHash,
}

impl Ams {
    /// Creates the scheme with `m` hash functions.
    pub fn new(seed: u64, m: u32) -> Self {
        assert!(m >= 1);
        let root = GlobalHash::new(seed ^ 0xA4B2_55AA);
        Self {
            m,
            g: root.derive(1),
            h: root.derive(2),
        }
    }

    /// Number of hash functions.
    pub fn m(&self) -> u32 {
        self.m
    }

    /// `h_f(switch)` truncated to 11 bits.
    pub fn hash_of(&self, f: u32, switch_id: u64) -> u16 {
        (self.h.hash2(u64::from(f), switch_id) >> (64 - HASH_BITS)) as u16
    }

    /// The hash-function index packet `pid` exercises.
    pub fn function_of(&self, pid: u64) -> u32 {
        (self.g.hash2(pid, 0xA11CE) % u64::from(self.m)) as u32
    }

    /// Runs the marking logic at hop `hop` (1-based) for packet `pid`.
    pub fn mark(&self, pid: u64, hop: usize, switch_id: u64, mark: &mut Mark) {
        if self.g.unit2(pid, hop as u64) < 1.0 / hop as f64 {
            let f = self.function_of(pid);
            mark.payload = self.hash_of(f, switch_id);
            mark.distance = 0;
            mark.written = true;
        } else if mark.written {
            mark.distance = mark.distance.saturating_add(1);
        }
    }

    /// Convenience: marks a full path traversal.
    pub fn mark_path(&self, pid: u64, path: &[u64]) -> Mark {
        let mut m = Mark::default();
        for (i, &sw) in path.iter().enumerate() {
            self.mark(pid, i + 1, sw, &mut m);
        }
        m
    }

    /// Builds a decoder for a `k`-hop path over `universe` switch IDs.
    pub fn decoder(&self, universe: Vec<u64>, k: usize) -> AmsDecoder {
        AmsDecoder {
            scheme: self.clone(),
            universe,
            k,
            observed: vec![vec![None; self.m as usize]; k + 1],
            packets: 0,
        }
    }
}

/// Victim-side reconstruction state.
#[derive(Debug, Clone)]
pub struct AmsDecoder {
    scheme: Ams,
    universe: Vec<u64>,
    k: usize,
    /// `observed[hop][f]` — the hash value seen under function `f`.
    observed: Vec<Vec<Option<u16>>>,
    packets: u64,
}

impl AmsDecoder {
    /// Absorbs a packet's mark (the decoder re-derives the function index
    /// from the packet ID); `true` when the path is identified.
    pub fn absorb(&mut self, pid: u64, mark: &Mark) -> bool {
        self.packets += 1;
        if !mark.written {
            return self.is_complete();
        }
        let dist = mark.distance as usize;
        if dist >= self.k {
            return self.is_complete();
        }
        let hop = self.k - dist;
        let f = self.scheme.function_of(pid) as usize;
        self.observed[hop][f] = Some(mark.payload);
        self.is_complete()
    }

    /// Candidate routers for `hop` under the observations so far.
    pub fn candidates(&self, hop: usize) -> Vec<u64> {
        self.universe
            .iter()
            .copied()
            .filter(|&sw| {
                self.observed[hop]
                    .iter()
                    .enumerate()
                    .all(|(f, ov)| ov.is_none_or(|v| self.scheme.hash_of(f as u32, sw) == v))
            })
            .collect()
    }

    /// A hop is identified once all `m` hash values are observed and
    /// exactly one router matches them all (the original acceptance rule).
    pub fn hop_identified(&self, hop: usize) -> bool {
        self.observed[hop].iter().all(Option::is_some) && self.candidates(hop).len() == 1
    }

    /// `true` when every hop is identified.
    pub fn is_complete(&self) -> bool {
        (1..=self.k).all(|h| self.hop_identified(h))
    }

    /// Packets absorbed so far.
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// The identified path, if complete.
    pub fn decoded_path(&self) -> Option<Vec<u64>> {
        if !self.is_complete() {
            return None;
        }
        Some((1..=self.k).map(|h| self.candidates(h)[0]).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &[u64], universe: Vec<u64>, m: u32, seed: u64) -> (u64, Vec<u64>) {
        let ams = Ams::new(seed, m);
        let mut dec = ams.decoder(universe, path.len());
        let mut pid = seed * 1_000_003;
        loop {
            pid += 1;
            let mark = ams.mark_path(pid, path);
            if dec.absorb(pid, &mark) {
                return (dec.packets(), dec.decoded_path().unwrap());
            }
            assert!(dec.packets() < 2_000_000, "AMS did not converge");
        }
    }

    #[test]
    fn decodes_short_path() {
        let universe: Vec<u64> = (0..100).collect();
        let path = vec![3, 71, 42, 8, 99];
        let (packets, decoded) = run(&path, universe, 5, 1);
        assert_eq!(decoded, path);
        assert!(packets >= 25, "must collect ≥ m per hop");
    }

    #[test]
    fn m6_needs_more_packets_than_m5() {
        let universe: Vec<u64> = (0..200).collect();
        let path: Vec<u64> = (0..8).map(|i| i * 11).collect();
        let runs = 25;
        let mean = |m: u32| -> f64 {
            (0..runs)
                .map(|s| run(&path, universe.clone(), m, s + 1).0 as f64)
                .sum::<f64>()
                / runs as f64
        };
        let m5 = mean(5);
        let m6 = mean(6);
        assert!(
            m6 > m5,
            "m=6 ({m6}) should need more packets than m=5 ({m5})"
        );
    }

    #[test]
    fn candidate_sets_shrink_with_observations() {
        let universe: Vec<u64> = (0..2048).collect();
        let path = vec![77, 1234, 2000];
        let ams = Ams::new(5, 5);
        let mut dec = ams.decoder(universe, 3);
        let initial = dec.candidates(1).len();
        assert_eq!(initial, 2048);
        for pid in 0..400u64 {
            dec.absorb(pid, &ams.mark_path(pid, &path));
            if dec.is_complete() {
                break;
            }
        }
        // With an 11-bit hash and |V| = 2048 one observation leaves ~2
        // candidates; several shrink it to 1.
        assert!(dec.is_complete(), "not identified after 400 packets");
    }

    #[test]
    fn hash_functions_differ() {
        let ams = Ams::new(11, 6);
        let mut distinct = std::collections::HashSet::new();
        for f in 0..6 {
            distinct.insert(ams.hash_of(f, 42));
        }
        assert!(distinct.len() >= 5, "hash family degenerate");
    }

    #[test]
    fn function_selection_uniform() {
        let ams = Ams::new(13, 5);
        let mut counts = [0u32; 5];
        for pid in 0..50_000u64 {
            counts[ams.function_of(pid) as usize] += 1;
        }
        for &c in &counts {
            assert!((9_000..=11_000).contains(&c), "{counts:?}");
        }
    }
}
