//! Probabilistic Packet Marking with fragment sampling (Savage et al.,
//! SIGCOMM 2000), reservoir-improved per Sattari \[63\].
//!
//! Each router's 64-bit identity hash is split into 8 fragments of 8 bits.
//! When a router marks a packet (reservoir rule: hop `i` marks with
//! probability `1/i`, so the final marker is uniform), it writes one
//! uniformly chosen fragment, the 3-bit fragment offset, and distance 0;
//! every later hop increments the distance. The sink reconstructs hop
//! `k − distance` once all 8 of its fragments arrived, then maps the
//! assembled identity hash back to a switch ID.

use crate::Mark;
use pint_core::hash::GlobalHash;

/// Number of fragments per router identity (3-bit offset field).
pub const FRAGMENTS: usize = 8;
/// Bits per fragment (16-bit field − 3 offset − 5 distance = 8).
pub const FRAGMENT_BITS: u32 = 8;

/// The PPM marking scheme (switch side).
#[derive(Debug, Clone)]
pub struct Ppm {
    /// Reservoir / offset-selection hash shared by all routers.
    g: GlobalHash,
    /// Identity hash: maps a switch ID to the 64-bit value that is
    /// fragmented (all parties know it).
    ident: GlobalHash,
}

impl Ppm {
    /// Creates the scheme for hash seed `seed`.
    pub fn new(seed: u64) -> Self {
        let root = GlobalHash::new(seed ^ 0x90F0_11A2);
        Self {
            g: root.derive(1),
            ident: root.derive(2),
        }
    }

    /// The fragmented 64-bit identity of a switch.
    pub fn identity(&self, switch_id: u64) -> u64 {
        self.ident.hash1(switch_id)
    }

    /// Extracts fragment `offset` of `identity`.
    pub fn fragment(identity: u64, offset: usize) -> u8 {
        debug_assert!(offset < FRAGMENTS);
        ((identity >> (offset as u32 * FRAGMENT_BITS)) & 0xFF) as u8
    }

    /// Runs the marking logic at hop `hop` (1-based) for packet `pid`.
    pub fn mark(&self, pid: u64, hop: usize, switch_id: u64, mark: &mut Mark) {
        // Reservoir-improved marking: overwrite with probability 1/hop.
        if self.g.unit2(pid, hop as u64) < 1.0 / hop as f64 {
            let offset = (self.g.hash2(pid, 0xF0F0) % FRAGMENTS as u64) as usize;
            let frag = Self::fragment(self.identity(switch_id), offset);
            mark.payload = ((offset as u16) << 8) | u16::from(frag);
            mark.distance = 0;
            mark.written = true;
        } else if mark.written {
            mark.distance = mark.distance.saturating_add(1);
        }
    }

    /// Convenience: marks a full path traversal, returning the final field.
    pub fn mark_path(&self, pid: u64, path: &[u64]) -> Mark {
        let mut m = Mark::default();
        for (i, &sw) in path.iter().enumerate() {
            self.mark(pid, i + 1, sw, &mut m);
        }
        m
    }

    /// *Classic* Savage-style marking with a fixed probability `p`
    /// (no reservoir improvement): every router overwrites with the same
    /// `p`, so the surviving marker is geometrically biased toward the
    /// last hops and early hops need `≈ 1/(p(1−p)^(k−1))` packets. Kept as
    /// the ablation baseline for the \[63\] improvement the paper adopts.
    pub fn mark_classic(&self, pid: u64, hop: usize, switch_id: u64, p: f64, mark: &mut Mark) {
        if self.g.unit2(pid, hop as u64) < p {
            let offset = (self.g.hash2(pid, 0xF0F0) % FRAGMENTS as u64) as usize;
            let frag = Self::fragment(self.identity(switch_id), offset);
            mark.payload = ((offset as u16) << 8) | u16::from(frag);
            mark.distance = 0;
            mark.written = true;
        } else if mark.written {
            mark.distance = mark.distance.saturating_add(1);
        }
    }

    /// Classic marking over a full path.
    pub fn mark_path_classic(&self, pid: u64, path: &[u64], p: f64) -> Mark {
        let mut m = Mark::default();
        for (i, &sw) in path.iter().enumerate() {
            self.mark_classic(pid, i + 1, sw, p, &mut m);
        }
        m
    }

    /// Builds a decoder for a `k`-hop path over `universe` switch IDs.
    pub fn decoder(&self, universe: Vec<u64>, k: usize) -> PpmDecoder {
        PpmDecoder {
            scheme: self.clone(),
            universe,
            k,
            fragments: vec![[None; FRAGMENTS]; k + 1],
            packets: 0,
        }
    }
}

/// Victim-side reconstruction state.
#[derive(Debug, Clone)]
pub struct PpmDecoder {
    scheme: Ppm,
    universe: Vec<u64>,
    k: usize,
    /// `fragments[hop][offset]` — collected fragment values.
    fragments: Vec<[Option<u8>; FRAGMENTS]>,
    packets: u64,
}

impl PpmDecoder {
    /// Absorbs a packet's mark; returns `true` when the path is decoded.
    pub fn absorb(&mut self, mark: &Mark) -> bool {
        self.packets += 1;
        if !mark.written {
            return self.is_complete();
        }
        let dist = mark.distance as usize;
        if dist >= self.k {
            return self.is_complete();
        }
        let hop = self.k - dist;
        let offset = (mark.payload >> 8) as usize;
        let frag = (mark.payload & 0xFF) as u8;
        if offset < FRAGMENTS {
            self.fragments[hop][offset] = Some(frag);
        }
        self.is_complete()
    }

    /// `true` when every hop has all 8 fragments.
    pub fn is_complete(&self) -> bool {
        (1..=self.k).all(|h| self.fragments[h].iter().all(Option::is_some))
    }

    /// Packets absorbed so far.
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// Number of (hop, fragment) coupons still missing.
    pub fn missing_fragments(&self) -> usize {
        (1..=self.k)
            .map(|h| self.fragments[h].iter().filter(|f| f.is_none()).count())
            .sum()
    }

    /// The reconstructed path (switch IDs), if complete. Assembles each
    /// hop's identity hash and looks it up in the universe.
    pub fn decoded_path(&self) -> Option<Vec<u64>> {
        if !self.is_complete() {
            return None;
        }
        let mut path = Vec::with_capacity(self.k);
        for hop in 1..=self.k {
            let mut ident = 0u64;
            for (off, frag) in self.fragments[hop].iter().enumerate() {
                ident |= u64::from(frag.expect("complete")) << (off as u32 * FRAGMENT_BITS);
            }
            let sw = self
                .universe
                .iter()
                .copied()
                .find(|&s| self.scheme.identity(s) == ident)?;
            path.push(sw);
        }
        Some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &[u64], universe: Vec<u64>, seed: u64) -> (u64, Vec<u64>) {
        let ppm = Ppm::new(seed);
        let mut dec = ppm.decoder(universe, path.len());
        let mut pid = seed * 999_983;
        loop {
            pid += 1;
            let mark = ppm.mark_path(pid, path);
            if dec.absorb(&mark) {
                return (dec.packets(), dec.decoded_path().unwrap());
            }
            assert!(dec.packets() < 2_000_000, "PPM did not converge");
        }
    }

    #[test]
    fn decodes_short_path() {
        let universe: Vec<u64> = (0..50).collect();
        let path = vec![3, 17, 42, 8, 29];
        let (packets, decoded) = run(&path, universe, 1);
        assert_eq!(decoded, path);
        // 8 fragments × 5 hops = 40 coupons → ≥ 40 packets always.
        assert!(packets >= 40);
    }

    #[test]
    fn packet_count_matches_coupon_collector() {
        // E[packets] ≈ kF·H(kF); for k = 5, F = 8: 40·H40 ≈ 171.
        let universe: Vec<u64> = (0..100).collect();
        let path: Vec<u64> = vec![1, 2, 3, 4, 5];
        let runs = 40;
        let mean: f64 = (0..runs)
            .map(|s| run(&path, universe.clone(), s + 1).0 as f64)
            .sum::<f64>()
            / runs as f64;
        let coupons = (path.len() * FRAGMENTS) as f64;
        let expect = coupons * (coupons.ln() + 0.5772);
        assert!(
            (mean - expect).abs() < expect * 0.25,
            "mean {mean} vs coupon-collector {expect}"
        );
    }

    #[test]
    fn fragments_reassemble_identity() {
        let ppm = Ppm::new(7);
        let ident = ppm.identity(12345);
        let mut back = 0u64;
        for off in 0..FRAGMENTS {
            back |= u64::from(Ppm::fragment(ident, off)) << (off as u32 * 8);
        }
        assert_eq!(back, ident);
    }

    #[test]
    fn distance_counts_hops_since_mark() {
        let ppm = Ppm::new(3);
        let path: Vec<u64> = (0..10).collect();
        for pid in 0..200u64 {
            let m = ppm.mark_path(pid, &path);
            assert!(m.written, "hop 1 always marks");
            assert!((m.distance as usize) < path.len());
        }
    }

    #[test]
    fn classic_marking_biased_to_late_hops() {
        // With p = 0.25 over 10 hops, the final marker is the last hop
        // that drew below p — geometrically favouring late hops; the
        // reservoir-improved variant is uniform. This is why [63] helps.
        let ppm = Ppm::new(21);
        let path: Vec<u64> = (0..10).collect();
        let mut classic_first = 0u32;
        let mut improved_first = 0u32;
        let trials = 20_000;
        for pid in 0..trials {
            let m = ppm.mark_path_classic(pid, &path, 0.25);
            if m.written && m.distance == 9 {
                classic_first += 1;
            }
            let m = ppm.mark_path(pid, &path);
            if m.distance == 9 {
                improved_first += 1;
            }
        }
        // Improved: hop 1 wins 1/10 of the time; classic: ~p(1−p)^9 ≈ 1.9%.
        assert!(
            improved_first > classic_first * 3,
            "classic {classic_first} vs improved {improved_first}"
        );
    }

    #[test]
    fn missing_fragments_decreases() {
        let universe: Vec<u64> = (0..20).collect();
        let path = vec![1, 2, 3];
        let ppm = Ppm::new(9);
        let mut dec = ppm.decoder(universe, 3);
        let mut prev = 3 * FRAGMENTS;
        for pid in 0..5_000u64 {
            dec.absorb(&ppm.mark_path(pid, &path));
            assert!(dec.missing_fragments() <= prev);
            prev = dec.missing_fragments();
            if dec.is_complete() {
                break;
            }
        }
        assert!(dec.is_complete());
    }
}
