//! IP-traceback baselines used in PINT's path-tracing evaluation (§6.3).
//!
//! The paper compares PINT against two classic probabilistic packet-marking
//! schemes, both improved with Reservoir Sampling as proposed by Sattari
//! \[63\] so that the marking hop is uniform over the path:
//!
//! * [`ppm`] — Probabilistic Packet Marking (Savage et al., SIGCOMM 2000):
//!   fragment sampling. Each 16-bit mark carries an 8-bit fragment of the
//!   marking router's identity plus a 3-bit fragment offset and a 5-bit
//!   distance. Decoding hop `i` requires collecting all 8 fragments.
//! * [`ams`] — Advanced Marking Scheme II (Song & Perrig, INFOCOM 2001):
//!   hash sampling. Each 16-bit mark carries an 11-bit hash of the marking
//!   router under one of `m` hash functions (m = 5 or 6) plus a 5-bit
//!   distance; the victim eliminates router candidates until a single one
//!   matches every observed hash.
//!
//! Both schemes need on the order of `k·F·ln(k·F)` (PPM) or `k·m·ln(k·m)`
//! (AMS) packets for a `k`-hop path — 1–2 orders of magnitude above PINT's
//! `k log log* k` (Fig. 10).
//!
//! Fidelity note: the distance field is modeled as an unbounded counter
//! rather than a saturating 5-bit value; the paper evaluates paths up to 59
//! hops, which also exceeds 5 bits, so it makes the same idealization.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ams;
pub mod ppm;

pub use ams::{Ams, AmsDecoder};
pub use ppm::{Ppm, PpmDecoder};

/// A 16-bit-budget probabilistic mark carried by one packet.
///
/// `distance` is 0 when the marking router wrote the field and is
/// incremented by every subsequent hop, so the sink learns the marker's
/// hop index as `k − distance`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Mark {
    /// Scheme-specific payload (8-bit fragment + 3-bit offset for PPM,
    /// 11-bit hash value for AMS).
    pub payload: u16,
    /// Hops traversed since the mark was written.
    pub distance: u8,
    /// `true` once any router has written the field.
    pub written: bool,
}
