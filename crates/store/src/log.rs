//! The append-only log file: [`StoreWriter`] / [`StoreReader`] over
//! the `pint-wire` store codecs, with per-record CRC framing,
//! torn-tail recovery, and bounded-size compaction.
//!
//! File layout (see [`pint_wire::store`] for the payload codecs):
//!
//! ```text
//! [ 8B magic "PINTSTOR" ]
//! [ 4B len ][ 4B crc ][ superblock payload ]
//! [ 4B len ][ 4B crc ][ record payload ]    ⟵ repeated
//! ```
//!
//! Records append with one buffered `write_all`; a crash can only tear
//! the *last* record, and the CRC detects any tear (or bit rot) on the
//! next open, which truncates back to the last intact boundary.

use crate::error::{StoreError, TailStatus, TornReason};
use pint_wire::store::{crc32, StoreKind, StoreRecord, Superblock, STORE_MAGIC};
use pint_wire::{WireDecode, WireEncode, MAX_PAYLOAD};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Per-record frame header: u32 length + u32 CRC.
const RECORD_HEADER: usize = 8;

/// Tuning of a [`StoreWriter`].
#[derive(Debug, Clone, Copy, Default)]
pub struct StoreOptions {
    /// Compact when the file grows past this many bytes — the log's
    /// analog of the flow table's byte-cap eviction: oldest state goes
    /// first, but only state a newer checkpoint already covers, so
    /// compaction never loses information (a log with no checkpoint is
    /// never compacted, whatever its size).
    pub max_bytes: Option<u64>,
    /// `fsync` after every append. Off by default: the journal is a
    /// crash-*consistency* mechanism (the CRC scan recovers a prefix),
    /// not a zero-loss one, and per-record fsync would gate ingest on
    /// disk latency.
    pub fsync: bool,
}

/// What one append did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppendInfo {
    /// Bytes this record occupied (header + payload).
    pub bytes: u64,
    /// Whether the append pushed the file over budget and a compaction
    /// rewrote it.
    pub compacted: bool,
}

/// Scan metadata for one intact record.
#[derive(Debug, Clone, Copy)]
struct Span {
    /// Offset of the record's 8-byte header.
    offset: u64,
    /// Payload length.
    len: u32,
}

/// Shared scan: parse `bytes` as a store file. Returns the superblock,
/// decoded records with their spans, the valid length, and the tail
/// verdict. The only hard errors are a missing magic, a damaged or
/// undecodable superblock, and a future version; record damage is a
/// `TailStatus`, not an error.
#[allow(clippy::type_complexity)]
fn scan(
    bytes: &[u8],
) -> Result<(Superblock, Vec<(StoreRecord, Span)>, u64, TailStatus), StoreError> {
    if bytes.len() < STORE_MAGIC.len() || bytes[..STORE_MAGIC.len()] != STORE_MAGIC {
        return Err(StoreError::NotAStore);
    }
    let sb_off = STORE_MAGIC.len();
    let (sb_payload, sb_end) = match frame_at(bytes, sb_off as u64) {
        Ok(Some((payload, end))) => (payload, end),
        Ok(None) | Err(_) => return Err(StoreError::CorruptSuperblock),
    };
    let superblock = Superblock::decode(sb_payload)?;

    let mut records = Vec::new();
    let mut off = sb_end;
    let tail = loop {
        match frame_at(bytes, off) {
            Ok(None) => break TailStatus::Clean,
            Ok(Some((payload, end))) => match StoreRecord::decode(payload) {
                Ok(rec) => {
                    records.push((
                        rec,
                        Span {
                            offset: off,
                            len: payload.len() as u32,
                        },
                    ));
                    off = end;
                }
                Err(_) => {
                    break TailStatus::Torn {
                        offset: off,
                        reason: TornReason::Undecodable,
                    }
                }
            },
            Err(reason) => {
                break TailStatus::Torn {
                    offset: off,
                    reason,
                }
            }
        }
    };
    Ok((superblock, records, off, tail))
}

/// Reads one `[len][crc][payload]` frame at `off`. `Ok(None)` at exact
/// end of input; `Err` classifies a tear.
fn frame_at(bytes: &[u8], off: u64) -> Result<Option<(&[u8], u64)>, TornReason> {
    let off = off as usize;
    let remaining = bytes.len() - off;
    if remaining == 0 {
        return Ok(None);
    }
    if remaining < RECORD_HEADER {
        return Err(TornReason::TruncatedHeader);
    }
    let len = u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4 bytes")) as usize;
    if len > MAX_PAYLOAD {
        return Err(TornReason::LengthOverflow);
    }
    if remaining - RECORD_HEADER < len {
        return Err(TornReason::TruncatedPayload);
    }
    let crc = u32::from_le_bytes(bytes[off + 4..off + 8].try_into().expect("4 bytes"));
    let payload = &bytes[off + RECORD_HEADER..off + RECORD_HEADER + len];
    if crc32(payload) != crc {
        return Err(TornReason::CrcMismatch);
    }
    Ok(Some((payload, (off + RECORD_HEADER + len) as u64)))
}

/// A fully-scanned store file: the superblock, every intact record,
/// and the tail verdict.
///
/// The reader is eager — store files are bounded by compaction, and
/// restore wants every record anyway — and works equally from a file
/// ([`open`](Self::open)) or raw bytes ([`from_bytes`](Self::from_bytes),
/// the fuzzing entry point: a store file is untrusted input like any
/// frame off a socket, and parsing never panics).
pub struct StoreReader {
    superblock: Superblock,
    records: Vec<StoreRecord>,
    /// `(header offset, payload length)` per record, parallel to
    /// `records`.
    spans: Vec<(u64, u32)>,
    valid_len: u64,
    tail: TailStatus,
}

impl StoreReader {
    /// Reads and scans a store file.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let bytes = std::fs::read(path)?;
        Self::from_bytes(&bytes)
    }

    /// Scans an in-memory store image.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, StoreError> {
        let (superblock, records, valid_len, tail) = scan(bytes)?;
        let spans = records.iter().map(|(_, s)| (s.offset, s.len)).collect();
        Ok(Self {
            superblock,
            records: records.into_iter().map(|(r, _)| r).collect(),
            spans,
            valid_len,
            tail,
        })
    }

    /// The file's superblock.
    pub fn superblock(&self) -> &Superblock {
        &self.superblock
    }

    /// Every intact record, in append order.
    pub fn records(&self) -> &[StoreRecord] {
        &self.records
    }

    /// `(header offset, payload length)` of record `i` in the file.
    pub fn record_span(&self, i: usize) -> (u64, u32) {
        self.spans[i]
    }

    /// Bytes of intact data (magic + superblock + whole records).
    pub fn valid_len(&self) -> u64 {
        self.valid_len
    }

    /// Whether the file ended cleanly or mid-record.
    pub fn tail(&self) -> TailStatus {
        self.tail
    }

    /// `true` when compaction has dropped leading deltas — replay from
    /// the origin is no longer possible and a restore must seed from
    /// the newest checkpoint.
    pub fn is_compacted(&self) -> bool {
        self.superblock.compactions > 0
    }

    /// The highest epoch stamped on any intact record — the newest
    /// consistent epoch a restore can reach.
    pub fn newest_epoch(&self) -> Option<u64> {
        self.records.iter().map(StoreRecord::epoch).max()
    }

    /// Index of the newest checkpoint record, if any (ties broken by
    /// position: the latest-written wins).
    pub fn newest_checkpoint(&self) -> Option<usize> {
        self.records
            .iter()
            .rposition(|r| matches!(r, StoreRecord::Checkpoint(_)))
    }
}

/// Compaction index entry for one record.
#[derive(Debug, Clone, Copy)]
struct IndexEntry {
    /// Offset of the record's 8-byte frame header.
    offset: u64,
    /// Checkpoint vs delta.
    is_checkpoint: bool,
    /// Checkpoint source / delta batch source.
    source: u64,
    /// Delta batch seq (0 for checkpoints) — compaction checks it
    /// against the newest checkpoint's coverage before dropping.
    seq: u64,
}

/// Appends records to a store file; recovers torn tails on open and
/// compacts when over budget.
pub struct StoreWriter {
    file: File,
    path: PathBuf,
    superblock: Superblock,
    opts: StoreOptions,
    /// Current valid length == append position.
    len: u64,
    /// Offset right past the superblock frame (reset target).
    data_start: u64,
    /// Compaction index, parallel to the file's records.
    index: Vec<IndexEntry>,
    /// Cumulative per-source delta seq high-water marks: the highest
    /// delta seq ever journaled (or claimed covered by a checkpoint)
    /// per source, surviving compaction — what a re-attaching producer
    /// numbers its fresh deltas above.
    floors: BTreeMap<u64, u64>,
    /// Epoch of the newest checkpoint record in the file (0 if none):
    /// the journal writer seeds its delta epoch stamp from this.
    newest_checkpoint_epoch: u64,
    /// Scratch encode buffer, reused across appends.
    buf: Vec<u8>,
}

impl StoreWriter {
    /// Creates a new store file (truncating any existing one) headed
    /// by `superblock`.
    pub fn create(
        path: impl AsRef<Path>,
        superblock: Superblock,
        opts: StoreOptions,
    ) -> Result<Self, StoreError> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(&STORE_MAGIC);
        frame_into_buf(&superblock, &mut buf);
        file.write_all(&buf)?;
        let len = buf.len() as u64;
        Ok(Self {
            file,
            path,
            superblock,
            opts,
            len,
            data_start: len,
            index: Vec::new(),
            floors: BTreeMap::new(),
            newest_checkpoint_epoch: 0,
            buf,
        })
    }

    /// Opens an existing store file for appending: scans it, truncates
    /// any torn tail back to the last intact record boundary, and
    /// rebuilds the compaction index and per-source floors (from both
    /// the surviving deltas and any checkpoint coverage, so floors are
    /// cumulative across compactions). Returns the tail verdict the
    /// scan found, already healed.
    pub fn open(
        path: impl AsRef<Path>,
        opts: StoreOptions,
    ) -> Result<(Self, TailStatus), StoreError> {
        let path = path.as_ref().to_path_buf();
        let bytes = std::fs::read(&path)?;
        let (superblock, records, valid_len, tail) = scan(&bytes)?;
        let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
        if valid_len < bytes.len() as u64 {
            file.set_len(valid_len)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::Start(valid_len))?;
        let data_start = {
            // Magic + the superblock frame.
            let sb_len = frame_at(&bytes, STORE_MAGIC.len() as u64)
                .ok()
                .flatten()
                .map(|(_, end)| end)
                .ok_or(StoreError::CorruptSuperblock)?;
            sb_len
        };
        let mut index = Vec::with_capacity(records.len());
        let mut floors: BTreeMap<u64, u64> = BTreeMap::new();
        let mut newest_checkpoint_epoch = 0u64;
        for (rec, span) in &records {
            match rec {
                StoreRecord::Delta { batch, .. } => {
                    let f = floors.entry(batch.source).or_insert(0);
                    *f = (*f).max(batch.seq);
                    index.push(IndexEntry {
                        offset: span.offset,
                        is_checkpoint: false,
                        source: batch.source,
                        seq: batch.seq,
                    });
                }
                StoreRecord::Checkpoint(c) => {
                    for cov in &c.covered {
                        let f = floors.entry(cov.source).or_insert(0);
                        *f = (*f).max(cov.max_seq());
                    }
                    newest_checkpoint_epoch = c.epoch;
                    index.push(IndexEntry {
                        offset: span.offset,
                        is_checkpoint: true,
                        source: c.source,
                        seq: 0,
                    });
                }
            }
        }
        Ok((
            Self {
                file,
                path,
                superblock,
                opts,
                len: valid_len,
                data_start,
                index,
                floors,
                newest_checkpoint_epoch,
                buf: Vec::new(),
            },
            tail,
        ))
    }

    /// The file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The superblock (its `compactions` count reflects rewrites done
    /// by this writer).
    pub fn superblock(&self) -> &Superblock {
        &self.superblock
    }

    /// Current file length (== next record's offset).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// `true` when the file holds no records yet.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Offset of the first record (right past the superblock).
    pub fn data_start(&self) -> u64 {
        self.data_start
    }

    /// The cumulative per-source delta seq high-water marks: the
    /// highest seq ever journaled (or claimed covered by a checkpoint)
    /// per source. A producer re-attaching after a restart numbers its
    /// fresh deltas above these. *Not* checkpoint coverage — a
    /// checkpoint's `covered` list is captured by its taker at snapshot
    /// time, never derived from the file.
    pub fn delta_floors(&self) -> &BTreeMap<u64, u64> {
        &self.floors
    }

    /// Epoch of the newest checkpoint record in the file (0 if none).
    pub fn newest_checkpoint_epoch(&self) -> u64 {
        self.newest_checkpoint_epoch
    }

    /// Appends one record (buffered single `write_all`, so a crash can
    /// only tear this record, never an earlier one), then compacts if
    /// the budget allows and demands it.
    pub fn append(&mut self, record: &StoreRecord) -> Result<AppendInfo, StoreError> {
        let offset = self.len;
        self.buf.clear();
        record.encode_into(&mut self.buf);
        if self.buf.len() > MAX_PAYLOAD {
            return Err(StoreError::RecordTooLarge {
                len: self.buf.len(),
                max: MAX_PAYLOAD,
            });
        }
        let mut framed = Vec::with_capacity(RECORD_HEADER + self.buf.len());
        framed.extend_from_slice(&(self.buf.len() as u32).to_le_bytes());
        framed.extend_from_slice(&crc32(&self.buf).to_le_bytes());
        framed.extend_from_slice(&self.buf);
        self.file.write_all(&framed)?;
        if self.opts.fsync {
            self.file.sync_data()?;
        }
        self.len += framed.len() as u64;
        match record {
            StoreRecord::Delta { batch, .. } => {
                let f = self.floors.entry(batch.source).or_insert(0);
                *f = (*f).max(batch.seq);
                self.index.push(IndexEntry {
                    offset,
                    is_checkpoint: false,
                    source: batch.source,
                    seq: batch.seq,
                });
            }
            StoreRecord::Checkpoint(c) => {
                for cov in &c.covered {
                    let f = self.floors.entry(cov.source).or_insert(0);
                    *f = (*f).max(cov.max_seq());
                }
                self.newest_checkpoint_epoch = c.epoch;
                self.index.push(IndexEntry {
                    offset,
                    is_checkpoint: true,
                    source: c.source,
                    seq: 0,
                });
            }
        }
        let compacted = self.maybe_compact()?;
        Ok(AppendInfo {
            bytes: framed.len() as u64,
            compacted,
        })
    }

    /// Flushes file data to stable storage.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.file.sync_data()?;
        Ok(())
    }

    /// Truncates the log back to an empty record section (superblock
    /// kept). Spill queues use this once fully drained, so a spill
    /// file never grows without bound across overload episodes.
    pub fn reset(&mut self) -> Result<(), StoreError> {
        self.file.set_len(self.data_start)?;
        self.file.seek(SeekFrom::Start(self.data_start))?;
        self.file.sync_data()?;
        self.len = self.data_start;
        self.index.clear();
        // Floors survive: they describe what was ever journaled, and a
        // reset only happens once that data reached its destination.
        Ok(())
    }

    fn maybe_compact(&mut self) -> Result<bool, StoreError> {
        match self.opts.max_bytes {
            Some(max) if self.len > max => self.compact(),
            _ => Ok(false),
        }
    }

    /// Rewrites the log keeping the newest checkpoint per source, every
    /// record written after the globally newest checkpoint, and every
    /// earlier delta the newest checkpoint's coverage does *not* claim
    /// (a delta can land in the file between a snapshot and its
    /// checkpoint record — its data is not in the payload, so dropping
    /// it would lose digests). No checkpoint → nothing is safely
    /// droppable → no-op. Returns whether a rewrite happened.
    pub fn compact(&mut self) -> Result<bool, StoreError> {
        // Newest checkpoint per source, and the globally newest one.
        let global = match self.index.iter().rposition(|e| e.is_checkpoint) {
            Some(i) => i,
            None => return Ok(false),
        };

        // Re-read the file up front: the keep decision needs the newest
        // checkpoint's coverage decoded, and kept records' raw frames
        // are copied verbatim (their CRCs are already computed).
        let bytes = {
            let mut v = Vec::with_capacity(self.len as usize);
            self.file.seek(SeekFrom::Start(0))?;
            self.file.read_to_end(&mut v)?;
            v.truncate(self.len as usize);
            v
        };
        let covered = {
            let off = self.index[global].offset as usize;
            let len = u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4 bytes")) as usize;
            match StoreRecord::decode(&bytes[off + RECORD_HEADER..off + RECORD_HEADER + len]) {
                Ok(StoreRecord::Checkpoint(c)) => c.covered,
                // Unreachable for a file this writer scanned/appended;
                // claim no coverage, which keeps every delta (safe).
                _ => Vec::new(),
            }
        };
        let covers =
            |source: u64, seq: u64| covered.iter().any(|c| c.source == source && c.covers(seq));

        let mut keep = vec![false; self.index.len()];
        let mut seen_sources = std::collections::BTreeSet::new();
        for i in (0..self.index.len()).rev() {
            let e = self.index[i];
            if i > global
                || (e.is_checkpoint && seen_sources.insert(e.source))
                || (!e.is_checkpoint && !covers(e.source, e.seq))
            {
                keep[i] = true;
            }
        }
        keep[global] = true;
        if keep.iter().all(|&k| k) {
            return Ok(false); // nothing to drop
        }
        let mut sb = self.superblock.clone();
        sb.compactions += 1;
        let mut out = Vec::with_capacity(bytes.len() / 2);
        out.extend_from_slice(&STORE_MAGIC);
        frame_into_buf(&sb, &mut out);
        let new_data_start = out.len() as u64;
        let mut new_index = Vec::new();
        for (i, e) in self.index.iter().enumerate() {
            if !keep[i] {
                continue;
            }
            let off = e.offset as usize;
            let len = u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4 bytes")) as usize;
            new_index.push(IndexEntry {
                offset: out.len() as u64,
                ..*e
            });
            out.extend_from_slice(&bytes[off..off + RECORD_HEADER + len]);
        }

        let tmp = self.path.with_extension("compact-tmp");
        {
            let mut f = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&tmp)?;
            f.write_all(&out)?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        // The old fd points at the unlinked inode; reopen the new file
        // positioned at its end.
        let mut file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        file.seek(SeekFrom::End(0))?;
        self.file = file;
        self.superblock = sb;
        self.len = out.len() as u64;
        self.data_start = new_data_start;
        self.index = new_index;
        Ok(true)
    }
}

/// Appends `[len][crc][payload]` for one encodable value.
fn frame_into_buf(value: &impl WireEncode, out: &mut Vec<u8>) {
    let payload = value.encode();
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
}

/// Convenience guard: opens a reader and checks the superblock kind.
pub fn open_kind(path: impl AsRef<Path>, expected: StoreKind) -> Result<StoreReader, StoreError> {
    let reader = StoreReader::open(path)?;
    let found = reader.superblock().kind;
    if found != expected {
        return Err(StoreError::WrongKind { expected, found });
    }
    Ok(reader)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pint_core::{Digest, DigestReport};
    use pint_wire::store::{CheckpointRecord, CoveredSource};
    use pint_wire::DigestBatch;

    fn delta(source: u64, seq: u64, n: usize) -> StoreRecord {
        let reports = (0..n as u64)
            .map(|i| {
                let mut d = Digest::new(1);
                d.set(0, seq.wrapping_mul(1_000) + i);
                DigestReport::new(i, 100 + i, d, 4, seq * 10 + i)
            })
            .collect();
        StoreRecord::Delta {
            epoch: seq,
            batch: DigestBatch {
                source,
                seq,
                reports,
                trace: None,
            },
        }
    }

    fn checkpoint(source: u64, epoch: u64, covered: Vec<CoveredSource>) -> StoreRecord {
        StoreRecord::Checkpoint(CheckpointRecord {
            source,
            epoch,
            covered,
            payload: vec![0xC0; 64],
        })
    }

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("pint-store-log-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn write_read_roundtrip() {
        let path = tmp("roundtrip");
        let sb = Superblock::new(StoreKind::Collector, 7, 1);
        let mut w = StoreWriter::create(&path, sb.clone(), StoreOptions::default()).unwrap();
        let recs = vec![
            delta(0, 1, 3),
            checkpoint(0, 1, vec![CoveredSource::floor_only(0, 1)]),
            delta(0, 2, 2),
        ];
        for r in &recs {
            let info = w.append(r).unwrap();
            assert!(info.bytes > RECORD_HEADER as u64);
            assert!(!info.compacted);
        }
        assert_eq!(w.delta_floors().get(&0), Some(&2));
        drop(w);

        let r = StoreReader::open(&path).unwrap();
        assert_eq!(r.superblock(), &sb);
        assert_eq!(r.records(), &recs[..]);
        assert!(r.tail().is_clean());
        assert!(!r.is_compacted());
        assert_eq!(r.newest_epoch(), Some(2));
        assert_eq!(r.newest_checkpoint(), Some(1));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_detected_and_healed_on_open() {
        let path = tmp("torn");
        let mut w = StoreWriter::create(
            &path,
            Superblock::new(StoreKind::Collector, 1, 0),
            StoreOptions::default(),
        )
        .unwrap();
        w.append(&delta(0, 1, 2)).unwrap();
        let boundary = w.len();
        w.append(&delta(0, 2, 2)).unwrap();
        drop(w);

        // Tear the last record mid-payload, as a crash mid-write would.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();

        let r = StoreReader::open(&path).unwrap();
        assert_eq!(r.records().len(), 1);
        assert_eq!(
            r.tail(),
            TailStatus::Torn {
                offset: boundary,
                reason: TornReason::TruncatedPayload,
            }
        );
        assert_eq!(r.valid_len(), boundary);

        // Reopen for writing: the tear is truncated away and appends
        // land on the healed boundary.
        let (mut w, tail) = StoreWriter::open(&path, StoreOptions::default()).unwrap();
        assert!(!tail.is_clean());
        assert_eq!(w.len(), boundary);
        assert_eq!(w.delta_floors().get(&0), Some(&1), "torn delta not counted");
        w.append(&delta(0, 2, 2)).unwrap();
        drop(w);
        let r = StoreReader::open(&path).unwrap();
        assert_eq!(r.records().len(), 2);
        assert!(r.tail().is_clean());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bit_flips_stop_the_scan_at_the_damaged_record() {
        let path = tmp("flip");
        let mut w = StoreWriter::create(
            &path,
            Superblock::new(StoreKind::Collector, 1, 0),
            StoreOptions::default(),
        )
        .unwrap();
        w.append(&delta(0, 1, 2)).unwrap();
        let damaged_at = w.len();
        w.append(&delta(0, 2, 2)).unwrap();
        w.append(&delta(0, 3, 2)).unwrap();
        drop(w);

        let mut bytes = std::fs::read(&path).unwrap();
        let i = damaged_at as usize + RECORD_HEADER + 1; // inside record 2's payload
        bytes[i] ^= 0xFF;
        let r = StoreReader::from_bytes(&bytes).unwrap();
        // Records after the damage are unreachable (framing is
        // sequential), but the prefix survives.
        assert_eq!(r.records().len(), 1);
        assert_eq!(
            r.tail(),
            TailStatus::Torn {
                offset: damaged_at,
                reason: TornReason::CrcMismatch,
            }
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn not_a_store_and_corrupt_superblock_are_hard_errors() {
        assert!(matches!(
            StoreReader::from_bytes(b"hello"),
            Err(StoreError::NotAStore)
        ));
        assert!(matches!(
            StoreReader::from_bytes(b"PINTSTOR"),
            Err(StoreError::CorruptSuperblock)
        ));
        // A valid file with a flipped superblock byte.
        let path = tmp("sbflip");
        let w = StoreWriter::create(
            &path,
            Superblock::new(StoreKind::Spill, 1, 0),
            StoreOptions::default(),
        )
        .unwrap();
        drop(w);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert!(matches!(
            StoreReader::from_bytes(&bytes),
            Err(StoreError::CorruptSuperblock)
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn wrong_kind_is_rejected() {
        let path = tmp("kind");
        drop(
            StoreWriter::create(
                &path,
                Superblock::new(StoreKind::Spill, 1, 0),
                StoreOptions::default(),
            )
            .unwrap(),
        );
        assert!(matches!(
            open_kind(&path, StoreKind::Collector),
            Err(StoreError::WrongKind { .. })
        ));
        assert!(open_kind(&path, StoreKind::Spill).is_ok());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn compaction_keeps_newest_checkpoint_and_tail_and_bumps_the_count() {
        let path = tmp("compact");
        let opts = StoreOptions {
            max_bytes: Some(700),
            fsync: false,
        };
        let mut w =
            StoreWriter::create(&path, Superblock::new(StoreKind::Collector, 1, 0), opts).unwrap();
        let mut compactions = 0;
        for seq in 1..=20u64 {
            if w.append(&delta(0, seq, 4)).unwrap().compacted {
                compactions += 1;
            }
            if seq % 5 == 0 {
                let covered = vec![CoveredSource::floor_only(0, seq)];
                if w.append(&checkpoint(0, seq, covered)).unwrap().compacted {
                    compactions += 1;
                }
            }
        }
        assert!(compactions > 0, "budget forced at least one rewrite");
        // Floors are cumulative: every delta ever written counts.
        assert_eq!(w.delta_floors().get(&0), Some(&20));
        drop(w);

        let r = StoreReader::open(&path).unwrap();
        assert!(r.is_compacted());
        assert_eq!(r.superblock().compactions, compactions);
        assert!(r.tail().is_clean());
        // The newest checkpoint survived, with the tail after it.
        let ck = r.newest_checkpoint().expect("checkpoint kept");
        match &r.records()[ck] {
            StoreRecord::Checkpoint(c) => assert_eq!(c.epoch, 20),
            _ => unreachable!(),
        }
        let tail_epochs: Vec<u64> = r.records()[ck + 1..]
            .iter()
            .map(StoreRecord::epoch)
            .collect();
        assert!(tail_epochs.is_empty() || tail_epochs.iter().all(|&e| e > 15));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn compaction_keeps_deltas_the_checkpoint_does_not_cover() {
        // A delta can land in the file *before* the checkpoint record
        // yet after the snapshot it persists (the snapshot/append race
        // the explicit covered list exists for). Compaction must keep
        // any delta the checkpoint's coverage does not claim, wherever
        // it sits in the file.
        let path = tmp("uncovered");
        let mut w = StoreWriter::create(
            &path,
            Superblock::new(StoreKind::Collector, 1, 0),
            StoreOptions::default(),
        )
        .unwrap();
        for seq in 1..=5u64 {
            w.append(&delta(0, seq, 2)).unwrap();
        }
        // The checkpoint only covers seqs 1..=3 (and out-of-order 5):
        // delta 4 was applied after the snapshot.
        w.append(&checkpoint(
            0,
            9,
            vec![CoveredSource {
                source: 0,
                floor: 3,
                above: vec![5],
            }],
        ))
        .unwrap();
        w.append(&delta(0, 6, 2)).unwrap();
        assert!(w.compact().unwrap(), "covered deltas were droppable");
        drop(w);

        let r = StoreReader::open(&path).unwrap();
        assert!(r.is_compacted());
        let mut delta_seqs: Vec<u64> = r
            .records()
            .iter()
            .filter_map(|rec| match rec {
                StoreRecord::Delta { batch, .. } => Some(batch.seq),
                _ => None,
            })
            .collect();
        delta_seqs.sort_unstable();
        assert_eq!(
            delta_seqs,
            vec![4, 6],
            "uncovered pre-checkpoint delta survives, covered ones drop"
        );
        // File order is preserved: kept delta 4, checkpoint, delta 6.
        assert_eq!(r.newest_checkpoint(), Some(1));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn a_checkpoint_free_log_is_never_compacted() {
        let path = tmp("nockpt");
        let opts = StoreOptions {
            max_bytes: Some(200),
            fsync: false,
        };
        let mut w =
            StoreWriter::create(&path, Superblock::new(StoreKind::Spill, 1, 0), opts).unwrap();
        for seq in 1..=50u64 {
            assert!(!w.append(&delta(0, seq, 2)).unwrap().compacted);
        }
        drop(w);
        let r = StoreReader::open(&path).unwrap();
        assert_eq!(r.records().len(), 50, "deltas are never silently dropped");
        assert!(!r.is_compacted());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reset_empties_the_record_section() {
        let path = tmp("reset");
        let mut w = StoreWriter::create(
            &path,
            Superblock::new(StoreKind::Spill, 1, 0),
            StoreOptions::default(),
        )
        .unwrap();
        w.append(&delta(3, 1, 2)).unwrap();
        w.append(&delta(3, 2, 2)).unwrap();
        w.reset().unwrap();
        assert!(w.is_empty());
        w.append(&delta(3, 3, 2)).unwrap();
        drop(w);
        let r = StoreReader::open(&path).unwrap();
        assert_eq!(r.records().len(), 1);
        assert_eq!(r.records()[0].epoch(), 3);
        std::fs::remove_file(&path).unwrap();
    }
}
