//! # pint-store — durable snapshot/delta persistence for PINT telemetry
//!
//! A production collector cannot lose its flow table on restart. This
//! crate is the durability tier of the stack: an append-only,
//! epoch-indexed log of checksummed records holding snapshot/delta
//! chains — full checkpoints interleaved with applied
//! [`DigestBatch`](pint_wire::DigestBatch) deltas — with
//! crash-consistent recovery and deterministic replay.
//!
//! ## The pieces
//!
//! * [`StoreWriter`] / [`StoreReader`] — the log file itself: a
//!   versioned superblock (`pint-wire`'s [`Superblock`](pint_wire::store::Superblock) codec) then
//!   `[len][crc32][payload]` record frames. Opening scans with full
//!   hostile-input discipline (a store file is just bytes that
//!   survived a crash): torn tails are detected by CRC and truncated
//!   back to the last intact boundary, damage surfaces as typed
//!   [`StoreError`]s / [`TailStatus`] verdicts, never a panic.
//! * **Compaction** — the log's analog of the flow table's byte-cap
//!   eviction: past [`StoreOptions::max_bytes`] the writer rewrites
//!   the file keeping the newest checkpoint per source plus everything
//!   after the newest checkpoint, and bumps the superblock's
//!   `compactions` count so restore knows the delta chain no longer
//!   reaches the origin. A checkpoint-free log is never compacted —
//!   deltas are never silently dropped.
//! * [`Journal`] — the off-hot-path writer: ingest shards tee applied
//!   batches through a cloneable [`JournalSender`] whose `try_delta`
//!   never blocks (a full queue drops and counts instead), a dedicated
//!   thread owns the `StoreWriter`, and checkpoints ride the same FIFO
//!   carrying the exact coverage their taker captured at snapshot
//!   time (deltas teed after the snapshot stay uncovered and survive
//!   compaction). All drops, bytes, depths, and compactions are
//!   `pint-obs` metrics.
//! * [`Replayer`] — streams a persisted log back through any
//!   `FnMut(source, reports)` sink (a `CollectorHandle`, a bench
//!   harness) at full speed or virtual-clock pace, deduplicating
//!   persisted retransmissions exactly like a live receiver.
//! * [`SpillQueue`] — a small durable FIFO a `DigestForwarder` uses to
//!   persist-and-resume batches it would otherwise shed under
//!   overload.
//!
//! Restore policies live with the state owners (`Collector::restore`,
//! `FleetAggregator::restore` in their crates); this crate supplies
//! the mechanism: scan, verify, hand over records.
//!
//! ```
//! use pint_store::{Journal, JournalConfig, StoreOptions, StoreReader, StoreWriter};
//! use pint_obs::MetricsRegistry;
//! use pint_wire::store::{StoreKind, Superblock};
//! use pint_wire::DigestBatch;
//!
//! let mut path = std::env::temp_dir();
//! path.push(format!("pint-store-doc-{}", std::process::id()));
//! let writer = StoreWriter::create(
//!     &path,
//!     Superblock::new(StoreKind::Collector, 1, 0),
//!     StoreOptions::default(),
//! )?;
//! let registry = MetricsRegistry::new();
//! let journal = Journal::spawn(writer, JournalConfig::default(), &registry);
//! let sender = journal.sender();
//! sender.try_delta(DigestBatch { source: 1, seq: 1, reports: vec![], trace: None });
//! journal.flush();
//! drop(journal);
//!
//! let reader = StoreReader::open(&path)?;
//! assert_eq!(reader.records().len(), 1);
//! assert!(reader.tail().is_clean());
//! # std::fs::remove_file(&path).unwrap();
//! # Ok::<(), pint_store::StoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod journal;
mod log;
mod replay;
mod spill;

pub use error::{StoreError, TailStatus, TornReason};
pub use journal::{Journal, JournalConfig, JournalSender};
pub use log::{open_kind, AppendInfo, StoreOptions, StoreReader, StoreWriter};
pub use replay::{ReplayStats, Replayer};
pub use spill::SpillQueue;
