//! The forwarder's overflow spill: a small on-disk queue of sealed
//! batches that would otherwise be shed.
//!
//! A `DigestForwarder`'s outbound queue is bounded; under overload the
//! in-memory policy sheds the oldest batch. A [`SpillQueue`] gives it
//! a durable middle ground: the displaced batch's *frame* goes to disk
//! and only a tiny index entry (offset, seq, digest count) stays in
//! memory, so spilled depth is bounded by disk, not RAM. When the link
//! recovers, batches pop back off in seq order and re-enter the
//! outbound queue.
//!
//! Popping does not erase the on-disk record (that would mean
//! rewriting the file per pop); instead the whole file is truncated
//! back to its superblock once the queue fully drains. A crash between
//! a pop and the drain can therefore resurrect an already-delivered
//! batch on reopen — the protocol is at-least-once and the receiver's
//! [`SourceDedup`](pint_wire::SourceDedup) window absorbs it as a
//! duplicate, so accounting stays exact.

use crate::error::StoreError;
use crate::log::{StoreOptions, StoreReader, StoreWriter};
use pint_wire::store::{StoreKind, StoreRecord, Superblock};
use pint_wire::DigestBatch;
use std::collections::VecDeque;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

/// One spilled batch's in-memory index entry.
#[derive(Debug, Clone, Copy)]
struct SpillEntry {
    /// Offset of the record's frame header in the file.
    offset: u64,
    /// The batch's sequence number.
    seq: u64,
    /// Reports inside the batch.
    digests: u64,
}

/// A durable FIFO of sealed [`DigestBatch`]es (see the module docs).
pub struct SpillQueue {
    writer: StoreWriter,
    read: File,
    entries: VecDeque<SpillEntry>,
    /// Sum of `digests` over `entries`.
    digests: u64,
    /// Highest seq ever pushed (survives drains within this process;
    /// recovered from the file on reopen). A restarting forwarder
    /// numbers fresh batches above this so spilled and new batches
    /// never collide.
    max_seq: u64,
}

impl SpillQueue {
    /// Opens (or creates) a spill file for forwarder `source`. An
    /// existing file has survived a crash: every intact delta record
    /// in it is queued for resumption, torn tails are truncated away,
    /// and a file of the wrong kind is rejected.
    pub fn open(path: impl AsRef<Path>, source: u64) -> Result<Self, StoreError> {
        let path: PathBuf = path.as_ref().to_path_buf();
        let exists = path.exists();
        let (writer, entries, digests, max_seq) = if exists {
            let reader = StoreReader::open(&path)?;
            let found = reader.superblock().kind;
            if found != StoreKind::Spill {
                return Err(StoreError::WrongKind {
                    expected: StoreKind::Spill,
                    found,
                });
            }
            let (writer, _tail) = StoreWriter::open(&path, StoreOptions::default())?;
            let mut entries = VecDeque::new();
            let mut digests = 0u64;
            let mut max_seq = 0u64;
            for (i, record) in reader.records().iter().enumerate() {
                if let StoreRecord::Delta { batch, .. } = record {
                    let (offset, _len) = reader.record_span(i);
                    let n = batch.reports.len() as u64;
                    entries.push_back(SpillEntry {
                        offset,
                        seq: batch.seq,
                        digests: n,
                    });
                    digests += n;
                    max_seq = max_seq.max(batch.seq);
                }
            }
            (writer, entries, digests, max_seq)
        } else {
            let writer = StoreWriter::create(
                &path,
                Superblock::new(StoreKind::Spill, source, 0),
                StoreOptions::default(),
            )?;
            (writer, VecDeque::new(), 0, 0)
        };
        let read = File::open(&path)?;
        Ok(Self {
            writer,
            read,
            entries,
            digests,
            max_seq,
        })
    }

    /// Appends one sealed batch to the spill.
    pub fn push(&mut self, batch: &DigestBatch) -> Result<(), StoreError> {
        let offset = self.writer.len();
        self.writer.append(&StoreRecord::Delta {
            epoch: batch.seq,
            batch: batch.clone(),
        })?;
        let n = batch.reports.len() as u64;
        self.entries.push_back(SpillEntry {
            offset,
            seq: batch.seq,
            digests: n,
        });
        self.digests += n;
        self.max_seq = self.max_seq.max(batch.seq);
        Ok(())
    }

    /// Pops the oldest spilled batch, re-reading and CRC-checking it
    /// from disk. `Ok(None)` when empty. Draining the last entry
    /// truncates the file back to its superblock.
    pub fn pop(&mut self) -> Result<Option<DigestBatch>, StoreError> {
        let entry = match self.entries.pop_front() {
            Some(e) => e,
            None => return Ok(None),
        };
        self.digests -= entry.digests;
        let batch = self.read_at(entry.offset)?;
        if self.entries.is_empty() {
            self.writer.reset()?;
            self.read = File::open(self.writer.path())?;
        }
        Ok(Some(batch))
    }

    fn read_at(&mut self, offset: u64) -> Result<DigestBatch, StoreError> {
        use pint_wire::store::crc32;
        use pint_wire::WireDecode;
        self.read.seek(SeekFrom::Start(offset))?;
        let mut header = [0u8; 8];
        self.read.read_exact(&mut header)?;
        let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(header[4..].try_into().expect("4 bytes"));
        let mut payload = vec![0u8; len];
        self.read.read_exact(&mut payload)?;
        if crc32(&payload) != crc {
            return Err(StoreError::Wire(pint_wire::WireError::Invalid(
                "spill record checksum mismatch",
            )));
        }
        match StoreRecord::decode(&payload)? {
            StoreRecord::Delta { batch, .. } => Ok(batch),
            StoreRecord::Checkpoint(_) => Err(StoreError::Wire(pint_wire::WireError::Invalid(
                "checkpoint record in a spill queue",
            ))),
        }
    }

    /// Spilled batches waiting to resume.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is spilled.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Digest reports across all spilled batches.
    pub fn digests(&self) -> u64 {
        self.digests
    }

    /// Sequence number of the oldest spilled batch, if any.
    pub fn front_seq(&self) -> Option<u64> {
        self.entries.front().map(|e| e.seq)
    }

    /// Highest batch seq this spill has ever held — a restarting
    /// forwarder resumes numbering above it.
    pub fn max_seq(&self) -> u64 {
        self.max_seq
    }

    /// Current spill file size in bytes.
    pub fn bytes(&self) -> u64 {
        self.writer.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pint_core::{Digest, DigestReport};

    fn batch(seq: u64, n: usize) -> DigestBatch {
        let reports = (0..n as u64)
            .map(|i| {
                let mut d = Digest::new(1);
                d.set(0, seq * 100 + i);
                DigestReport::new(i, 50, d, 4, seq)
            })
            .collect();
        DigestBatch {
            source: 9,
            seq,
            reports,
            trace: None,
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("pint-spill-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn push_pop_fifo_with_exact_accounting() {
        let path = tmp("fifo");
        let _ = std::fs::remove_file(&path);
        let mut q = SpillQueue::open(&path, 9).unwrap();
        for seq in 1..=5u64 {
            q.push(&batch(seq, seq as usize)).unwrap();
        }
        assert_eq!(q.len(), 5);
        assert_eq!(q.digests(), 1 + 2 + 3 + 4 + 5);
        assert_eq!(q.front_seq(), Some(1));
        assert_eq!(q.max_seq(), 5);
        for seq in 1..=5u64 {
            let b = q.pop().unwrap().unwrap();
            assert_eq!(b, batch(seq, seq as usize), "bytes survive the disk trip");
        }
        assert!(q.pop().unwrap().is_none());
        // Fully drained: the file shrank back to its superblock.
        let drained_bytes = q.bytes();
        q.push(&batch(6, 1)).unwrap();
        assert!(q.bytes() > drained_bytes);
        assert_eq!(q.max_seq(), 6);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn crash_recovery_resumes_spilled_batches() {
        let path = tmp("recover");
        let _ = std::fs::remove_file(&path);
        {
            let mut q = SpillQueue::open(&path, 9).unwrap();
            for seq in 3..=6u64 {
                q.push(&batch(seq, 2)).unwrap();
            }
            // Process dies here: q dropped without draining.
        }
        // Tear the tail as a crash mid-push would.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 2]).unwrap();

        let mut q = SpillQueue::open(&path, 9).unwrap();
        assert_eq!(q.len(), 3, "intact records resume; the torn one is gone");
        assert_eq!(q.digests(), 6);
        assert_eq!(q.max_seq(), 5);
        for seq in 3..=5u64 {
            assert_eq!(q.pop().unwrap().unwrap(), batch(seq, 2));
        }
        assert!(q.is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn wrong_kind_file_is_rejected() {
        let path = tmp("wrongkind");
        let _ = std::fs::remove_file(&path);
        drop(
            StoreWriter::create(
                &path,
                Superblock::new(StoreKind::Collector, 1, 0),
                StoreOptions::default(),
            )
            .unwrap(),
        );
        assert!(matches!(
            SpillQueue::open(&path, 9),
            Err(StoreError::WrongKind { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }
}
