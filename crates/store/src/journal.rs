//! The off-hot-path journal: a bounded queue feeding one writer
//! thread that owns the [`StoreWriter`].
//!
//! Ingest shards tee applied batches through a [`JournalSender`] whose
//! [`try_delta`](JournalSender::try_delta) *never blocks*: when the
//! queue is full the delta is dropped and counted
//! (`store_journal_dropped_total`) — durability degrades before ingest
//! does, the same trade every overload path in the stack makes.
//! Checkpoints and flushes ride the same FIFO queue, so a checkpoint
//! always lands *after* every delta it covers (shards tee a batch
//! before answering the snapshot query that feeds the checkpoint), and
//! the writer derives each checkpoint's `covered` floors from the
//! deltas it has already written.
//!
//! Self-telemetry (all in the registry handed to [`Journal::spawn`]):
//!
//! | metric | kind | meaning |
//! |---|---|---|
//! | `store_bytes_appended_total` | counter | record bytes written |
//! | `store_checkpoints_total` | counter | checkpoint records written |
//! | `store_compactions_total` | counter | log rewrites |
//! | `store_journal_depth` | gauge | deltas queued, not yet written |
//! | `store_journal_dropped_total` | counter | deltas lost to a full queue |
//! | `store_journal_errors_total` | counter | records lost to I/O errors |

use crate::log::StoreWriter;
use pint_obs::{Counter, Gauge, MetricsRegistry};
use pint_wire::store::{CheckpointRecord, StoreRecord};
use pint_wire::DigestBatch;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Tuning of a [`Journal`].
#[derive(Debug, Clone, Copy)]
pub struct JournalConfig {
    /// Bounded queue depth between ingest shards and the writer
    /// thread; deltas past it are dropped (counted), never blocked on.
    pub queue_depth: usize,
}

impl Default for JournalConfig {
    fn default() -> Self {
        Self { queue_depth: 4_096 }
    }
}

enum JournalMsg {
    Delta {
        epoch: u64,
        batch: DigestBatch,
    },
    Checkpoint {
        source: u64,
        epoch: u64,
        payload: Vec<u8>,
    },
    Flush(SyncSender<()>),
    Stop,
}

/// The non-blocking hot-path handle shards hold: cheap to clone, and
/// [`try_delta`](Self::try_delta) never waits on the writer thread.
#[derive(Clone)]
pub struct JournalSender {
    tx: SyncSender<JournalMsg>,
    pending: Arc<AtomicU64>,
    epoch: Arc<AtomicU64>,
    depth: Gauge,
    dropped: Counter,
}

impl JournalSender {
    /// Offers one applied batch to the journal, stamped with the
    /// current epoch. Returns `false` (and counts the drop) when the
    /// queue is full or the journal has stopped — the caller keeps
    /// ingesting either way.
    pub fn try_delta(&self, batch: DigestBatch) -> bool {
        let msg = JournalMsg::Delta {
            epoch: self.epoch.load(Ordering::Relaxed),
            batch,
        };
        // Count the delta as pending *before* offering it: the worker
        // only decrements after receiving, so the counter never dips
        // below zero however the two threads interleave.
        self.pending.fetch_add(1, Ordering::Relaxed);
        match self.tx.try_send(msg) {
            Ok(()) => {
                self.depth.set(self.pending.load(Ordering::Relaxed));
                true
            }
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                self.pending.fetch_sub(1, Ordering::Relaxed);
                self.dropped.inc();
                false
            }
        }
    }
}

/// Owns the writer thread; see the module docs.
pub struct Journal {
    tx: SyncSender<JournalMsg>,
    pending: Arc<AtomicU64>,
    epoch: Arc<AtomicU64>,
    depth: Gauge,
    dropped: Counter,
    /// Per-source delta floors the file held when this journal started
    /// (see [`delta_floor`](Self::delta_floor)).
    initial_floors: BTreeMap<u64, u64>,
    thread: Mutex<Option<JoinHandle<StoreWriter>>>,
}

impl Journal {
    /// Starts the writer thread over `writer`, registering the
    /// `store_*` metrics in `registry`.
    pub fn spawn(writer: StoreWriter, config: JournalConfig, registry: &MetricsRegistry) -> Self {
        let (tx, rx) = sync_channel(config.queue_depth.max(1));
        let initial_floors = writer.delta_floors().clone();
        let pending = Arc::new(AtomicU64::new(0));
        let epoch = Arc::new(AtomicU64::new(0));
        let depth = registry.gauge("store_journal_depth");
        let dropped = registry.counter("store_journal_dropped_total");
        let worker = Worker {
            writer,
            rx,
            pending: Arc::clone(&pending),
            depth: depth.clone(),
            bytes: registry.counter("store_bytes_appended_total"),
            checkpoints: registry.counter("store_checkpoints_total"),
            compactions: registry.counter("store_compactions_total"),
            errors: registry.counter("store_journal_errors_total"),
        };
        let thread = std::thread::Builder::new()
            .name("pint-store-journal".into())
            .spawn(move || worker.run())
            .expect("spawn journal writer thread");
        Self {
            tx,
            pending,
            epoch,
            depth,
            dropped,
            initial_floors,
            thread: Mutex::new(Some(thread)),
        }
    }

    /// The highest delta seq the underlying file already held for
    /// `source` when this journal started (0 for a fresh file). A
    /// producer re-attaching after a restart numbers its fresh deltas
    /// *above* this, so replay's per-source dedup window never mistakes
    /// a new generation's batches for retransmissions of the old one.
    pub fn delta_floor(&self, source: u64) -> u64 {
        self.initial_floors.get(&source).copied().unwrap_or(0)
    }

    /// A hot-path sender for one ingest shard (or any producer).
    pub fn sender(&self) -> JournalSender {
        JournalSender {
            tx: self.tx.clone(),
            pending: Arc::clone(&self.pending),
            epoch: Arc::clone(&self.epoch),
            depth: self.depth.clone(),
            dropped: self.dropped.clone(),
        }
    }

    /// The epoch new deltas are stamped with.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Enqueues a full-state checkpoint and advances the delta epoch
    /// stamp to `epoch`. Blocking (checkpoints are rare and must not
    /// be shed); returns `false` only if the journal already stopped.
    /// The writer computes the checkpoint's `covered` floors from the
    /// deltas it has written — FIFO order makes that exactly the set
    /// the snapshot subsumes.
    pub fn checkpoint(&self, source: u64, epoch: u64, payload: Vec<u8>) -> bool {
        let sent = self
            .tx
            .send(JournalMsg::Checkpoint {
                source,
                epoch,
                payload,
            })
            .is_ok();
        if sent {
            self.epoch.store(epoch, Ordering::Relaxed);
        }
        sent
    }

    /// Drains everything enqueued so far and syncs the file. Blocks
    /// until the writer confirms.
    pub fn flush(&self) {
        let (ack_tx, ack_rx) = sync_channel(1);
        if self.tx.send(JournalMsg::Flush(ack_tx)).is_ok() {
            let _ = ack_rx.recv();
        }
    }

    /// Stops the writer thread (after draining the queue) and returns
    /// the [`StoreWriter`], synced.
    pub fn shutdown(self) -> Option<StoreWriter> {
        self.stop_and_join()
    }

    fn stop_and_join(&self) -> Option<StoreWriter> {
        let handle = self.thread.lock().expect("journal thread slot").take()?;
        let _ = self.tx.send(JournalMsg::Stop);
        handle.join().ok()
    }
}

impl Drop for Journal {
    fn drop(&mut self) {
        let _ = self.stop_and_join();
    }
}

struct Worker {
    writer: StoreWriter,
    rx: Receiver<JournalMsg>,
    pending: Arc<AtomicU64>,
    depth: Gauge,
    bytes: Counter,
    checkpoints: Counter,
    compactions: Counter,
    errors: Counter,
}

impl Worker {
    fn run(mut self) -> StoreWriter {
        while let Ok(msg) = self.rx.recv() {
            match msg {
                JournalMsg::Delta { epoch, batch } => {
                    let d = self
                        .pending
                        .fetch_sub(1, Ordering::Relaxed)
                        .saturating_sub(1);
                    self.depth.set(d);
                    self.append(&StoreRecord::Delta { epoch, batch });
                }
                JournalMsg::Checkpoint {
                    source,
                    epoch,
                    payload,
                } => {
                    let covered = self
                        .writer
                        .delta_floors()
                        .iter()
                        .map(|(&s, &q)| (s, q))
                        .collect();
                    let rec = StoreRecord::Checkpoint(CheckpointRecord {
                        source,
                        epoch,
                        covered,
                        payload,
                    });
                    if self.append(&rec) {
                        self.checkpoints.inc();
                    }
                }
                JournalMsg::Flush(ack) => {
                    if self.writer.sync().is_err() {
                        self.errors.inc();
                    }
                    let _ = ack.send(());
                }
                JournalMsg::Stop => break,
            }
        }
        let _ = self.writer.sync();
        self.writer
    }

    fn append(&mut self, record: &StoreRecord) -> bool {
        match self.writer.append(record) {
            Ok(info) => {
                self.bytes.add(info.bytes);
                if info.compacted {
                    self.compactions.inc();
                }
                true
            }
            Err(_) => {
                // An unwritable journal must not take ingest down:
                // count the loss and keep consuming the queue.
                self.errors.inc();
                false
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::{StoreOptions, StoreReader};
    use pint_core::{Digest, DigestReport};
    use pint_wire::store::{StoreKind, Superblock};

    fn batch(source: u64, seq: u64) -> DigestBatch {
        let mut d = Digest::new(1);
        d.set(0, seq);
        DigestBatch {
            source,
            seq,
            reports: vec![DigestReport::new(seq, 100, d, 4, seq)],
            trace: None,
        }
    }

    #[test]
    fn journal_writes_deltas_checkpoints_and_covered_floors() {
        let mut path = std::env::temp_dir();
        path.push(format!("pint-journal-{}", std::process::id()));
        let writer = StoreWriter::create(
            &path,
            Superblock::new(StoreKind::Collector, 1, 0),
            StoreOptions::default(),
        )
        .unwrap();
        let registry = MetricsRegistry::new();
        let journal = Journal::spawn(writer, JournalConfig::default(), &registry);
        let sender = journal.sender();
        for seq in 1..=5u64 {
            assert!(sender.try_delta(batch(2, seq)));
        }
        assert!(journal.checkpoint(0, 1, vec![0xAA; 16]));
        // Deltas after the checkpoint carry the advanced epoch stamp.
        assert!(sender.try_delta(batch(2, 6)));
        journal.flush();
        let snap = registry.snapshot();
        let get = |name: &str| {
            snap.counters
                .iter()
                .find(|c| c.name == name)
                .map(|c| c.value)
                .unwrap_or(0)
        };
        assert_eq!(get("store_checkpoints_total"), 1);
        assert!(get("store_bytes_appended_total") > 0);
        assert_eq!(get("store_journal_dropped_total"), 0);
        journal.shutdown().unwrap();

        let r = StoreReader::open(&path).unwrap();
        assert_eq!(r.records().len(), 7);
        let ck = r.newest_checkpoint().unwrap();
        match &r.records()[ck] {
            StoreRecord::Checkpoint(c) => {
                assert_eq!(c.covered, vec![(2, 5)], "floors from written deltas");
                assert_eq!(c.epoch, 1);
            }
            _ => unreachable!(),
        }
        match &r.records()[6] {
            StoreRecord::Delta { epoch, batch } => {
                assert_eq!(*epoch, 1, "post-checkpoint delta stamped with new epoch");
                assert_eq!(batch.seq, 6);
            }
            _ => unreachable!(),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn full_queue_drops_and_counts_instead_of_blocking() {
        let mut path = std::env::temp_dir();
        path.push(format!("pint-journal-full-{}", std::process::id()));
        let writer = StoreWriter::create(
            &path,
            Superblock::new(StoreKind::Collector, 1, 0),
            StoreOptions::default(),
        )
        .unwrap();
        let registry = MetricsRegistry::new();
        let journal = Journal::spawn(writer, JournalConfig { queue_depth: 2 }, &registry);
        let sender = journal.sender();
        // Flood far past the queue depth; some must drop, none block.
        let mut accepted = 0u64;
        for seq in 1..=10_000u64 {
            if sender.try_delta(batch(1, seq)) {
                accepted += 1;
            }
        }
        journal.flush();
        let snap = registry.snapshot();
        let dropped = snap
            .counters
            .iter()
            .find(|c| c.name == "store_journal_dropped_total")
            .map(|c| c.value)
            .unwrap_or(0);
        assert_eq!(accepted + dropped, 10_000);
        journal.shutdown().unwrap();
        let r = StoreReader::open(&path).unwrap();
        assert_eq!(r.records().len() as u64, accepted);
        std::fs::remove_file(&path).unwrap();
    }
}
