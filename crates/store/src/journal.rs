//! The off-hot-path journal: a bounded queue feeding one writer
//! thread that owns the [`StoreWriter`].
//!
//! Ingest shards tee applied batches through a [`JournalSender`] whose
//! [`try_delta`](JournalSender::try_delta) *never blocks*: when the
//! queue is full the delta is dropped and counted
//! (`store_journal_dropped_total`) — durability degrades before ingest
//! does, the same trade every overload path in the stack makes.
//! Checkpoints and flushes ride the same FIFO queue, so a checkpoint
//! always lands *after* every delta it covers (shards tee a batch
//! before answering the snapshot query that feeds the checkpoint).
//! Each checkpoint carries an **explicit** `covered` list captured by
//! its taker at snapshot time — never derived from the file, because
//! deltas teed after the snapshot can be written before the checkpoint
//! record dequeues, and those are not in the payload. The writer
//! thread stamps every delta with the epoch of the last checkpoint it
//! wrote, so epoch stamps are monotone with file order by
//! construction.
//!
//! Self-telemetry (all in the registry handed to [`Journal::spawn`]):
//!
//! | metric | kind | meaning |
//! |---|---|---|
//! | `store_bytes_appended_total` | counter | record bytes written |
//! | `store_checkpoints_total` | counter | checkpoint records written |
//! | `store_compactions_total` | counter | log rewrites |
//! | `store_journal_depth` | gauge | deltas queued, not yet written |
//! | `store_journal_dropped_total` | counter | deltas lost to a full queue |
//! | `store_journal_errors_total` | counter | records lost to I/O errors |

use crate::log::StoreWriter;
use pint_obs::{Counter, Gauge, MetricsRegistry};
use pint_wire::store::{CheckpointRecord, CoveredSource, StoreRecord};
use pint_wire::DigestBatch;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Tuning of a [`Journal`].
#[derive(Debug, Clone, Copy)]
pub struct JournalConfig {
    /// Bounded queue depth between ingest shards and the writer
    /// thread; deltas past it are dropped (counted), never blocked on.
    pub queue_depth: usize,
}

impl Default for JournalConfig {
    fn default() -> Self {
        Self { queue_depth: 4_096 }
    }
}

enum JournalMsg {
    Delta {
        batch: DigestBatch,
    },
    Checkpoint {
        source: u64,
        epoch: u64,
        payload: Vec<u8>,
        covered: Vec<CoveredSource>,
    },
    Flush(SyncSender<()>),
    Stop,
}

/// The non-blocking hot-path handle shards hold: cheap to clone, and
/// [`try_delta`](Self::try_delta) never waits on the writer thread.
#[derive(Clone)]
pub struct JournalSender {
    tx: SyncSender<JournalMsg>,
    pending: Arc<AtomicU64>,
    depth: Gauge,
    dropped: Counter,
}

impl JournalSender {
    /// Offers one applied batch to the journal; the writer thread
    /// stamps it with the epoch of the last checkpoint it wrote, so
    /// stamps are monotone with file order. Returns `false` (and
    /// counts the drop) when the queue is full or the journal has
    /// stopped — the caller keeps ingesting either way.
    pub fn try_delta(&self, batch: DigestBatch) -> bool {
        let msg = JournalMsg::Delta { batch };
        // Count the delta as pending *before* offering it: the worker
        // only decrements after receiving, so the counter never dips
        // below zero however the two threads interleave.
        self.pending.fetch_add(1, Ordering::Relaxed);
        match self.tx.try_send(msg) {
            Ok(()) => {
                self.depth.set(self.pending.load(Ordering::Relaxed));
                true
            }
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                self.pending.fetch_sub(1, Ordering::Relaxed);
                self.dropped.inc();
                false
            }
        }
    }
}

/// Owns the writer thread; see the module docs.
pub struct Journal {
    tx: SyncSender<JournalMsg>,
    pending: Arc<AtomicU64>,
    epoch: Arc<AtomicU64>,
    depth: Gauge,
    dropped: Counter,
    /// Per-source delta floors the file held when this journal started
    /// (see [`delta_floor`](Self::delta_floor)).
    initial_floors: BTreeMap<u64, u64>,
    thread: Mutex<Option<JoinHandle<StoreWriter>>>,
}

impl Journal {
    /// Starts the writer thread over `writer`, registering the
    /// `store_*` metrics in `registry`.
    pub fn spawn(writer: StoreWriter, config: JournalConfig, registry: &MetricsRegistry) -> Self {
        let (tx, rx) = sync_channel(config.queue_depth.max(1));
        let initial_floors = writer.delta_floors().clone();
        let pending = Arc::new(AtomicU64::new(0));
        let epoch = Arc::new(AtomicU64::new(writer.newest_checkpoint_epoch()));
        let depth = registry.gauge("store_journal_depth");
        let dropped = registry.counter("store_journal_dropped_total");
        let worker = Worker {
            epoch: writer.newest_checkpoint_epoch(),
            writer,
            rx,
            pending: Arc::clone(&pending),
            depth: depth.clone(),
            bytes: registry.counter("store_bytes_appended_total"),
            checkpoints: registry.counter("store_checkpoints_total"),
            compactions: registry.counter("store_compactions_total"),
            errors: registry.counter("store_journal_errors_total"),
        };
        let thread = std::thread::Builder::new()
            .name("pint-store-journal".into())
            .spawn(move || worker.run())
            .expect("spawn journal writer thread");
        Self {
            tx,
            pending,
            epoch,
            depth,
            dropped,
            initial_floors,
            thread: Mutex::new(Some(thread)),
        }
    }

    /// The highest delta seq the underlying file already held for
    /// `source` when this journal started (0 for a fresh file). A
    /// producer re-attaching after a restart numbers its fresh deltas
    /// *above* this, so replay's per-source dedup window never mistakes
    /// a new generation's batches for retransmissions of the old one.
    pub fn delta_floor(&self, source: u64) -> u64 {
        self.initial_floors.get(&source).copied().unwrap_or(0)
    }

    /// A hot-path sender for one ingest shard (or any producer).
    pub fn sender(&self) -> JournalSender {
        JournalSender {
            tx: self.tx.clone(),
            pending: Arc::clone(&self.pending),
            depth: self.depth.clone(),
            dropped: self.dropped.clone(),
        }
    }

    /// The epoch of the newest checkpoint enqueued (deltas behind it in
    /// the queue will be stamped with it once the writer passes it).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Enqueues a full-state checkpoint carrying `covered`, the exact
    /// per-source delta coverage the snapshot payload subsumes — the
    /// caller captures it at snapshot time (shards report their teed
    /// seq in the snapshot reply), so deltas applied after the snapshot
    /// but written before this record are *not* claimed and survive
    /// compaction. Blocking (checkpoints are rare and must not be
    /// shed); returns `false` only if the journal already stopped.
    pub fn checkpoint(
        &self,
        source: u64,
        epoch: u64,
        payload: Vec<u8>,
        covered: Vec<CoveredSource>,
    ) -> bool {
        self.epoch.store(epoch, Ordering::Relaxed);
        self.tx
            .send(JournalMsg::Checkpoint {
                source,
                epoch,
                payload,
                covered,
            })
            .is_ok()
    }

    /// Drains everything enqueued so far and syncs the file. Blocks
    /// until the writer confirms.
    pub fn flush(&self) {
        let (ack_tx, ack_rx) = sync_channel(1);
        if self.tx.send(JournalMsg::Flush(ack_tx)).is_ok() {
            let _ = ack_rx.recv();
        }
    }

    /// Stops the writer thread (after draining the queue) and returns
    /// the [`StoreWriter`], synced.
    pub fn shutdown(self) -> Option<StoreWriter> {
        self.stop_and_join()
    }

    fn stop_and_join(&self) -> Option<StoreWriter> {
        let handle = self.thread.lock().expect("journal thread slot").take()?;
        let _ = self.tx.send(JournalMsg::Stop);
        handle.join().ok()
    }
}

impl Drop for Journal {
    fn drop(&mut self) {
        let _ = self.stop_and_join();
    }
}

struct Worker {
    writer: StoreWriter,
    rx: Receiver<JournalMsg>,
    /// Epoch of the last checkpoint this thread wrote — the stamp for
    /// every delta, making stamps monotone with file order.
    epoch: u64,
    pending: Arc<AtomicU64>,
    depth: Gauge,
    bytes: Counter,
    checkpoints: Counter,
    compactions: Counter,
    errors: Counter,
}

impl Worker {
    fn run(mut self) -> StoreWriter {
        while let Ok(msg) = self.rx.recv() {
            match msg {
                JournalMsg::Delta { batch } => {
                    let d = self
                        .pending
                        .fetch_sub(1, Ordering::Relaxed)
                        .saturating_sub(1);
                    self.depth.set(d);
                    let epoch = self.epoch;
                    self.append(&StoreRecord::Delta { epoch, batch });
                }
                JournalMsg::Checkpoint {
                    source,
                    epoch,
                    payload,
                    covered,
                } => {
                    let rec = StoreRecord::Checkpoint(CheckpointRecord {
                        source,
                        epoch,
                        covered,
                        payload,
                    });
                    if self.append(&rec) {
                        self.checkpoints.inc();
                    }
                    // Deltas behind this point in the queue were teed
                    // under the new epoch (or later); stamp them with
                    // it even if the append itself failed, so stamps
                    // stay monotone.
                    self.epoch = epoch;
                }
                JournalMsg::Flush(ack) => {
                    if self.writer.sync().is_err() {
                        self.errors.inc();
                    }
                    let _ = ack.send(());
                }
                JournalMsg::Stop => break,
            }
        }
        let _ = self.writer.sync();
        self.writer
    }

    fn append(&mut self, record: &StoreRecord) -> bool {
        match self.writer.append(record) {
            Ok(info) => {
                self.bytes.add(info.bytes);
                if info.compacted {
                    self.compactions.inc();
                }
                true
            }
            Err(_) => {
                // An unwritable journal must not take ingest down:
                // count the loss and keep consuming the queue.
                self.errors.inc();
                false
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::{StoreOptions, StoreReader};
    use pint_core::{Digest, DigestReport};
    use pint_wire::store::{StoreKind, Superblock};

    fn batch(source: u64, seq: u64) -> DigestBatch {
        let mut d = Digest::new(1);
        d.set(0, seq);
        DigestBatch {
            source,
            seq,
            reports: vec![DigestReport::new(seq, 100, d, 4, seq)],
            trace: None,
        }
    }

    #[test]
    fn journal_writes_deltas_checkpoints_and_covered_floors() {
        let mut path = std::env::temp_dir();
        path.push(format!("pint-journal-{}", std::process::id()));
        let writer = StoreWriter::create(
            &path,
            Superblock::new(StoreKind::Collector, 1, 0),
            StoreOptions::default(),
        )
        .unwrap();
        let registry = MetricsRegistry::new();
        let journal = Journal::spawn(writer, JournalConfig::default(), &registry);
        let sender = journal.sender();
        for seq in 1..=5u64 {
            assert!(sender.try_delta(batch(2, seq)));
        }
        // The covered list is the caller's, captured at snapshot time:
        // claim only seqs 1..=4 even though 5 deltas are queued — the
        // writer must persist it verbatim, never re-derive it from the
        // deltas it happens to have written when the record dequeues.
        let covered = vec![CoveredSource::floor_only(2, 4)];
        assert!(journal.checkpoint(0, 1, vec![0xAA; 16], covered.clone()));
        assert_eq!(journal.epoch(), 1);
        // Deltas after the checkpoint carry the advanced epoch stamp.
        assert!(sender.try_delta(batch(2, 6)));
        journal.flush();
        let snap = registry.snapshot();
        let get = |name: &str| {
            snap.counters
                .iter()
                .find(|c| c.name == name)
                .map(|c| c.value)
                .unwrap_or(0)
        };
        assert_eq!(get("store_checkpoints_total"), 1);
        assert!(get("store_bytes_appended_total") > 0);
        assert_eq!(get("store_journal_dropped_total"), 0);
        journal.shutdown().unwrap();

        let r = StoreReader::open(&path).unwrap();
        assert_eq!(r.records().len(), 7);
        let ck = r.newest_checkpoint().unwrap();
        match &r.records()[ck] {
            StoreRecord::Checkpoint(c) => {
                assert_eq!(c.covered, covered, "caller's covered list, verbatim");
                assert_eq!(c.epoch, 1);
            }
            _ => unreachable!(),
        }
        match &r.records()[6] {
            StoreRecord::Delta { epoch, batch } => {
                assert_eq!(*epoch, 1, "post-checkpoint delta stamped with new epoch");
                assert_eq!(batch.seq, 6);
            }
            _ => unreachable!(),
        }
        // Writer-side stamping: epochs are monotone with file order.
        let epochs: Vec<u64> = r.records().iter().map(StoreRecord::epoch).collect();
        assert!(epochs.windows(2).all(|w| w[0] <= w[1]), "{epochs:?}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn full_queue_drops_and_counts_instead_of_blocking() {
        let mut path = std::env::temp_dir();
        path.push(format!("pint-journal-full-{}", std::process::id()));
        let writer = StoreWriter::create(
            &path,
            Superblock::new(StoreKind::Collector, 1, 0),
            StoreOptions::default(),
        )
        .unwrap();
        let registry = MetricsRegistry::new();
        let journal = Journal::spawn(writer, JournalConfig { queue_depth: 2 }, &registry);
        let sender = journal.sender();
        // Flood far past the queue depth; some must drop, none block.
        let mut accepted = 0u64;
        for seq in 1..=10_000u64 {
            if sender.try_delta(batch(1, seq)) {
                accepted += 1;
            }
        }
        journal.flush();
        let snap = registry.snapshot();
        let dropped = snap
            .counters
            .iter()
            .find(|c| c.name == "store_journal_dropped_total")
            .map(|c| c.value)
            .unwrap_or(0);
        assert_eq!(accepted + dropped, 10_000);
        journal.shutdown().unwrap();
        let r = StoreReader::open(&path).unwrap();
        assert_eq!(r.records().len() as u64, accepted);
        std::fs::remove_file(&path).unwrap();
    }
}
