//! Deterministic replay of a persisted log through any batch sink.
//!
//! A [`Replayer`] streams a [`StoreReader`]'s delta chain back in
//! append order — into a `CollectorHandle`-backed sink for offline
//! analysis against a real collector, into a bench harness for
//! regression-testing ingest on recorded traffic, or into anything
//! else shaped `FnMut(source, Vec<DigestReport>)`. Replay runs the
//! same [`SourceDedup`] window the live receivers run, so a log
//! holding retransmitted duplicates replays each batch exactly once.
//!
//! [`replay`](Replayer::replay) goes at full speed;
//! [`replay_paced`](Replayer::replay_paced) additionally drives a
//! [`VirtualClock`] to each batch's newest report timestamp before
//! delivery, so time-dependent consumers (TTL eviction, freshness
//! watermarks) observe the recorded timeline instead of wall time.

use crate::log::StoreReader;
use pint_core::DigestReport;
use pint_obs::{Counter, MetricsRegistry, VirtualClock};
use pint_wire::store::{CoveredSource, StoreRecord};
use pint_wire::SourceDedup;
use std::collections::BTreeMap;

/// What one replay delivered.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Delta batches delivered to the sink.
    pub batches: u64,
    /// Digest reports inside them.
    pub digests: u64,
    /// Persisted duplicates (retransmissions that were journaled
    /// twice) suppressed by the dedup window.
    pub duplicates: u64,
    /// Checkpoint records skipped (replay streams deltas; checkpoints
    /// are for [`restore`](crate) paths).
    pub checkpoints: u64,
}

/// Streams a persisted log back through a sink (see the module docs).
pub struct Replayer<'a> {
    reader: &'a StoreReader,
    replayed: Option<Counter>,
    /// Exact per-source coverage to prime the dedup windows with.
    covered: Vec<CoveredSource>,
}

impl<'a> Replayer<'a> {
    /// A replayer over an opened log.
    pub fn new(reader: &'a StoreReader) -> Self {
        Self {
            reader,
            replayed: None,
            covered: Vec::new(),
        }
    }

    /// Counts delivered batches into `store_restore_replayed_total` in
    /// `registry`.
    pub fn observed(mut self, registry: &MetricsRegistry) -> Self {
        self.replayed = Some(registry.counter("store_restore_replayed_total"));
        self
    }

    /// Primes each source's dedup window to exactly `covered` — deltas
    /// the coverage claims replay as duplicates, everything else
    /// (including seqs in gaps the coverage never saw) still streams.
    /// A restore that seeds state from a checkpoint passes the
    /// checkpoint's `covered` list here, so only what the checkpoint
    /// does not subsume reaches the sink.
    pub fn primed(mut self, covered: &[CoveredSource]) -> Self {
        self.covered = covered.to_vec();
        self
    }

    /// Replays every delta at full speed.
    pub fn replay(&self, sink: &mut dyn FnMut(u64, Vec<DigestReport>)) -> ReplayStats {
        self.run(None, sink)
    }

    /// Replays every delta, setting `clock` to each batch's newest
    /// report timestamp before delivering it — virtual-clock pace:
    /// simulated time advances exactly as recorded, however fast the
    /// wall clock runs.
    pub fn replay_paced(
        &self,
        clock: &VirtualClock,
        sink: &mut dyn FnMut(u64, Vec<DigestReport>),
    ) -> ReplayStats {
        self.run(Some(clock), sink)
    }

    fn run(
        &self,
        clock: Option<&VirtualClock>,
        sink: &mut dyn FnMut(u64, Vec<DigestReport>),
    ) -> ReplayStats {
        let mut stats = ReplayStats::default();
        let mut dedup: BTreeMap<u64, SourceDedup> = BTreeMap::new();
        for cov in &self.covered {
            cov.prime(dedup.entry(cov.source).or_default());
        }
        for record in self.reader.records() {
            match record {
                StoreRecord::Checkpoint(_) => stats.checkpoints += 1,
                StoreRecord::Delta { batch, .. } => {
                    if !dedup.entry(batch.source).or_default().observe(batch.seq) {
                        stats.duplicates += 1;
                        continue;
                    }
                    if let Some(clock) = clock {
                        if let Some(ts) = batch.reports.iter().map(|r| r.ts).max() {
                            clock.set(ts);
                        }
                    }
                    stats.batches += 1;
                    stats.digests += batch.reports.len() as u64;
                    if let Some(c) = &self.replayed {
                        c.inc();
                    }
                    sink(batch.source, batch.reports.clone());
                }
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::{StoreOptions, StoreWriter};
    use pint_core::Digest;
    use pint_obs::{Clock, MetricsRegistry};
    use pint_wire::store::{StoreKind, Superblock};
    use pint_wire::DigestBatch;

    fn batch(source: u64, seq: u64, ts: u64) -> DigestBatch {
        let mut d = Digest::new(1);
        d.set(0, seq);
        DigestBatch {
            source,
            seq,
            reports: vec![DigestReport::new(seq, 100, d, 4, ts)],
            trace: None,
        }
    }

    #[test]
    fn replay_dedups_persisted_retransmissions_and_paces_the_clock() {
        let mut path = std::env::temp_dir();
        path.push(format!("pint-replay-{}", std::process::id()));
        let mut w = StoreWriter::create(
            &path,
            Superblock::new(StoreKind::Collector, 1, 0),
            StoreOptions::default(),
        )
        .unwrap();
        for (seq, ts) in [(1u64, 10u64), (2, 20), (2, 20), (3, 30)] {
            w.append(&StoreRecord::Delta {
                epoch: 0,
                batch: batch(5, seq, ts),
            })
            .unwrap();
        }
        drop(w);

        let reader = StoreReader::open(&path).unwrap();
        let registry = MetricsRegistry::new();
        let clock = VirtualClock::new();
        let view = clock.clone();
        let mut seen = Vec::new();
        let stats = Replayer::new(&reader).observed(&registry).replay_paced(
            &clock,
            &mut |source, reports| {
                seen.push((source, reports.len(), view.now_ns()));
            },
        );
        assert_eq!(stats.batches, 3);
        assert_eq!(stats.duplicates, 1);
        assert_eq!(stats.digests, 3);
        assert_eq!(seen, vec![(5, 1, 10), (5, 1, 20), (5, 1, 30)]);
        let replayed = registry
            .snapshot()
            .counters
            .iter()
            .find(|c| c.name == "store_restore_replayed_total")
            .map(|c| c.value);
        assert_eq!(replayed, Some(3));
        std::fs::remove_file(&path).unwrap();
    }
}
