//! Typed errors and tail verdicts of the store layer.

use pint_wire::WireError;
use std::fmt;

/// Why a store file (or one of its operations) was rejected.
///
/// The split mirrors `pint-wire`'s posture: every failure mode of a
/// hostile or crash-damaged file maps to a typed variant — opening a
/// store never panics, whatever the bytes.
#[derive(Debug)]
pub enum StoreError {
    /// The underlying file operation failed.
    Io(std::io::Error),
    /// The file does not start with the `PINTSTOR` magic (or is too
    /// short to hold it) — not a store file at all.
    NotAStore,
    /// The superblock frame is damaged: its checksum does not match or
    /// its header is truncated. Unlike a torn *record* tail (expected
    /// crash residue, reported via [`TailStatus`]), a damaged
    /// superblock leaves nothing trustworthy to recover.
    CorruptSuperblock,
    /// The superblock payload failed to decode — including
    /// [`WireError::UnsupportedVersion`] for files written by a newer
    /// store format, which are rejected whole.
    Wire(WireError),
    /// The file is a valid store of the wrong kind (e.g. a forwarder
    /// spill opened as a collector journal).
    WrongKind {
        /// The kind the caller required.
        expected: pint_wire::StoreKind,
        /// The kind the superblock declares.
        found: pint_wire::StoreKind,
    },
    /// A record was too large to frame (its encoding exceeds the
    /// 64 MiB payload bound shared with the socket wire format).
    RecordTooLarge {
        /// The encoded record size.
        len: usize,
        /// The bound it exceeded.
        max: usize,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store io error: {e}"),
            StoreError::NotAStore => write!(f, "not a PINT store file (bad magic)"),
            StoreError::CorruptSuperblock => write!(f, "store superblock is corrupt"),
            StoreError::Wire(e) => write!(f, "store codec error: {e}"),
            StoreError::WrongKind { expected, found } => {
                write!(
                    f,
                    "store kind mismatch: expected {expected:?}, found {found:?}"
                )
            }
            StoreError::RecordTooLarge { len, max } => {
                write!(
                    f,
                    "store record of {len} bytes exceeds the {max}-byte bound"
                )
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<WireError> for StoreError {
    fn from(e: WireError) -> Self {
        StoreError::Wire(e)
    }
}

/// What the record scan found at the end of a store file.
///
/// A torn tail is *expected* crash residue — the writer died mid
/// `write(2)` — so it is a verdict, not an error: the scan keeps every
/// record before the tear and [`StoreWriter::open`] physically
/// truncates the tear away so appends resume from a consistent end.
///
/// [`StoreWriter::open`]: crate::StoreWriter::open
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailStatus {
    /// The file ends exactly at a record boundary.
    Clean,
    /// The scan stopped before the physical end of file.
    Torn {
        /// Byte offset of the first damaged record's header — the
        /// length the file is truncated to on writer open.
        offset: u64,
        /// What stopped the scan.
        reason: TornReason,
    },
}

impl TailStatus {
    /// `true` when the file ends at a record boundary.
    pub fn is_clean(&self) -> bool {
        matches!(self, TailStatus::Clean)
    }
}

/// Why a record scan stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TornReason {
    /// Fewer than 8 bytes remain — a header torn mid-write.
    TruncatedHeader,
    /// The header promises more payload bytes than the file holds.
    TruncatedPayload,
    /// The payload bytes do not match the header's CRC-32.
    CrcMismatch,
    /// The declared length exceeds the 64 MiB record bound — either a
    /// header torn across its length field or foreign bytes.
    LengthOverflow,
    /// The CRC held but the payload is not a decodable record — bytes
    /// from a different (sub)version or overwritten region.
    Undecodable,
}
