//! Deterministic fault injection for frame transports.
//!
//! [`FaultInjector`] wraps the *sending* side of a frame stream and
//! misbehaves on purpose: it drops, duplicates, reorders, corrupts,
//! truncates, and stalls frames, driven by a seeded generator so a
//! failing soak run replays exactly. Receivers are expected to survive
//! all of it — corrupt or truncated frames desynchronize the stream and
//! force a reconnect, stalls look like slow-loris peers, drops and
//! duplicates exercise the at-least-once retransmission and dedup
//! machinery ([`DigestBatch`](crate::DigestBatch) /
//! [`BatchAck`](crate::BatchAck)).

use pint_core::hash::mix64;
use std::io::Write;
use std::time::Duration;

/// Fault rates, each expressed as "one in N transmitted frames"
/// (`0` disables that fault). Rates are rolled independently per frame
/// from the seeded stream, so one frame can suffer several faults.
#[derive(Debug, Clone, Copy)]
pub struct FaultConfig {
    /// Seed for the deterministic fault stream.
    pub seed: u64,
    /// Drop the frame entirely (never written).
    pub drop_1_in: u32,
    /// Write the frame twice back to back.
    pub duplicate_1_in: u32,
    /// Hold the frame back and emit it after the next one.
    pub reorder_1_in: u32,
    /// Flip one byte somewhere in the frame (header or payload).
    pub corrupt_1_in: u32,
    /// Write only a prefix of the frame, desynchronizing the stream.
    pub truncate_1_in: u32,
    /// Pause mid-frame for [`stall`](Self::stall) — a slow-loris write.
    pub stall_1_in: u32,
    /// How long a stalled write pauses between the frame's two halves.
    pub stall: Duration,
}

impl Default for FaultConfig {
    /// No faults; seed 0; 5 ms stalls when enabled.
    fn default() -> Self {
        Self {
            seed: 0,
            drop_1_in: 0,
            duplicate_1_in: 0,
            reorder_1_in: 0,
            corrupt_1_in: 0,
            truncate_1_in: 0,
            stall_1_in: 0,
            stall: Duration::from_millis(5),
        }
    }
}

impl FaultConfig {
    /// A hostile-but-survivable mix used by the soak tests: every fault
    /// enabled at moderate rates.
    pub fn hostile(seed: u64) -> Self {
        Self {
            seed,
            drop_1_in: 11,
            duplicate_1_in: 13,
            reorder_1_in: 17,
            corrupt_1_in: 19,
            truncate_1_in: 23,
            stall_1_in: 29,
            stall: Duration::from_millis(5),
        }
    }
}

/// Counters of the faults actually injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Frames offered to [`FaultInjector::transmit`].
    pub frames: u64,
    /// Frames dropped (never written).
    pub dropped: u64,
    /// Frames written twice.
    pub duplicated: u64,
    /// Frames held back and emitted after a successor.
    pub reordered: u64,
    /// Frames with one byte flipped.
    pub corrupted: u64,
    /// Frames cut short mid-write.
    pub truncated: u64,
    /// Frames written with a mid-frame pause.
    pub stalled: u64,
}

/// A deterministic, seeded misbehaving transport wrapper (see the
/// module docs). Apply it at the sender: route every outgoing frame
/// through [`transmit`](Self::transmit) instead of writing directly.
pub struct FaultInjector {
    config: FaultConfig,
    state: u64,
    /// A frame held back by the reorder fault, emitted after the next.
    held: Option<Vec<u8>>,
    stats: FaultStats,
}

impl FaultInjector {
    /// An injector with the given fault mix.
    pub fn new(config: FaultConfig) -> Self {
        Self {
            config,
            state: config.seed,
            held: None,
            stats: FaultStats::default(),
        }
    }

    /// Counters of the faults injected so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// The next value of the seeded stream (splitmix64-style).
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix64(self.state)
    }

    /// Rolls one fault's "1 in N" dice (`0` never fires).
    fn roll(&mut self, one_in: u32) -> bool {
        one_in != 0 && self.next().is_multiple_of(u64::from(one_in))
    }

    /// Writes `frame` through the fault mix. An `Ok(())` means the
    /// transport accepted whatever the injector chose to send — which
    /// may be nothing (drop), a mangled copy (corrupt/truncate), or
    /// more than one frame (duplicate, a released reorder hold).
    /// Transport errors pass through untouched.
    pub fn transmit(&mut self, frame: &[u8], w: &mut impl Write) -> std::io::Result<()> {
        self.stats.frames += 1;
        if self.roll(self.config.drop_1_in) {
            self.stats.dropped += 1;
            return self.release_held(w);
        }
        if self.roll(self.config.reorder_1_in) && self.held.is_none() {
            self.stats.reordered += 1;
            self.held = Some(frame.to_vec());
            return Ok(());
        }
        self.write_mangled(frame, w)?;
        if self.roll(self.config.duplicate_1_in) {
            self.stats.duplicated += 1;
            w.write_all(frame)?;
        }
        self.release_held(w)
    }

    /// Emits a reorder-held frame, if any (also called by transports on
    /// teardown so a held frame is not silently lost across reconnects).
    pub fn release_held(&mut self, w: &mut impl Write) -> std::io::Result<()> {
        if let Some(held) = self.held.take() {
            w.write_all(&held)?;
        }
        Ok(())
    }

    /// Writes one frame, possibly corrupted, truncated, or stalled.
    fn write_mangled(&mut self, frame: &[u8], w: &mut impl Write) -> std::io::Result<()> {
        let mut owned;
        let mut bytes: &[u8] = frame;
        if self.roll(self.config.corrupt_1_in) && !frame.is_empty() {
            self.stats.corrupted += 1;
            owned = frame.to_vec();
            let idx = (self.next() as usize) % owned.len();
            let flip = (self.next() as u8) | 1; // never a zero flip
            owned[idx] ^= flip;
            bytes = &owned;
        }
        if self.roll(self.config.truncate_1_in) && bytes.len() > 1 {
            self.stats.truncated += 1;
            let keep = 1 + (self.next() as usize) % (bytes.len() - 1);
            return w.write_all(&bytes[..keep]);
        }
        if self.roll(self.config.stall_1_in) && bytes.len() > 1 {
            self.stats.stalled += 1;
            let split = bytes.len() / 2;
            w.write_all(&bytes[..split])?;
            w.flush()?;
            std::thread::sleep(self.config.stall);
            return w.write_all(&bytes[split..]);
        }
        w.write_all(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct VarintPayload(u64);
    impl crate::WireEncode for VarintPayload {
        fn encode_into(&self, out: &mut Vec<u8>) {
            crate::WireWriter::new(out).put_varint(self.0);
        }
    }

    fn frame(tag: u8) -> Vec<u8> {
        let mut out = Vec::new();
        crate::frame_into(
            crate::FrameType::Hello,
            &VarintPayload(u64::from(tag)),
            &mut out,
        );
        out
    }

    #[test]
    fn same_seed_same_faults() {
        let run = |seed: u64| {
            let mut inj = FaultInjector::new(FaultConfig::hostile(seed));
            let mut out = Vec::new();
            for i in 0..200u8 {
                inj.transmit(&frame(i), &mut out).unwrap();
            }
            inj.release_held(&mut out).unwrap();
            (out, inj.stats())
        };
        let (a_bytes, a_stats) = run(42);
        let (b_bytes, b_stats) = run(42);
        assert_eq!(a_bytes, b_bytes, "byte-identical replay");
        assert_eq!(a_stats, b_stats);
        let (c_bytes, _) = run(43);
        assert_ne!(a_bytes, c_bytes, "a different seed faults differently");
    }

    #[test]
    fn no_faults_is_a_transparent_pipe() {
        let mut inj = FaultInjector::new(FaultConfig::default());
        let mut out = Vec::new();
        let mut expect = Vec::new();
        for i in 0..50u8 {
            let f = frame(i);
            inj.transmit(&f, &mut out).unwrap();
            expect.extend_from_slice(&f);
        }
        assert_eq!(out, expect);
        assert_eq!(inj.stats().frames, 50);
        assert_eq!(inj.stats().dropped + inj.stats().corrupted, 0);
    }

    #[test]
    fn hostile_mix_actually_injects_every_fault() {
        let mut inj = FaultInjector::new(FaultConfig {
            stall: Duration::from_micros(10),
            ..FaultConfig::hostile(7)
        });
        let mut out = Vec::new();
        for i in 0..=255u8 {
            for _ in 0..4 {
                inj.transmit(&frame(i), &mut out).unwrap();
            }
        }
        let s = inj.stats();
        assert!(s.dropped > 0, "{s:?}");
        assert!(s.duplicated > 0, "{s:?}");
        assert!(s.reordered > 0, "{s:?}");
        assert!(s.corrupted > 0, "{s:?}");
        assert!(s.truncated > 0, "{s:?}");
        assert!(s.stalled > 0, "{s:?}");
    }
}
