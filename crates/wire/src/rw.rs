//! The byte-level writer/reader primitives: explicit little-endian
//! fixed-width integers and LEB128 varints over a borrowed buffer.

use crate::error::WireError;

/// Appends wire primitives to a caller-owned `Vec<u8>`.
///
/// The writer borrows the output buffer so encoders compose without
/// intermediate allocations: a snapshot encoder reuses one `Vec` across
/// thousands of flows and millions of sketch items.
pub struct WireWriter<'a> {
    out: &'a mut Vec<u8>,
}

impl<'a> WireWriter<'a> {
    /// Wraps an output buffer (existing contents are kept).
    pub fn new(out: &'a mut Vec<u8>) -> Self {
        Self { out }
    }

    /// Appends one raw byte.
    #[inline]
    pub fn put_u8(&mut self, v: u8) {
        self.out.push(v);
    }

    /// Appends a fixed-width `u32`, little-endian.
    #[inline]
    pub fn put_u32(&mut self, v: u32) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a fixed-width `u64`, little-endian.
    #[inline]
    pub fn put_u64(&mut self, v: u64) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern, little-endian.
    #[inline]
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a LEB128 varint (1–10 bytes; small values are 1 byte).
    #[inline]
    pub fn put_varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                self.out.push(byte);
                return;
            }
            self.out.push(byte | 0x80);
        }
    }

    /// Appends raw bytes verbatim.
    #[inline]
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.out.extend_from_slice(bytes);
    }
}

/// A bounds-checked cursor over untrusted input bytes.
///
/// Every accessor returns a typed [`WireError`] instead of panicking;
/// element counts can be validated against the remaining input *before*
/// any allocation via [`check_count`](Self::check_count).
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Wraps an input buffer, cursor at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Errors unless the cursor consumed the buffer exactly.
    pub fn expect_end(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::TrailingBytes {
                remaining: self.remaining(),
            })
        }
    }

    #[inline]
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                needed: n,
                have: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one raw byte.
    #[inline]
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a fixed-width little-endian `u32`.
    #[inline]
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a fixed-width little-endian `u64`.
    #[inline]
    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads an `f64` IEEE-754 bit pattern.
    #[inline]
    pub fn get_f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a LEB128 varint; rejects encodings past 10 bytes or
    /// overflowing `u64`.
    #[inline]
    pub fn get_varint(&mut self) -> Result<u64, WireError> {
        let mut v = 0u64;
        for i in 0..10 {
            let byte = self.get_u8()?;
            let part = u64::from(byte & 0x7F);
            // Byte 9 may only contribute the single remaining bit.
            if i == 9 && part > 1 {
                return Err(WireError::VarintOverflow);
            }
            v |= part << (7 * i);
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(WireError::VarintOverflow)
    }

    /// Reads raw bytes verbatim.
    #[inline]
    pub fn get_bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        self.take(n)
    }

    /// Validates a declared element count against the remaining input
    /// (each element occupies at least `min_bytes_each` bytes) and
    /// converts it to `usize`. Call this before reserving any memory for
    /// the elements: a hostile length prefix must not drive allocation.
    #[inline]
    pub fn check_count(&self, count: u64, min_bytes_each: usize) -> Result<usize, WireError> {
        let max = self.remaining() as u64 / min_bytes_each.max(1) as u64;
        if count > max {
            return Err(WireError::CountTooLarge { count, max });
        }
        Ok(count as usize)
    }

    /// Reads a varint count and validates it via
    /// [`check_count`](Self::check_count).
    #[inline]
    pub fn get_count(&mut self, min_bytes_each: usize) -> Result<usize, WireError> {
        let count = self.get_varint()?;
        self.check_count(count, min_bytes_each)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips_edge_values() {
        for v in [
            0u64,
            1,
            127,
            128,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            WireWriter::new(&mut buf).put_varint(v);
            assert!(buf.len() <= 10);
            let mut r = WireReader::new(&buf);
            assert_eq!(r.get_varint().unwrap(), v);
            r.expect_end().unwrap();
        }
    }

    #[test]
    fn varint_rejects_overlong_and_overflow() {
        // 10 continuation bytes: too long.
        let mut r = WireReader::new(&[0x80; 11]);
        assert_eq!(r.get_varint(), Err(WireError::VarintOverflow));
        // 10th byte contributes more than the one remaining bit.
        let overflow = [0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x02];
        let mut r = WireReader::new(&overflow);
        assert_eq!(r.get_varint(), Err(WireError::VarintOverflow));
    }

    #[test]
    fn truncation_is_typed() {
        let mut r = WireReader::new(&[1, 2, 3]);
        assert_eq!(
            r.get_u64(),
            Err(WireError::Truncated { needed: 8, have: 3 })
        );
        let mut r = WireReader::new(&[0x80]);
        assert_eq!(
            r.get_varint(),
            Err(WireError::Truncated { needed: 1, have: 0 })
        );
    }

    #[test]
    fn fixed_width_is_little_endian() {
        let mut buf = Vec::new();
        let mut w = WireWriter::new(&mut buf);
        w.put_u32(0x0403_0201);
        w.put_u64(0x0807_0605_0403_0201);
        w.put_f64(1.5);
        assert_eq!(&buf[..4], &[1, 2, 3, 4]);
        assert_eq!(&buf[4..12], &[1, 2, 3, 4, 5, 6, 7, 8]);
        let mut r = WireReader::new(&buf);
        assert_eq!(r.get_u32().unwrap(), 0x0403_0201);
        assert_eq!(r.get_u64().unwrap(), 0x0807_0605_0403_0201);
        assert_eq!(r.get_f64().unwrap(), 1.5);
    }

    #[test]
    fn count_guard_rejects_hostile_lengths() {
        // Claims u64::MAX elements with 2 bytes of backing input.
        let r = WireReader::new(&[0, 0]);
        assert!(matches!(
            r.check_count(u64::MAX, 8),
            Err(WireError::CountTooLarge { .. })
        ));
        assert_eq!(r.check_count(0, 8).unwrap(), 0);
    }
}
