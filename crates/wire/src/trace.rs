//! The `TraceDump` frame (type 9): remote flight-recorder exposition.
//!
//! A client sends a [`TraceRequest`]; the server answers on the same
//! connection with a [`TraceReport`] carrying a full
//! [`TraceDump`] drained (non-destructively) from its
//! [`FlightRecorder`](pint_obs::FlightRecorder). Both directions share
//! the frame type and are distinguished by a leading kind byte,
//! mirroring the [`metrics`](crate::metrics) module. Like every codec
//! in this crate, decoding never panics on hostile bytes.

use crate::error::WireError;
use crate::rw::{WireReader, WireWriter};
use crate::{WireDecode, WireEncode};
use pint_obs::{TraceDump, TraceEvent, TraceStage};

/// Upper bound on events in one dump. Recorders are bounded rings (a
/// few thousand slots), so this is generous headroom while keeping a
/// hostile count from driving allocation.
pub const MAX_TRACE_EVENTS: usize = 65_536;

const KIND_REQUEST: u8 = 0;
const KIND_REPORT: u8 = 1;

/// Ask a server for its current flight-recorder dump.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRequest {
    /// Client-chosen id echoed in the [`TraceReport`].
    pub request_id: u64,
}

/// A server's flight-recorder dump, answering one [`TraceRequest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceReport {
    /// Echoed request id.
    pub request_id: u64,
    /// Server-chosen source identifier (collector id, 0 if unset).
    pub source: u64,
    /// The dump itself (empty when the server has no recorder).
    pub dump: TraceDump,
}

/// Either side of the `TraceDump` conversation, for decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceMsg {
    /// A client asking for a trace dump.
    Request(TraceRequest),
    /// A server answering.
    Report(TraceReport),
}

impl WireEncode for TraceRequest {
    fn encode_into(&self, out: &mut Vec<u8>) {
        let mut w = WireWriter::new(out);
        w.put_u8(KIND_REQUEST);
        w.put_varint(self.request_id);
    }
}

impl WireEncode for TraceReport {
    fn encode_into(&self, out: &mut Vec<u8>) {
        let mut w = WireWriter::new(out);
        w.put_u8(KIND_REPORT);
        w.put_varint(self.request_id);
        w.put_varint(self.source);
        self.dump.encode_into(out);
    }
}

impl WireDecode for TraceMsg {
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            KIND_REQUEST => Ok(TraceMsg::Request(TraceRequest {
                request_id: r.get_varint()?,
            })),
            KIND_REPORT => {
                let request_id = r.get_varint()?;
                let source = r.get_varint()?;
                let dump = TraceDump::decode_from(r)?;
                Ok(TraceMsg::Report(TraceReport {
                    request_id,
                    source,
                    dump,
                }))
            }
            _ => Err(WireError::Invalid("unknown trace message kind")),
        }
    }
}

// Smallest possible event: five 1-byte varints/bytes (tick, stage,
// source, seq, shard).
const MIN_EVENT_BYTES: usize = 5;

impl WireEncode for TraceDump {
    fn encode_into(&self, out: &mut Vec<u8>) {
        let mut w = WireWriter::new(out);
        w.put_varint(self.events.len() as u64);
        for e in &self.events {
            w.put_varint(e.tick_ns);
            w.put_u8(e.stage as u8);
            w.put_varint(e.source);
            w.put_varint(e.seq);
            w.put_varint(u64::from(e.shard));
        }
        w.put_varint(self.dropped);
    }
}

impl WireDecode for TraceDump {
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let count = r.get_count(MIN_EVENT_BYTES)?;
        if count > MAX_TRACE_EVENTS {
            return Err(WireError::Invalid("too many events in one trace dump"));
        }
        let mut events = Vec::with_capacity(count);
        for _ in 0..count {
            let tick_ns = r.get_varint()?;
            let stage = TraceStage::from_u8(r.get_u8()?)
                .ok_or(WireError::Invalid("unknown trace stage"))?;
            let source = r.get_varint()?;
            let seq = r.get_varint()?;
            let shard = u32::try_from(r.get_varint()?)
                .map_err(|_| WireError::Invalid("trace shard exceeds u32"))?;
            events.push(TraceEvent {
                tick_ns,
                stage,
                source,
                seq,
                shard,
            });
        }
        let dropped = r.get_varint()?;
        Ok(TraceDump { events, dropped })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pint_obs::FlightRecorder;

    fn sample_dump() -> TraceDump {
        let rec = FlightRecorder::new(2, 16);
        rec.record(0, TraceStage::ForwarderSealed, 5, 1);
        rec.record(0, TraceStage::ServerApplied, 5, 1);
        rec.record(1, TraceStage::CollectorBatch, 3, 2);
        rec.record(1, TraceStage::ServerDuplicate, 5, 1);
        rec.snapshot()
    }

    #[test]
    fn request_and_report_roundtrip() {
        let req = TraceRequest { request_id: 42 };
        assert_eq!(
            TraceMsg::decode(&req.encode()).unwrap(),
            TraceMsg::Request(req)
        );

        let report = TraceReport {
            request_id: 42,
            source: 7,
            dump: sample_dump(),
        };
        let decoded = TraceMsg::decode(&report.encode()).unwrap();
        assert_eq!(decoded, TraceMsg::Report(report));
    }

    #[test]
    fn empty_dump_roundtrips() {
        let dump = TraceDump::default();
        assert_eq!(TraceDump::decode(&dump.encode()).unwrap(), dump);
    }

    #[test]
    fn dropped_count_survives_the_wire() {
        let rec = FlightRecorder::new(1, 2);
        for i in 0..10 {
            rec.record(0, TraceStage::SinkDelivered, 1, i);
        }
        let dump = rec.snapshot();
        assert_eq!(dump.dropped, 8);
        assert_eq!(TraceDump::decode(&dump.encode()).unwrap().dropped, 8);
    }

    #[test]
    fn hostile_bytes_never_panic() {
        let good = TraceReport {
            request_id: 1,
            source: 2,
            dump: sample_dump(),
        }
        .encode();
        for n in 0..good.len() {
            let _ = TraceMsg::decode(&good[..n]);
        }
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x5A;
            let _ = TraceMsg::decode(&bad);
        }
    }

    #[test]
    fn hostile_event_count_is_bounded() {
        let mut bytes = Vec::new();
        let mut w = WireWriter::new(&mut bytes);
        w.put_u8(super::KIND_REPORT);
        w.put_varint(1); // request id
        w.put_varint(2); // source
        w.put_varint(u64::MAX); // event count with no backing bytes
        assert!(matches!(
            TraceMsg::decode(&bytes),
            Err(WireError::CountTooLarge { .. })
        ));
    }

    #[test]
    fn unknown_stage_bytes_are_rejected() {
        let dump = TraceDump {
            events: vec![TraceEvent {
                tick_ns: 1,
                stage: TraceStage::ForwarderSealed,
                source: 2,
                seq: 3,
                shard: 4,
            }],
            dropped: 0,
        };
        let mut bytes = dump.encode();
        // The stage byte follows the 1-byte count and 1-byte tick varint.
        bytes[2] = 0xEE;
        assert!(matches!(
            TraceDump::decode(&bytes),
            Err(WireError::Invalid("unknown trace stage"))
        ));
    }
}
