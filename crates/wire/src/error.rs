//! Typed decode errors.

use std::fmt;

/// Why a buffer failed to decode. Every variant is a *rejection* — the
/// decoder never panics on untrusted bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the value did.
    Truncated {
        /// Bytes the decoder needed next.
        needed: usize,
        /// Bytes actually remaining.
        have: usize,
    },
    /// The frame does not start with the `PINT` magic.
    BadMagic,
    /// The frame's format version is newer than this decoder speaks.
    UnsupportedVersion {
        /// Version byte found in the frame.
        found: u8,
        /// Highest version this build decodes.
        supported: u8,
    },
    /// The frame-type byte is not a known [`FrameType`](crate::FrameType).
    UnknownFrameType(u8),
    /// The frame declares a payload larger than
    /// [`MAX_PAYLOAD`](crate::MAX_PAYLOAD).
    FrameTooLarge {
        /// Declared payload length.
        len: usize,
        /// The enforced maximum.
        max: usize,
    },
    /// A varint ran past 10 bytes or overflowed `u64`.
    VarintOverflow,
    /// A declared element count exceeds the bytes that could possibly
    /// back it — rejected *before* allocating.
    CountTooLarge {
        /// The declared count.
        count: u64,
        /// Upper bound implied by the remaining input.
        max: u64,
    },
    /// The value decoded but violates a semantic invariant.
    Invalid(&'static str),
    /// Bytes remained after the value that was supposed to end the
    /// buffer.
    TrailingBytes {
        /// How many bytes were left over.
        remaining: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, have } => {
                write!(
                    f,
                    "truncated input: needed {needed} more bytes, have {have}"
                )
            }
            WireError::BadMagic => write!(f, "bad frame magic (not a PINT frame)"),
            WireError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "unsupported wire version {found} (this build speaks ≤ {supported})"
                )
            }
            WireError::UnknownFrameType(t) => write!(f, "unknown frame type 0x{t:02x}"),
            WireError::FrameTooLarge { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds the {max}-byte cap")
            }
            WireError::VarintOverflow => write!(f, "varint longer than 10 bytes or overflows u64"),
            WireError::CountTooLarge { count, max } => {
                write!(
                    f,
                    "declared count {count} exceeds what {max} remaining bytes can hold"
                )
            }
            WireError::Invalid(what) => write!(f, "invalid value: {what}"),
            WireError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after the decoded value")
            }
        }
    }
}

impl std::error::Error for WireError {}
