//! Frame header encoding/parsing and stream reassembly.
//!
//! See the crate docs for the byte layout. Three entry points cover the
//! transports `pint-fleet` uses:
//!
//! * [`frame_into`] — wrap an encodable payload in a header (sender side).
//! * [`parse_frame`] — exactly one frame in a byte slice (in-memory
//!   transports, tests).
//! * [`peek_frame`] / [`FrameReader`] — incremental reassembly over a
//!   byte stream (TCP), tolerant of frames split across reads.

use crate::error::WireError;
use crate::WireEncode;
use std::io::Read;

/// The four magic bytes every frame starts with (ASCII `PINT`).
pub const MAGIC: [u8; 4] = *b"PINT";

/// The wire-format version this build encodes and decodes.
pub const VERSION: u8 = 1;

/// Bytes of header before the payload: magic (4), version (1), frame
/// type (1), payload length (4).
pub const HEADER_LEN: usize = 10;

/// Hard cap on a frame's payload. A snapshot of 65k flows with generous
/// sketches is a few MiB; 64 MiB leaves headroom while bounding what a
/// hostile length prefix can make a receiver buffer.
pub const MAX_PAYLOAD: usize = 64 << 20;

/// What a frame carries (the header's type byte).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum FrameType {
    /// A collector announcing itself: payload is its collector id
    /// (varint).
    Hello = 1,
    /// A full collector snapshot keyed by collector id + epoch.
    Snapshot = 2,
    /// A batch of raw [`DigestReport`](pint_core::DigestReport)s: count
    /// (varint) then the reports (network ingest path).
    DigestBatch = 3,
    /// A collector leaving the fleet: payload is its collector id
    /// (varint). Receivers drop its snapshots from the fleet view.
    Bye = 4,
    /// A telemetry query: request id (varint) then an encoded
    /// `QueryPlan` (see `pint-query`). Servers answer on the same
    /// connection with a [`QueryResponse`](FrameType::QueryResponse).
    Query = 5,
    /// The answer to a [`Query`](FrameType::Query): the echoed request
    /// id, a status byte, then an encoded `QueryResult` or an error
    /// message.
    QueryResponse = 6,
    /// A receiver acknowledging one [`DigestBatch`](FrameType::DigestBatch):
    /// the echoed sequence number (varint) and a status byte (applied
    /// or duplicate). The at-least-once half of the edge-ingest
    /// protocol — see [`BatchAck`](crate::BatchAck).
    BatchAck = 7,
    /// Self-telemetry: a metrics request (kind byte 0, request id) or a
    /// metrics report (kind byte 1, request id, source id, then a full
    /// `MetricsSnapshot`) — see the [`metrics`](crate::metrics) module.
    /// Served by `FleetServer` and `DigestServer`.
    Metrics = 8,
    /// Pipeline tracing: a trace request (kind byte 0, request id) or a
    /// trace report (kind byte 1, request id, source id, then a
    /// `pint-obs` `TraceDump`) — see the [`trace`](crate::trace)
    /// module. Served by `FleetServer` and `DigestServer` next to
    /// [`Metrics`](FrameType::Metrics).
    TraceDump = 9,
}

impl FrameType {
    fn from_byte(b: u8) -> Result<Self, WireError> {
        match b {
            1 => Ok(FrameType::Hello),
            2 => Ok(FrameType::Snapshot),
            3 => Ok(FrameType::DigestBatch),
            4 => Ok(FrameType::Bye),
            5 => Ok(FrameType::Query),
            6 => Ok(FrameType::QueryResponse),
            7 => Ok(FrameType::BatchAck),
            8 => Ok(FrameType::Metrics),
            9 => Ok(FrameType::TraceDump),
            other => Err(WireError::UnknownFrameType(other)),
        }
    }
}

/// Appends a complete frame — header plus `payload`'s encoding — to
/// `out`.
///
/// # Panics
///
/// If the encoded payload exceeds [`MAX_PAYLOAD`]. The sender owns its
/// payload sizes (split giant snapshots before framing), so this is a
/// programming error, unlike the decode side where oversized input is a
/// typed rejection.
pub fn frame_into(ty: FrameType, payload: &impl WireEncode, out: &mut Vec<u8>) {
    let start = out.len();
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(ty as u8);
    out.extend_from_slice(&[0; 4]); // length back-patched below
    payload.encode_into(out);
    let len = out.len() - start - HEADER_LEN;
    assert!(
        len <= MAX_PAYLOAD,
        "frame payload of {len} bytes exceeds MAX_PAYLOAD"
    );
    out[start + 6..start + HEADER_LEN].copy_from_slice(&(len as u32).to_le_bytes());
}

/// Validates a header prefix and, once `buf` holds the whole frame,
/// returns `(type, payload, total frame length)`.
///
/// `Ok(None)` means the bytes so far are a valid frame *prefix* — read
/// more and call again. Errors are permanent for this stream (bad magic,
/// future version, unknown type, oversized payload).
pub fn peek_frame(buf: &[u8]) -> Result<Option<(FrameType, &[u8], usize)>, WireError> {
    // Validate eagerly on whatever prefix is available, so a garbage
    // stream is rejected at its first bytes, not after MAX_PAYLOAD of
    // buffering.
    let have_magic = buf.len().min(MAGIC.len());
    if buf[..have_magic] != MAGIC[..have_magic] {
        return Err(WireError::BadMagic);
    }
    if buf.len() > 4 && buf[4] != VERSION {
        return Err(WireError::UnsupportedVersion {
            found: buf[4],
            supported: VERSION,
        });
    }
    if buf.len() > 5 {
        FrameType::from_byte(buf[5])?;
    }
    if buf.len() < HEADER_LEN {
        return Ok(None);
    }
    let len = u32::from_le_bytes([buf[6], buf[7], buf[8], buf[9]]) as usize;
    if len > MAX_PAYLOAD {
        return Err(WireError::FrameTooLarge {
            len,
            max: MAX_PAYLOAD,
        });
    }
    if buf.len() < HEADER_LEN + len {
        return Ok(None);
    }
    let ty = FrameType::from_byte(buf[5])?;
    Ok(Some((
        ty,
        &buf[HEADER_LEN..HEADER_LEN + len],
        HEADER_LEN + len,
    )))
}

/// Parses a byte slice holding exactly one frame (no leftovers).
pub fn parse_frame(bytes: &[u8]) -> Result<(FrameType, &[u8]), WireError> {
    match peek_frame(bytes)? {
        Some((ty, payload, consumed)) if consumed == bytes.len() => Ok((ty, payload)),
        Some((_, _, consumed)) => Err(WireError::TrailingBytes {
            remaining: bytes.len() - consumed,
        }),
        None => Err(WireError::Truncated {
            needed: HEADER_LEN,
            have: bytes.len(),
        }),
    }
}

/// Why [`FrameReader::read_frame`] failed: transport I/O or a corrupt
/// stream.
#[derive(Debug)]
pub enum ReadFrameError {
    /// The underlying reader failed (or hit EOF mid-frame).
    Io(std::io::Error),
    /// The stream's bytes do not form a valid frame; the connection
    /// should be dropped (framing cannot resynchronize).
    Wire(WireError),
}

impl std::fmt::Display for ReadFrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadFrameError::Io(e) => write!(f, "frame transport error: {e}"),
            ReadFrameError::Wire(e) => write!(f, "frame decode error: {e}"),
        }
    }
}

impl std::error::Error for ReadFrameError {}

impl From<WireError> for ReadFrameError {
    fn from(e: WireError) -> Self {
        ReadFrameError::Wire(e)
    }
}

/// Reassembles frames from a byte stream (`TcpStream`, pipe, …).
///
/// Reads are buffered and frames may arrive split or coalesced
/// arbitrarily. A read timeout on the underlying stream surfaces as
/// `Io(WouldBlock/TimedOut)` with **no bytes lost** — the partial frame
/// stays buffered and the next call resumes it (this is what lets a
/// server thread poll a shutdown flag between reads).
pub struct FrameReader<R> {
    inner: R,
    buf: Vec<u8>,
    chunk: Box<[u8]>,
}

impl<R: Read> FrameReader<R> {
    /// Wraps a byte stream.
    pub fn new(inner: R) -> Self {
        Self {
            inner,
            buf: Vec::new(),
            chunk: vec![0; 16 * 1024].into_boxed_slice(),
        }
    }

    /// Bytes buffered towards the next frame (a partial frame mid-read).
    /// Poll loops compare this across ticks to detect slow-loris peers:
    /// a connection stuck mid-frame with no growth is stalled, not slow.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Returns the next complete frame as `(type, payload)`, `Ok(None)`
    /// on a clean EOF at a frame boundary.
    ///
    /// `ErrorKind::Interrupted` reads are retried internally — a signal
    /// mid-read must not tear down the stream. `WouldBlock`/`TimedOut`
    /// still surface (with the partial frame kept buffered) so blocking
    /// callers can poll a shutdown flag; non-blocking callers should use
    /// [`poll_frame`](Self::poll_frame) instead.
    pub fn read_frame(&mut self) -> Result<Option<(FrameType, Vec<u8>)>, ReadFrameError> {
        loop {
            match peek_frame(&self.buf)? {
                Some((ty, payload, consumed)) => {
                    let payload = payload.to_vec();
                    self.buf.drain(..consumed);
                    return Ok(Some((ty, payload)));
                }
                None => match self.inner.read(&mut self.chunk) {
                    Ok(0) => {
                        if self.buf.is_empty() {
                            return Ok(None); // clean EOF
                        }
                        return Err(ReadFrameError::Io(std::io::Error::new(
                            std::io::ErrorKind::UnexpectedEof,
                            "stream ended mid-frame",
                        )));
                    }
                    Ok(n) => self.buf.extend_from_slice(&self.chunk[..n]),
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(ReadFrameError::Io(e)),
                },
            }
        }
    }

    /// Non-blocking [`read_frame`](Self::read_frame): one step of a
    /// poll loop over a non-blocking stream.
    ///
    /// `WouldBlock`/`TimedOut` become [`FramePoll::Pending`] — no bytes
    /// are lost; the partial frame stays buffered and the next call
    /// resumes it. `Interrupted` is retried. A clean EOF at a frame
    /// boundary is [`FramePoll::Closed`]; EOF mid-frame is an
    /// `UnexpectedEof` error like the blocking path.
    pub fn poll_frame(&mut self) -> Result<FramePoll, ReadFrameError> {
        loop {
            match peek_frame(&self.buf)? {
                Some((ty, payload, consumed)) => {
                    let payload = payload.to_vec();
                    self.buf.drain(..consumed);
                    return Ok(FramePoll::Frame(ty, payload));
                }
                None => match self.inner.read(&mut self.chunk) {
                    Ok(0) => {
                        if self.buf.is_empty() {
                            return Ok(FramePoll::Closed);
                        }
                        return Err(ReadFrameError::Io(std::io::Error::new(
                            std::io::ErrorKind::UnexpectedEof,
                            "stream ended mid-frame",
                        )));
                    }
                    Ok(n) => self.buf.extend_from_slice(&self.chunk[..n]),
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        return Ok(FramePoll::Pending)
                    }
                    Err(e) => return Err(ReadFrameError::Io(e)),
                },
            }
        }
    }
}

/// One step of [`FrameReader::poll_frame`] over a non-blocking stream.
#[derive(Debug)]
pub enum FramePoll {
    /// A complete frame was reassembled.
    Frame(FrameType, Vec<u8>),
    /// No complete frame yet; the socket has no more bytes right now.
    /// Any partial frame stays buffered for the next poll.
    Pending,
    /// The peer closed the stream cleanly at a frame boundary.
    Closed,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WireReader;

    struct VarintPayload(u64);
    impl WireEncode for VarintPayload {
        fn encode_into(&self, out: &mut Vec<u8>) {
            crate::WireWriter::new(out).put_varint(self.0);
        }
    }

    #[test]
    fn frame_round_trip() {
        let mut buf = Vec::new();
        frame_into(FrameType::Hello, &VarintPayload(300), &mut buf);
        let (ty, payload) = parse_frame(&buf).unwrap();
        assert_eq!(ty, FrameType::Hello);
        let mut r = WireReader::new(payload);
        assert_eq!(r.get_varint().unwrap(), 300);
    }

    #[test]
    fn peek_rejects_garbage_eagerly() {
        assert_eq!(peek_frame(b"HTTP"), Err(WireError::BadMagic));
        assert_eq!(peek_frame(b"PI"), Ok(None), "valid prefix: wait");
        assert_eq!(peek_frame(b"PX"), Err(WireError::BadMagic));
        assert!(matches!(
            peek_frame(b"PINT\x07"),
            Err(WireError::UnsupportedVersion {
                found: 7,
                supported: VERSION
            })
        ));
        assert!(matches!(
            peek_frame(b"PINT\x01\xEE"),
            Err(WireError::UnknownFrameType(0xEE))
        ));
    }

    #[test]
    fn peek_rejects_oversized_payload_before_buffering() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.push(VERSION);
        buf.push(FrameType::Snapshot as u8);
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            peek_frame(&buf),
            Err(WireError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn reader_handles_split_and_coalesced_frames() {
        let mut wire = Vec::new();
        frame_into(FrameType::Hello, &VarintPayload(1), &mut wire);
        frame_into(FrameType::Bye, &VarintPayload(2), &mut wire);

        // Deliver the stream one byte at a time.
        struct OneByte<'a>(&'a [u8]);
        impl Read for OneByte<'_> {
            fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
                if self.0.is_empty() {
                    return Ok(0);
                }
                out[0] = self.0[0];
                self.0 = &self.0[1..];
                Ok(1)
            }
        }
        let mut reader = FrameReader::new(OneByte(&wire));
        let (ty1, _) = reader.read_frame().unwrap().unwrap();
        let (ty2, _) = reader.read_frame().unwrap().unwrap();
        assert_eq!((ty1, ty2), (FrameType::Hello, FrameType::Bye));
        assert!(reader.read_frame().unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn reader_retries_interrupted_reads() {
        // Every other read is EINTR: both frames must still arrive.
        struct Flaky<'a> {
            data: &'a [u8],
            tick: bool,
        }
        impl Read for Flaky<'_> {
            fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
                self.tick = !self.tick;
                if self.tick {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::Interrupted,
                        "signal",
                    ));
                }
                if self.data.is_empty() {
                    return Ok(0);
                }
                out[0] = self.data[0];
                self.data = &self.data[1..];
                Ok(1)
            }
        }
        let mut wire = Vec::new();
        frame_into(FrameType::Hello, &VarintPayload(1), &mut wire);
        frame_into(FrameType::Bye, &VarintPayload(2), &mut wire);
        let mut reader = FrameReader::new(Flaky {
            data: &wire,
            tick: false,
        });
        assert_eq!(reader.read_frame().unwrap().unwrap().0, FrameType::Hello);
        assert_eq!(reader.read_frame().unwrap().unwrap().0, FrameType::Bye);
        assert!(reader.read_frame().unwrap().is_none());
    }

    #[test]
    fn poll_frame_resumes_partial_frames_across_would_block() {
        // The stream yields one byte, then WouldBlock, repeatedly — the
        // shape a non-blocking socket gives a poll loop. The partial
        // frame must survive every Pending and complete eventually.
        struct Trickle<'a> {
            data: &'a [u8],
            ready: bool,
        }
        impl Read for Trickle<'_> {
            fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
                self.ready = !self.ready;
                if !self.ready {
                    return Err(std::io::ErrorKind::WouldBlock.into());
                }
                if self.data.is_empty() {
                    return Ok(0);
                }
                out[0] = self.data[0];
                self.data = &self.data[1..];
                Ok(1)
            }
        }
        let mut wire = Vec::new();
        frame_into(FrameType::Hello, &VarintPayload(300), &mut wire);
        let mut reader = FrameReader::new(Trickle {
            data: &wire,
            ready: false,
        });
        let mut pendings = 0;
        loop {
            match reader.poll_frame().unwrap() {
                FramePoll::Frame(ty, payload) => {
                    assert_eq!(ty, FrameType::Hello);
                    let mut r = WireReader::new(&payload);
                    assert_eq!(r.get_varint().unwrap(), 300);
                    break;
                }
                FramePoll::Pending => pendings += 1,
                FramePoll::Closed => panic!("closed before the frame completed"),
            }
        }
        assert!(pendings > 0, "the trickle must have parked at least once");
        loop {
            match reader.poll_frame().unwrap() {
                FramePoll::Closed => break,
                FramePoll::Pending => continue,
                FramePoll::Frame(..) => panic!("no second frame exists"),
            }
        }
    }

    #[test]
    fn reader_reports_mid_frame_eof() {
        let mut wire = Vec::new();
        frame_into(FrameType::Hello, &VarintPayload(1), &mut wire);
        wire.truncate(wire.len() - 1);
        let mut reader = FrameReader::new(&wire[..]);
        assert!(matches!(
            reader.read_frame(),
            Err(ReadFrameError::Io(e)) if e.kind() == std::io::ErrorKind::UnexpectedEof
        ));
    }
}
