//! # pint-wire — the PINT telemetry wire format
//!
//! PINT's collection tier is distributed: per-pod collectors
//! (`pint-collector`) ship their snapshots to a fleet aggregator
//! (`pint-fleet`) over plain sockets. This crate is the codec between
//! them — a small, dependency-free, *versioned* binary format with
//! typed decode errors. Decoding never panics, whatever the bytes:
//! frames off the network are untrusted input.
//!
//! ## Frame format (version 1)
//!
//! Every message is one length-prefixed frame:
//!
//! ```text
//! offset  size  field
//! 0       4     magic       0x50 0x49 0x4E 0x54  (ASCII "PINT")
//! 4       1     version     0x01
//! 5       1     frame type  (see below)
//! 6       4     payload length, u32 little-endian (≤ 64 MiB)
//! 10      n     payload
//! ```
//!
//! Frame types:
//!
//! | byte | type                        | payload |
//! |------|-----------------------------|---------|
//! | 0x01 | [`FrameType::Hello`]        | collector id (varint) |
//! | 0x02 | [`FrameType::Snapshot`]     | a `SnapshotFrame` (see `pint-collector`'s wire module): collector id, epoch, full `CollectorSnapshot` |
//! | 0x03 | [`FrameType::DigestBatch`]  | a [`DigestBatch`]: source id (varint), sequence number (varint), count (varint), then that many [`DigestReport`](pint_core::DigestReport)s |
//! | 0x04 | [`FrameType::Bye`]          | collector id (varint) |
//! | 0x05 | [`FrameType::Query`]        | request id (varint), then a `QueryPlan` (see `pint-query`) |
//! | 0x06 | [`FrameType::QueryResponse`]| request id (varint), status byte, then a `QueryResult` or an error message |
//! | 0x07 | [`FrameType::BatchAck`]     | a [`BatchAck`]: echoed sequence number (varint), status byte (0 = applied, 1 = duplicate) |
//! | 0x08 | [`FrameType::Metrics`]      | self-telemetry: kind byte (0 = [`MetricsRequest`], 1 = [`MetricsReport`] carrying a `pint-obs` `MetricsSnapshot`) |
//! | 0x09 | [`FrameType::TraceDump`]    | pipeline tracing: kind byte (0 = [`TraceRequest`], 1 = [`TraceReport`] carrying a `pint-obs` `TraceDump`) |
//!
//! `DigestBatch`/`BatchAck` together form the edge-ingest protocol:
//! sequence-numbered at-least-once delivery with receiver-side dedup
//! ([`SourceDedup`]; see the [`batch`] module docs). [`FaultInjector`] wraps a sender
//! with deterministic, seeded misbehavior — drops, duplicates,
//! reorders, corruption, truncation, stalls — for soak-testing
//! receivers against hostile peers.
//!
//! Integers inside payloads are either fixed-width **little-endian**
//! (`u64` hash values, coin states, `f64` bit patterns) or **LEB128
//! varints** (counts, identifiers, timestamps — values that are usually
//! small). Every varint is at most 10 bytes; over-long or overflowing
//! encodings are rejected.
//!
//! A decoder receiving a frame with an unknown higher `version` rejects
//! it with [`WireError::UnsupportedVersion`] — payload layouts may
//! change between versions, so there is no partial forward parsing.
//!
//! Beyond socket frames, the [`store`] module defines the *on-disk*
//! codecs of `pint-store`'s durable logs: a versioned [`Superblock`]
//! and CRC-checksummed [`StoreRecord`]s (checkpoint/delta chains). The
//! same hostile-input rules apply — a store file is just bytes that
//! survived a crash, which is its own kind of adversary.
//!
//! ## Using the codec
//!
//! Types implement [`WireEncode`] (append to a caller-owned `Vec<u8>` —
//! the hot path allocates nothing per lane or per item) and
//! [`WireDecode`] (cursor-based, typed errors). This crate provides the
//! impls for the leaf types every tier shares — [`Digest`],
//! [`DigestReport`], [`KllSketch`], [`PathProgress`], [`RecorderKind`]
//! — while `pint-collector` adds its snapshot types on top.
//!
//! ```
//! use pint_core::{Digest, DigestReport};
//! use pint_wire::{WireDecode, WireEncode};
//!
//! let mut d = Digest::new(2);
//! d.set(0, 0xFEED);
//! let report = DigestReport::new(7, 1_001, d, 5, 42);
//!
//! let mut buf = Vec::new();
//! report.encode_into(&mut buf);
//! assert_eq!(DigestReport::decode(&buf).unwrap(), report);
//! ```
//!
//! [`Digest`]: pint_core::Digest
//! [`DigestReport`]: pint_core::DigestReport
//! [`KllSketch`]: pint_sketches::KllSketch
//! [`PathProgress`]: pint_core::PathProgress
//! [`RecorderKind`]: pint_core::RecorderKind

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
mod codec;
mod error;
pub mod fault;
mod frame;
pub mod metrics;
mod rw;
pub mod store;
pub mod trace;

pub use batch::{
    AckStatus, BatchAck, DigestBatch, SourceDedup, TraceContext, DEDUP_WINDOW, MAX_BATCH_REPORTS,
};
pub use error::WireError;
pub use fault::{FaultConfig, FaultInjector, FaultStats};
pub use frame::{
    frame_into, parse_frame, peek_frame, FramePoll, FrameReader, FrameType, ReadFrameError,
    HEADER_LEN, MAGIC, MAX_PAYLOAD, VERSION,
};
pub use metrics::{MetricsMsg, MetricsReport, MetricsRequest, MAX_METRIC_NAME};
pub use rw::{WireReader, WireWriter};
pub use store::{
    crc32, CheckpointRecord, CoveredSource, StoreKind, StoreRecord, Superblock, STORE_MAGIC,
    STORE_VERSION,
};
pub use trace::{TraceMsg, TraceReport, TraceRequest, MAX_TRACE_EVENTS};

/// Serialize into the PINT wire format by appending to a caller-owned
/// buffer — no allocation inside the encoder itself.
pub trait WireEncode {
    /// Appends this value's encoding to `out`.
    fn encode_into(&self, out: &mut Vec<u8>);

    /// Convenience: encode into a fresh buffer.
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }
}

/// Deserialize from the PINT wire format with typed errors; never
/// panics on malformed, truncated, or adversarial input.
pub trait WireDecode: Sized {
    /// Reads one value at the reader's cursor, advancing it.
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError>;

    /// Decodes a value that must occupy `bytes` exactly (trailing bytes
    /// are an error — catches framing bugs and truncation-splice
    /// corruption).
    fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(bytes);
        let v = Self::decode_from(&mut r)?;
        r.expect_end()?;
        Ok(v)
    }
}
