//! [`WireEncode`]/[`WireDecode`] impls for the leaf types shared by
//! every tier: digests, digest reports, KLL sketches, path progress,
//! recorder kinds. Snapshot-level types live with their owning crate
//! (`pint-collector`), which composes these primitives.

use crate::error::WireError;
use crate::rw::{WireReader, WireWriter};
use crate::{WireDecode, WireEncode};
use pint_core::{Digest, DigestReport, PathProgress, RecorderKind};
use pint_sketches::KllSketch;

impl WireEncode for Digest {
    /// Lane count (varint), then each lane as a fixed 8-byte
    /// little-endian word — lanes hold hash/XOR accumulators that use
    /// the full width, so varints would pessimize them.
    fn encode_into(&self, out: &mut Vec<u8>) {
        let mut w = WireWriter::new(out);
        w.put_varint(self.lanes() as u64);
        for i in 0..self.lanes() {
            w.put_u64(self.get(i));
        }
    }
}

impl WireDecode for Digest {
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let lanes = r.get_count(8)?;
        let mut d = Digest::new(lanes);
        for i in 0..lanes {
            d.set(i, r.get_u64()?);
        }
        Ok(d)
    }
}

impl WireEncode for DigestReport {
    fn encode_into(&self, out: &mut Vec<u8>) {
        let mut w = WireWriter::new(out);
        w.put_varint(self.flow);
        w.put_varint(self.pid);
        w.put_varint(u64::from(self.path_len));
        w.put_varint(self.ts);
        self.digest.encode_into(out);
    }
}

impl WireDecode for DigestReport {
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let flow = r.get_varint()?;
        let pid = r.get_varint()?;
        let path_len = r.get_varint()?;
        if path_len > u64::from(u16::MAX) {
            return Err(WireError::Invalid("path length exceeds u16"));
        }
        let ts = r.get_varint()?;
        let digest = Digest::decode_from(r)?;
        Ok(DigestReport::new(flow, pid, digest, path_len as u16, ts))
    }
}

impl WireEncode for KllSketch {
    /// `k` (varint), coin state (8 bytes LE), stream length `n`
    /// (varint), level count (varint), then per level an item count
    /// (varint) and the items as varints — code-space values are small
    /// (paper: 8-bit budgets), so varints shrink them to 1 byte.
    fn encode_into(&self, out: &mut Vec<u8>) {
        let mut w = WireWriter::new(out);
        w.put_varint(self.accuracy_k() as u64);
        w.put_u64(self.coin_state());
        w.put_varint(self.count());
        let levels = self.levels();
        w.put_varint(levels.len() as u64);
        for level in levels {
            w.put_varint(level.len() as u64);
            for &v in level {
                w.put_varint(v);
            }
        }
    }
}

impl WireDecode for KllSketch {
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let k = r.get_varint()?;
        if k > u32::MAX as u64 {
            return Err(WireError::Invalid(
                "KLL accuracy parameter implausibly large",
            ));
        }
        let coin = r.get_u64()?;
        let n = r.get_varint()?;
        let num_levels = r.get_count(1)?;
        // Reject before allocating: a hostile count costs 1 wire byte
        // per claimed level but ~24 in-memory bytes per `Vec` header —
        // and `from_parts` caps levels at 64 anyway (a u64 cannot
        // weight level 64).
        if num_levels > 64 {
            return Err(WireError::Invalid("too many KLL compactor levels"));
        }
        let mut levels = Vec::with_capacity(num_levels);
        for _ in 0..num_levels {
            let items = r.get_count(1)?;
            // Pre-reserve conservatively: `items` is backed by ≥ 1 wire
            // byte each but costs 8 in-memory bytes each; growing past
            // the cap is paid only as elements actually decode.
            let mut level = Vec::with_capacity(items.min(65_536));
            for _ in 0..items {
                level.push(r.get_varint()?);
            }
            levels.push(level);
        }
        KllSketch::from_parts(k as usize, coin, n, levels).map_err(WireError::Invalid)
    }
}

impl WireEncode for PathProgress {
    fn encode_into(&self, out: &mut Vec<u8>) {
        let mut w = WireWriter::new(out);
        w.put_varint(self.resolved as u64);
        w.put_varint(self.k as u64);
        match &self.path {
            Some(path) => {
                w.put_u8(1);
                for &hop in path {
                    w.put_varint(hop);
                }
            }
            None => w.put_u8(0),
        }
        w.put_varint(self.inconsistencies);
    }
}

impl WireDecode for PathProgress {
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let resolved = r.get_varint()?;
        let k = r.get_varint()?;
        if k > u64::from(u16::MAX) {
            return Err(WireError::Invalid("path length exceeds u16"));
        }
        if resolved > k {
            return Err(WireError::Invalid("resolved hops exceed path length"));
        }
        let (resolved, k) = (resolved as usize, k as usize);
        let path = match r.get_u8()? {
            0 => None,
            1 => {
                // A present path is complete by construction: k hops.
                r.check_count(k as u64, 1)?;
                let mut path = Vec::with_capacity(k);
                for _ in 0..k {
                    path.push(r.get_varint()?);
                }
                Some(path)
            }
            _ => return Err(WireError::Invalid("path presence tag must be 0 or 1")),
        };
        if path.is_some() && resolved != k {
            return Err(WireError::Invalid("complete path with unresolved hops"));
        }
        let inconsistencies = r.get_varint()?;
        Ok(PathProgress {
            resolved,
            k,
            path,
            inconsistencies,
        })
    }
}

impl WireEncode for RecorderKind {
    fn encode_into(&self, out: &mut Vec<u8>) {
        let tag: u8 = match self {
            RecorderKind::LatencyQuantiles => 0,
            RecorderKind::PathTracing => 1,
            RecorderKind::FrequentValues => 2,
        };
        WireWriter::new(out).put_u8(tag);
    }
}

impl WireDecode for RecorderKind {
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(RecorderKind::LatencyQuantiles),
            1 => Ok(RecorderKind::PathTracing),
            2 => Ok(RecorderKind::FrequentValues),
            _ => Err(WireError::Invalid("unknown recorder kind")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_and_report_round_trip() {
        for lanes in [0usize, 1, 2, 5] {
            let mut d = Digest::new(lanes);
            for i in 0..lanes {
                d.set(i, u64::MAX - i as u64);
            }
            assert_eq!(Digest::decode(&d.encode()).unwrap(), d, "{lanes} lanes");
            let report = DigestReport::new(u64::MAX, 12_345, d, 9, 1 << 40);
            assert_eq!(DigestReport::decode(&report.encode()).unwrap(), report);
        }
    }

    #[test]
    fn kll_round_trip_is_structural() {
        let mut sk = KllSketch::with_seed(48, 99);
        for v in 0..30_000u64 {
            sk.update(v % 257);
        }
        let decoded = KllSketch::decode(&sk.encode()).unwrap();
        assert_eq!(decoded, sk, "decode(encode(A)) == A, coin state included");
    }

    #[test]
    fn kll_decode_rejects_corruption_without_panicking() {
        let mut sk = KllSketch::with_seed(16, 3);
        for v in 0..1_000u64 {
            sk.update(v);
        }
        let good = sk.encode();
        // Truncate at every length: must error, never panic.
        for cut in 0..good.len() {
            assert!(
                KllSketch::decode(&good[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
    }

    #[test]
    fn path_progress_round_trip_and_validation() {
        let complete = PathProgress {
            resolved: 3,
            k: 3,
            path: Some(vec![7, 8, 9]),
            inconsistencies: 2,
        };
        assert_eq!(PathProgress::decode(&complete.encode()).unwrap(), complete);
        let partial = PathProgress {
            resolved: 1,
            k: 5,
            path: None,
            inconsistencies: 0,
        };
        assert_eq!(PathProgress::decode(&partial.encode()).unwrap(), partial);

        // resolved > k is rejected.
        let mut bad = Vec::new();
        let mut w = WireWriter::new(&mut bad);
        w.put_varint(9);
        w.put_varint(3);
        w.put_u8(0);
        w.put_varint(0);
        assert!(matches!(
            PathProgress::decode(&bad),
            Err(WireError::Invalid(_))
        ));
    }

    #[test]
    fn recorder_kind_tags() {
        for kind in [
            RecorderKind::LatencyQuantiles,
            RecorderKind::PathTracing,
            RecorderKind::FrequentValues,
        ] {
            assert_eq!(RecorderKind::decode(&kind.encode()).unwrap(), kind);
        }
        assert!(RecorderKind::decode(&[9]).is_err());
    }
}
