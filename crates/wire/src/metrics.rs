//! The `Metrics` frame (type 8): remote self-telemetry.
//!
//! A client sends a [`MetricsRequest`]; the server answers on the same
//! connection with a [`MetricsReport`] carrying a full
//! [`MetricsSnapshot`]. Both directions share the frame type and are
//! distinguished by a leading kind byte, so a single decode entry point
//! ([`MetricsMsg::decode`]) serves both peers. Like every codec in this
//! crate, decoding never panics on hostile bytes.

use crate::error::WireError;
use crate::rw::{WireReader, WireWriter};
use crate::{WireDecode, WireEncode};
use pint_obs::{
    HistogramSnapshot, MetricsSnapshot, ScalarMetric, SnapshotHistogram, HISTOGRAM_BUCKETS,
};

/// Longest metric name accepted on the wire.
pub const MAX_METRIC_NAME: usize = 160;

const KIND_REQUEST: u8 = 0;
const KIND_REPORT: u8 = 1;

/// Ask a server for its current metrics snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricsRequest {
    /// Client-chosen id echoed in the [`MetricsReport`].
    pub request_id: u64,
}

/// A server's metrics snapshot, answering one [`MetricsRequest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsReport {
    /// Echoed request id.
    pub request_id: u64,
    /// Server-chosen source identifier (collector id, 0 if unset).
    pub source: u64,
    /// The snapshot itself.
    pub snapshot: MetricsSnapshot,
}

/// Either side of the `Metrics` conversation, for decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricsMsg {
    /// A client asking for metrics.
    Request(MetricsRequest),
    /// A server answering.
    Report(MetricsReport),
}

impl WireEncode for MetricsRequest {
    fn encode_into(&self, out: &mut Vec<u8>) {
        let mut w = WireWriter::new(out);
        w.put_u8(KIND_REQUEST);
        w.put_varint(self.request_id);
    }
}

impl WireEncode for MetricsReport {
    fn encode_into(&self, out: &mut Vec<u8>) {
        let mut w = WireWriter::new(out);
        w.put_u8(KIND_REPORT);
        w.put_varint(self.request_id);
        w.put_varint(self.source);
        self.snapshot.encode_into(out);
    }
}

impl WireDecode for MetricsMsg {
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            KIND_REQUEST => Ok(MetricsMsg::Request(MetricsRequest {
                request_id: r.get_varint()?,
            })),
            KIND_REPORT => {
                let request_id = r.get_varint()?;
                let source = r.get_varint()?;
                let snapshot = MetricsSnapshot::decode_from(r)?;
                Ok(MetricsMsg::Report(MetricsReport {
                    request_id,
                    source,
                    snapshot,
                }))
            }
            _ => Err(WireError::Invalid("unknown metrics message kind")),
        }
    }
}

fn put_name(w: &mut WireWriter<'_>, name: &str) {
    debug_assert!(name.len() <= MAX_METRIC_NAME, "metric name too long");
    w.put_varint(name.len() as u64);
    w.put_bytes(name.as_bytes());
}

fn get_name(r: &mut WireReader<'_>) -> Result<String, WireError> {
    let len = r.get_varint()? as usize;
    if len > MAX_METRIC_NAME {
        return Err(WireError::Invalid("metric name too long"));
    }
    let bytes = r.get_bytes(len)?;
    String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Invalid("metric name not utf-8"))
}

fn put_shard(w: &mut WireWriter<'_>, shard: Option<u32>) {
    match shard {
        None => w.put_u8(0),
        Some(s) => {
            w.put_u8(1);
            w.put_varint(s as u64);
        }
    }
}

fn get_shard(r: &mut WireReader<'_>) -> Result<Option<u32>, WireError> {
    match r.get_u8()? {
        0 => Ok(None),
        1 => {
            let s = r.get_varint()?;
            u32::try_from(s)
                .map(Some)
                .map_err(|_| WireError::Invalid("shard index exceeds u32"))
        }
        _ => Err(WireError::Invalid("bad shard flag")),
    }
}

// Smallest possible scalar entry: 1-byte name length (empty name),
// 1-byte shard flag, 1-byte value varint.
const MIN_SCALAR_BYTES: usize = 3;
// Histograms additionally carry 65 bucket varints and a sum varint.
const MIN_HIST_BYTES: usize = 2 + HISTOGRAM_BUCKETS + 1;

impl WireEncode for MetricsSnapshot {
    fn encode_into(&self, out: &mut Vec<u8>) {
        let mut w = WireWriter::new(out);
        w.put_varint(self.counters.len() as u64);
        for m in &self.counters {
            put_name(&mut w, &m.name);
            put_shard(&mut w, m.shard);
            w.put_varint(m.value);
        }
        w.put_varint(self.gauges.len() as u64);
        for m in &self.gauges {
            put_name(&mut w, &m.name);
            put_shard(&mut w, m.shard);
            w.put_varint(m.value);
        }
        w.put_varint(self.histograms.len() as u64);
        for h in &self.histograms {
            put_name(&mut w, &h.name);
            put_shard(&mut w, h.shard);
            for b in &h.hist.buckets {
                w.put_varint(*b);
            }
            w.put_varint(h.hist.sum);
        }
    }
}

impl WireDecode for MetricsSnapshot {
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let n = r.get_count(MIN_SCALAR_BYTES)?;
        let mut counters = Vec::with_capacity(n);
        for _ in 0..n {
            let name = get_name(r)?;
            let shard = get_shard(r)?;
            let value = r.get_varint()?;
            counters.push(ScalarMetric { name, shard, value });
        }
        let n = r.get_count(MIN_SCALAR_BYTES)?;
        let mut gauges = Vec::with_capacity(n);
        for _ in 0..n {
            let name = get_name(r)?;
            let shard = get_shard(r)?;
            let value = r.get_varint()?;
            gauges.push(ScalarMetric { name, shard, value });
        }
        let n = r.get_count(MIN_HIST_BYTES)?;
        let mut histograms = Vec::with_capacity(n);
        for _ in 0..n {
            let name = get_name(r)?;
            let shard = get_shard(r)?;
            let mut hist = HistogramSnapshot::default();
            for b in hist.buckets.iter_mut() {
                *b = r.get_varint()?;
            }
            hist.sum = r.get_varint()?;
            histograms.push(SnapshotHistogram { name, shard, hist });
        }
        Ok(MetricsSnapshot {
            counters,
            gauges,
            histograms,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pint_obs::MetricsRegistry;

    fn sample_snapshot() -> MetricsSnapshot {
        let r = MetricsRegistry::new();
        r.counter("c_total").add(41);
        r.counter_shard("c_sharded_total", 3).add(7);
        r.gauge("depth").set(u64::MAX);
        let h = r.histogram_shard("lat_ns", 0);
        for v in [0u64, 1, 100, 65_000, u64::MAX] {
            h.record(v);
        }
        r.gauge_group("grp", &["a", "b"]).set_all(&[5, 6]);
        r.snapshot()
    }

    #[test]
    fn request_and_report_roundtrip() {
        let req = MetricsRequest { request_id: 99 };
        let decoded = MetricsMsg::decode(&req.encode()).unwrap();
        assert_eq!(decoded, MetricsMsg::Request(req));

        let report = MetricsReport {
            request_id: 99,
            source: 12,
            snapshot: sample_snapshot(),
        };
        let decoded = MetricsMsg::decode(&report.encode()).unwrap();
        assert_eq!(decoded, MetricsMsg::Report(report));
    }

    #[test]
    fn empty_snapshot_roundtrips() {
        let snap = MetricsSnapshot::default();
        assert_eq!(MetricsSnapshot::decode(&snap.encode()).unwrap(), snap);
    }

    #[test]
    fn hostile_bytes_never_panic() {
        let good = MetricsReport {
            request_id: 1,
            source: 2,
            snapshot: sample_snapshot(),
        }
        .encode();
        // Truncations at every length.
        for n in 0..good.len() {
            let _ = MetricsMsg::decode(&good[..n]);
        }
        // Single-byte corruptions.
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x5A;
            let _ = MetricsMsg::decode(&bad);
        }
    }

    #[test]
    fn oversized_name_rejected() {
        let snap = MetricsSnapshot {
            counters: vec![ScalarMetric {
                name: "x".repeat(MAX_METRIC_NAME + 1),
                shard: None,
                value: 1,
            }],
            gauges: vec![],
            histograms: vec![],
        };
        let mut bytes = Vec::new();
        // Encode by hand (encode_into debug-asserts on long names).
        let mut w = WireWriter::new(&mut bytes);
        w.put_varint(1);
        w.put_varint(snap.counters[0].name.len() as u64);
        w.put_bytes(snap.counters[0].name.as_bytes());
        w.put_u8(0);
        w.put_varint(1);
        w.put_varint(0);
        w.put_varint(0);
        assert!(MetricsSnapshot::decode(&bytes).is_err());
    }

    #[test]
    fn hostile_count_is_bounded() {
        // Claims 2^32 histograms with 2 bytes of input.
        let mut bytes = Vec::new();
        let mut w = WireWriter::new(&mut bytes);
        w.put_varint(0);
        w.put_varint(0);
        w.put_varint(u32::MAX as u64);
        assert!(MetricsSnapshot::decode(&bytes).is_err());
    }
}
