//! The edge-ingest frames: sequence-numbered digest batches and their
//! acknowledgments.
//!
//! An edge process batches raw [`DigestReport`]s and ships them
//! upstream as [`DigestBatch`] frames tagged with a stable source id
//! and a per-source sequence number. The receiver replies with one
//! [`BatchAck`] per batch, echoing the sequence number and reporting
//! whether the batch was applied or recognized as a retransmitted
//! duplicate. Together they give the path *at-least-once* delivery:
//! the sender retransmits anything unacknowledged, the receiver
//! deduplicates by `(source, seq)`, and every batch reaches exactly
//! one terminal state — applied, shed by the sender, or deduplicated.

use crate::error::WireError;
use crate::frame::{frame_into, FrameType};
use crate::rw::{WireReader, WireWriter};
use crate::{WireDecode, WireEncode};
use pint_core::DigestReport;
use std::collections::BTreeSet;

/// Upper bound on reports in one batch. A batch is one ingest unit,
/// not a bulk transfer: the bound keeps a hostile count from driving
/// allocation and keeps retransmissions cheap.
pub const MAX_BATCH_REPORTS: usize = 65_536;

/// Trace context stamped onto a [`DigestBatch`] by its sender: the
/// origin clock reading and a per-batch trace id. Receivers echo it
/// into their flight recorder and subtract `origin_ns` from their own
/// clock for a true edge→receiver end-to-end latency sample.
///
/// Carried as a *versioned trailing extension* of the batch payload
/// (tag byte then fields), so decoders that predate it — which stop at
/// the last report — still parse extension-less frames, and encoders
/// that omit it produce frames byte-identical to the old layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Sender clock reading when the batch was sealed (ns). Only
    /// comparable to receiver clocks sharing a time base (one
    /// `VirtualClock`, or hosts with synchronized monotonic-ish
    /// clocks); the latency histogram is honest about that in its docs.
    pub origin_ns: u64,
    /// Sender-chosen id tying this batch's events together across
    /// tiers. Deterministic senders derive it from `(source, seq)`.
    pub trace_id: u64,
}

/// Extension tag for [`TraceContext`] trailing bytes. Future
/// extensions take the next tag; unknown tags are a decode error (the
/// version byte gates layout changes, tags gate optional suffixes).
const EXT_TRACE_CONTEXT: u8 = 1;

/// A sequence-numbered batch of raw digest reports from one edge
/// source (the payload of [`FrameType::DigestBatch`]).
///
/// Wire layout: source id (varint), sequence number (varint), report
/// count (varint), then the reports, then optionally a trailing
/// [`TraceContext`] extension (tag byte `1`, origin timestamp varint,
/// trace id varint). Sequence numbers start at 1 and are per-source
/// monotonic; receivers deduplicate on `(source, seq)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DigestBatch {
    /// Stable identifier of the producing edge process.
    pub source: u64,
    /// Per-source sequence number (first batch is 1).
    pub seq: u64,
    /// The digests, in the order the edge recorded them.
    pub reports: Vec<DigestReport>,
    /// Optional sender-stamped trace context (`None` on frames from
    /// senders that predate tracing, and on untraced senders).
    pub trace: Option<TraceContext>,
}

impl DigestBatch {
    /// Wraps this batch in a complete [`FrameType::DigestBatch`] frame.
    pub fn to_frame_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        frame_into(FrameType::DigestBatch, self, &mut out);
        out
    }
}

impl WireEncode for DigestBatch {
    fn encode_into(&self, out: &mut Vec<u8>) {
        let mut w = WireWriter::new(out);
        w.put_varint(self.source);
        w.put_varint(self.seq);
        w.put_varint(self.reports.len() as u64);
        for report in &self.reports {
            report.encode_into(out);
        }
        if let Some(trace) = &self.trace {
            let mut w = WireWriter::new(out);
            w.put_u8(EXT_TRACE_CONTEXT);
            w.put_varint(trace.origin_ns);
            w.put_varint(trace.trace_id);
        }
    }
}

impl WireDecode for DigestBatch {
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let source = r.get_varint()?;
        let seq = r.get_varint()?;
        // A minimal report is 5 bytes (four 1-byte varints + a
        // zero-lane digest); validate the count against the remaining
        // input before any allocation.
        let count = r.get_count(5)?;
        if count > MAX_BATCH_REPORTS {
            return Err(WireError::Invalid("too many reports in one batch"));
        }
        let mut reports = Vec::with_capacity(count);
        for _ in 0..count {
            reports.push(DigestReport::decode_from(r)?);
        }
        // Trailing extension: absent on old-version frames (payload
        // ends at the last report), present when the sender stamped a
        // trace context. `decode` enforces exact consumption, so the
        // extension must be read here, not ignored.
        let trace = if r.remaining() > 0 {
            match r.get_u8()? {
                EXT_TRACE_CONTEXT => Some(TraceContext {
                    origin_ns: r.get_varint()?,
                    trace_id: r.get_varint()?,
                }),
                _ => return Err(WireError::Invalid("unknown digest batch extension")),
            }
        } else {
            None
        };
        Ok(DigestBatch {
            source,
            seq,
            reports,
            trace,
        })
    }
}

/// Out-of-order sequence numbers remembered per source before a
/// [`SourceDedup`] window compacts by abandoning its oldest gap.
pub const DEDUP_WINDOW: usize = 1_024;

/// Exact per-source sequence dedup that tolerates *permanent* gaps —
/// the receiver side of the at-least-once batch protocol.
///
/// A forwarder under overload sheds batches, so a receiver must never
/// wait for a sequence number that will never arrive: freshness is
/// "not at or below the contiguous floor, and not among the
/// out-of-order seqs already seen". The out-of-order set is bounded;
/// past [`DEDUP_WINDOW`] entries the floor advances over the oldest
/// gap (an abandoned seq that does arrive later is then reported as a
/// duplicate — the conservative side: accounting stays exact, data is
/// never double-applied).
///
/// This lives in `pint-wire` because every consumer of the protocol
/// needs it: the fleet's `DigestServer`/`FleetAggregator` deduplicate
/// live streams, and `pint-store` restore paths replay persisted
/// batches through the same window so a crash mid-batch (or a
/// checkpoint overlapping the delta chain) never double-applies.
#[derive(Debug, Default, Clone)]
pub struct SourceDedup {
    /// Every seq `<= contiguous` has been seen (or abandoned).
    contiguous: u64,
    /// Seen seqs above the floor (out-of-order arrivals).
    above: BTreeSet<u64>,
}

impl SourceDedup {
    /// An empty window (no sequence numbers seen).
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one arrival; `true` if this `(source, seq)` is fresh.
    pub fn observe(&mut self, seq: u64) -> bool {
        if seq <= self.contiguous || self.above.contains(&seq) {
            return false;
        }
        self.above.insert(seq);
        while self.above.remove(&(self.contiguous + 1)) {
            self.contiguous += 1;
        }
        while self.above.len() > DEDUP_WINDOW {
            // Abandon the oldest gap: jump the floor to the smallest
            // out-of-order seq and re-compact.
            if let Some(&lo) = self.above.iter().next() {
                self.contiguous = lo;
                self.above.remove(&lo);
                while self.above.remove(&(self.contiguous + 1)) {
                    self.contiguous += 1;
                }
            }
        }
        true
    }

    /// The contiguous floor: every seq at or below it has been seen or
    /// abandoned.
    pub fn floor(&self) -> u64 {
        self.contiguous
    }

    /// Out-of-order seqs currently remembered above the floor.
    pub fn pending_above(&self) -> usize {
        self.above.len()
    }

    /// The out-of-order seqs above the floor, ascending. Together with
    /// [`floor`](Self::floor) this is the window's *exact* state — what
    /// a checkpoint persists so a restore can rebuild the window
    /// without covering gaps that were never seen.
    pub fn seen_above(&self) -> impl Iterator<Item = u64> + '_ {
        self.above.iter().copied()
    }

    /// Raises the floor to at least `seq` (no-op when already past
    /// it), compacting any remembered seqs the new floor swallows.
    /// Restore paths use this to prime the window from a checkpoint's
    /// coverage so deltas the checkpoint subsumes dedup as duplicates.
    pub fn advance_floor(&mut self, seq: u64) {
        if seq <= self.contiguous {
            return;
        }
        self.contiguous = seq;
        self.above = self.above.split_off(&(seq + 1));
        while self.above.remove(&(self.contiguous + 1)) {
            self.contiguous += 1;
        }
    }
}

/// What a receiver did with an acknowledged batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckStatus {
    /// First delivery: the batch was fed downstream.
    Applied,
    /// A retransmission of a batch already applied (or already
    /// abandoned): dropped by the receiver's sequence dedup.
    Duplicate,
}

/// The payload of [`FrameType::BatchAck`]: the echoed sequence number
/// and the receiver's verdict.
///
/// Acks travel on the same connection as the batches; source identity
/// is implied by the connection, so only the sequence number is echoed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchAck {
    /// The acknowledged batch's sequence number.
    pub seq: u64,
    /// Applied or duplicate.
    pub status: AckStatus,
}

impl BatchAck {
    /// Wraps this ack in a complete [`FrameType::BatchAck`] frame.
    pub fn to_frame_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        frame_into(FrameType::BatchAck, self, &mut out);
        out
    }
}

impl WireEncode for BatchAck {
    fn encode_into(&self, out: &mut Vec<u8>) {
        let mut w = WireWriter::new(out);
        w.put_varint(self.seq);
        w.put_u8(match self.status {
            AckStatus::Applied => 0,
            AckStatus::Duplicate => 1,
        });
    }
}

impl WireDecode for BatchAck {
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let seq = r.get_varint()?;
        let status = match r.get_u8()? {
            0 => AckStatus::Applied,
            1 => AckStatus::Duplicate,
            _ => return Err(WireError::Invalid("unknown ack status")),
        };
        Ok(BatchAck { seq, status })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_frame;
    use pint_core::Digest;

    fn sample_batch() -> DigestBatch {
        let reports = (0..5u64)
            .map(|i| {
                let mut d = Digest::new(2);
                d.set(0, i.wrapping_mul(0x9E37));
                d.set(1, !i);
                DigestReport::new(i % 3, 1_000 + i, d, 5, 40 + i)
            })
            .collect();
        DigestBatch {
            source: 17,
            seq: 3,
            reports,
            trace: None,
        }
    }

    #[test]
    fn batch_round_trips_through_its_frame() {
        let batch = sample_batch();
        let bytes = batch.to_frame_bytes();
        let (ty, payload) = parse_frame(&bytes).unwrap();
        assert_eq!(ty, FrameType::DigestBatch);
        assert_eq!(DigestBatch::decode(payload).unwrap(), batch);
    }

    #[test]
    fn ack_round_trips_through_its_frame() {
        for status in [AckStatus::Applied, AckStatus::Duplicate] {
            let ack = BatchAck {
                seq: u64::MAX,
                status,
            };
            let bytes = ack.to_frame_bytes();
            let (ty, payload) = parse_frame(&bytes).unwrap();
            assert_eq!(ty, FrameType::BatchAck);
            assert_eq!(BatchAck::decode(payload).unwrap(), ack);
        }
    }

    #[test]
    fn trace_context_extension_round_trips() {
        let mut batch = sample_batch();
        batch.trace = Some(TraceContext {
            origin_ns: 1_234_567_890,
            trace_id: 0xDEAD_BEEF_u64,
        });
        let bytes = batch.to_frame_bytes();
        let (ty, payload) = parse_frame(&bytes).unwrap();
        assert_eq!(ty, FrameType::DigestBatch);
        assert_eq!(DigestBatch::decode(payload).unwrap(), batch);
    }

    #[test]
    fn extension_less_frames_decode_with_no_trace_context() {
        // A traced batch's payload minus the extension bytes is exactly
        // what a pre-tracing sender emits; it must decode cleanly with
        // `trace: None` and be byte-identical to the untraced encoding.
        let untraced = sample_batch();
        let mut traced = untraced.clone();
        traced.trace = Some(TraceContext {
            origin_ns: 7,
            trace_id: 9,
        });
        let old_bytes = untraced.encode();
        let new_bytes = traced.encode();
        assert!(new_bytes.len() > old_bytes.len());
        assert_eq!(&new_bytes[..old_bytes.len()], &old_bytes[..]);
        let decoded = DigestBatch::decode(&old_bytes).unwrap();
        assert_eq!(decoded.trace, None);
        assert_eq!(decoded, untraced);
    }

    #[test]
    fn unknown_extension_tags_are_rejected() {
        let mut bytes = sample_batch().encode();
        bytes.push(0xEE); // future extension tag this decoder predates
        assert!(matches!(
            DigestBatch::decode(&bytes),
            Err(WireError::Invalid(_))
        ));
    }

    #[test]
    fn hostile_report_counts_are_rejected_before_allocation() {
        let mut bytes = Vec::new();
        let mut w = WireWriter::new(&mut bytes);
        w.put_varint(1); // source
        w.put_varint(1); // seq
        w.put_varint(u64::MAX); // count with no backing bytes
        assert!(matches!(
            DigestBatch::decode(&bytes),
            Err(WireError::CountTooLarge { .. })
        ));
    }

    #[test]
    fn oversized_but_backed_report_counts_are_rejected() {
        // Physically back the count with 5 bytes per claimed report so
        // the count guard passes; the explicit batch bound must still
        // reject it.
        let claimed = (MAX_BATCH_REPORTS + 1) as u64;
        let mut bytes = Vec::new();
        let mut w = WireWriter::new(&mut bytes);
        w.put_varint(1);
        w.put_varint(1);
        w.put_varint(claimed);
        bytes.resize(bytes.len() + (claimed as usize) * 5, 0);
        assert!(matches!(
            DigestBatch::decode(&bytes),
            Err(WireError::Invalid(_))
        ));
    }

    #[test]
    fn dedup_is_exact_in_order() {
        let mut d = SourceDedup::new();
        for seq in 1..=100u64 {
            assert!(d.observe(seq), "first sight of {seq}");
            assert!(!d.observe(seq), "immediate dup of {seq}");
        }
        assert_eq!(d.pending_above(), 0, "in-order stream fully compacts");
        assert_eq!(d.floor(), 100);
    }

    #[test]
    fn dedup_tolerates_gaps_and_reorders() {
        let mut d = SourceDedup::new();
        assert!(d.observe(2), "gap: 1 was shed");
        assert!(d.observe(4));
        assert!(!d.observe(2), "reordered dup");
        assert!(d.observe(3), "late arrival in the gap is fresh");
        assert!(!d.observe(4));
        assert!(d.observe(1), "the shed seq arriving after all is fresh");
        assert_eq!(d.floor(), 4, "gap closed: everything compacts");
    }

    #[test]
    fn dedup_window_compacts_by_abandoning_oldest_gap() {
        let mut d = SourceDedup::new();
        // Seq 1 never arrives; fill far past the window.
        for seq in 2..(DEDUP_WINDOW as u64 + 100) {
            assert!(d.observe(seq));
        }
        assert!(
            d.pending_above() <= DEDUP_WINDOW,
            "window bounded: {} entries",
            d.pending_above()
        );
        // The abandoned seq is now conservatively a duplicate.
        assert!(!d.observe(1), "abandoned gap reports duplicate");
    }

    #[test]
    fn dedup_floor_priming_swallows_covered_seqs() {
        let mut d = SourceDedup::new();
        assert!(d.observe(12), "out-of-order arrival above the floor");
        d.advance_floor(10);
        assert_eq!(d.floor(), 10);
        assert!(!d.observe(3), "covered by the primed floor");
        assert!(!d.observe(10), "the floor itself is covered");
        assert!(!d.observe(12), "remembered arrival survives priming");
        assert!(d.observe(11), "first uncovered seq is fresh");
        assert_eq!(d.floor(), 12, "11 bridges the gap to remembered 12");
        // Priming below the current floor is a no-op.
        d.advance_floor(1);
        assert_eq!(d.floor(), 12);
    }

    #[test]
    fn truncation_and_corruption_never_panic() {
        let mut batch = sample_batch();
        batch.trace = Some(TraceContext {
            origin_ns: u64::MAX,
            trace_id: 1,
        });
        let bytes = batch.encode();
        let mut untraced = batch.clone();
        untraced.trace = None;
        let ext_boundary = untraced.encode().len();
        for cut in 0..bytes.len() {
            match DigestBatch::decode(&bytes[..cut]) {
                // The one legal truncation: cutting off the whole
                // trailing extension leaves a valid pre-tracing frame.
                Ok(b) => assert_eq!((cut, b), (ext_boundary, untraced.clone())),
                Err(_) => assert_ne!(cut, ext_boundary),
            }
        }
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x5A;
            let _ = DigestBatch::decode(&bad); // Err or Ok, never a panic
        }
        let ack = BatchAck {
            seq: 300,
            status: AckStatus::Applied,
        }
        .encode();
        for cut in 0..ack.len() {
            assert!(BatchAck::decode(&ack[..cut]).is_err(), "cut at {cut}");
        }
    }
}
