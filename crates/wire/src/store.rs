//! Codecs for the durable store (`pint-store`): the versioned
//! superblock that heads every log file and the snapshot/delta records
//! the log holds.
//!
//! ## On-disk layout (store version 1)
//!
//! A store file is a superblock followed by an append-only run of
//! checksummed records:
//!
//! ```text
//! offset  size  field
//! 0       8     magic        "PINTSTOR"
//! 8       4     length of the superblock payload, u32 little-endian
//! 12      4     CRC-32 (IEEE) of the superblock payload
//! 16      n     superblock payload (version byte first — see below)
//! ...           records, each: [u32 LE length][u32 LE CRC][payload]
//! ```
//!
//! The length/CRC framing is the *file* layer and lives in
//! `pint-store`; this module owns the payload codecs, so the store
//! shares `pint-wire`'s hostile-input discipline: counts are validated
//! against remaining bytes before any allocation, varints are bounded,
//! and decoding never panics. A torn final record (a crash mid-write)
//! is detected by the CRC and truncated on open; a superblock whose
//! version byte is newer than [`STORE_VERSION`] is rejected whole with
//! [`WireError::UnsupportedVersion`] — record layouts may change
//! between versions, so there is no partial forward parsing.
//!
//! Record payloads come in two kinds:
//!
//! * [`StoreRecord::Delta`] — one applied [`DigestBatch`], stamped with
//!   the epoch it was applied under. Replaying deltas through the same
//!   recorder factory rebuilds recorder state exactly.
//! * [`StoreRecord::Checkpoint`] — an opaque full-state payload (a
//!   collector's encoded `CollectorSnapshot`, a fleet tier's encoded
//!   `SnapshotFrame`) plus the per-source sequence floors it covers,
//!   so a restore that seeds from the checkpoint can prime its dedup
//!   state and never double-apply a delta the checkpoint already
//!   contains. The payload is opaque *here* because the snapshot
//!   codecs live above this crate (`pint-collector`); the store only
//!   needs to carry and checksum them.

use crate::batch::{DigestBatch, SourceDedup};
use crate::error::WireError;
use crate::rw::{WireReader, WireWriter};
use crate::{WireDecode, WireEncode};

/// Magic heading every store file.
pub const STORE_MAGIC: [u8; 8] = *b"PINTSTOR";

/// Highest store-format version this build reads and writes.
pub const STORE_VERSION: u8 = 1;

/// What a store log holds — informational, so tooling can tell a
/// collector journal from a forwarder spill without decoding records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreKind {
    /// A collector's journal: checkpoints + applied-delta chain.
    Collector,
    /// A fleet aggregator's journal: applied snapshot frames + digest
    /// batches.
    Fleet,
    /// A forwarder's overflow spill: delta batches only.
    Spill,
}

impl StoreKind {
    fn to_byte(self) -> u8 {
        match self {
            StoreKind::Collector => 0,
            StoreKind::Fleet => 1,
            StoreKind::Spill => 2,
        }
    }

    fn from_byte(b: u8) -> Result<Self, WireError> {
        match b {
            0 => Ok(StoreKind::Collector),
            1 => Ok(StoreKind::Fleet),
            2 => Ok(StoreKind::Spill),
            _ => Err(WireError::Invalid("unknown store kind")),
        }
    }
}

/// The versioned header payload of a store file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Superblock {
    /// What this log holds.
    pub kind: StoreKind,
    /// Who wrote it (collector id / forwarder source) — informational.
    pub source: u64,
    /// Creation timestamp (ns on the writer's clock).
    pub created_ns: u64,
    /// Times this log has been rewritten by compaction. Zero means the
    /// delta chain is complete from the log's origin, so a restore can
    /// replay it end-to-end for state byte-identical to a process that
    /// never crashed; non-zero means leading deltas were dropped in
    /// favor of a checkpoint.
    pub compactions: u64,
}

impl Superblock {
    /// A fresh (never-compacted) superblock.
    pub fn new(kind: StoreKind, source: u64, created_ns: u64) -> Self {
        Self {
            kind,
            source,
            created_ns,
            compactions: 0,
        }
    }
}

impl WireEncode for Superblock {
    fn encode_into(&self, out: &mut Vec<u8>) {
        let mut w = WireWriter::new(out);
        w.put_u8(STORE_VERSION);
        w.put_u8(self.kind.to_byte());
        w.put_varint(self.source);
        w.put_varint(self.created_ns);
        w.put_varint(self.compactions);
    }
}

impl WireDecode for Superblock {
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let version = r.get_u8()?;
        if version > STORE_VERSION {
            return Err(WireError::UnsupportedVersion {
                found: version,
                supported: STORE_VERSION,
            });
        }
        let kind = StoreKind::from_byte(r.get_u8()?)?;
        let source = r.get_varint()?;
        let created_ns = r.get_varint()?;
        let compactions = r.get_varint()?;
        Ok(Self {
            kind,
            source,
            created_ns,
            compactions,
        })
    }
}

/// Exact delta coverage a checkpoint claims for one source: a
/// serialized [`SourceDedup`] window.
///
/// The split between `floor` and `above` matters: a forwarder's stream
/// can have *permanent* gaps (shed batches) and *transient* ones (a
/// batch lost in transit that the at-least-once protocol will
/// retransmit). Coverage must say exactly which seqs the checkpoint's
/// payload contains — a plain "highest seq" floor would swallow
/// transient gaps, and a post-restore retransmission of a never-applied
/// batch would dedup as a duplicate and its digests would be lost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoveredSource {
    /// The delta source (ingest shard index, forwarder source id, …).
    pub source: u64,
    /// Every seq at or below this is contained in the checkpoint.
    pub floor: u64,
    /// Out-of-order seqs above the floor also contained (ascending).
    pub above: Vec<u64>,
}

impl CoveredSource {
    /// Gap-free coverage: seqs `1..=floor` and nothing above. Right for
    /// sources whose delta seqs are assigned contiguously by the writer
    /// itself (a collector's ingest shards).
    pub fn floor_only(source: u64, floor: u64) -> Self {
        Self {
            source,
            floor,
            above: Vec::new(),
        }
    }

    /// Captures a dedup window's exact state as coverage.
    pub fn from_dedup(source: u64, dedup: &SourceDedup) -> Self {
        Self {
            source,
            floor: dedup.floor(),
            above: dedup.seen_above().collect(),
        }
    }

    /// Whether `seq` is contained in this coverage.
    pub fn covers(&self, seq: u64) -> bool {
        seq <= self.floor || self.above.binary_search(&seq).is_ok()
    }

    /// Primes a dedup window to exactly this coverage: seqs covered
    /// here dedup as duplicates, every other seq (including gaps below
    /// the highest covered one) stays fresh.
    pub fn prime(&self, dedup: &mut SourceDedup) {
        dedup.advance_floor(self.floor);
        for &seq in &self.above {
            dedup.observe(seq);
        }
    }

    /// The highest seq this coverage contains.
    pub fn max_seq(&self) -> u64 {
        self.above.last().copied().unwrap_or(self.floor)
    }
}

/// A full-state checkpoint: an opaque snapshot payload plus the
/// per-source delta coverage it subsumes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointRecord {
    /// Whose state this is (collector id for fleet journals, 0 for a
    /// collector's own journal).
    pub source: u64,
    /// The epoch the checkpoint was taken at.
    pub epoch: u64,
    /// Exact per-source coverage, captured by the checkpoint *taker* at
    /// snapshot time (not derived by the log writer — deltas can land
    /// in the file between the snapshot and this record, and those are
    /// deliberately not covered). A restore seeding from this
    /// checkpoint primes its [`SourceDedup`] windows with these, so
    /// deltas the snapshot already contains dedup as duplicates instead
    /// of double-applying, while uncovered deltas still replay.
    pub covered: Vec<CoveredSource>,
    /// The encoded snapshot (opaque at this layer; the tier that wrote
    /// it owns the codec).
    pub payload: Vec<u8>,
}

/// Record kind bytes (first payload byte of every record).
const RECORD_DELTA: u8 = 1;
const RECORD_CHECKPOINT: u8 = 2;

/// One log record: a delta batch or a full-state checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreRecord {
    /// One applied digest batch, stamped with its epoch.
    Delta {
        /// Epoch index the batch was applied under.
        epoch: u64,
        /// The batch itself (source, seq, reports).
        batch: DigestBatch,
    },
    /// A full-state checkpoint.
    Checkpoint(CheckpointRecord),
}

impl StoreRecord {
    /// The epoch stamp of this record.
    pub fn epoch(&self) -> u64 {
        match self {
            StoreRecord::Delta { epoch, .. } => *epoch,
            StoreRecord::Checkpoint(c) => c.epoch,
        }
    }
}

impl WireEncode for StoreRecord {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            StoreRecord::Delta { epoch, batch } => {
                WireWriter::new(out).put_u8(RECORD_DELTA);
                WireWriter::new(out).put_varint(*epoch);
                batch.encode_into(out);
            }
            StoreRecord::Checkpoint(c) => {
                let mut w = WireWriter::new(out);
                w.put_u8(RECORD_CHECKPOINT);
                w.put_varint(c.source);
                w.put_varint(c.epoch);
                w.put_varint(c.covered.len() as u64);
                for cov in &c.covered {
                    w.put_varint(cov.source);
                    w.put_varint(cov.floor);
                    w.put_varint(cov.above.len() as u64);
                    for &seq in &cov.above {
                        w.put_varint(seq);
                    }
                }
                w.put_varint(c.payload.len() as u64);
                w.put_bytes(&c.payload);
            }
        }
    }
}

impl WireDecode for StoreRecord {
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            RECORD_DELTA => {
                let epoch = r.get_varint()?;
                let batch = DigestBatch::decode_from(r)?;
                Ok(StoreRecord::Delta { epoch, batch })
            }
            RECORD_CHECKPOINT => {
                let source = r.get_varint()?;
                let epoch = r.get_varint()?;
                // Each covered entry is at least 3 bytes (source +
                // floor + above count); reject counts the remaining
                // input cannot back before allocating.
                let n = r.get_count(3)?;
                let mut covered = Vec::with_capacity(n);
                for _ in 0..n {
                    let source = r.get_varint()?;
                    let floor = r.get_varint()?;
                    let n_above = r.get_count(1)?;
                    let mut above = Vec::with_capacity(n_above);
                    for _ in 0..n_above {
                        above.push(r.get_varint()?);
                    }
                    // Encoders emit ascending seqs (BTreeSet order);
                    // normalize anyway so `covers`' binary search is
                    // sound on arbitrary CRC-valid bytes.
                    above.sort_unstable();
                    above.dedup();
                    covered.push(CoveredSource {
                        source,
                        floor,
                        above,
                    });
                }
                let len = r.get_count(1)?;
                let payload = r.get_bytes(len)?.to_vec();
                Ok(StoreRecord::Checkpoint(CheckpointRecord {
                    source,
                    epoch,
                    covered,
                    payload,
                }))
            }
            _ => Err(WireError::Invalid("unknown store record kind")),
        }
    }
}

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the
/// per-record checksum of the store layer. Table-driven; the table is
/// built at compile time, so the crate stays dependency-free.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = build_crc_table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use pint_core::{Digest, DigestReport};

    fn sample_batch() -> DigestBatch {
        let mut d = Digest::new(2);
        d.set(0, 0xFEED);
        DigestBatch {
            source: 7,
            seq: 42,
            reports: vec![
                DigestReport::new(1, 100, d.clone(), 5, 1_000),
                DigestReport::new(2, 101, d, 5, 1_001),
            ],
            trace: None,
        }
    }

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn superblock_roundtrips() {
        let sb = Superblock {
            kind: StoreKind::Collector,
            source: 9,
            created_ns: 1_234_567,
            compactions: 3,
        };
        assert_eq!(Superblock::decode(&sb.encode()).unwrap(), sb);
    }

    #[test]
    fn future_version_superblock_is_rejected_whole() {
        let mut bytes = Superblock::new(StoreKind::Fleet, 1, 2).encode();
        bytes[0] = STORE_VERSION + 1;
        assert_eq!(
            Superblock::decode(&bytes),
            Err(WireError::UnsupportedVersion {
                found: STORE_VERSION + 1,
                supported: STORE_VERSION,
            })
        );
    }

    #[test]
    fn records_roundtrip() {
        let delta = StoreRecord::Delta {
            epoch: 5,
            batch: sample_batch(),
        };
        assert_eq!(StoreRecord::decode(&delta.encode()).unwrap(), delta);

        let ckpt = StoreRecord::Checkpoint(CheckpointRecord {
            source: 3,
            epoch: 8,
            covered: vec![
                CoveredSource {
                    source: 0,
                    floor: 17,
                    above: vec![20, 23],
                },
                CoveredSource::floor_only(1, 4),
            ],
            payload: vec![0xAB; 100],
        });
        assert_eq!(StoreRecord::decode(&ckpt.encode()).unwrap(), ckpt);
        assert_eq!(ckpt.epoch(), 8);
        assert_eq!(delta.epoch(), 5);
    }

    #[test]
    fn covered_source_tracks_exact_dedup_state() {
        let mut d = SourceDedup::new();
        for seq in [1u64, 2, 3, 5, 9] {
            assert!(d.observe(seq));
        }
        let cov = CoveredSource::from_dedup(7, &d);
        assert_eq!(cov.source, 7);
        assert_eq!(cov.floor, 3);
        assert_eq!(cov.above, vec![5, 9]);
        assert_eq!(cov.max_seq(), 9);
        for seq in [1u64, 3, 5, 9] {
            assert!(cov.covers(seq));
        }
        for seq in [4u64, 6, 7, 8, 10] {
            assert!(!cov.covers(seq), "gap seq {seq} must stay uncovered");
        }

        // Priming a fresh window reproduces the window exactly: the
        // transient gaps (4, 6–8) stay fresh, covered seqs dedup.
        let mut primed = SourceDedup::new();
        cov.prime(&mut primed);
        assert!(!primed.observe(3), "covered seq dedups");
        assert!(!primed.observe(9), "covered out-of-order seq dedups");
        assert!(primed.observe(4), "gap below max stays fresh");
        assert!(primed.observe(6), "gap below max stays fresh");
    }

    #[test]
    fn truncated_and_flipped_records_never_panic() {
        let good = StoreRecord::Checkpoint(CheckpointRecord {
            source: 1,
            epoch: 2,
            covered: vec![CoveredSource {
                source: 4,
                floor: 9,
                above: vec![12],
            }],
            payload: vec![1, 2, 3],
        })
        .encode();
        for cut in 0..good.len() {
            let _ = StoreRecord::decode(&good[..cut]); // must not panic
        }
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0xFF;
            let _ = StoreRecord::decode(&bad); // must not panic
        }
        let delta = StoreRecord::Delta {
            epoch: 1,
            batch: sample_batch(),
        }
        .encode();
        for cut in 0..delta.len() {
            let _ = StoreRecord::decode(&delta[..cut]);
        }
    }

    #[test]
    fn hostile_counts_are_rejected_before_allocation() {
        // A checkpoint declaring 2^60 covered pairs backed by 4 bytes.
        let mut bytes = vec![RECORD_CHECKPOINT];
        {
            let mut w = WireWriter::new(&mut bytes);
            w.put_varint(0); // source
            w.put_varint(0); // epoch
            w.put_varint(1 << 60); // covered count
        }
        bytes.extend_from_slice(&[0, 0, 0, 0]);
        assert!(matches!(
            StoreRecord::decode(&bytes),
            Err(WireError::CountTooLarge { .. })
        ));

        // One covered entry declaring 2^50 above-seqs backed by 4 bytes.
        let mut bytes = vec![RECORD_CHECKPOINT];
        {
            let mut w = WireWriter::new(&mut bytes);
            w.put_varint(0); // source
            w.put_varint(0); // epoch
            w.put_varint(1); // covered count
            w.put_varint(3); // entry source
            w.put_varint(5); // entry floor
            w.put_varint(1 << 50); // above count
        }
        bytes.extend_from_slice(&[0, 0, 0, 0]);
        assert!(matches!(
            StoreRecord::decode(&bytes),
            Err(WireError::CountTooLarge { .. })
        ));
    }
}
