//! The unit of data a PINT sink hands to a collector.
//!
//! In the paper's architecture (Fig. 3) the sink extracts the digest from
//! each arriving packet and feeds it to the Recording Module in-process.
//! At production scale recording runs in a separate, sharded collector
//! (`pint-collector`), so the extraction result becomes an explicit,
//! self-describing value: everything the Recording Module needs to
//! reclassify the packet (the global hashes take the packet ID) and to
//! attribute it to per-flow state.

use crate::value::Digest;

/// One extracted digest, as shipped from a sink to a collector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DigestReport {
    /// Flow the packet belonged to (5-tuple hash or simulator flow ID).
    pub flow: u64,
    /// Packet identifier — the value every switch derived from headers
    /// (IPID, TCP checksum+seq, …; §4.1). Drives hash reclassification.
    pub pid: u64,
    /// The digest extracted from the packet.
    pub digest: Digest,
    /// Switch hops the packet traversed (the sink knows this from TTL or
    /// topology); recorders need `k` to recompute reservoir winners.
    ///
    /// Note: per-flow recorders fix `k` at construction (the paper's
    /// model — one recorder per (flow, path)), so a collector sizes the
    /// recorder from the flow's *first* report and later values are not
    /// re-examined. A mid-flow path-length change surfaces as decoder
    /// inconsistencies (§7) rather than a resize.
    pub path_len: u16,
    /// Sink timestamp (ns in simulation time or wall clock) — drives TTL
    /// eviction and windowed event detection downstream.
    pub ts: u64,
}

impl DigestReport {
    /// Convenience constructor.
    pub fn new(flow: u64, pid: u64, digest: Digest, path_len: u16, ts: u64) -> Self {
        Self {
            flow,
            pid,
            digest,
            path_len,
            ts,
        }
    }
}
