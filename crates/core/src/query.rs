//! The PINT query language and Query Engine (paper §3.3–3.4).
//!
//! A query is the tuple ⟨value, aggregation, bit-budget, optional:
//! space-budget, flow definition, frequency⟩. The operator registers
//! multiple queries plus a *global* bit budget; the Query Engine compiles
//! them into an **execution plan** — a probability distribution over query
//! *sets*, each set's cumulative bit budget fitting the global budget
//! (Fig. 3). Every switch evaluates the same selection hash on the packet
//! ID, so all switches run the same set on a given packet without
//! communication (§4.1).

use crate::hash::GlobalHash;
use crate::value::MetadataKind;

/// The three aggregation types (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggregationKind {
    /// Fold across the packet's path (max/min/sum/product).
    PerPacket,
    /// Values fixed per (flow, switch); decode across packets
    /// (path tracing).
    StaticPerFlow,
    /// Per-(flow, switch) value streams; sample across packets
    /// (latency quantiles).
    DynamicPerFlow,
}

/// How flows are keyed for per-flow queries (§3.3 "flow definition").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FlowDefinition {
    /// The classic 5-tuple.
    #[default]
    FiveTuple,
    /// Source IP only.
    SourceIp,
    /// Destination IP only.
    DestinationIp,
    /// Source/destination pair.
    IpPair,
}

/// One telemetry query (§3.3).
#[derive(Debug, Clone)]
pub struct QuerySpec {
    /// Stable identifier (also salts the query's hash family).
    pub id: u32,
    /// Human-readable name.
    pub name: String,
    /// The value the query collects.
    pub value: MetadataKind,
    /// The aggregation type.
    pub aggregation: AggregationKind,
    /// Per-packet bits this query consumes when selected.
    pub bit_budget: u32,
    /// Optional per-flow storage budget in bytes (Recording Module).
    pub space_budget: Option<usize>,
    /// Flow definition for per-flow queries.
    pub flow: FlowDefinition,
    /// Desired fraction of packets carrying this query (0, 1].
    pub frequency: f64,
}

impl QuerySpec {
    /// Convenience constructor with 5-tuple flows and frequency 1.
    pub fn new(
        id: u32,
        name: &str,
        value: MetadataKind,
        aggregation: AggregationKind,
        bit_budget: u32,
    ) -> Self {
        Self {
            id,
            name: name.to_owned(),
            value,
            aggregation,
            bit_budget,
            space_budget: None,
            flow: FlowDefinition::FiveTuple,
            frequency: 1.0,
        }
    }

    /// Sets the query frequency (fraction of packets; §3.3).
    pub fn with_frequency(mut self, f: f64) -> Self {
        assert!(f > 0.0 && f <= 1.0, "frequency must be in (0,1]");
        self.frequency = f;
        self
    }

    /// Sets the per-flow space budget.
    pub fn with_space_budget(mut self, bytes: usize) -> Self {
        self.space_budget = Some(bytes);
        self
    }
}

/// Errors from plan compilation.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// A single query's bit budget exceeds the global budget.
    QueryTooWide {
        /// The offending query.
        query: u32,
        /// Its bit budget.
        bits: u32,
        /// The global budget.
        global: u32,
    },
    /// The requested frequencies cannot be met even with perfect packing.
    Infeasible {
        /// Total requested bit-fraction (Σ freq·bits / global).
        demand: f64,
    },
    /// No queries were supplied.
    Empty,
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::QueryTooWide {
                query,
                bits,
                global,
            } => write!(
                f,
                "query {query} needs {bits} bits, above the global budget {global}"
            ),
            PlanError::Infeasible { demand } => write!(
                f,
                "requested frequencies need {demand:.2}× the available digest capacity"
            ),
            PlanError::Empty => write!(f, "no queries supplied"),
        }
    }
}

impl std::error::Error for PlanError {}

/// A compiled execution plan: disjoint probabilities over query subsets
/// (Fig. 3's table, e.g. `{Q2}: 0.4, {Q3}: 0.3, {Q1,Q4}: 0.3`).
#[derive(Debug, Clone)]
pub struct ExecutionPlan {
    /// (query-ID set, probability) entries; probabilities sum to ≤ 1.
    sets: Vec<(Vec<u32>, f64)>,
    /// Selection hash shared by all switches.
    selector: GlobalHash,
    global_budget: u32,
}

impl ExecutionPlan {
    /// The query sets and their probabilities.
    pub fn sets(&self) -> &[(Vec<u32>, f64)] {
        &self.sets
    }

    /// The global per-packet bit budget.
    pub fn global_budget(&self) -> u32 {
        self.global_budget
    }

    /// Returns the query set to run on packet `pid` — identical at every
    /// switch and at the sink, by the global-hash argument of §4.1.
    pub fn select(&self, pid: u64) -> &[u32] {
        let u = self.selector.unit1(pid);
        let mut acc = 0.0;
        for (set, p) in &self.sets {
            acc += p;
            if u < acc {
                return set;
            }
        }
        &[]
    }

    /// Fraction of packets on which query `id` runs under this plan.
    pub fn effective_frequency(&self, id: u32) -> f64 {
        self.sets
            .iter()
            .filter(|(set, _)| set.contains(&id))
            .map(|(_, p)| p)
            .sum()
    }
}

/// Compiles queries into execution plans.
#[derive(Debug, Clone)]
pub struct QueryEngine {
    seed: u64,
}

impl QueryEngine {
    /// Creates an engine; `seed` keys the selection hash that switches and
    /// sink share.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// Compiles an execution plan: a water-filling packer that repeatedly
    /// groups the queries with the largest unmet frequency into a set
    /// fitting the global budget and assigns it the limiting probability.
    ///
    /// Exact for the paper's configurations (e.g. Fig. 11: path@1 +
    /// latency@15/16 + HPCC@1/16 under 16 bits → `{path, latency}: 15/16,
    /// {path, hpcc}: 1/16`).
    pub fn plan(
        &self,
        queries: &[QuerySpec],
        global_budget: u32,
    ) -> Result<ExecutionPlan, PlanError> {
        if queries.is_empty() {
            return Err(PlanError::Empty);
        }
        for q in queries {
            if q.bit_budget > global_budget {
                return Err(PlanError::QueryTooWide {
                    query: q.id,
                    bits: q.bit_budget,
                    global: global_budget,
                });
            }
        }
        let demand: f64 = queries
            .iter()
            .map(|q| q.frequency * f64::from(q.bit_budget))
            .sum::<f64>()
            / f64::from(global_budget);
        let mut residual: Vec<(usize, f64)> = queries
            .iter()
            .enumerate()
            .map(|(i, q)| (i, q.frequency))
            .collect();
        let mut sets: Vec<(Vec<u32>, f64)> = Vec::new();
        let mut total_p = 0.0;
        const EPS: f64 = 1e-12;
        while residual.iter().any(|&(_, r)| r > EPS) {
            // Greedy: largest residual first, pack while bits fit.
            residual.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
            let mut bits = 0u32;
            let mut chosen: Vec<usize> = Vec::new();
            for &(i, r) in &residual {
                if r > EPS && bits + queries[i].bit_budget <= global_budget {
                    bits += queries[i].bit_budget;
                    chosen.push(i);
                }
            }
            if chosen.is_empty() {
                break;
            }
            // The set runs until its most constrained member is satisfied.
            let p_set = chosen
                .iter()
                .map(|&i| residual.iter().find(|&&(j, _)| j == i).expect("chosen").1)
                .fold(f64::INFINITY, f64::min)
                .min(1.0 - total_p);
            if p_set <= EPS {
                break;
            }
            for (j, r) in residual.iter_mut() {
                if chosen.contains(j) {
                    *r -= p_set;
                }
            }
            let mut ids: Vec<u32> = chosen.iter().map(|&i| queries[i].id).collect();
            ids.sort_unstable();
            sets.push((ids, p_set));
            total_p += p_set;
            if 1.0 - total_p <= EPS {
                break;
            }
        }
        if residual.iter().any(|&(_, r)| r > 1e-9) {
            // Greedy packing can strand capacity on symmetric demands
            // (e.g. three queries at 2/3 each in two lanes). When every
            // query has the same bit budget the problem is exactly
            // fractional scheduling on ⌊global/b⌋ identical machines, and
            // McNaughton's wrap-around rule is optimal.
            if let Some(plan) = self.mcnaughton(queries, global_budget) {
                return Ok(plan);
            }
            return Err(PlanError::Infeasible { demand });
        }
        Ok(ExecutionPlan {
            sets,
            selector: GlobalHash::new(self.seed ^ 0x51EC_7104),
            global_budget,
        })
    }

    /// McNaughton wrap-around schedule for uniform bit budgets: lay each
    /// query's frequency on a `[0,1)` timeline across `m = ⌊global/b⌋`
    /// lanes; every maximal timeline segment becomes one query set.
    fn mcnaughton(&self, queries: &[QuerySpec], global_budget: u32) -> Option<ExecutionPlan> {
        let b = queries.first()?.bit_budget;
        if queries.iter().any(|q| q.bit_budget != b) {
            return None;
        }
        let m = (global_budget / b) as f64;
        let total: f64 = queries.iter().map(|q| q.frequency).sum();
        if total > m + 1e-9 || queries.iter().any(|q| q.frequency > 1.0 + 1e-12) {
            return None;
        }
        // Each query occupies [start, start+freq) on the wrapped timeline.
        let mut intervals: Vec<(f64, f64, u32)> = Vec::new(); // (start, end, id) unwrapped
        let mut cursor = 0.0f64;
        for q in queries {
            let s = cursor;
            let e = cursor + q.frequency;
            // Split on wrap points so each piece lives inside one lane.
            let (mut lo, hi) = (s, e);
            while lo < hi - 1e-12 {
                let lane_end = lo.floor() + 1.0;
                let piece_end = hi.min(lane_end);
                intervals.push((lo % 1.0, (piece_end - lo) + lo % 1.0, q.id));
                lo = piece_end;
            }
            cursor = e;
        }
        // Breakpoints on [0,1).
        let mut cuts: Vec<f64> = intervals
            .iter()
            .flat_map(|&(s, e, _)| [s, e.min(1.0)])
            .chain([0.0, 1.0])
            .collect();
        cuts.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        cuts.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        let mut sets = Vec::new();
        for w in cuts.windows(2) {
            let (lo, hi) = (w[0], w[1]);
            if hi - lo < 1e-12 {
                continue;
            }
            let mid = (lo + hi) / 2.0;
            let mut ids: Vec<u32> = intervals
                .iter()
                .filter(|&&(s, e, _)| s <= mid && mid < e)
                .map(|&(_, _, id)| id)
                .collect();
            ids.sort_unstable();
            ids.dedup();
            if !ids.is_empty() {
                debug_assert!(ids.len() as f64 <= m + 1e-9);
                sets.push((ids, hi - lo));
            }
        }
        Some(ExecutionPlan {
            sets,
            selector: GlobalHash::new(self.seed ^ 0x51EC_7104),
            global_budget,
        })
    }

    /// Like [`Self::plan`], but when the requested frequencies are
    /// infeasible, scales all of them down uniformly until they fit and
    /// returns the applied scale factor (1.0 when no scaling was needed).
    pub fn plan_best_effort(
        &self,
        queries: &[QuerySpec],
        global_budget: u32,
    ) -> Result<(ExecutionPlan, f64), PlanError> {
        match self.plan(queries, global_budget) {
            Ok(p) => Ok((p, 1.0)),
            Err(PlanError::Infeasible { demand }) => {
                // Leave 1% slack so greedy packing rounding cannot tip the
                // scaled instance back over the edge.
                let scale = (1.0 / demand) * 0.99;
                let scaled: Vec<QuerySpec> = queries
                    .iter()
                    .map(|q| {
                        let mut q = q.clone();
                        q.frequency = (q.frequency * scale).max(1e-9);
                        q
                    })
                    .collect();
                self.plan(&scaled, global_budget).map(|p| (p, scale))
            }
            Err(e) => Err(e),
        }
    }
}

/// The application classes PINT enables, per aggregation mode
/// (paper Table 2). Documentation-level enumeration used by examples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UseCase {
    /// Congestion control with in-network support (per-packet).
    CongestionControl,
    /// Diagnosis of short-lived congestion events (per-packet).
    CongestionAnalysis,
    /// Determine network state, i.e. queue status (per-packet).
    NetworkTomography,
    /// Determine under-utilized network elements (per-packet).
    PowerManagement,
    /// Detect sudden changes in network status (per-packet).
    RealTimeAnomalyDetection,
    /// Detect the path taken by a flow (static per-flow).
    PathTracing,
    /// Identify unwanted paths taken by a flow (static per-flow).
    RoutingMisconfiguration,
    /// Check for policy violations (static per-flow).
    PathConformance,
    /// Load balance traffic based on network status (dynamic per-flow).
    UtilizationAwareRouting,
    /// Determine links processing more traffic (dynamic per-flow).
    LoadImbalance,
    /// Determine flows experiencing high latency (dynamic per-flow).
    NetworkTroubleshooting,
}

impl UseCase {
    /// The aggregation mode Table 2 assigns to this use case.
    pub fn aggregation(self) -> AggregationKind {
        use UseCase::*;
        match self {
            CongestionControl
            | CongestionAnalysis
            | NetworkTomography
            | PowerManagement
            | RealTimeAnomalyDetection => AggregationKind::PerPacket,
            PathTracing | RoutingMisconfiguration | PathConformance => {
                AggregationKind::StaticPerFlow
            }
            UtilizationAwareRouting | LoadImbalance | NetworkTroubleshooting => {
                AggregationKind::DynamicPerFlow
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(id: u32, bits: u32, freq: f64) -> QuerySpec {
        QuerySpec::new(
            id,
            &format!("q{id}"),
            MetadataKind::SwitchId,
            AggregationKind::StaticPerFlow,
            bits,
        )
        .with_frequency(freq)
    }

    #[test]
    fn single_query_full_frequency() {
        let engine = QueryEngine::new(1);
        let plan = engine.plan(&[q(1, 8, 1.0)], 16).unwrap();
        assert_eq!(plan.sets().len(), 1);
        assert!((plan.effective_frequency(1) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn two_eight_bit_queries_share_sixteen_bits() {
        // §3.4: "if the global bit-budget is 16 bits, we can run two
        // 8-bit-budget queries on the same packet".
        let engine = QueryEngine::new(2);
        let plan = engine.plan(&[q(1, 8, 1.0), q(2, 8, 1.0)], 16).unwrap();
        assert!((plan.effective_frequency(1) - 1.0).abs() < 1e-9);
        assert!((plan.effective_frequency(2) - 1.0).abs() < 1e-9);
        assert_eq!(plan.sets().len(), 1);
        assert_eq!(plan.sets()[0].0, vec![1, 2]);
    }

    #[test]
    fn fig11_configuration() {
        // Path tracing on all packets, latency on 15/16, HPCC on 1/16,
        // 16-bit global budget (§6.4).
        let engine = QueryEngine::new(3);
        let queries = [
            q(1, 8, 1.0),         // path
            q(2, 8, 15.0 / 16.0), // latency
            q(3, 8, 1.0 / 16.0),  // HPCC
        ];
        let plan = engine.plan(&queries, 16).unwrap();
        assert!((plan.effective_frequency(1) - 1.0).abs() < 1e-9);
        assert!((plan.effective_frequency(2) - 15.0 / 16.0).abs() < 1e-9);
        assert!((plan.effective_frequency(3) - 1.0 / 16.0).abs() < 1e-9);
        // Two sets: {path, latency} at 15/16 and {path, hpcc} at 1/16.
        assert_eq!(plan.sets().len(), 2);
    }

    #[test]
    fn selection_matches_probabilities() {
        let engine = QueryEngine::new(4);
        let queries = [q(1, 8, 1.0), q(2, 8, 0.5), q(3, 8, 0.5)];
        let plan = engine.plan(&queries, 16).unwrap();
        let n = 200_000u64;
        let mut counts = std::collections::HashMap::new();
        for pid in 0..n {
            for &id in plan.select(pid) {
                *counts.entry(id).or_insert(0u64) += 1;
            }
        }
        for q in &queries {
            let measured = *counts.get(&q.id).unwrap_or(&0) as f64 / n as f64;
            assert!(
                (measured - q.frequency).abs() < 0.01,
                "query {}: measured {measured} vs {}",
                q.id,
                q.frequency
            );
        }
    }

    #[test]
    fn selection_is_deterministic() {
        let engine = QueryEngine::new(5);
        let plan = engine.plan(&[q(1, 8, 0.7), q(2, 8, 0.9)], 16).unwrap();
        for pid in 0..1000 {
            assert_eq!(plan.select(pid), plan.select(pid));
        }
    }

    #[test]
    fn too_wide_query_rejected() {
        let engine = QueryEngine::new(6);
        let err = engine.plan(&[q(1, 32, 1.0)], 16).unwrap_err();
        assert!(matches!(err, PlanError::QueryTooWide { bits: 32, .. }));
    }

    #[test]
    fn infeasible_frequencies_rejected() {
        // Three full-frequency 8-bit queries cannot fit 16 bits.
        let engine = QueryEngine::new(7);
        let err = engine
            .plan(&[q(1, 8, 1.0), q(2, 8, 1.0), q(3, 8, 1.0)], 16)
            .unwrap_err();
        assert!(matches!(err, PlanError::Infeasible { .. }));
    }

    #[test]
    fn empty_queries_rejected() {
        let engine = QueryEngine::new(8);
        assert_eq!(engine.plan(&[], 16).unwrap_err(), PlanError::Empty);
    }

    #[test]
    fn mixed_widths_pack() {
        // 8+4+4 into 16 at full frequency: all coexist.
        let engine = QueryEngine::new(9);
        let plan = engine
            .plan(&[q(1, 8, 1.0), q(2, 4, 1.0), q(3, 4, 1.0)], 16)
            .unwrap();
        for id in 1..=3 {
            assert!((plan.effective_frequency(id) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn best_effort_scales_infeasible_plans() {
        let engine = QueryEngine::new(10);
        // Demand 1.5× the capacity.
        let queries = [q(1, 8, 1.0), q(2, 8, 1.0), q(3, 8, 1.0)];
        let (plan, scale) = engine.plan_best_effort(&queries, 16).unwrap();
        assert!(scale < 0.7 && scale > 0.6, "scale {scale}");
        for id in 1..=3 {
            let f = plan.effective_frequency(id);
            assert!((f - scale).abs() < 0.02, "query {id}: {f} vs {scale}");
        }
    }

    #[test]
    fn best_effort_passthrough_when_feasible() {
        let engine = QueryEngine::new(11);
        let (_, scale) = engine.plan_best_effort(&[q(1, 8, 1.0)], 16).unwrap();
        assert_eq!(scale, 1.0);
    }

    #[test]
    fn table2_aggregation_modes() {
        assert_eq!(
            UseCase::CongestionControl.aggregation(),
            AggregationKind::PerPacket
        );
        assert_eq!(
            UseCase::PathTracing.aggregation(),
            AggregationKind::StaticPerFlow
        );
        assert_eq!(
            UseCase::NetworkTroubleshooting.aggregation(),
            AggregationKind::DynamicPerFlow
        );
    }
}
