//! Value approximation codecs (paper §4.3).
//!
//! Encoding an exact numeric value (e.g. a 32-bit latency) may exceed the
//! per-packet bit budget. PINT compresses values at the cost of a bounded
//! error:
//!
//! * [`MultiplicativeCodec`] — writes `a = [log_{(1+ε)²} v]`, decoding to a
//!   `(1+ε)`-multiplicative approximation. With randomized rounding
//!   (`[·]_R`) the expected decoded value equals the true value, removing
//!   systematic error — this is the variant HPCC-over-PINT uses with
//!   `ε = 0.025` in 8 bits.
//! * [`AdditiveCodec`] — writes `a = [v / 2Δ]`, trading `⌊log₂ Δ⌋` bits for
//!   a `±Δ` additive error.
//!
//! Randomized counting (Morris counters) for sum/product aggregation lives
//! in [`pint_sketches::morris`].

/// Multiplicative (logarithmic) value compression.
///
/// Values in `[v_min, v_max]` are mapped to integer codes
/// `a = round(log_base(v / v_min))` with `base = (1+ε)²`; decoding returns
/// `v_min · base^a`, within a `(1+ε)²ᐟ²`-factor of the original. Zero gets
/// the reserved code 0 (values below `v_min` clamp to `v_min`).
#[derive(Debug, Clone, Copy)]
pub struct MultiplicativeCodec {
    eps: f64,
    /// ln((1+ε)²)
    ln_base: f64,
    v_min: f64,
    /// Number of usable codes (1..=levels map the value range; 0 = zero).
    levels: u32,
}

impl MultiplicativeCodec {
    /// Creates a codec for values in `[v_min, v_max]` with parameter `ε`.
    pub fn new(eps: f64, v_min: f64, v_max: f64) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "ε must be in (0,1)");
        assert!(v_min > 0.0 && v_max > v_min, "need 0 < v_min < v_max");
        let ln_base = 2.0 * (1.0 + eps).ln();
        let levels = ((v_max / v_min).ln() / ln_base).ceil() as u32 + 1;
        Self {
            eps,
            ln_base,
            v_min,
            levels,
        }
    }

    /// The ε parameter.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Number of bits needed per encoded value (including the zero code).
    pub fn bits(&self) -> u32 {
        let codes = self.levels + 1; // code 0 reserved for value 0
        (64 - u64::from(codes - 1).leading_zeros()).max(1)
    }

    /// Deterministic encoding: nearest-integer rounding of the logarithm.
    pub fn encode(&self, v: f64) -> u32 {
        if v <= 0.0 {
            return 0;
        }
        let x = (v.max(self.v_min) / self.v_min).ln() / self.ln_base;
        (x.round() as u32).min(self.levels - 1) + 1
    }

    /// Randomized rounding `[·]_R` (§4.3): floor or ceil of the logarithm
    /// chosen with probability proportional to the fractional part, driven
    /// by the externally supplied uniform draw `u ∈ [0,1)` (in the data
    /// plane this comes from a global hash of the packet ID, so the
    /// Inference Module can reproduce nothing — only the *expectation*
    /// matters).
    ///
    /// The decoded expectation equals `v` exactly in log-space and is
    /// unbiased up to `O(ε²)` in value space, eliminating systematic error.
    pub fn encode_randomized(&self, v: f64, u: f64) -> u32 {
        if v <= 0.0 {
            return 0;
        }
        let x = (v.max(self.v_min) / self.v_min).ln() / self.ln_base;
        let lo = x.floor();
        let frac = x - lo;
        let rounded = if u < frac { lo + 1.0 } else { lo };
        (rounded as u32).min(self.levels - 1) + 1
    }

    /// Decodes a code back to a representative value.
    pub fn decode(&self, code: u32) -> f64 {
        if code == 0 {
            return 0.0;
        }
        self.v_min * ((code - 1) as f64 * self.ln_base).exp()
    }

    /// The guaranteed multiplicative error factor of deterministic
    /// encoding: `decode(encode(v)) / v ∈ [1/f, f]` with `f = (1+ε)`.
    pub fn error_factor(&self) -> f64 {
        1.0 + self.eps
    }
}

/// Additive value compression: `a = [v / 2Δ]`, decode `= 2Δ·a` (§4.3).
#[derive(Debug, Clone, Copy)]
pub struct AdditiveCodec {
    delta: f64,
}

impl AdditiveCodec {
    /// Creates a codec with additive error target `Δ > 0`.
    pub fn new(delta: f64) -> Self {
        assert!(delta > 0.0, "Δ must be positive");
        Self { delta }
    }

    /// The error target Δ.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Bits saved versus an exact encoding: `⌊log₂ Δ⌋` (paper §4.3).
    pub fn bits_saved(&self) -> u32 {
        self.delta.log2().floor().max(0.0) as u32
    }

    /// Bits needed to encode values up to `v_max`.
    pub fn bits_for(&self, v_max: f64) -> u32 {
        let max_code = (v_max / (2.0 * self.delta)).round() as u64;
        (64 - max_code.leading_zeros()).max(1)
    }

    /// Encodes `v ≥ 0`.
    pub fn encode(&self, v: f64) -> u64 {
        (v.max(0.0) / (2.0 * self.delta)).round() as u64
    }

    /// Decodes back to the bucket center.
    pub fn decode(&self, code: u64) -> f64 {
        2.0 * self.delta * code as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn multiplicative_error_bounded() {
        let c = MultiplicativeCodec::new(0.025, 1.0, 4.0e9);
        for &v in &[1.0, 3.0, 100.0, 12_345.0, 1.0e6, 3.9e9] {
            let d = c.decode(c.encode(v));
            let ratio = d / v;
            assert!(
                (1.0 / 1.026..=1.026).contains(&ratio),
                "v={v} decoded={d} ratio={ratio}"
            );
        }
    }

    #[test]
    fn paper_bit_budgets() {
        // §4.3: "if we want to compress a 32-bit value into 16 bits, we can
        // set ε = 0.0025" and "in practice we just need 8 bits to support
        // ε = 0.025" (for HPCC's utilization range).
        let c16 = MultiplicativeCodec::new(0.0025, 1.0, u32::MAX as f64);
        assert!(c16.bits() <= 16, "ε=0.0025 needs {} bits", c16.bits());
        // HPCC utilization: U ∈ [~1e-3, ~4] suffices for the algorithm.
        let c8 = MultiplicativeCodec::new(0.025, 1.0e-3, 4.0);
        assert!(c8.bits() <= 8, "ε=0.025 needs {} bits", c8.bits());
    }

    #[test]
    fn zero_roundtrips() {
        let c = MultiplicativeCodec::new(0.1, 1.0, 1000.0);
        assert_eq!(c.encode(0.0), 0);
        assert_eq!(c.decode(0), 0.0);
    }

    #[test]
    fn randomized_rounding_is_unbiased() {
        let c = MultiplicativeCodec::new(0.05, 1.0, 1.0e6);
        let mut rng = SmallRng::seed_from_u64(8);
        // Pick a value square in the middle of two codes.
        let v = 777.0;
        let n = 200_000;
        let mut sum = 0.0;
        for _ in 0..n {
            sum += c.decode(c.encode_randomized(v, rng.gen()));
        }
        let mean = sum / n as f64;
        // Unbiased in log space ⇒ value-space bias < ε²; allow 1%.
        assert!((mean / v - 1.0).abs() < 0.01, "mean {mean} vs {v}");
    }

    #[test]
    fn randomized_rounding_within_one_level() {
        let c = MultiplicativeCodec::new(0.05, 1.0, 1.0e6);
        let det = c.encode(777.0);
        for u in [0.0, 0.3, 0.7, 0.999] {
            let r = c.encode_randomized(777.0, u);
            assert!((i64::from(r) - i64::from(det)).abs() <= 1);
        }
    }

    #[test]
    fn codes_are_monotone() {
        let c = MultiplicativeCodec::new(0.02, 1.0, 1.0e9);
        let mut prev = 0;
        for i in 0..60 {
            let v = 1.5f64.powi(i);
            let code = c.encode(v);
            assert!(code >= prev);
            prev = code;
        }
    }

    #[test]
    fn additive_error_bounded() {
        let c = AdditiveCodec::new(8.0);
        for v in [0.0, 5.0, 100.0, 12_345.0] {
            let d = c.decode(c.encode(v));
            assert!((d - v).abs() <= 8.0, "v={v} decoded={d}");
        }
    }

    #[test]
    fn additive_bits() {
        let c = AdditiveCodec::new(8.0);
        assert_eq!(c.bits_saved(), 3);
        // 16-bit timestamps with Δ=8 → codes up to 2^16/16 = 4096,
        // which needs 13 bits — 3 fewer than exact.
        assert_eq!(c.bits_for(65_535.0), 13);
    }

    #[test]
    fn multiplicative_clamps_out_of_range() {
        let c = MultiplicativeCodec::new(0.025, 1.0, 1000.0);
        let top = c.encode(1.0e12);
        assert_eq!(top, c.encode(1.0e9), "values above v_max clamp");
        assert!(c.decode(top) <= 1100.0 * 1.05);
    }
}
