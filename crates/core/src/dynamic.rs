//! Dynamic per-flow aggregation (paper §4.1, Example 1).
//!
//! Collects statistics of values that vary across packets — e.g. the median
//! or tail latency of a (flow, switch) pair. The Encoding Module runs a
//! distributed reservoir-sampling process driven by the global hash
//! `g(pid, i) ≤ 1/i`, so each packet carries the value of one uniformly
//! chosen hop. The Recording Module recomputes the winning hop offline and
//! feeds the (decompressed) value into a per-hop store: either every sample
//! (plain `PINT`) or a KLL sketch (`PINT_S`, bounding per-flow space per
//! Theorem 1).
//!
//! Values are compressed to the query's bit budget with the multiplicative
//! codec of §4.3 before being written onto the digest.

use crate::approx::MultiplicativeCodec;
use crate::hash::HashFamily;
use crate::value::Digest;
use pint_sketches::{ExactQuantiles, KllSketch, SlidingKll};

/// Switch-side encoder for dynamic per-flow aggregation.
///
/// In P4 this is four pipeline stages: compute the value (e.g. hop
/// latency), compress it, compute `g`, and conditionally overwrite (§5).
#[derive(Debug, Clone)]
pub struct DynamicAggregator {
    family: HashFamily,
    codec: MultiplicativeCodec,
    bits: u32,
}

impl DynamicAggregator {
    /// Creates an aggregator with bit budget `bits`, compressing values in
    /// `[v_min, v_max]` multiplicatively.
    ///
    /// The codec's ε is derived from the budget: with `bits` bits we can
    /// distinguish `2^bits − 1` levels over the value range, i.e.
    /// `ε = (v_max/v_min)^(1/(2·(2^bits−2))) − 1`.
    pub fn new(seed: u64, bits: u32, v_min: f64, v_max: f64) -> Self {
        assert!((1..=32).contains(&bits));
        let levels = (1u64 << bits) - 2; // code 0 reserved for zero
        let eps = ((v_max / v_min).ln() / (2.0 * levels as f64)).exp_m1();
        Self {
            family: HashFamily::new(seed, 0),
            codec: MultiplicativeCodec::new(eps.max(1e-9), v_min, v_max),
            bits,
        }
    }

    /// The value codec in use.
    pub fn codec(&self) -> &MultiplicativeCodec {
        &self.codec
    }

    /// The per-packet bit budget.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Encoding Module at hop `hop` (1-based): overwrite the digest lane
    /// `lane` with the compressed value iff the reservoir test fires.
    pub fn encode_hop(&self, pid: u64, hop: usize, value: f64, digest: &mut Digest, lane: usize) {
        if self.family.reservoir_writes(pid, hop) {
            // Randomized rounding driven by a hash of (pid, hop) so the
            // expectation is unbiased but fully reproducible.
            let u = self.family.h.unit2(pid, hop as u64);
            digest.set(lane, u64::from(self.codec.encode_randomized(value, u)));
        }
    }

    /// The hop whose value packet `pid` carries over a `k`-hop path.
    pub fn winner(&self, pid: u64, k: usize) -> usize {
        self.family.reservoir_winner(pid, k)
    }

    /// Decompresses a digest lane back to an approximate value.
    pub fn decode(&self, lane_value: u64) -> f64 {
        self.codec.decode(lane_value as u32)
    }
}

/// Per-hop storage backend for recorded samples.
#[derive(Debug, Clone)]
pub enum HopStore {
    /// Keep every sample (plain `PINT` in Fig. 9).
    Exact(ExactQuantiles),
    /// Keep a KLL sketch (`PINT_S` in Fig. 9).
    Sketch(KllSketch),
    /// Keep a sliding-window sketch reflecting only the most recent
    /// samples (§4.1: "we can use a sliding-window sketch … to reflect
    /// only the most recent measurements").
    Sliding(SlidingKll),
}

impl HopStore {
    fn update(&mut self, v: u64) {
        match self {
            HopStore::Exact(e) => e.update(v),
            HopStore::Sketch(s) => s.update(v),
            HopStore::Sliding(s) => s.update(v),
        }
    }

    fn quantile(&mut self, phi: f64) -> Option<u64> {
        match self {
            HopStore::Exact(e) => e.quantile(phi),
            HopStore::Sketch(s) => s.quantile(phi),
            HopStore::Sliding(s) => s.quantile(phi),
        }
    }

    fn count(&self) -> u64 {
        match self {
            HopStore::Exact(e) => e.count() as u64,
            HopStore::Sketch(s) => s.count(),
            HopStore::Sliding(s) => s.covered_items(),
        }
    }

    fn stored(&self) -> usize {
        match self {
            HopStore::Exact(e) => e.count(),
            HopStore::Sketch(s) => s.stored_items(),
            HopStore::Sliding(s) => s.stored_items(),
        }
    }

    /// The store's contents as a mergeable KLL sketch (code space).
    ///
    /// `Exact` stores replay their samples into a fresh sketch. `Sliding`
    /// stores are approximated by a quantile grid over the window (the
    /// window summary does not retain raw items); each grid point is
    /// inserted with weight `covered/m`, so the store contributes its
    /// true item count to cross-flow merges.
    fn to_kll(&self) -> KllSketch {
        match self {
            HopStore::Exact(e) => {
                let mut sk = KllSketch::with_seed(200, 0x51AB_0001);
                for &v in e.values() {
                    sk.update(v);
                }
                sk
            }
            HopStore::Sketch(s) => s.clone(),
            HopStore::Sliding(s) => {
                let mut sk = KllSketch::with_seed(200, 0x51AB_0002);
                let covered = s.covered_items();
                let m = (covered as usize).min(256);
                for i in 0..m {
                    let phi = (i as f64 + 0.5) / m as f64;
                    if let Some(v) = s.quantile(phi) {
                        // Spread the remainder over the first points so
                        // total weight equals `covered` exactly.
                        let w = covered / m as u64 + u64::from((i as u64) < covered % m as u64);
                        sk.update_weighted(v, w);
                    }
                }
                sk
            }
        }
    }
}

/// Recording + Inference module for one flow: splits arriving digests by
/// winning hop and answers per-hop quantile queries.
#[derive(Debug, Clone)]
pub struct DynamicRecorder {
    agg: DynamicAggregator,
    k: usize,
    hops: Vec<HopStore>,
    packets: u64,
}

impl DynamicRecorder {
    /// Creates a recorder storing every sample per hop.
    pub fn new_exact(agg: DynamicAggregator, k: usize) -> Self {
        let hops = (0..=k)
            .map(|_| HopStore::Exact(ExactQuantiles::new()))
            .collect();
        Self {
            agg,
            k,
            hops,
            packets: 0,
        }
    }

    /// Creates a recorder with a per-hop KLL sketch of roughly
    /// `bytes_per_hop` bytes (the paper splits the per-flow space budget
    /// evenly between the k sketches, §4.1). A `b`-bit digest occupies
    /// `b/8` bytes, so e.g. 100 bytes hold 100 digests at `b = 8` and 200
    /// at `b = 4`.
    pub fn new_sketched(agg: DynamicAggregator, k: usize, bytes_per_hop: usize) -> Self {
        let items = (bytes_per_hop * 8) / (agg.bits() as usize).max(1);
        let hops = (0..=k)
            .map(|_| HopStore::Sketch(KllSketch::with_item_budget(items.max(6))))
            .collect();
        Self {
            agg,
            k,
            hops,
            packets: 0,
        }
    }

    /// Creates a recorder whose per-hop state covers only the most recent
    /// `window` samples (chunked KLL; §4.1's sliding-window variant).
    pub fn new_sliding(agg: DynamicAggregator, k: usize, window: u64) -> Self {
        let hops = (0..=k)
            .map(|_| HopStore::Sliding(SlidingKll::new(window.max(16), 8, 64)))
            .collect();
        Self {
            agg,
            k,
            hops,
            packets: 0,
        }
    }

    /// Absorbs an extracted digest lane for packet `pid`.
    pub fn record(&mut self, pid: u64, digest: &Digest, lane: usize) {
        self.packets += 1;
        let hop = self.agg.winner(pid, self.k);
        self.hops[hop].update(digest.get(lane));
    }

    /// Estimated ϕ-quantile of the value stream observed at `hop`
    /// (1-based), decompressed to value space.
    pub fn quantile(&mut self, hop: usize, phi: f64) -> Option<f64> {
        assert!((1..=self.k).contains(&hop));
        let code = self.hops[hop].quantile(phi)?;
        Some(self.agg.decode(code))
    }

    /// Number of samples recorded for `hop`.
    pub fn samples_at(&self, hop: usize) -> u64 {
        self.hops[hop].count()
    }

    /// Total packets recorded.
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// Path length this recorder was built for.
    pub fn path_len(&self) -> usize {
        self.k
    }

    /// The aggregator (and therefore codec) this recorder decodes with.
    pub fn aggregator(&self) -> &DynamicAggregator {
        &self.agg
    }

    /// Total samples currently retained across all hop stores.
    pub fn stored_items(&self) -> usize {
        self.hops.iter().map(|h| h.stored()).sum()
    }

    /// Hop `hop`'s store as a mergeable *code-space* KLL sketch (decode
    /// merged quantiles with [`DynamicAggregator::decode`]).
    pub fn hop_sketch(&self, hop: usize) -> KllSketch {
        self.hops[hop].to_kll()
    }
}

/// Recording + Inference for the *frequent values* dynamic aggregation
/// (Theorem 2 / Appendix A.1): for each hop, report every value appearing
/// in at least a θ-fraction of that hop's stream, using one Space-Saving
/// summary per hop.
///
/// Values are carried verbatim on the digest (no codec) — the use case is
/// small categorical values such as egress port IDs or DSCP marks, which
/// fit the bit budget directly.
#[derive(Debug, Clone)]
pub struct FrequentValuesRecorder {
    family: HashFamily,
    k: usize,
    hops: Vec<pint_sketches::SpaceSaving>,
    packets: u64,
}

impl FrequentValuesRecorder {
    /// Creates a recorder with `counters` Space-Saving entries per hop
    /// (`counters = ⌈1/ε⌉` gives the Theorem 2 guarantee).
    pub fn new(seed: u64, k: usize, counters: usize) -> Self {
        Self {
            family: HashFamily::new(seed, 0),
            k,
            hops: (0..=k)
                .map(|_| pint_sketches::SpaceSaving::new(counters))
                .collect(),
            packets: 0,
        }
    }

    /// Switch-side rule (identical to the quantile query): hop `hop`
    /// overwrites lane `lane` with its raw value iff the reservoir fires.
    pub fn encode_hop(&self, pid: u64, hop: usize, value: u64, digest: &mut Digest, lane: usize) {
        if self.family.reservoir_writes(pid, hop) {
            digest.set(lane, value);
        }
    }

    /// Sink side: attribute the digest to the winning hop.
    pub fn record(&mut self, pid: u64, digest: &Digest, lane: usize) {
        self.packets += 1;
        let hop = self.family.reservoir_winner(pid, self.k);
        self.hops[hop].update(digest.get(lane));
    }

    /// Values estimated to appear in ≥ `theta` of hop `hop`'s stream,
    /// with their estimated fractions, sorted by decreasing frequency.
    pub fn frequent(&self, hop: usize, theta: f64) -> Vec<(u64, f64)> {
        assert!((1..=self.k).contains(&hop));
        let n = self.hops[hop].count().max(1) as f64;
        self.hops[hop]
            .heavy_hitters(theta)
            .into_iter()
            .map(|(v, c)| (v, c as f64 / n))
            .collect()
    }

    /// Samples recorded at `hop`.
    pub fn samples_at(&self, hop: usize) -> u64 {
        self.hops[hop].count()
    }

    /// Total packets recorded.
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// Path length this recorder was built for.
    pub fn path_len(&self) -> usize {
        self.k
    }

    /// Space-Saving counters currently allocated across all hops.
    pub fn stored_counters(&self) -> usize {
        self.hops.iter().map(|h| h.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Simulates a flow of `n` packets over a `k`-hop path where hop `i`'s
    /// latency is drawn from a per-hop distribution; returns (recorder,
    /// ground truth per hop).
    fn simulate(
        n: u64,
        k: usize,
        bits: u32,
        sketch_bytes: Option<usize>,
        seed: u64,
    ) -> (DynamicRecorder, Vec<ExactQuantiles>) {
        let agg = DynamicAggregator::new(seed, bits, 100.0, 1.0e7);
        let mut rec = match sketch_bytes {
            None => DynamicRecorder::new_exact(agg.clone(), k),
            Some(b) => DynamicRecorder::new_sketched(agg.clone(), k, b),
        };
        let mut truth: Vec<ExactQuantiles> = (0..=k).map(|_| ExactQuantiles::new()).collect();
        let mut rng = SmallRng::seed_from_u64(seed);
        for pid in 0..n {
            let mut digest = Digest::new(1);
            for hop in 1..=k {
                // Lognormal-ish hop latency: base per hop + occasional spike.
                let base = 500.0 * hop as f64;
                let v = if rng.gen_bool(0.05) {
                    base * rng.gen_range(10.0..50.0)
                } else {
                    base * rng.gen_range(0.8..1.2)
                };
                truth[hop].update(v as u64);
                agg.encode_hop(pid, hop, v, &mut digest, 0);
            }
            rec.record(pid, &digest, 0);
        }
        (rec, truth)
    }

    fn rel_err(est: f64, truth: f64) -> f64 {
        (est - truth).abs() / truth
    }

    #[test]
    fn samples_spread_evenly_over_hops() {
        let k = 5;
        let (rec, _) = simulate(10_000, k, 8, None, 1);
        for hop in 1..=k {
            let s = rec.samples_at(hop) as f64;
            let expect = 10_000.0 / k as f64;
            assert!(
                (s - expect).abs() < expect * 0.15,
                "hop {hop} got {s} samples"
            );
        }
    }

    #[test]
    fn median_estimation_accuracy() {
        let k = 5;
        let (mut rec, mut truth) = simulate(20_000, k, 8, None, 2);
        for hop in 1..=k {
            let est = rec.quantile(hop, 0.5).unwrap();
            let tru = truth[hop].quantile(0.5).unwrap() as f64;
            assert!(
                rel_err(est, tru) < 0.15,
                "hop {hop}: est {est} vs true {tru}"
            );
        }
    }

    #[test]
    fn tail_estimation_accuracy() {
        let k = 3;
        let (mut rec, mut truth) = simulate(50_000, k, 8, None, 3);
        for hop in 1..=k {
            let est = rec.quantile(hop, 0.99).unwrap();
            let tru = truth[hop].quantile(0.99).unwrap() as f64;
            assert!(
                rel_err(est, tru) < 0.35,
                "hop {hop}: p99 est {est} vs true {tru}"
            );
        }
    }

    #[test]
    fn coarser_budget_increases_error() {
        let k = 3;
        let (mut rec8, mut truth) = simulate(30_000, k, 8, None, 4);
        let (mut rec4, _) = simulate(30_000, k, 4, None, 4);
        let mut err8 = 0.0;
        let mut err4 = 0.0;
        for hop in 1..=k {
            let tru = truth[hop].quantile(0.5).unwrap() as f64;
            err8 += rel_err(rec8.quantile(hop, 0.5).unwrap(), tru);
            err4 += rel_err(rec4.quantile(hop, 0.5).unwrap(), tru);
        }
        assert!(
            err4 > err8,
            "4-bit error ({err4}) should exceed 8-bit error ({err8})"
        );
    }

    #[test]
    fn sketched_recorder_close_to_exact() {
        // Fig. 9 second row: a small sketch degrades accuracy only a little.
        let k = 3;
        let (mut exact, mut truth) = simulate(30_000, k, 8, None, 5);
        let (mut sk, _) = simulate(30_000, k, 8, Some(100), 5);
        for hop in 1..=k {
            let tru = truth[hop].quantile(0.5).unwrap() as f64;
            let ee = rel_err(exact.quantile(hop, 0.5).unwrap(), tru);
            let es = rel_err(sk.quantile(hop, 0.5).unwrap(), tru);
            assert!(es < ee + 0.25, "sketched err {es} vs exact err {ee}");
        }
    }

    #[test]
    fn empty_recorder() {
        let agg = DynamicAggregator::new(9, 8, 1.0, 1.0e6);
        let mut rec = DynamicRecorder::new_exact(agg, 4);
        assert!(rec.quantile(1, 0.5).is_none());
        assert_eq!(rec.packets(), 0);
    }

    #[test]
    fn sliding_recorder_tracks_recent_regime() {
        // A hop's latency regime shifts mid-flow: the sliding recorder
        // reports the new regime, the cumulative one blends both.
        let agg = DynamicAggregator::new(13, 8, 100.0, 1.0e7);
        let k = 3;
        let mut sliding = DynamicRecorder::new_sliding(agg.clone(), k, 2_000);
        let mut cumulative = DynamicRecorder::new_exact(agg.clone(), k);
        for pid in 0..60_000u64 {
            let mut digest = Digest::new(1);
            for hop in 1..=k {
                // First half: ~1µs; second half: ~10µs.
                let v = if pid < 30_000 { 1_000.0 } else { 10_000.0 };
                agg.encode_hop(pid, hop, v, &mut digest, 0);
            }
            sliding.record(pid, &digest, 0);
            cumulative.record(pid, &digest, 0);
        }
        let s = sliding.quantile(1, 0.5).unwrap();
        let c = cumulative.quantile(1, 0.5).unwrap();
        assert!(
            (s / 10_000.0 - 1.0).abs() < 0.1,
            "sliding median {s} should reflect the new regime"
        );
        // The cumulative store has both halves: median sits at the
        // boundary (either regime qualifies); tail p25 stays low.
        let c25 = cumulative.quantile(1, 0.25).unwrap();
        assert!(c25 < 2_000.0, "cumulative p25 {c25} must remember the past");
        let _ = c;
    }

    #[test]
    fn frequent_values_found_per_hop() {
        // Theorem 2: values appearing in ≥ θ of a hop's stream are
        // reported; values far below θ are not.
        let k = 4;
        let mut rec = FrequentValuesRecorder::new(11, k, 64);
        let mut rng = SmallRng::seed_from_u64(6);
        for pid in 0..40_000u64 {
            let mut digest = Digest::new(1);
            for hop in 1..=k {
                // Hop 2 sends value 99 in 60% of packets; others uniform.
                let v = if hop == 2 && rng.gen_bool(0.6) {
                    99
                } else {
                    rng.gen_range(0..50)
                };
                rec.encode_hop(pid, hop, v, &mut digest, 0);
            }
            rec.record(pid, &digest, 0);
        }
        let hh = rec.frequent(2, 0.4);
        assert_eq!(hh.first().map(|&(v, _)| v), Some(99), "hop 2's hot value");
        assert!(
            (hh[0].1 - 0.6).abs() < 0.08,
            "frequency estimate {}",
            hh[0].1
        );
        // Other hops must not report 99 as frequent.
        for hop in [1usize, 3, 4] {
            assert!(
                !rec.frequent(hop, 0.4).iter().any(|&(v, _)| v == 99),
                "hop {hop} wrongly reports 99"
            );
        }
    }

    #[test]
    fn frequent_values_sample_split() {
        let k = 5;
        let mut rec = FrequentValuesRecorder::new(3, k, 16);
        for pid in 0..10_000u64 {
            let mut digest = Digest::new(1);
            for hop in 1..=k {
                rec.encode_hop(pid, hop, hop as u64, &mut digest, 0);
            }
            rec.record(pid, &digest, 0);
        }
        for hop in 1..=k {
            let s = rec.samples_at(hop) as f64;
            assert!((s - 2_000.0).abs() < 300.0, "hop {hop}: {s} samples");
            // Static per-hop value: it is THE heavy hitter of its hop.
            assert_eq!(rec.frequent(hop, 0.9)[0].0, hop as u64);
        }
    }
}
