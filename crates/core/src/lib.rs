//! # PINT — Probabilistic In-band Network Telemetry
//!
//! A from-scratch reproduction of the PINT framework (Ben Basat et al.,
//! SIGCOMM 2020). PINT provides INT-like data-plane visibility while
//! bounding the per-packet overhead to a user-defined bit budget, by
//! probabilistically spreading telemetry information across the packets of
//! a flow.
//!
//! ## Architecture (paper Fig. 3)
//!
//! * The **Query Engine** ([`query`]) compiles user queries into an
//!   *execution plan*: a probability distribution over query sets whose
//!   cumulative bit budgets fit the global budget. All switches select the
//!   same set per packet via a global hash.
//! * The **Encoding Module** runs on switches and modifies a fixed-width
//!   [`value::Digest`] on each packet. Three aggregation types exist
//!   (§3.1): per-packet ([`perpacket`]), static per-flow
//!   ([`statictrace`], built on [`coding`]), and dynamic per-flow
//!   ([`dynamic`]).
//! * The **Recording Module** intercepts digests at the PINT sink and
//!   stores per-flow state off-switch ([`dynamic::DynamicRecorder`],
//!   [`statictrace::PathDecoder`]).
//! * The **Inference Module** answers queries from recorded data.
//!
//! ## Technique map (paper Table 3)
//!
//! | Use case           | Global hashes | Distributed coding | Value approx |
//! |--------------------|---------------|--------------------|--------------|
//! | Congestion control | —             | —                  | ✓ [`approx`] |
//! | Path tracing       | ✓ [`hash`]    | ✓ [`coding`]       | —            |
//! | Latency quantiles  | ✓ [`hash`]    | —                  | ✓ [`approx`] |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod approx;
pub mod coding;
pub mod dynamic;
pub mod hash;
pub mod loopdetect;
pub mod perpacket;
pub mod query;
pub mod recorder;
pub mod report;
pub mod statictrace;
pub mod value;

pub use approx::{AdditiveCodec, MultiplicativeCodec};
pub use coding::{BlockDecoder, FragmentCodec, HashedDecoder, LncDecoder, SchemeConfig};
pub use dynamic::{DynamicAggregator, DynamicRecorder, FrequentValuesRecorder};
pub use hash::{GlobalHash, HashFamily};
pub use loopdetect::{LoopDetector, LoopState, LoopVerdict};
pub use perpacket::{EventCounter, PerPacketAggregator, PerPacketOp};
pub use query::{AggregationKind, ExecutionPlan, QueryEngine, QuerySpec};
pub use recorder::{FlowRecorder, PathProgress, RecorderKind};
pub use report::DigestReport;
pub use statictrace::{PathDecoder, PathTracer, TracerConfig};
pub use value::{Digest, MetadataKind, TelemetryValue};

/// A packet identifier — any value unique per packet that all switches can
/// derive from headers (IPID, TCP sequence numbers, etc.; §4.1 and \[21\]).
pub type PacketId = u64;
