//! An object-safe facade over the per-flow Recording + Inference modules.
//!
//! The concrete recorders ([`DynamicRecorder`], [`PathDecoder`],
//! [`FrequentValuesRecorder`]) expose query-specific APIs. A collector
//! that multiplexes millions of flows across worker shards needs one
//! uniform, boxable interface: absorb a digest, account for memory, and
//! answer whichever inference queries the underlying recorder supports.
//! Unsupported queries return empty/`None` rather than panicking, so a
//! heterogeneous flow table (latency flows next to path-tracing flows) is
//! a `HashMap<FlowId, Box<dyn FlowRecorder>>` away.
//!
//! [`DynamicRecorder`]: crate::dynamic::DynamicRecorder
//! [`PathDecoder`]: crate::statictrace::PathDecoder
//! [`FrequentValuesRecorder`]: crate::dynamic::FrequentValuesRecorder

use crate::dynamic::{DynamicRecorder, FrequentValuesRecorder};
use crate::statictrace::PathDecoder;
use crate::value::Digest;
use pint_sketches::KllSketch;

/// Which aggregation a [`FlowRecorder`] implements (paper §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecorderKind {
    /// Dynamic per-flow values → per-hop quantiles (§4.1, Example 1).
    LatencyQuantiles,
    /// Static per-flow values → path reconstruction (§3.2, Example 2).
    PathTracing,
    /// Dynamic per-flow values → per-hop heavy hitters (Theorem 2).
    FrequentValues,
}

/// Progress of a path-tracing flow, as reported by
/// [`FlowRecorder::path_progress`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathProgress {
    /// Hops resolved to a unique switch so far.
    pub resolved: usize,
    /// Total hops on the flow's path.
    pub k: usize,
    /// The reconstructed path (hop 1..k) once complete.
    pub path: Option<Vec<u64>>,
    /// Digests inconsistent with the inferred path (routing change
    /// signal, §7).
    pub inconsistencies: u64,
}

impl PathProgress {
    /// `true` once every hop is uniquely resolved.
    pub fn is_complete(&self) -> bool {
        self.resolved == self.k
    }
}

/// The uniform per-flow Recording + Inference interface.
///
/// Object-safe: collectors hold `Box<dyn FlowRecorder>` per flow. All
/// query methods have defaults returning "not supported", so each
/// concrete recorder only overrides what it can answer.
pub trait FlowRecorder: Send {
    /// Absorbs one extracted digest for packet `pid`.
    fn absorb(&mut self, pid: u64, digest: &Digest);

    /// Packets absorbed so far.
    fn packets(&self) -> u64;

    /// Which aggregation this recorder implements.
    fn kind(&self) -> RecorderKind;

    /// Approximate bytes of recorder state held in memory — the quantity
    /// a collector's per-shard memory bound meters. Estimates are fine;
    /// they only need to scale with actual usage.
    fn state_bytes(&self) -> usize;

    /// ϕ-quantile of hop `hop`'s value stream, decompressed to value
    /// space. `None` when unsupported or no samples yet.
    fn quantile(&mut self, hop: usize, phi: f64) -> Option<f64> {
        let _ = (hop, phi);
        None
    }

    /// Per-hop sketches in *code space* (hop 1-based at index `hop`;
    /// index 0 unused), for cross-flow/cross-shard merging. Empty when
    /// unsupported.
    fn hop_sketches(&self) -> Vec<KllSketch> {
        Vec::new()
    }

    /// Path-reconstruction progress, for path-tracing recorders.
    fn path_progress(&self) -> Option<PathProgress> {
        None
    }

    /// Values appearing in ≥ `theta` of hop `hop`'s stream, with
    /// estimated fractions. Empty when unsupported.
    fn frequent(&self, hop: usize, theta: f64) -> Vec<(u64, f64)> {
        let _ = (hop, theta);
        Vec::new()
    }

    /// Digests contradicting the recorder's inference so far.
    fn inconsistencies(&self) -> u64 {
        0
    }
}

/// Digest lane the single-query recorders read (the workspace convention:
/// single-query digests put the value in lane 0).
const LANE: usize = 0;

impl FlowRecorder for DynamicRecorder {
    fn absorb(&mut self, pid: u64, digest: &Digest) {
        self.record(pid, digest, LANE);
    }

    fn packets(&self) -> u64 {
        DynamicRecorder::packets(self)
    }

    fn kind(&self) -> RecorderKind {
        RecorderKind::LatencyQuantiles
    }

    fn state_bytes(&self) -> usize {
        // 8 bytes per retained sample plus the per-hop store headers.
        self.stored_items() * 8 + (self.path_len() + 1) * 48
    }

    fn quantile(&mut self, hop: usize, phi: f64) -> Option<f64> {
        // The inherent method asserts the hop range; the trait contract
        // is no-panic (rules may probe hops this flow's path lacks).
        if !(1..=self.path_len()).contains(&hop) {
            return None;
        }
        DynamicRecorder::quantile(self, hop, phi)
    }

    fn hop_sketches(&self) -> Vec<KllSketch> {
        (0..=self.path_len()).map(|h| self.hop_sketch(h)).collect()
    }
}

impl FlowRecorder for PathDecoder {
    fn absorb(&mut self, pid: u64, digest: &Digest) {
        PathDecoder::absorb(self, pid, digest);
    }

    fn packets(&self) -> u64 {
        PathDecoder::packets(self)
    }

    fn kind(&self) -> RecorderKind {
        RecorderKind::PathTracing
    }

    fn state_bytes(&self) -> usize {
        // Candidate sets dominate until the path resolves: ~8 bytes per
        // live candidate per hop, plus fixed per-hop bookkeeping.
        let k = self.path_len();
        let cands: usize = (1..=k).map(|h| self.candidates_left(h)).sum();
        cands * 8 + (k + 1) * 64
    }

    fn path_progress(&self) -> Option<PathProgress> {
        Some(PathProgress {
            resolved: self.resolved(),
            k: self.path_len(),
            path: self.path(),
            inconsistencies: PathDecoder::inconsistencies(self),
        })
    }

    fn inconsistencies(&self) -> u64 {
        PathDecoder::inconsistencies(self)
    }
}

impl FlowRecorder for FrequentValuesRecorder {
    fn absorb(&mut self, pid: u64, digest: &Digest) {
        self.record(pid, digest, LANE);
    }

    fn packets(&self) -> u64 {
        FrequentValuesRecorder::packets(self)
    }

    fn kind(&self) -> RecorderKind {
        RecorderKind::FrequentValues
    }

    fn state_bytes(&self) -> usize {
        // Space-Saving: (value, count) pairs per hop.
        self.stored_counters() * 16 + (self.path_len() + 1) * 32
    }

    fn frequent(&self, hop: usize, theta: f64) -> Vec<(u64, f64)> {
        // The inherent method asserts the hop range; the trait contract
        // is no-panic (rules may probe hops this flow's path lacks).
        if !(1..=self.path_len()).contains(&hop) {
            return Vec::new();
        }
        FrequentValuesRecorder::frequent(self, hop, theta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamic::DynamicAggregator;
    use crate::statictrace::{PathTracer, TracerConfig};

    fn latency_recorder() -> DynamicRecorder {
        let agg = DynamicAggregator::new(7, 8, 100.0, 1.0e7);
        DynamicRecorder::new_sketched(agg, 3, 256)
    }

    #[test]
    fn boxed_latency_recorder_round_trip() {
        let agg = DynamicAggregator::new(7, 8, 100.0, 1.0e7);
        let mut boxed: Box<dyn FlowRecorder> = Box::new(latency_recorder());
        for pid in 0..20_000u64 {
            let mut d = Digest::new(1);
            for hop in 1..=3 {
                agg.encode_hop(pid, hop, 1_000.0 * hop as f64, &mut d, 0);
            }
            boxed.absorb(pid, &d);
        }
        assert_eq!(boxed.kind(), RecorderKind::LatencyQuantiles);
        assert_eq!(boxed.packets(), 20_000);
        assert!(boxed.state_bytes() > 0);
        let q = boxed.quantile(2, 0.5).expect("has samples");
        assert!((q / 2_000.0 - 1.0).abs() < 0.2, "median {q}");
        assert_eq!(boxed.hop_sketches().len(), 4);
        assert!(boxed.path_progress().is_none());
    }

    #[test]
    fn boxed_path_decoder_reports_progress() {
        let tracer = PathTracer::new(TracerConfig::paper(8, 2, 5));
        let universe: Vec<u64> = (0..40).collect();
        let path = [3u64, 17, 29];
        let mut boxed: Box<dyn FlowRecorder> = Box::new(tracer.decoder(universe, path.len()));
        let before = boxed.state_bytes();
        let mut pid = 0u64;
        while boxed
            .path_progress()
            .map(|p| !p.is_complete())
            .unwrap_or(false)
        {
            pid += 1;
            boxed.absorb(pid, &tracer.encode_path(pid, &path));
            assert!(pid < 100_000, "no convergence");
        }
        let progress = boxed.path_progress().unwrap();
        assert!(progress.is_complete());
        assert_eq!(progress.path.as_deref(), Some(&path[..]));
        assert_eq!(boxed.kind(), RecorderKind::PathTracing);
        // Candidate elimination shrinks the footprint estimate.
        assert!(boxed.state_bytes() < before);
        assert!(boxed.quantile(1, 0.5).is_none());
    }

    #[test]
    fn boxed_frequent_values_recorder() {
        let rec = FrequentValuesRecorder::new(11, 2, 16);
        let mut digests = Vec::new();
        for pid in 0..5_000u64 {
            let mut d = Digest::new(1);
            for hop in 1..=2 {
                rec.encode_hop(pid, hop, 7, &mut d, 0);
            }
            digests.push((pid, d));
        }
        let mut boxed: Box<dyn FlowRecorder> = Box::new(rec);
        for (pid, d) in &digests {
            boxed.absorb(*pid, d);
        }
        assert_eq!(boxed.kind(), RecorderKind::FrequentValues);
        let hh = boxed.frequent(1, 0.5);
        assert_eq!(hh.first().map(|&(v, _)| v), Some(7));
        assert!(boxed.frequent(2, 0.5).iter().any(|&(v, _)| v == 7));
        assert!(boxed.state_bytes() > 0);
    }
}
