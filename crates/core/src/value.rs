//! Telemetry values and metadata kinds (paper §3, Table 1).
//!
//! Whenever a packet `p` reaches a switch `s`, the switch observes a value
//! `v(p, s)` — a function of the switch (port/switch ID), of switch state
//! (timestamp, latency, queue occupancy), or any other quantity computable
//! in the data plane. [`MetadataKind`] enumerates the INT metadata values of
//! Table 1, all of which PINT supports.

/// The INT metadata values a switch can report (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MetadataKind {
    /// ID associated with the switch.
    SwitchId,
    /// Packet input port.
    IngressPortId,
    /// Time when packet is received.
    IngressTimestamp,
    /// Packet output port.
    EgressPortId,
    /// Time spent within the device.
    HopLatency,
    /// Current utilization of output port.
    EgressPortTxUtilization,
    /// The observed queue build up.
    QueueOccupancy,
    /// Percentage of queue being used.
    QueueCongestionStatus,
}

impl MetadataKind {
    /// All metadata kinds, in Table 1 order.
    pub const ALL: [MetadataKind; 8] = [
        MetadataKind::SwitchId,
        MetadataKind::IngressPortId,
        MetadataKind::IngressTimestamp,
        MetadataKind::EgressPortId,
        MetadataKind::HopLatency,
        MetadataKind::EgressPortTxUtilization,
        MetadataKind::QueueOccupancy,
        MetadataKind::QueueCongestionStatus,
    ];

    /// Human-readable description (Table 1 right column).
    pub fn description(self) -> &'static str {
        match self {
            MetadataKind::SwitchId => "ID associated with the switch",
            MetadataKind::IngressPortId => "Packet input port",
            MetadataKind::IngressTimestamp => "Time when packet is received",
            MetadataKind::EgressPortId => "Packet output port",
            MetadataKind::HopLatency => "Time spent within the device",
            MetadataKind::EgressPortTxUtilization => "Current utilization of output port",
            MetadataKind::QueueOccupancy => "The observed queue build up",
            MetadataKind::QueueCongestionStatus => "Percentage of queue being used",
        }
    }

    /// Size of the value as carried by standard INT (4-byte values, §2).
    pub const INT_VALUE_BYTES: usize = 4;

    /// Whether the value is *static* for a given (flow, switch) pair —
    /// i.e. eligible for static per-flow aggregation (§3.1).
    pub fn is_static_per_flow(self) -> bool {
        matches!(
            self,
            MetadataKind::SwitchId | MetadataKind::IngressPortId | MetadataKind::EgressPortId
        )
    }
}

/// A telemetry observation `v(p, s)` made by a switch, as a raw 64-bit word.
///
/// Numeric values (latency in nanoseconds, utilization in fixed-point) are
/// stored directly; identifiers are stored as their ID number.
pub type TelemetryValue = u64;

/// The per-packet digest PINT attaches to a packet: one lane per query
/// instance, each lane at most 64 bits wide.
///
/// The total width (sum of the query bit budgets) is fixed by the global
/// bit budget (§3.4) — unlike INT the size does **not** grow with path
/// length. The PINT Source initializes it to zero; switches may modify but
/// never extend it; the PINT Sink strips it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Digest {
    lanes: Lanes,
}

/// Digests up to this many lanes live inline (no heap allocation).
///
/// Real deployments run one or two concurrent query instances per
/// packet (§3.4 plans a 16-bit global budget), so essentially every
/// digest fits inline; the heap spill only exists so the type has no
/// hard lane limit. Keeping
/// the common case allocation-free matters off-path: the collector
/// clones and ships millions of `DigestReport`s per second, and an
/// inline digest makes that a flat memcpy.
const INLINE_LANES: usize = 2;

#[derive(Debug, Clone, PartialEq, Eq)]
enum Lanes {
    /// `len` live lanes in `vals[..len]`; unused tail lanes stay zero.
    Inline { len: u8, vals: [u64; INLINE_LANES] },
    /// More than [`INLINE_LANES`] lanes (rare).
    Heap(Vec<u64>),
}

impl Digest {
    /// Creates an all-zero digest with `lanes` lanes.
    pub fn new(lanes: usize) -> Self {
        let lanes = if lanes <= INLINE_LANES {
            Lanes::Inline {
                len: lanes as u8,
                vals: [0; INLINE_LANES],
            }
        } else {
            Lanes::Heap(vec![0; lanes])
        };
        Self { lanes }
    }

    #[inline]
    fn as_slice(&self) -> &[u64] {
        match &self.lanes {
            Lanes::Inline { len, vals } => &vals[..usize::from(*len)],
            Lanes::Heap(v) => v,
        }
    }

    #[inline]
    fn as_mut_slice(&mut self) -> &mut [u64] {
        match &mut self.lanes {
            Lanes::Inline { len, vals } => &mut vals[..usize::from(*len)],
            Lanes::Heap(v) => v,
        }
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.as_slice().len()
    }

    /// Reads lane `i`.
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        self.as_slice()[i]
    }

    /// Overwrites lane `i` (the Baseline-layer action).
    #[inline]
    pub fn set(&mut self, i: usize, v: u64) {
        self.as_mut_slice()[i] = v;
    }

    /// XORs `v` onto lane `i` (the XOR-layer action).
    #[inline]
    pub fn xor(&mut self, i: usize, v: u64) {
        self.as_mut_slice()[i] ^= v;
    }
}

impl Default for Digest {
    fn default() -> Self {
        Self::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_eight_metadata_values() {
        assert_eq!(MetadataKind::ALL.len(), 8);
        for kind in MetadataKind::ALL {
            assert!(!kind.description().is_empty());
        }
    }

    #[test]
    fn static_kinds() {
        assert!(MetadataKind::SwitchId.is_static_per_flow());
        assert!(!MetadataKind::HopLatency.is_static_per_flow());
        assert!(!MetadataKind::QueueOccupancy.is_static_per_flow());
    }

    #[test]
    fn digest_ops() {
        let mut d = Digest::new(2);
        assert_eq!(d.lanes(), 2);
        d.set(0, 0xAB);
        d.xor(0, 0xFF);
        assert_eq!(d.get(0), 0xAB ^ 0xFF);
        assert_eq!(d.get(1), 0);
    }
}
