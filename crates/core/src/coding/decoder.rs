//! Sink-side decoder for hashed static per-flow aggregation (§4.2).
//!
//! When a value (e.g. a 32-bit switch ID) does not fit the bit budget,
//! encoders write `h(M_i, p_j)` — a per-packet `b`-bit hash of their value —
//! instead of the value itself. The Inference Module knows the possible
//! value set `V` (e.g. all switch IDs in the network) and, for each hop,
//! eliminates candidates inconsistent with the observed digests:
//!
//! * a **Baseline** packet from hop `i` requires `h(M_i, p) = p.dig`;
//! * an **XOR** packet whose acting set has exactly one unknown hop `i`
//!   requires `h(M_i, p) = p.dig ⊕ (XOR of known-hop hashes)`.
//!
//! Once a hop's candidate set shrinks to one value, every stored XOR
//! constraint mentioning it is simplified; constraints that become "unit"
//! trigger further eliminations (a worklist fixpoint — this is the
//! propagation the paper describes with the `M₅ = p.dig ⊕ M₁ ⊕ M₆`
//! example).

use super::schemes::{PacketRole, SchemeConfig};
use crate::hash::HashFamily;
use crate::value::Digest;

/// Candidate values for one hop.
#[derive(Debug, Clone)]
enum Candidates {
    /// No constraint observed yet: any value in `V` is possible.
    All,
    /// Remaining possible values.
    Set(Vec<u64>),
}

/// A stored XOR constraint with ≥ 2 unresolved hops.
#[derive(Debug, Clone)]
struct XorConstraint {
    /// Which query instance (hash family / digest lane) produced it.
    instance: usize,
    /// Packet ID, needed to re-evaluate `h(v, pid)`.
    pid: u64,
    /// Digest XOR the hashes of all already-resolved acting hops.
    residual: u64,
    /// Acting hops not yet resolved.
    unresolved: Vec<usize>,
}

/// Decoder state for one flow's path: absorbs `(packet id, digest)` pairs
/// and converges on the unique value per hop.
#[derive(Debug, Clone)]
pub struct HashedDecoder {
    scheme: SchemeConfig,
    families: Vec<HashFamily>,
    bits: u32,
    value_set: Vec<u64>,
    k: usize,
    cand: Vec<Candidates>,
    resolved_value: Vec<Option<u64>>,
    resolved_count: usize,
    constraints: Vec<XorConstraint>,
    /// hop → indices of constraints watching it.
    watching: Vec<Vec<usize>>,
    packets: u64,
    inconsistencies: u64,
    /// Optional topology knowledge: value → possible neighbor values.
    /// When hop `h` resolves, hops `h±1` are restricted to the neighbors —
    /// the Inference Module knows the network graph, so consecutive path
    /// switches must be adjacent. Purely decoder-side; no protocol change.
    adjacency: Option<std::collections::HashMap<u64, Vec<u64>>>,
}

impl HashedDecoder {
    /// Creates a decoder for a `k`-hop path whose per-hop values come from
    /// `value_set`, with one [`HashFamily`] per query instance and `bits`
    /// digest bits per instance.
    pub fn new(
        scheme: SchemeConfig,
        families: Vec<HashFamily>,
        bits: u32,
        value_set: Vec<u64>,
        k: usize,
    ) -> Self {
        assert!(k >= 1, "path must have at least one hop");
        assert!(!families.is_empty(), "need at least one instance");
        assert!((1..=64).contains(&bits));
        Self {
            scheme,
            families,
            bits,
            value_set,
            k,
            cand: vec![Candidates::All; k + 1],
            resolved_value: vec![None; k + 1],
            resolved_count: 0,
            constraints: Vec::new(),
            watching: vec![Vec::new(); k + 1],
            packets: 0,
            inconsistencies: 0,
            adjacency: None,
        }
    }

    /// Supplies the network graph: `neighbors[v]` lists the switch IDs
    /// adjacent to `v`. Enables adjacency propagation (resolving one hop
    /// prunes its neighbors' candidate sets), which is how an Inference
    /// Module with topology knowledge decodes chain-like ISP paths with
    /// far fewer packets.
    pub fn set_adjacency(&mut self, neighbors: std::collections::HashMap<u64, Vec<u64>>) {
        self.adjacency = Some(neighbors);
    }

    /// Hops resolved so far.
    pub fn resolved(&self) -> usize {
        self.resolved_count
    }

    /// Path length (`k`) this decoder was built for.
    pub fn path_len(&self) -> usize {
        self.k
    }

    /// `true` once every hop has a unique value.
    pub fn is_complete(&self) -> bool {
        self.resolved_count == self.k
    }

    /// Packets absorbed.
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// Number of digests that contradicted the inferred path so far.
    ///
    /// Nonzero values indicate a routing change / multipath flow (§7): a
    /// Baseline packet disagrees with an already-resolved hop with
    /// probability `1 − 2^−b` after a path change.
    pub fn inconsistencies(&self) -> u64 {
        self.inconsistencies
    }

    /// The decoded path (hop 1..k), if complete.
    pub fn decoded_path(&self) -> Option<Vec<u64>> {
        if !self.is_complete() {
            return None;
        }
        Some(
            (1..=self.k)
                .map(|h| self.resolved_value[h].expect("complete"))
                .collect(),
        )
    }

    /// The value decoded for `hop` (1-based), if resolved.
    pub fn hop_value(&self, hop: usize) -> Option<u64> {
        self.resolved_value[hop]
    }

    /// Number of remaining candidates for `hop` (1-based).
    pub fn candidates_left(&self, hop: usize) -> usize {
        match &self.cand[hop] {
            Candidates::All => self.value_set.len(),
            Candidates::Set(s) => s.len(),
        }
    }

    #[inline]
    fn digest_of(&self, instance: usize, value: u64, pid: u64) -> u64 {
        self.families[instance].value_digest(value, pid, self.bits)
    }

    /// Absorbs one packet; returns `true` if the path is now fully decoded.
    pub fn absorb(&mut self, pid: u64, digest: &Digest) -> bool {
        assert_eq!(
            digest.lanes(),
            self.families.len(),
            "lane/instance mismatch"
        );
        self.packets += 1;
        for t in 0..self.families.len() {
            let lane = digest.get(t);
            match self.scheme.classify(&self.families[t], pid, self.k) {
                PacketRole::Baseline { writer } => {
                    self.apply_filter(writer, t, pid, lane);
                }
                PacketRole::Xor { acting } => {
                    let mut residual = lane;
                    let mut unresolved = Vec::new();
                    for hop in acting {
                        match self.resolved_value[hop] {
                            Some(v) => residual ^= self.digest_of(t, v, pid),
                            None => unresolved.push(hop),
                        }
                    }
                    match unresolved.len() {
                        0 => {
                            if residual != 0 {
                                self.inconsistencies += 1;
                            }
                        }
                        1 => self.apply_filter(unresolved[0], t, pid, residual),
                        _ => {
                            let idx = self.constraints.len();
                            for &h in &unresolved {
                                self.watching[h].push(idx);
                            }
                            self.constraints.push(XorConstraint {
                                instance: t,
                                pid,
                                residual,
                                unresolved,
                            });
                        }
                    }
                }
            }
        }
        self.is_complete()
    }

    /// Restricts `hop` to values whose per-packet hash equals `target`.
    fn apply_filter(&mut self, hop: usize, instance: usize, pid: u64, target: u64) {
        if let Some(v) = self.resolved_value[hop] {
            if self.digest_of(instance, v, pid) != target {
                self.inconsistencies += 1;
            }
            return;
        }
        let set = match std::mem::replace(&mut self.cand[hop], Candidates::All) {
            Candidates::All => self
                .value_set
                .iter()
                .copied()
                .filter(|&v| self.digest_of(instance, v, pid) == target)
                .collect::<Vec<u64>>(),
            Candidates::Set(mut s) => {
                s.retain(|&v| self.digest_of(instance, v, pid) == target);
                s
            }
        };
        match set.len() {
            0 => {
                // All candidates eliminated: contradictory evidence.
                self.inconsistencies += 1;
                self.cand[hop] = Candidates::All;
            }
            1 => {
                let v = set[0];
                self.cand[hop] = Candidates::Set(set);
                self.resolve(hop, v);
            }
            _ => self.cand[hop] = Candidates::Set(set),
        }
    }

    /// Marks `hop = v` and simplifies all constraints watching it.
    fn resolve(&mut self, hop: usize, v: u64) {
        debug_assert!(self.resolved_value[hop].is_none());
        self.resolved_value[hop] = Some(v);
        self.resolved_count += 1;
        // Topology propagation: the neighbors of hop h on the path must be
        // adjacent to v in the graph.
        if self.adjacency.is_some() {
            for adj in [hop.wrapping_sub(1), hop + 1] {
                if (1..=self.k).contains(&adj) && self.resolved_value[adj].is_none() {
                    self.restrict_to_neighbors(adj, v);
                }
            }
        }
        let watchers = std::mem::take(&mut self.watching[hop]);
        let mut unit = Vec::new();
        for ci in watchers {
            let c = &mut self.constraints[ci];
            let before = c.unresolved.len();
            c.unresolved.retain(|&x| x != hop);
            if c.unresolved.len() < before {
                let d = self.families[c.instance].value_digest(v, c.pid, self.bits);
                c.residual ^= d;
                if c.unresolved.len() == 1 {
                    unit.push(ci);
                }
            }
        }
        for ci in unit {
            let (h2, t2, pid2, res2) = {
                let c = &self.constraints[ci];
                if c.unresolved.len() != 1 {
                    continue; // already discharged by a deeper resolve
                }
                (c.unresolved[0], c.instance, c.pid, c.residual)
            };
            self.apply_filter(h2, t2, pid2, res2);
        }
    }

    /// Intersects hop `hop`'s candidates with the neighbors of `v`.
    fn restrict_to_neighbors(&mut self, hop: usize, v: u64) {
        let Some(adj) = &self.adjacency else { return };
        let Some(neigh) = adj.get(&v) else { return };
        let set = match std::mem::replace(&mut self.cand[hop], Candidates::All) {
            Candidates::All => neigh.clone(),
            Candidates::Set(mut s) => {
                s.retain(|x| neigh.contains(x));
                s
            }
        };
        match set.len() {
            0 => {
                self.inconsistencies += 1;
                self.cand[hop] = Candidates::All;
            }
            1 => {
                let w = set[0];
                self.cand[hop] = Candidates::Set(set);
                self.resolve(hop, w);
            }
            _ => self.cand[hop] = Candidates::Set(set),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coding::schemes::HopAction;

    /// Encode one packet exactly as the switches would (Algorithm 1).
    fn encode(
        scheme: &SchemeConfig,
        families: &[HashFamily],
        bits: u32,
        pid: u64,
        path: &[u64],
    ) -> Digest {
        let mut d = Digest::new(families.len());
        for (idx, &sw) in path.iter().enumerate() {
            let hop = idx + 1;
            for (t, fam) in families.iter().enumerate() {
                match scheme.hop_action(fam, pid, hop) {
                    HopAction::Keep => {}
                    HopAction::Overwrite => d.set(t, fam.value_digest(sw, pid, bits)),
                    HopAction::Xor => d.xor(t, fam.value_digest(sw, pid, bits)),
                }
            }
        }
        d
    }

    fn families(n: usize, seed: u64) -> Vec<HashFamily> {
        (0..n).map(|t| HashFamily::new(seed, t as u64)).collect()
    }

    fn decode_path(
        scheme: SchemeConfig,
        bits: u32,
        instances: usize,
        path: &[u64],
        value_set: Vec<u64>,
        seed: u64,
        max_packets: u64,
    ) -> (u64, Vec<u64>) {
        let fams = families(instances, seed);
        let mut dec = HashedDecoder::new(scheme.clone(), fams.clone(), bits, value_set, path.len());
        let mut pid = seed.wrapping_mul(0x1234_5677).wrapping_add(1);
        loop {
            pid = pid.wrapping_add(1);
            let d = encode(&scheme, &fams, bits, pid, path);
            if dec.absorb(pid, &d) {
                return (dec.packets(), dec.decoded_path().unwrap());
            }
            assert!(
                dec.packets() < max_packets,
                "no convergence after {max_packets} packets (resolved {}/{})",
                dec.resolved(),
                path.len()
            );
        }
    }

    #[test]
    fn decodes_small_path_single_instance() {
        let value_set: Vec<u64> = (0..100).map(|i| 1000 + i).collect();
        let path = vec![1003, 1042, 1077, 1001, 1099];
        let (packets, decoded) = decode_path(
            SchemeConfig::multilayer(5),
            8,
            1,
            &path,
            value_set,
            7,
            20_000,
        );
        assert_eq!(decoded, path);
        assert!(packets < 500, "took {packets} packets");
    }

    #[test]
    fn decodes_with_two_instances_faster() {
        let value_set: Vec<u64> = (0..753).collect();
        let path: Vec<u64> = (0..20).map(|i| (i * 37) % 753).collect();
        let mut tot1 = 0;
        let mut tot2 = 0;
        for seed in 1..=10u64 {
            let (p1, d1) = decode_path(
                SchemeConfig::multilayer(10),
                8,
                1,
                &path,
                value_set.clone(),
                seed,
                100_000,
            );
            let (p2, d2) = decode_path(
                SchemeConfig::multilayer(10),
                8,
                2,
                &path,
                value_set.clone(),
                seed,
                100_000,
            );
            assert_eq!(d1, path);
            assert_eq!(d2, path);
            tot1 += p1;
            tot2 += p2;
        }
        assert!(
            tot2 < tot1,
            "2 instances ({tot2}) not faster than 1 ({tot1})"
        );
    }

    #[test]
    fn decodes_with_one_bit_budget() {
        // b = 1: every constraint halves the candidate set; still decodes.
        let value_set: Vec<u64> = (0..64).collect();
        let path = vec![5, 9, 33];
        let (packets, decoded) = decode_path(
            SchemeConfig::multilayer(3),
            1,
            1,
            &path,
            value_set,
            11,
            200_000,
        );
        assert_eq!(decoded, path);
        assert!(packets > 10, "b=1 cannot decode this fast ({packets})");
    }

    #[test]
    fn repeated_switch_ids_on_path() {
        // The same switch may appear... it should still decode (values are
        // per-hop, not per-identity).
        let value_set: Vec<u64> = (0..50).collect();
        let path = vec![7, 7, 13, 7];
        let (_, decoded) = decode_path(
            SchemeConfig::multilayer(4),
            8,
            1,
            &path,
            value_set,
            3,
            50_000,
        );
        assert_eq!(decoded, path);
    }

    #[test]
    fn pure_baseline_decodes() {
        let value_set: Vec<u64> = (0..256).collect();
        let path: Vec<u64> = vec![10, 20, 30, 40, 50, 60, 70, 80];
        let (_, decoded) = decode_path(SchemeConfig::baseline(), 8, 1, &path, value_set, 5, 50_000);
        assert_eq!(decoded, path);
    }

    #[test]
    fn inconsistency_detected_after_path_change() {
        // Decode path A fully, then feed packets encoded on path B: the
        // decoder must flag inconsistencies (§7, routing changes).
        let scheme = SchemeConfig::multilayer(5);
        let fams = families(2, 21);
        let value_set: Vec<u64> = (0..100).collect();
        let path_a = vec![1, 2, 3, 4, 5];
        let path_b = vec![1, 2, 93, 94, 5];
        let mut dec = HashedDecoder::new(scheme.clone(), fams.clone(), 8, value_set, 5);
        let mut pid = 1u64;
        while !dec.absorb(pid, &encode(&scheme, &fams, 8, pid, &path_a)) {
            pid += 1;
            assert!(pid < 50_000);
        }
        assert_eq!(dec.inconsistencies(), 0);
        for extra in 0..200u64 {
            let p = pid + 1 + extra;
            dec.absorb(p, &encode(&scheme, &fams, 8, p, &path_b));
        }
        assert!(
            dec.inconsistencies() > 20,
            "path change not flagged: {}",
            dec.inconsistencies()
        );
    }

    #[test]
    fn candidate_counts_shrink() {
        let scheme = SchemeConfig::baseline();
        let fams = families(1, 9);
        let value_set: Vec<u64> = (0..1000).collect();
        let path = vec![17, 450, 999];
        let mut dec = HashedDecoder::new(scheme.clone(), fams.clone(), 4, value_set, 3);
        let mut shrunk = false;
        for pid in 0..200u64 {
            dec.absorb(pid, &encode(&scheme, &fams, 4, pid, &path));
            for hop in 1..=3 {
                if dec.candidates_left(hop) < 1000 {
                    shrunk = true;
                }
            }
            if dec.is_complete() {
                break;
            }
        }
        assert!(shrunk);
        assert!(dec.is_complete());
        assert_eq!(dec.decoded_path().unwrap(), path);
    }

    #[test]
    fn hop_value_resolution_order_is_valid() {
        let scheme = SchemeConfig::multilayer(10);
        let fams = families(1, 2);
        let value_set: Vec<u64> = (0..200).collect();
        let path: Vec<u64> = (0..10).map(|i| i * 13 % 200).collect();
        let mut dec = HashedDecoder::new(scheme.clone(), fams.clone(), 8, value_set, 10);
        for pid in 0..100_000u64 {
            if dec.absorb(pid, &encode(&scheme, &fams, 8, pid, &path)) {
                break;
            }
        }
        for hop in 1..=10 {
            assert_eq!(dec.hop_value(hop), Some(path[hop - 1]));
        }
    }
}
