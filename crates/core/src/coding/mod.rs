//! Distributed coding schemes (paper §4.2).
//!
//! When values are static for a flow (e.g. the switch IDs on its path),
//! PINT spreads them over multiple packets. The message is *distributed*:
//! encoder `e_i` (the `i`-th switch) holds only block `M_i`, packets start
//! with a zero digest, and each encoder may modify — but never extend — the
//! digest as the packet passes (Fig. 4).
//!
//! The schemes implemented here:
//!
//! * **Baseline** ([`SchemeConfig::baseline`]) — distributed reservoir
//!   sampling: each packet carries a uniformly sampled block. Decoding is a
//!   coupon-collector process needing `k·ln k·(1+o(1))` packets.
//! * **Distributed XOR** ([`SchemeConfig::pure_xor`]) — each encoder XORs
//!   its block with probability `p` (typically `1/d` for a known typical
//!   path length `d`).
//! * **Interleaved / Hybrid** ([`SchemeConfig::hybrid`]) — Baseline with
//!   probability `τ = 3/4`, else XOR with probability `ln ln d / ln d`;
//!   the Baseline decodes the bulk, the XOR layer the tail.
//! * **Multi-layer** ([`SchemeConfig::multilayer`]) — Algorithm 1: layers
//!   `ℓ = 1..L` with geometrically increasing probabilities
//!   `p_ℓ = e↑↑(ℓ−1)/d`, achieving Theorem 3's
//!   `k·log log* k·(1+o(1))` packet bound.
//! * **Linear network coding** ([`lnc`]) — the comparison point discussed
//!   in §4.2: random GF(2) combinations, decoded by Gaussian elimination in
//!   `≈ k + log₂ k` packets but with `O(k³)` decoding.
//!
//! Two decoders are provided: [`perfect::BlockDecoder`] assumes a packet
//! can carry an entire block (the analysis setting of Fig. 5 / Theorem 3),
//! while [`decoder::HashedDecoder`] implements the hashing technique
//! ("Reducing the Bit-overhead using Hashing") where only `b`-bit value
//! hashes ride on packets and the Inference Module eliminates candidates
//! from a known value set.

pub mod decoder;
pub mod fragment;
pub mod lnc;
pub mod perfect;
pub mod schemes;

pub use decoder::HashedDecoder;
pub use fragment::FragmentCodec;
pub use lnc::LncDecoder;
pub use perfect::BlockDecoder;
pub use schemes::{HopAction, PacketRole, SchemeConfig};

/// Iterated natural logarithm `ln* x`: the number of times `ln` must be
/// applied before the value drops to ≤ 1.
pub fn ln_star(x: f64) -> u32 {
    let mut v = x;
    let mut c = 0;
    while v > 1.0 {
        v = v.ln();
        c += 1;
        if c > 8 {
            break; // ln* of anything representable is ≤ 5
        }
    }
    c
}

/// Iterated exponentiation `e ↑↑ n` (Knuth arrow): `e↑↑0 = 1`,
/// `e↑↑n = e^(e↑↑(n−1))`.
pub fn iterated_exp(n: u32) -> f64 {
    let mut v = 1.0f64;
    for _ in 0..n {
        v = v.exp();
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_star_values() {
        assert_eq!(ln_star(1.0), 0);
        assert_eq!(ln_star(2.0), 1);
        assert_eq!(ln_star(2.7), 1);
        assert_eq!(ln_star(10.0), 2);
        assert_eq!(ln_star(15.0), 2); // e^e ≈ 15.15
        assert_eq!(ln_star(16.0), 3);
        assert_eq!(ln_star(1.0e6), 3); // e^e^e ≈ 3.8M
        assert_eq!(ln_star(5.0e6), 4);
    }

    #[test]
    fn iterated_exp_values() {
        assert_eq!(iterated_exp(0), 1.0);
        assert!((iterated_exp(1) - std::f64::consts::E).abs() < 1e-12);
        assert!((iterated_exp(2) - std::f64::consts::E.exp()).abs() < 1e-9);
    }

    #[test]
    fn ln_star_inverts_iterated_exp() {
        for n in 0..4 {
            let v = iterated_exp(n);
            assert_eq!(ln_star(v), n, "ln*(e↑↑{n})");
        }
    }
}
