//! Perfect-block decoder: the analysis setting of Fig. 5 and Theorem 3.
//!
//! Here a packet digest is wide enough to carry one entire block, so a
//! Baseline packet immediately reveals its writer's block, and an XOR packet
//! whose acting set contains exactly one unknown block reveals that block by
//! XOR-ing out the known ones. The decoder tracks only *which* blocks are
//! known and propagates XOR constraints to a fixpoint; the actual block
//! contents are irrelevant to the packet-count statistics the paper reports.

use super::schemes::{PacketRole, SchemeConfig};
use crate::hash::HashFamily;

/// An undischarged XOR constraint: the digest of some packet is the XOR of
/// the blocks of `unresolved` plus already-known blocks (already removed).
#[derive(Debug, Clone)]
struct Constraint {
    unresolved: Vec<usize>,
}

/// Tracks decoding progress of a `k`-block distributed message under a
/// [`SchemeConfig`], absorbing one packet at a time.
#[derive(Debug, Clone)]
pub struct BlockDecoder {
    scheme: SchemeConfig,
    family: HashFamily,
    k: usize,
    known: Vec<bool>,
    known_count: usize,
    constraints: Vec<Constraint>,
    /// hop (1-based) → indices of constraints mentioning it.
    watching: Vec<Vec<usize>>,
    packets: u64,
}

impl BlockDecoder {
    /// Creates a decoder for a `k`-hop path.
    pub fn new(scheme: SchemeConfig, family: HashFamily, k: usize) -> Self {
        assert!(k >= 1);
        Self {
            scheme,
            family,
            k,
            known: vec![false; k + 1],
            known_count: 0,
            constraints: Vec::new(),
            watching: vec![Vec::new(); k + 1],
            packets: 0,
        }
    }

    /// Number of blocks decoded so far.
    pub fn resolved(&self) -> usize {
        self.known_count
    }

    /// Number of blocks still missing.
    pub fn missing(&self) -> usize {
        self.k - self.known_count
    }

    /// `true` once the entire message is decoded.
    pub fn is_complete(&self) -> bool {
        self.known_count == self.k
    }

    /// Packets absorbed so far.
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// Absorbs the packet with ID `pid`; returns `true` if the message is
    /// fully decoded afterwards.
    pub fn absorb(&mut self, pid: u64) -> bool {
        self.packets += 1;
        match self.scheme.classify(&self.family, pid, self.k) {
            PacketRole::Baseline { writer } => self.learn(writer),
            PacketRole::Xor { acting } => {
                let unresolved: Vec<usize> =
                    acting.into_iter().filter(|&h| !self.known[h]).collect();
                match unresolved.len() {
                    0 => {} // carries no new information
                    1 => self.learn(unresolved[0]),
                    _ => {
                        let idx = self.constraints.len();
                        for &h in &unresolved {
                            self.watching[h].push(idx);
                        }
                        self.constraints.push(Constraint { unresolved });
                    }
                }
            }
        }
        self.is_complete()
    }

    /// Marks block `hop` as known and propagates through XOR constraints.
    fn learn(&mut self, hop: usize) {
        let mut stack = vec![hop];
        while let Some(h) = stack.pop() {
            if self.known[h] {
                continue;
            }
            self.known[h] = true;
            self.known_count += 1;
            for &ci in &self.watching[h] {
                let c = &mut self.constraints[ci];
                c.unresolved.retain(|&x| x != h);
                if c.unresolved.len() == 1 {
                    stack.push(c.unresolved[0]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_to_completion(scheme: SchemeConfig, k: usize, seed: u64) -> u64 {
        let fam = HashFamily::new(seed, 0);
        let mut dec = BlockDecoder::new(scheme, fam, k);
        let mut pid = seed.wrapping_mul(1_000_003);
        loop {
            pid = pid.wrapping_add(1);
            if dec.absorb(pid) {
                return dec.packets();
            }
            assert!(dec.packets() < 100_000, "decode did not converge");
        }
    }

    fn stats(scheme: fn() -> SchemeConfig, k: usize, runs: usize) -> (f64, u64, u64) {
        let mut counts: Vec<u64> = (0..runs)
            .map(|r| run_to_completion(scheme(), k, r as u64 + 1))
            .collect();
        counts.sort_unstable();
        let mean = counts.iter().sum::<u64>() as f64 / runs as f64;
        let median = counts[runs / 2];
        let p99 = counts[(runs * 99) / 100];
        (mean, median, p99)
    }

    #[test]
    fn single_hop_needs_one_packet() {
        assert_eq!(run_to_completion(SchemeConfig::baseline(), 1, 3), 1);
    }

    #[test]
    fn baseline_matches_coupon_collector_k25() {
        // Paper §4.2: "for k = 25, Coupon Collector has a median of 89
        // packets and a 99'th percentile of 189 packets".
        let (mean, median, p99) = stats(SchemeConfig::baseline, 25, 400);
        let expected_mean = 25.0 * (1..=25).map(|i| 1.0 / i as f64).sum::<f64>(); // ≈ 95.4
        assert!(
            (mean - expected_mean).abs() < expected_mean * 0.1,
            "mean {mean} vs {expected_mean}"
        );
        assert!((70..=110).contains(&median), "median {median}");
        assert!((150..=260).contains(&p99), "p99 {p99}");
    }

    #[test]
    fn hybrid_beats_baseline_k25() {
        // Paper §4.2: interleaving gives a median of 41 and a 99th
        // percentile of 68 for k = d = 25.
        let (_, med_h, p99_h) = stats(|| SchemeConfig::hybrid(25), 25, 400);
        let (_, med_b, p99_b) = stats(SchemeConfig::baseline, 25, 400);
        assert!(
            med_h < med_b * 2 / 3,
            "hybrid median {med_h} vs baseline {med_b}"
        );
        assert!(p99_h < p99_b / 2, "hybrid p99 {p99_h} vs baseline {p99_b}");
        assert!((30..=60).contains(&med_h), "hybrid median {med_h}");
        assert!((50..=100).contains(&p99_h), "hybrid p99 {p99_h}");
    }

    #[test]
    fn pure_xor_eventually_decodes() {
        let (mean, _, _) = stats(|| SchemeConfig::pure_xor(1.0 / 25.0), 25, 100);
        // O(k log k) — same ballpark as baseline, not divergent.
        assert!(mean < 400.0, "XOR mean {mean}");
    }

    #[test]
    fn multilayer_beats_baseline_at_large_k() {
        // The paper's §6.3 setting: d = 10 on the D = 59 ISP topology.
        let k = 59;
        let (mean_m, _, _) = stats(|| SchemeConfig::multilayer(10), k, 150);
        let (mean_b, _, _) = stats(SchemeConfig::baseline, k, 150);
        // Theorem 3: k·log log* k (1+o(1)) ≪ k ln k. Empirically ~90 vs
        // ~272 packets.
        assert!(
            mean_m < mean_b * 0.6,
            "multilayer {mean_m} vs baseline {mean_b}"
        );
    }

    #[test]
    fn progress_is_monotone() {
        let fam = HashFamily::new(5, 0);
        let mut dec = BlockDecoder::new(SchemeConfig::hybrid(25), fam, 25);
        let mut prev = 0;
        for pid in 0..500 {
            dec.absorb(pid);
            assert!(dec.resolved() >= prev);
            prev = dec.resolved();
        }
        assert!(dec.is_complete());
    }

    #[test]
    fn missing_plus_resolved_is_k() {
        let fam = HashFamily::new(6, 0);
        let mut dec = BlockDecoder::new(SchemeConfig::hybrid(10), fam, 10);
        for pid in 0..100 {
            dec.absorb(pid);
            assert_eq!(dec.resolved() + dec.missing(), 10);
        }
    }
}
