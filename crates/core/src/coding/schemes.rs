//! Scheme configuration and packet classification.
//!
//! A [`SchemeConfig`] describes how packets are partitioned among coding
//! layers and what each hop does. Both the switch-side encoder and the
//! sink-side decoder derive their behaviour from the same config plus the
//! same [`HashFamily`] — the implicit-coordination property of §4.1: the
//! decoder can *reclassify* any packet from its ID alone.

use super::{iterated_exp, ln_star};
use crate::hash::HashFamily;

/// What a single hop does to the digest for a given packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HopAction {
    /// Leave the digest untouched.
    Keep,
    /// Overwrite the digest with this hop's (hashed) block — Baseline layer.
    Overwrite,
    /// XOR this hop's (hashed) block onto the digest — XOR layer.
    Xor,
}

/// Sink-side classification of a packet under a scheme.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PacketRole {
    /// Baseline packet: after the full path, the digest belongs to `writer`
    /// (1-based hop index) — the last hop whose reservoir test fired.
    Baseline {
        /// The hop whose value survives in the digest.
        writer: usize,
    },
    /// XOR packet on some layer: the digest is the XOR of the blocks of
    /// `acting` (1-based hop indices, ascending; possibly empty).
    Xor {
        /// Hops that XOR-ed onto the digest.
        acting: Vec<usize>,
    },
}

/// Configuration of a distributed coding scheme: a Baseline (reservoir)
/// layer chosen with probability `tau`, and `xor_layers.len()` XOR layers
/// chosen uniformly otherwise.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemeConfig {
    /// Probability that a packet serves the Baseline layer.
    pub tau: f64,
    /// Per-layer XOR probabilities `p_ℓ`.
    pub xor_layers: Vec<f64>,
}

impl SchemeConfig {
    /// Pure Baseline scheme: every packet carries a uniformly sampled block.
    pub fn baseline() -> Self {
        Self {
            tau: 1.0,
            xor_layers: Vec::new(),
        }
    }

    /// Pure XOR scheme with participation probability `p` (Fig. 5 uses
    /// `p = 1/d`).
    pub fn pure_xor(p: f64) -> Self {
        Self {
            tau: 0.0,
            xor_layers: vec![p],
        }
    }

    /// The interleaved ("Hybrid") scheme of §4.2: Baseline with
    /// `τ = 3/4`, one XOR layer with probability `ln ln d / ln d`
    /// (or `1/ln d` when `d ≤ 15`, per footnote 8).
    pub fn hybrid(d: usize) -> Self {
        let d = d.max(2) as f64;
        let p = if d <= 15.0 {
            1.0 / d.ln()
        } else {
            d.ln().ln() / d.ln()
        };
        Self {
            tau: 0.75,
            xor_layers: vec![p.min(1.0)],
        }
    }

    /// The multi-layer scheme of Algorithm 1 for typical path length `d`:
    /// `L` XOR layers with `p_ℓ = e↑↑(ℓ−1)/d`.
    ///
    /// `L` follows the paper's practical rule (§4.2): one XOR layer when
    /// `d ≤ ⌊e^e⌋ = 15`, two when `16 ≤ d ≤ e^(e^e)` — i.e.
    /// `L = max(1, ln*(d) − 1)`. The Baseline share follows Algorithm 1,
    /// `τ = ln ln* d / (1 + ln ln* d)`, floored at 1/2 (a parameter sweep —
    /// `pint-bench --bin tune_multilayer` — shows the formula's small-`d`
    /// values starve the Baseline layer).
    ///
    /// The paper's §6.3 evaluation settings are `multilayer(10)` for the
    /// ISP topologies and `multilayer(5)` for the fat tree — both yield
    /// "a single XOR layer in addition to a Baseline layer".
    pub fn multilayer(d: usize) -> Self {
        let df = d.max(2) as f64;
        let layers = ln_star(df).saturating_sub(1).max(1);
        let xor_layers: Vec<f64> = (0..layers)
            .map(|l| (iterated_exp(l) / df).min(0.5))
            .collect();
        let lls = (ln_star(df) as f64).ln().max(0.0);
        let tau = (lls / (1.0 + lls)).max(0.5);
        Self { tau, xor_layers }
    }

    /// Number of XOR layers.
    pub fn num_layers(&self) -> usize {
        self.xor_layers.len()
    }

    /// Which layer serves packet `pid`: `None` for Baseline, `Some(ℓ)`
    /// (0-based) for XOR layer ℓ. Derived from the layer-selection hash
    /// `H(pid)` so every switch and the decoder agree.
    pub fn layer_of(&self, fam: &HashFamily, pid: u64) -> Option<usize> {
        if self.xor_layers.is_empty() {
            return None;
        }
        let h = fam.layer.unit1(pid);
        if h < self.tau {
            None
        } else {
            // Uniform among the L XOR layers.
            let l = ((h - self.tau) / (1.0 - self.tau) * self.xor_layers.len() as f64) as usize;
            Some(l.min(self.xor_layers.len() - 1))
        }
    }

    /// Switch-side action of hop `hop` (1-based) for packet `pid`
    /// (Algorithm 1 lines 2–8).
    pub fn hop_action(&self, fam: &HashFamily, pid: u64, hop: usize) -> HopAction {
        match self.layer_of(fam, pid) {
            None => {
                if fam.reservoir_writes(pid, hop) {
                    HopAction::Overwrite
                } else {
                    HopAction::Keep
                }
            }
            Some(l) => {
                if fam.xor_participates(pid, hop, self.xor_layers[l]) {
                    HopAction::Xor
                } else {
                    HopAction::Keep
                }
            }
        }
    }

    /// Sink-side classification of packet `pid` over a `k`-hop path.
    pub fn classify(&self, fam: &HashFamily, pid: u64, k: usize) -> PacketRole {
        match self.layer_of(fam, pid) {
            None => PacketRole::Baseline {
                writer: fam.reservoir_winner(pid, k),
            },
            Some(l) => {
                let p = self.xor_layers[l];
                let acting = (1..=k)
                    .filter(|&hop| fam.xor_participates(pid, hop, p))
                    .collect();
                PacketRole::Xor { acting }
            }
        }
    }

    /// Near-linear classification (§4.2 "Reducing the Decoding
    /// Complexity"): XOR-layer membership of all `k ≤ 128` hops is read
    /// from the AND of `O(log 1/p)` pseudo-random bit vectors instead of
    /// `k` hash evaluations. The layer probability is rounded to the
    /// nearest power of two, so the acting-set *distribution* differs
    /// from [`Self::classify`] by at most a `√2` factor in `p` (the
    /// approximation the paper accepts); encoders must use the same
    /// fast membership test for the digests to decode (see
    /// [`Self::hop_action_fast`]).
    pub fn classify_fast(&self, fam: &HashFamily, pid: u64, k: usize) -> PacketRole {
        match self.layer_of(fam, pid) {
            None => PacketRole::Baseline {
                writer: fam.reservoir_winner(pid, k),
            },
            Some(l) => {
                let bits = crate::hash::acting_bitvec(fam, pid, k, self.xor_layers[l]);
                let acting = (1..=k)
                    .filter(|&hop| bits & (1 << (hop - 1)) != 0)
                    .collect();
                PacketRole::Xor { acting }
            }
        }
    }

    /// Switch-side action matching [`Self::classify_fast`].
    pub fn hop_action_fast(&self, fam: &HashFamily, pid: u64, hop: usize, k: usize) -> HopAction {
        match self.layer_of(fam, pid) {
            None => {
                if fam.reservoir_writes(pid, hop) {
                    HopAction::Overwrite
                } else {
                    HopAction::Keep
                }
            }
            Some(l) => {
                let bits = crate::hash::acting_bitvec(fam, pid, k, self.xor_layers[l]);
                if bits & (1 << (hop - 1)) != 0 {
                    HopAction::Xor
                } else {
                    HopAction::Keep
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fam() -> HashFamily {
        HashFamily::new(0xC0FFEE, 0)
    }

    #[test]
    fn baseline_always_layer0() {
        let s = SchemeConfig::baseline();
        for pid in 0..100 {
            assert_eq!(s.layer_of(&fam(), pid), None);
        }
    }

    #[test]
    fn pure_xor_always_xor() {
        let s = SchemeConfig::pure_xor(0.25);
        for pid in 0..100 {
            assert_eq!(s.layer_of(&fam(), pid), Some(0));
        }
    }

    #[test]
    fn hybrid_layer_split_matches_tau() {
        let s = SchemeConfig::hybrid(25);
        let n = 100_000;
        let baseline = (0..n)
            .filter(|&pid| s.layer_of(&fam(), pid).is_none())
            .count();
        let frac = baseline as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.01, "baseline fraction {frac}");
    }

    #[test]
    fn hybrid_xor_prob_follows_paper() {
        // d = 25 > 15 ⇒ p = ln ln 25 / ln 25 ≈ 0.364.
        let s = SchemeConfig::hybrid(25);
        assert!((s.xor_layers[0] - 25.0f64.ln().ln() / 25.0f64.ln()).abs() < 1e-12);
        // d = 10 ≤ 15 ⇒ p = 1/ln 10 ≈ 0.434.
        let s = SchemeConfig::hybrid(10);
        assert!((s.xor_layers[0] - 1.0 / 10.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn multilayer_layer_count_follows_practical_rule() {
        assert_eq!(SchemeConfig::multilayer(5).num_layers(), 1);
        assert_eq!(SchemeConfig::multilayer(15).num_layers(), 1);
        assert_eq!(SchemeConfig::multilayer(16).num_layers(), 2);
        assert_eq!(SchemeConfig::multilayer(60).num_layers(), 2);
    }

    #[test]
    fn multilayer_probability_ladder() {
        let s = SchemeConfig::multilayer(60);
        assert!((s.xor_layers[0] - 1.0 / 60.0).abs() < 1e-12);
        assert!((s.xor_layers[1] - std::f64::consts::E / 60.0).abs() < 1e-12);
    }

    #[test]
    fn classification_consistent_with_hop_actions() {
        // The decoder's classification must match what encoders did.
        let s = SchemeConfig::multilayer(25);
        let f = fam();
        let k = 25;
        for pid in 0..2_000u64 {
            let role = s.classify(&f, pid, k);
            let actions: Vec<(usize, HopAction)> = (1..=k)
                .map(|h| (h, s.hop_action(&f, pid, h)))
                .filter(|&(_, a)| a != HopAction::Keep)
                .collect();
            match role {
                PacketRole::Baseline { writer } => {
                    // Writer is the last Overwrite action.
                    let last = actions
                        .iter()
                        .rfind(|&&(_, a)| a == HopAction::Overwrite)
                        .map(|&(h, _)| h);
                    assert_eq!(last, Some(writer));
                }
                PacketRole::Xor { acting } => {
                    let xors: Vec<usize> = actions
                        .iter()
                        .filter(|&&(_, a)| a == HopAction::Xor)
                        .map(|&(h, _)| h)
                        .collect();
                    assert_eq!(xors, acting);
                }
            }
        }
    }

    #[test]
    fn fast_classification_consistent_with_fast_actions() {
        // The bit-vector path must agree between switch and sink, exactly
        // like the hash path does.
        let s = SchemeConfig::multilayer(16);
        let f = fam();
        let k = 32;
        for pid in 0..2_000u64 {
            match s.classify_fast(&f, pid, k) {
                PacketRole::Baseline { writer } => {
                    assert_eq!(s.hop_action_fast(&f, pid, writer, k), HopAction::Overwrite);
                }
                PacketRole::Xor { acting } => {
                    for hop in 1..=k {
                        let want = if acting.contains(&hop) {
                            HopAction::Xor
                        } else {
                            HopAction::Keep
                        };
                        assert_eq!(s.hop_action_fast(&f, pid, hop, k), want);
                    }
                }
            }
        }
    }

    #[test]
    fn fast_classification_rate_within_sqrt2_of_p() {
        // §4.2 footnote 9: rounding p to a power of two costs at most √2.
        let p = 0.1; // rounds to 1/8
        let s = SchemeConfig {
            tau: 0.0,
            xor_layers: vec![p],
        };
        let f = fam();
        let k = 64;
        let mut acting = 0u64;
        let n = 20_000u64;
        for pid in 0..n {
            if let PacketRole::Xor { acting: a } = s.classify_fast(&f, pid, k) {
                acting += a.len() as u64;
            }
        }
        let rate = acting as f64 / (n * k as u64) as f64;
        assert!(rate <= p * 1.45 && rate >= p / 1.45, "rate {rate} vs p {p}");
    }

    #[test]
    fn xor_layers_chosen_uniformly() {
        let s = SchemeConfig {
            tau: 0.5,
            xor_layers: vec![0.1, 0.2],
        };
        let f = fam();
        let n = 100_000;
        let mut counts = [0usize; 3];
        for pid in 0..n {
            match s.layer_of(&f, pid) {
                None => counts[0] += 1,
                Some(l) => counts[l + 1] += 1,
            }
        }
        assert!((counts[0] as f64 / n as f64 - 0.5).abs() < 0.01);
        assert!((counts[1] as f64 / n as f64 - 0.25).abs() < 0.01);
        assert!((counts[2] as f64 / n as f64 - 0.25).abs() < 0.01);
    }
}
