//! Fragmentation — "Reducing the Bit-overhead using Fragmentation" (§4.2).
//!
//! When each value has `q` bits but the budget allows only `b < q` bits per
//! packet, the value is broken into `F = ⌈q/b⌉` fragments. A global hash
//! associates every packet with a fragment number, and the distributed
//! encoding scheme runs independently per fragment number — as if the path
//! had `k·F` hops. This multiplies the packets needed and the decode time
//! by `F`, which is why the paper usually prefers the hashing technique;
//! both are implemented here so the trade-off can be measured (see the
//! `coding` criterion bench).

use super::perfect::BlockDecoder;
use super::schemes::SchemeConfig;
use crate::hash::{GlobalHash, HashFamily};

/// Splits `q`-bit values into `b`-bit fragments and reassembles them.
#[derive(Debug, Clone, Copy)]
pub struct FragmentCodec {
    /// Total value width in bits.
    pub q: u32,
    /// Per-packet budget in bits.
    pub b: u32,
    /// Hash selecting each packet's fragment number.
    selector: GlobalHash,
}

impl FragmentCodec {
    /// Creates a codec for `q`-bit values under a `b`-bit budget.
    pub fn new(q: u32, b: u32, seed: u64) -> Self {
        assert!(q >= 1 && b >= 1 && q <= 64 && b <= 64);
        Self {
            q,
            b,
            selector: GlobalHash::new(seed ^ 0xF4A6_0000),
        }
    }

    /// Number of fragments `F = ⌈q/b⌉`.
    pub fn fragments(&self) -> u32 {
        self.q.div_ceil(self.b)
    }

    /// The fragment number (0-based) packet `pid` is associated with.
    pub fn fragment_of(&self, pid: u64) -> u32 {
        (self.selector.hash1(pid) % u64::from(self.fragments())) as u32
    }

    /// Extracts fragment `f` (0-based, low to high) of `value`.
    pub fn extract(&self, value: u64, f: u32) -> u64 {
        debug_assert!(f < self.fragments());
        let mask = if self.b == 64 {
            !0
        } else {
            (1u64 << self.b) - 1
        };
        (value >> (f * self.b)) & mask
    }

    /// Reassembles a value from its `F` fragments (low to high).
    pub fn assemble(&self, fragments: &[u64]) -> u64 {
        assert_eq!(fragments.len() as u32, self.fragments());
        let mut v = 0u64;
        for (f, &frag) in fragments.iter().enumerate() {
            v |= frag << (f as u32 * self.b);
        }
        if self.q < 64 {
            v &= (1u64 << self.q) - 1;
        }
        v
    }
}

/// End-to-end fragmented static aggregation over a `k`-hop path: each
/// packet carries one fragment of one hop's value, chosen by the coding
/// scheme; the decoder recovers all `k·F` fragments.
///
/// This demonstrates the paper's observation that fragmentation behaves
/// "as if there were `k·F` hops".
#[derive(Debug)]
pub struct FragmentedAggregation {
    codec: FragmentCodec,
    scheme: SchemeConfig,
    family: HashFamily,
    k: usize,
    /// Per-(hop, fragment) decoded values.
    values: Vec<Option<u64>>,
    /// Block-level progress tracker (hop-fragment slots as virtual hops).
    tracker: BlockDecoder,
}

impl FragmentedAggregation {
    /// Creates a fragmented aggregation over `k` hops.
    pub fn new(codec: FragmentCodec, scheme: SchemeConfig, seed: u64, k: usize) -> Self {
        let family = HashFamily::new(seed, 7);
        let slots = k * codec.fragments() as usize;
        Self {
            codec,
            scheme: scheme.clone(),
            family,
            k,
            values: vec![None; slots + 1],
            tracker: BlockDecoder::new(scheme, family, slots),
        }
    }

    fn slot(&self, hop: usize, fragment: u32) -> usize {
        (hop - 1) * self.codec.fragments() as usize + fragment as usize + 1
    }

    /// Switch-side: the `b`-bit payload hop `hop` would write/XOR for
    /// packet `pid` if the scheme tells it to act, given its full value.
    ///
    /// Virtual-hop trick: the scheme runs over `k·F` slots; hop `i` owns
    /// slots `(i−1)·F+1 ..= i·F` and acts only on the slot matching the
    /// packet's fragment number.
    pub fn payload(&self, pid: u64, hop: usize, value: u64) -> u64 {
        let f = self.codec.fragment_of(pid);
        let _ = hop;
        self.codec.extract(value, f)
    }

    /// Absorbs a packet at the sink, learning fragment values directly
    /// (fragments fit the digest, so no hashing is needed). `payloads`
    /// maps each acting slot to its fragment value; in a real deployment
    /// the digest arithmetic does this — tests drive it through
    /// [`Self::simulate_packet`].
    fn absorb_slot(&mut self, slot: usize, value: u64) {
        if self.values[slot].is_none() {
            self.values[slot] = Some(value);
        }
    }

    /// Simulates the full encode/decode of packet `pid` over `path`
    /// (values per hop); returns `true` when all fragments are decoded.
    ///
    /// Baseline packets reveal their writer slot's fragment; XOR packets
    /// reveal a slot when all but one acting slot is known (we replay the
    /// digest arithmetic exactly).
    pub fn simulate_packet(&mut self, pid: u64, path: &[u64]) -> bool {
        assert_eq!(path.len(), self.k);
        let f = self.codec.fragment_of(pid);
        let slots = self.k * self.codec.fragments() as usize;
        use super::schemes::PacketRole;
        // Classify over virtual slots; only slots with fragment number f
        // are act-eligible for this packet.
        match self.scheme.classify(&self.family, pid, slots) {
            PacketRole::Baseline { writer } => {
                let hop = (writer - 1) / self.codec.fragments() as usize + 1;
                let slot_frag = ((writer - 1) % self.codec.fragments() as usize) as u32;
                if slot_frag == f {
                    let frag_val = self.codec.extract(path[hop - 1], f);
                    self.absorb_slot(writer, frag_val);
                }
            }
            PacketRole::Xor { acting } => {
                let acting: Vec<usize> = acting
                    .into_iter()
                    .filter(|&s| ((s - 1) % self.codec.fragments() as usize) as u32 == f)
                    .collect();
                let unknown: Vec<usize> = acting
                    .iter()
                    .copied()
                    .filter(|&s| self.values[s].is_none())
                    .collect();
                if unknown.len() == 1 {
                    // XOR out the known fragments from the digest.
                    let mut digest = 0u64;
                    for &s in &acting {
                        let hop = (s - 1) / self.codec.fragments() as usize + 1;
                        digest ^= self.codec.extract(path[hop - 1], f);
                    }
                    for &s in &acting {
                        if let Some(v) = self.values[s] {
                            digest ^= v;
                        }
                    }
                    self.absorb_slot(unknown[0], digest);
                }
            }
        }
        self.is_complete()
    }

    /// `true` once every (hop, fragment) value is known.
    pub fn is_complete(&self) -> bool {
        (1..self.values.len()).all(|s| self.values[s].is_some())
    }

    /// The decoded per-hop values, if complete.
    pub fn decoded_values(&self) -> Option<Vec<u64>> {
        if !self.is_complete() {
            return None;
        }
        let f = self.codec.fragments();
        Some(
            (1..=self.k)
                .map(|hop| {
                    let frags: Vec<u64> = (0..f)
                        .map(|fr| self.values[self.slot(hop, fr)].unwrap())
                        .collect();
                    self.codec.assemble(&frags)
                })
                .collect(),
        )
    }

    /// Block-progress tracker for packet-count statistics.
    pub fn tracker(&self) -> &BlockDecoder {
        &self.tracker
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fragment_count() {
        assert_eq!(FragmentCodec::new(32, 8, 0).fragments(), 4);
        assert_eq!(FragmentCodec::new(32, 5, 0).fragments(), 7);
        assert_eq!(FragmentCodec::new(8, 8, 0).fragments(), 1);
        assert_eq!(FragmentCodec::new(9, 8, 0).fragments(), 2);
    }

    #[test]
    fn extract_assemble_roundtrip() {
        let c = FragmentCodec::new(32, 8, 1);
        let v = 0xDEAD_BEEFu64;
        let frags: Vec<u64> = (0..4).map(|f| c.extract(v, f)).collect();
        assert_eq!(frags, vec![0xEF, 0xBE, 0xAD, 0xDE]);
        assert_eq!(c.assemble(&frags), v);
    }

    #[test]
    fn fragment_selection_uniform() {
        let c = FragmentCodec::new(32, 8, 5);
        let mut counts = [0u32; 4];
        for pid in 0..40_000u64 {
            counts[c.fragment_of(pid) as usize] += 1;
        }
        for &n in &counts {
            assert!((9_000..=11_000).contains(&n), "{counts:?}");
        }
    }

    #[test]
    fn end_to_end_fragmented_decode() {
        let c = FragmentCodec::new(32, 8, 9);
        let path: Vec<u64> = vec![0xAABBCCDD, 0x11223344, 0x55667788];
        let mut agg = FragmentedAggregation::new(c, SchemeConfig::hybrid(12), 13, path.len());
        let mut pid = 0u64;
        while !agg.simulate_packet(pid, &path) {
            pid += 1;
            assert!(pid < 100_000, "fragmented decode did not converge");
        }
        assert_eq!(agg.decoded_values().unwrap(), path);
        // k·F = 12 virtual hops: needs noticeably more than k packets.
        assert!(pid > path.len() as u64);
    }

    #[test]
    fn single_fragment_behaves_like_plain() {
        let c = FragmentCodec::new(8, 8, 2);
        let path: Vec<u64> = vec![1, 2, 3, 4];
        let mut agg = FragmentedAggregation::new(c, SchemeConfig::baseline(), 3, 4);
        let mut pid = 0u64;
        while !agg.simulate_packet(pid, &path) {
            pid += 1;
            assert!(pid < 10_000);
        }
        assert_eq!(agg.decoded_values().unwrap(), path);
    }
}
