//! Linear Network Coding over GF(2) — the comparison scheme of §4.2.
//!
//! Each packet's digest is a random linear combination of the message
//! blocks: every hop XORs its block on with probability 1/2 (selected by the
//! global hash, so the receiver knows each packet's coefficient vector).
//! Decoding is Gaussian elimination; the message is recovered once the
//! coefficient matrix reaches rank `k`, which takes `≈ k + log₂ k` packets.
//!
//! The paper keeps LNC as a baseline because (a) its decoding is `O(k³)`
//! versus PINT's near-linear propagation, and (b) it "does not seem to work
//! when using hashing to reduce the overhead" — so we implement only the
//! perfect-block variant, as the paper does.

use crate::hash::HashFamily;

/// Incremental GF(2) rank tracker: decodes a `k`-block message from random
/// linear combinations (supports `k ≤ 128`).
#[derive(Debug, Clone)]
pub struct LncDecoder {
    family: HashFamily,
    k: usize,
    /// Row-echelon basis: `basis[i]` has its leading bit at position `i`.
    basis: Vec<u128>,
    rank: usize,
    packets: u64,
}

impl LncDecoder {
    /// Creates an LNC decoder for a `k`-block message.
    pub fn new(family: HashFamily, k: usize) -> Self {
        assert!((1..=128).contains(&k), "LNC decoder supports 1 ≤ k ≤ 128");
        Self {
            family,
            k,
            basis: vec![0; k],
            rank: 0,
            packets: 0,
        }
    }

    /// The coefficient vector of packet `pid`: bit `i` set ⇔ hop `i+1`
    /// XORs its block onto the digest (probability 1/2 each, from the
    /// global hash).
    pub fn coefficients(&self, pid: u64) -> u128 {
        let mut row = 0u128;
        for hop in 1..=self.k {
            if self.family.xor_participates(pid, hop, 0.5) {
                row |= 1 << (hop - 1);
            }
        }
        row
    }

    /// Absorbs packet `pid`; returns `true` once rank `k` is reached.
    pub fn absorb(&mut self, pid: u64) -> bool {
        self.packets += 1;
        let mut row = self.coefficients(pid);
        // Reduce against the basis.
        while row != 0 {
            let lead = 127 - row.leading_zeros() as usize;
            if self.basis[lead] == 0 {
                self.basis[lead] = row;
                self.rank += 1;
                break;
            }
            row ^= self.basis[lead];
        }
        self.is_complete()
    }

    /// Current rank (number of independent combinations received).
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// `true` when the message can be fully decoded.
    pub fn is_complete(&self) -> bool {
        self.rank == self.k
    }

    /// Packets absorbed so far.
    pub fn packets(&self) -> u64 {
        self.packets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packets_to_decode(k: usize, seed: u64) -> u64 {
        let mut dec = LncDecoder::new(HashFamily::new(seed, 0), k);
        let mut pid = seed * 1_000_000;
        loop {
            pid += 1;
            if dec.absorb(pid) {
                return dec.packets();
            }
            assert!(dec.packets() < 10_000, "LNC did not converge");
        }
    }

    #[test]
    fn decodes_near_k_packets() {
        // §4.2: "LNC requires just ≈ k + log₂ k packets".
        for &k in &[8usize, 25, 64] {
            let runs = 60;
            let mean: f64 = (0..runs)
                .map(|s| packets_to_decode(k, s + 1) as f64)
                .sum::<f64>()
                / runs as f64;
            let bound = k as f64 + (k as f64).log2() + 4.0;
            assert!(
                mean <= bound,
                "k={k}: mean {mean} above k + log₂k bound {bound}"
            );
            assert!(mean >= k as f64, "k={k}: impossible mean {mean}");
        }
    }

    #[test]
    fn rank_monotone_and_bounded() {
        let mut dec = LncDecoder::new(HashFamily::new(3, 0), 30);
        let mut prev = 0;
        for pid in 0..200 {
            dec.absorb(pid);
            assert!(dec.rank() >= prev);
            assert!(dec.rank() <= 30);
            prev = dec.rank();
        }
        assert!(dec.is_complete());
    }

    #[test]
    fn coefficients_half_density() {
        let dec = LncDecoder::new(HashFamily::new(17, 0), 100);
        let total: u32 = (0..2_000u64)
            .map(|pid| dec.coefficients(pid).count_ones())
            .sum();
        let rate = total as f64 / (2_000.0 * 100.0);
        assert!((rate - 0.5).abs() < 0.02, "density {rate}");
    }

    #[test]
    fn k_equals_one() {
        // Needs on average 2 packets (each has the block with prob 1/2).
        let mean: f64 = (0..200)
            .map(|s| packets_to_decode(1, s + 1) as f64)
            .sum::<f64>()
            / 200.0;
        assert!((mean - 2.0).abs() < 0.5, "mean {mean}");
    }
}
