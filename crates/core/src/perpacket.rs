//! Per-packet aggregation (paper §3.1, §4.3 Example 3).
//!
//! Summarizes values across a single packet's path with an aggregation
//! function (max/min/sum). The HPCC use case keeps only the *bottleneck*
//! (max) link utilization in the packet header, compressed with the
//! multiplicative codec and randomized rounding so that the sender's view
//! is unbiased. Sum aggregation with tiny budgets uses randomized counting
//! (Morris; see [`pint_sketches::morris`]).

use crate::approx::MultiplicativeCodec;
use crate::hash::GlobalHash;
use crate::value::Digest;

/// The aggregation function applied across hops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PerPacketOp {
    /// Keep the maximum (e.g. bottleneck utilization — HPCC).
    Max,
    /// Keep the minimum (e.g. smallest residual capacity).
    Min,
    /// Sum across hops (e.g. end-to-end latency).
    Sum,
}

/// Switch-side per-packet aggregator.
///
/// The digest lane carries the compressed running aggregate. Because the
/// multiplicative codec is monotone, max/min commute with encoding and each
/// switch simply compares codes — a single ALU operation in the data plane.
#[derive(Debug, Clone)]
pub struct PerPacketAggregator {
    op: PerPacketOp,
    codec: MultiplicativeCodec,
    rounding: GlobalHash,
}

impl PerPacketAggregator {
    /// Creates an aggregator compressing values in `[v_min, v_max]` with
    /// multiplicative parameter `eps` (the paper's HPCC configuration is
    /// `eps = 0.025` → 8 bits).
    pub fn new(op: PerPacketOp, eps: f64, v_min: f64, v_max: f64, seed: u64) -> Self {
        Self {
            op,
            codec: MultiplicativeCodec::new(eps, v_min, v_max),
            rounding: GlobalHash::new(seed ^ 0x5EED_0BAD),
        }
    }

    /// The codec in use.
    pub fn codec(&self) -> &MultiplicativeCodec {
        &self.codec
    }

    /// Bits the digest lane occupies.
    pub fn bits(&self) -> u32 {
        match self.op {
            PerPacketOp::Sum => self.codec.bits() + 2, // head-room for sums
            _ => self.codec.bits(),
        }
    }

    /// Encoding Module at one hop: folds `value` into digest lane `lane`.
    ///
    /// For max/min the switch encodes its value with randomized rounding
    /// `[·]_R` (§4.3, keyed on (pid, hop) so it is reproducible yet
    /// averages out) and keeps the larger/smaller code. For sum, the values
    /// are summed in code space after decoding — the simulator-level
    /// equivalent of the log/exp trick (Appendix B).
    pub fn encode_hop(&self, pid: u64, hop: usize, value: f64, digest: &mut Digest, lane: usize) {
        let u = self.rounding.unit2(pid, hop as u64);
        let code = u64::from(self.codec.encode_randomized(value, u));
        let cur = digest.get(lane);
        let next = match self.op {
            PerPacketOp::Max => cur.max(code),
            PerPacketOp::Min => {
                if cur == 0 {
                    code // lane starts at 0 = "no value yet"
                } else {
                    cur.min(code)
                }
            }
            PerPacketOp::Sum => {
                let sum = self.codec.decode(cur as u32) + value;
                u64::from(self.codec.encode_randomized(sum, u))
            }
        };
        digest.set(lane, next);
    }

    /// Decodes the aggregate carried by the digest.
    pub fn decode(&self, digest: &Digest, lane: usize) -> f64 {
        self.codec.decode(digest.get(lane) as u32)
    }
}

/// Randomized counting of per-hop events (§4.3 "Randomized counting").
///
/// Counting how many hops satisfy a predicate (e.g. "latency is high")
/// needs `log₂ k` bits if done exactly; a Morris-style register does it in
/// `O(log log k + log ε⁻¹)` bits. Each hop where the predicate holds
/// increments the packet's register with probability `a^(−c)`, driven by
/// the global hash so the outcome is reproducible; the Inference Module
/// averages the unbiased per-packet estimates across packets.
#[derive(Debug, Clone)]
pub struct EventCounter {
    hash: GlobalHash,
    /// Accuracy parameter; base `a = 1 + 1/scale`.
    scale: f64,
    /// Register bits reserved on the packet.
    bits: u32,
}

impl EventCounter {
    /// Creates a counter able to count up to `max_events` per packet with
    /// accuracy parameter `scale` (std-error ≈ `1/sqrt(2·scale)`).
    pub fn new(seed: u64, scale: f64, max_events: u64) -> Self {
        assert!(scale >= 1.0);
        Self {
            hash: GlobalHash::new(seed ^ 0x0C0_4A7),
            scale,
            bits: pint_sketches::MorrisCounter::bits_for(scale, max_events),
        }
    }

    /// Bits the register occupies on the packet.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    fn base(&self) -> f64 {
        1.0 + 1.0 / self.scale
    }

    /// Switch side: if this hop's event fired, probabilistically bump the
    /// register in digest lane `lane`.
    pub fn encode_hop(&self, pid: u64, hop: usize, event: bool, digest: &mut Digest, lane: usize) {
        if !event {
            return;
        }
        let c = digest.get(lane) as i32;
        let p = self.base().powi(-c);
        if self.hash.unit2(pid, hop as u64) < p {
            digest.set(lane, (c + 1) as u64);
        }
    }

    /// Unbiased estimate of the number of events the packet saw.
    pub fn decode(&self, digest: &Digest, lane: usize) -> f64 {
        let a = self.base();
        (a.powi(digest.get(lane) as i32) - 1.0) / (a - 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(op: PerPacketOp, values: &[f64], pid: u64) -> f64 {
        let agg = PerPacketAggregator::new(op, 0.025, 1e-4, 10.0, 3);
        let mut d = Digest::new(1);
        for (i, &v) in values.iter().enumerate() {
            agg.encode_hop(pid, i + 1, v, &mut d, 0);
        }
        agg.decode(&d, 0)
    }

    #[test]
    fn max_finds_bottleneck() {
        let vals = [0.2, 0.9, 0.4, 0.1, 0.5];
        let got = run(PerPacketOp::Max, &vals, 1);
        assert!((got / 0.9 - 1.0).abs() < 0.06, "max {got} vs 0.9");
    }

    #[test]
    fn min_finds_smallest() {
        let vals = [0.2, 0.9, 0.05, 0.1, 0.5];
        let got = run(PerPacketOp::Min, &vals, 2);
        assert!((got / 0.05 - 1.0).abs() < 0.06, "min {got} vs 0.05");
    }

    #[test]
    fn sum_approximates_total() {
        let vals = [0.5, 0.25, 0.125, 1.0, 2.0];
        let truth: f64 = vals.iter().sum();
        let got = run(PerPacketOp::Sum, &vals, 3);
        assert!((got / truth - 1.0).abs() < 0.2, "sum {got} vs {truth}");
    }

    #[test]
    fn max_unbiased_over_packets() {
        // Randomized rounding: averaging the decoded max over many packets
        // should converge to the true value (no systematic error; §4.3).
        let agg = PerPacketAggregator::new(PerPacketOp::Max, 0.025, 1e-4, 10.0, 3);
        let truth = 0.7391;
        let n = 50_000;
        let mut sum = 0.0;
        for pid in 0..n {
            let mut d = Digest::new(1);
            agg.encode_hop(pid, 1, truth, &mut d, 0);
            sum += agg.decode(&d, 0);
        }
        let mean = sum / n as f64;
        assert!(
            (mean / truth - 1.0).abs() < 0.005,
            "mean {mean} vs {truth}: systematic error not eliminated"
        );
    }

    #[test]
    fn eight_bit_budget_for_hpcc() {
        let agg = PerPacketAggregator::new(PerPacketOp::Max, 0.025, 1e-3, 4.0, 1);
        assert!(agg.bits() <= 8, "HPCC digest needs {} bits", agg.bits());
    }

    #[test]
    fn zero_digest_decodes_to_zero() {
        let agg = PerPacketAggregator::new(PerPacketOp::Max, 0.025, 1e-3, 4.0, 1);
        let d = Digest::new(1);
        assert_eq!(agg.decode(&d, 0), 0.0);
    }

    #[test]
    fn event_counter_mean_unbiased() {
        // 40 of 100 hops fire the "high latency" predicate; averaging the
        // per-packet estimates over many packets recovers 40.
        let ec = EventCounter::new(5, 8.0, 128);
        let k = 100;
        let n = 20_000u64;
        let mut sum = 0.0;
        for pid in 0..n {
            let mut d = Digest::new(1);
            for hop in 1..=k {
                ec.encode_hop(pid, hop, hop % 5 < 2, &mut d, 0);
            }
            sum += ec.decode(&d, 0);
        }
        let mean = sum / n as f64;
        assert!((mean - 40.0).abs() < 2.0, "mean {mean} vs 40");
    }

    #[test]
    fn event_counter_register_is_small() {
        // §4.3: the register needs O(log ε⁻¹ + log log(…)) bits — far
        // fewer than log₂(k) exact counting for large k.
        let ec = EventCounter::new(7, 8.0, 1 << 20);
        assert!(ec.bits() <= 7, "register {} bits", ec.bits());
        let mut d = Digest::new(1);
        for hop in 1..=(1 << 14) {
            ec.encode_hop(1, hop, true, &mut d, 0);
        }
        assert!(d.get(0) < (1 << 7), "register overflowed: {}", d.get(0));
    }

    #[test]
    fn event_counter_no_events_zero() {
        let ec = EventCounter::new(9, 4.0, 64);
        let mut d = Digest::new(1);
        for hop in 1..=30 {
            ec.encode_hop(3, hop, false, &mut d, 0);
        }
        assert_eq!(ec.decode(&d, 0), 0.0);
    }
}
