//! Global hash functions — the coordination backbone of PINT (§4.1).
//!
//! PINT avoids any switch-to-switch or switch-to-collector communication by
//! having every party evaluate the *same* keyed hash functions:
//!
//! * a **query-selection / layer-selection hash** `H(packet id)` mapping into
//!   `[0, 1)`, so all switches agree which query set (and which coding
//!   layer) a packet serves;
//! * a **decision hash** `g(packet id, hop)` mapping into `[0, 1)`, which
//!   drives the distributed reservoir sampling (`g(p, i) < 1/i`) and the
//!   XOR-layer participation (`g(p, i) < pℓ`);
//! * a **value hash** `h(value, packet id)` mapping into `q`-bit digests,
//!   which compresses wide values (e.g. 32-bit switch IDs) below the
//!   per-packet bit budget (§4.2 "Reducing the Bit-overhead using Hashing").
//!
//! The Recording/Inference modules recompute these hashes offline to learn
//! which switches acted on each packet — "implicit coordination".
//!
//! The implementation is a keyed SplitMix64-style finalizer. We implement it
//! locally (rather than using `std`'s `DefaultHasher`) because the paper's
//! protocol requires every party — switches, sink, inference server, and this
//! reproduction's tests — to compute *identical* values forever; `std`'s
//! hasher is explicitly unstable across releases.

/// The 64-bit finalizer from SplitMix64 / MurmurHash3's `fmix64`.
///
/// A bijective mixer with full avalanche: every input bit flips every output
/// bit with probability ≈ 1/2.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z ^= z >> 30;
    z = z.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Golden-ratio increment used to derive independent sub-keys.
const GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

/// A keyed global hash function.
///
/// All parties constructing a `GlobalHash` from the same key compute the
/// same outputs — this is what lets PINT coordinate without communication.
/// Different keys behave as independent hash functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GlobalHash {
    k0: u64,
    k1: u64,
}

impl GlobalHash {
    /// Creates the hash function identified by `key`.
    pub fn new(key: u64) -> Self {
        // Expand the key into two independent sub-keys so that multi-word
        // inputs cannot cancel the key by XOR.
        Self {
            k0: mix64(key ^ GAMMA),
            k1: mix64(key.wrapping_add(GAMMA)),
        }
    }

    /// Derives an independent hash function (e.g. one per query, per coding
    /// instance, or per fragment) from this one.
    pub fn derive(&self, salt: u64) -> Self {
        Self::new(self.k0 ^ mix64(salt.wrapping_mul(GAMMA) ^ self.k1))
    }

    /// Hashes a single 64-bit word.
    #[inline]
    pub fn hash1(&self, a: u64) -> u64 {
        mix64(a ^ self.k0).wrapping_add(self.k1)
    }

    /// Hashes a pair of 64-bit words.
    #[inline]
    pub fn hash2(&self, a: u64, b: u64) -> u64 {
        mix64(mix64(a ^ self.k0).wrapping_add(b ^ self.k1))
    }

    /// Hashes a triple of 64-bit words.
    #[inline]
    pub fn hash3(&self, a: u64, b: u64, c: u64) -> u64 {
        mix64(self.hash2(a, b) ^ mix64(c ^ self.k1))
    }

    /// Maps one word to the unit interval `[0, 1)`.
    ///
    /// Footnote 5 of the paper: hashing to `M`-bit integers and comparing
    /// against `⌊(2^M − 1)·p⌋` is equivalent to a real-valued hash; we use
    /// the 53 high bits so the value is exactly representable in an `f64`.
    #[inline]
    pub fn unit1(&self, a: u64) -> f64 {
        (self.hash1(a) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Maps a pair to the unit interval `[0, 1)`.
    #[inline]
    pub fn unit2(&self, a: u64, b: u64) -> f64 {
        (self.hash2(a, b) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Hashes a pair into a `bits`-wide digest (`1 ≤ bits ≤ 64`).
    #[inline]
    pub fn digest2(&self, a: u64, b: u64, bits: u32) -> u64 {
        debug_assert!((1..=64).contains(&bits));
        // Take the high bits: the multiply-based mixer has its best
        // avalanche there.
        self.hash2(a, b) >> (64 - bits)
    }

    /// The switch-side participation test `g(p, i) < p_threshold`.
    #[inline]
    pub fn below2(&self, a: u64, b: u64, p: f64) -> bool {
        self.unit2(a, b) < p
    }
}

/// The named hash family used by one PINT query instance.
///
/// Bundles the three global hash roles of §4.1 plus a per-instance salt so
/// that "multiple instantiations" (§4.2) are independent.
#[derive(Debug, Clone, Copy)]
pub struct HashFamily {
    /// Layer / scheme selection hash `H(pid)`.
    pub layer: GlobalHash,
    /// Per-hop decision hash `g(pid, hop)`.
    pub g: GlobalHash,
    /// Value hash `h(value, pid)`.
    pub h: GlobalHash,
}

impl HashFamily {
    /// Creates the family for query `query_seed`, instance `instance`.
    pub fn new(query_seed: u64, instance: u64) -> Self {
        let root = GlobalHash::new(query_seed).derive(instance);
        Self {
            layer: root.derive(1),
            g: root.derive(2),
            h: root.derive(3),
        }
    }

    /// The reservoir-sampling test: does hop `i` (1-based) overwrite the
    /// digest of packet `pid`? (`g(p, i) ≤ r_i` with `r_i = 1/i`; §4.1.)
    #[inline]
    pub fn reservoir_writes(&self, pid: u64, hop: usize) -> bool {
        debug_assert!(hop >= 1, "hops are 1-based");
        self.g.unit2(pid, hop as u64) < 1.0 / hop as f64
    }

    /// The hop that ends up owning packet `pid`'s digest under reservoir
    /// sampling over a `k`-hop path: the *last* hop that writes.
    ///
    /// Always exists because hop 1 writes unconditionally.
    ///
    /// Scans from the last hop down: the winner is the *highest* hop
    /// that writes, so the first writer found from the top is it. Same
    /// answer as the forward scan, with half the hash evaluations in
    /// expectation (the winner is uniform over the path).
    pub fn reservoir_winner(&self, pid: u64, k: usize) -> usize {
        for hop in (2..=k).rev() {
            if self.reservoir_writes(pid, hop) {
                return hop;
            }
        }
        1
    }

    /// The XOR-layer participation test with probability `p` (§4.2).
    #[inline]
    pub fn xor_participates(&self, pid: u64, hop: usize, p: f64) -> bool {
        self.g.unit2(pid, hop as u64) < p
    }

    /// The value digest `h(value, pid)` truncated to `bits` bits.
    #[inline]
    pub fn value_digest(&self, value: u64, pid: u64, bits: u32) -> u64 {
        self.h.digest2(value, pid, bits)
    }
}

/// Computes the set of hops (1-based, `hop ≤ k`) that XOR onto packet
/// `pid` at probability `p`, using the near-linear "pseudo-random bit
/// vector" construction of §4.2 ("Reducing the Decoding Complexity").
///
/// `p` is rounded down to the nearest power of two `2^-t`; the acting set is
/// the bitwise-AND of `t` pseudo-random `k`-bit vectors, so membership of
/// all `k` hops is computed in `O(t)` word operations instead of `O(k)` hash
/// evaluations. Supports `k ≤ 128`.
pub fn acting_bitvec(family: &HashFamily, pid: u64, k: usize, p: f64) -> u128 {
    assert!(k <= 128, "bit-vector fast path supports k ≤ 128");
    let t = (-p.log2()).round().max(0.0) as u32;
    let mask = if k == 128 { !0u128 } else { (1u128 << k) - 1 };
    let mut acc = mask;
    for round in 0..t {
        let lo = family.g.hash3(pid, round as u64, 0);
        let hi = family.g.hash3(pid, round as u64, 1);
        acc &= (lo as u128) | ((hi as u128) << 64);
    }
    acc & mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let a = GlobalHash::new(42);
        let b = GlobalHash::new(42);
        assert_eq!(a.hash2(1, 2), b.hash2(1, 2));
        assert_eq!(a.unit1(99), b.unit1(99));
    }

    #[test]
    fn different_keys_differ() {
        let a = GlobalHash::new(1);
        let b = GlobalHash::new(2);
        let collisions = (0..1000u64).filter(|&x| a.hash1(x) == b.hash1(x)).count();
        assert_eq!(collisions, 0);
    }

    #[test]
    fn unit_interval_is_uniform() {
        let h = GlobalHash::new(7);
        let n = 100_000u64;
        let mut buckets = [0u32; 10];
        for x in 0..n {
            let u = h.unit1(x);
            assert!((0.0..1.0).contains(&u));
            buckets[(u * 10.0) as usize] += 1;
        }
        for &b in &buckets {
            assert!((9_300..=10_700).contains(&b), "{buckets:?}");
        }
    }

    #[test]
    fn digest_bits_bounded_and_uniform() {
        let h = GlobalHash::new(3);
        let mut counts = [0u32; 16];
        for x in 0..160_000u64 {
            let d = h.digest2(x, 55, 4);
            assert!(d < 16);
            counts[d as usize] += 1;
        }
        for &c in &counts {
            assert!((9_300..=10_700).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn one_bit_digest_works() {
        let h = GlobalHash::new(11);
        let ones: u64 = (0..10_000u64).map(|x| h.digest2(x, x, 1)).sum();
        assert!((4_500..=5_500).contains(&ones));
    }

    #[test]
    fn derive_produces_independent_functions() {
        let root = GlobalHash::new(5);
        let a = root.derive(1);
        let b = root.derive(2);
        // Outputs should be uncorrelated: matching low bits ~50%.
        let matches = (0..10_000u64)
            .filter(|&x| (a.hash1(x) & 1) == (b.hash1(x) & 1))
            .count();
        assert!((4_600..=5_400).contains(&matches), "{matches}");
    }

    #[test]
    fn reservoir_winner_is_uniform_over_path() {
        let fam = HashFamily::new(123, 0);
        let k = 25;
        let mut counts = vec![0u32; k + 1];
        let trials = 100_000;
        for pid in 0..trials {
            counts[fam.reservoir_winner(pid, k)] += 1;
        }
        let expect = trials as f64 / k as f64;
        for hop in 1..=k {
            let c = counts[hop] as f64;
            assert!(
                (c - expect).abs() < expect * 0.12,
                "hop {hop}: {c} vs {expect}"
            );
        }
    }

    #[test]
    fn reservoir_winner_first_hop_for_k1() {
        let fam = HashFamily::new(9, 0);
        for pid in 0..100 {
            assert_eq!(fam.reservoir_winner(pid, 1), 1);
        }
    }

    #[test]
    fn xor_participation_rate_matches_p() {
        let fam = HashFamily::new(77, 1);
        let p = 0.1;
        let mut acting = 0u64;
        let total = 200_000;
        for pid in 0..total {
            if fam.xor_participates(pid, 5, p) {
                acting += 1;
            }
        }
        let rate = acting as f64 / total as f64;
        assert!((rate - p).abs() < 0.005, "rate {rate}");
    }

    #[test]
    fn instances_are_independent() {
        let f0 = HashFamily::new(42, 0);
        let f1 = HashFamily::new(42, 1);
        let k = 20;
        let same = (0..10_000u64)
            .filter(|&pid| f0.reservoir_winner(pid, k) == f1.reservoir_winner(pid, k))
            .count();
        // If independent: collision probability ≈ Σ 1/k² · ... ≈ 1/k = 5%.
        assert!(same < 800, "winners too correlated: {same}");
    }

    #[test]
    fn bitvec_matches_power_of_two_probability() {
        let fam = HashFamily::new(31, 0);
        let k = 64;
        let p = 1.0 / 8.0;
        let mut total_bits = 0u32;
        let trials = 20_000;
        for pid in 0..trials {
            total_bits += acting_bitvec(&fam, pid, k, p).count_ones();
        }
        let rate = total_bits as f64 / (trials * k as u64) as f64;
        assert!((rate - p).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn value_digest_distinguishes_values() {
        let fam = HashFamily::new(1, 0);
        // With 16-bit digests, two fixed distinct values should collide on
        // only ~1/65536 of packets.
        let collisions = (0..100_000u64)
            .filter(|&pid| fam.value_digest(10, pid, 16) == fam.value_digest(11, pid, 16))
            .count();
        assert!(collisions < 12, "collisions {collisions}");
    }
}
