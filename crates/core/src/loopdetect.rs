//! On-the-fly routing-loop detection (paper Appendix A.4, Algorithm 2).
//!
//! A switch can recognize a looping packet without keeping state: before
//! sampling, it checks whether the packet's digest already equals
//! `h(s, pid)` — which happens if this same switch wrote the digest on a
//! previous visit. To suppress false positives (probability `2^-b` per
//! (switch, packet) pair), a small counter `c` rides on the packet: the
//! digest is frozen once a match occurs, and a loop is reported only after
//! `T` matches, driving the false-report rate to roughly `path_len · 2^-bT`.

use crate::hash::HashFamily;

/// Per-packet loop-detection state: the digest plus the match counter
/// (`⌈log₂(T+1)⌉` extra bits on the packet).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoopState {
    /// The `b`-bit digest.
    pub digest: u64,
    /// Number of digest matches observed so far.
    pub counter: u8,
}

/// Outcome of processing one hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopVerdict {
    /// Keep forwarding.
    Continue,
    /// A loop was detected (counter reached `T` and the digest matched
    /// again).
    Loop,
}

/// The loop-detection protocol of Algorithm 2.
#[derive(Debug, Clone)]
pub struct LoopDetector {
    family: HashFamily,
    /// Digest width `b` in bits.
    bits: u32,
    /// Matches required before reporting (the paper's `T`).
    threshold: u8,
}

impl LoopDetector {
    /// Creates a detector with a `bits`-bit digest and report threshold
    /// `T = threshold`. The paper's example configurations: `T=1, b=15`
    /// and `T=3, b=14` (both 16 bits total with the counter).
    pub fn new(seed: u64, bits: u32, threshold: u8) -> Self {
        assert!((1..=64).contains(&bits));
        Self {
            family: HashFamily::new(seed ^ 0x100F_DE7E, 0),
            bits,
            threshold,
        }
    }

    /// Total per-packet overhead in bits (digest + counter).
    pub fn overhead_bits(&self) -> u32 {
        self.bits + 8 - self.threshold.leading_zeros().min(8)
    }

    /// Processes packet `pid` at the `hop`-th switch (1-based) with ID
    /// `switch_id`, updating `state` (Algorithm 2).
    pub fn process(
        &self,
        switch_id: u64,
        pid: u64,
        hop: usize,
        state: &mut LoopState,
    ) -> LoopVerdict {
        let h = self.family.value_digest(switch_id, pid, self.bits);
        if state.digest == h {
            // The digest matches this switch's hash: either we wrote it on
            // a previous visit (true loop) or it collided (false positive).
            // (At hop 1 the all-zero source digest can also collide; that
            // case is part of the 2^-b false-positive budget.)
            if state.counter >= self.threshold {
                return LoopVerdict::Loop;
            }
            state.counter += 1;
            return LoopVerdict::Continue;
        }
        // Standard sampling only while no match has been recorded.
        if state.counter == 0 && self.family.reservoir_writes(pid, hop) {
            state.digest = h;
        }
        LoopVerdict::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn walk(det: &LoopDetector, pid: u64, path: &[u64]) -> bool {
        let mut st = LoopState::default();
        for (i, &sw) in path.iter().enumerate() {
            if det.process(sw, pid, i + 1, &mut st) == LoopVerdict::Loop {
                return true;
            }
        }
        false
    }

    #[test]
    fn detects_a_loop() {
        // Path that cycles through switches 10→11→12 repeatedly.
        let det = LoopDetector::new(1, 15, 1);
        let cycle = [10u64, 11, 12];
        let mut detected = 0;
        let trials = 200;
        for pid in 0..trials {
            // 30 cycles: plenty of chances for the looping switch that
            // wrote the digest to see it again T+1 times.
            let path: Vec<u64> = (0..90).map(|i| cycle[i % 3]).collect();
            if walk(&det, pid, &path) {
                detected += 1;
            }
        }
        assert!(
            detected > trials * 9 / 10,
            "loop missed too often: {detected}/{trials}"
        );
    }

    #[test]
    fn false_positive_rate_small_t1_b15() {
        // Paper: T=1, b=15 → false report probability < 5·10⁻⁷ per packet
        // on a 32-hop path. With 200k packets we expect ~0 reports.
        let det = LoopDetector::new(2, 15, 1);
        let path: Vec<u64> = (0..32).map(|i| 1000 + i).collect();
        let mut fp = 0;
        for pid in 0..200_000u64 {
            if walk(&det, pid, &path) {
                fp += 1;
            }
        }
        assert_eq!(fp, 0, "false positives at T=1,b=15: {fp}");
    }

    #[test]
    fn false_positive_rate_higher_with_tiny_digest() {
        // With b=4 and T=0-equivalent (threshold 1 but 16 values) false
        // positives on loop-free paths become observable — the reason the
        // paper adds the counter.
        let det = LoopDetector::new(3, 4, 1);
        let path: Vec<u64> = (0..32).map(|i| 2000 + i).collect();
        let mut fp = 0u32;
        for pid in 0..20_000u64 {
            if walk(&det, pid, &path) {
                fp += 1;
            }
        }
        assert!(fp > 0, "expected some false positives at b=4");
    }

    #[test]
    fn higher_threshold_reduces_false_positives() {
        let path: Vec<u64> = (0..32).map(|i| 3000 + i).collect();
        let count_fp = |threshold: u8| -> u32 {
            let det = LoopDetector::new(4, 4, threshold);
            (0..20_000u64).filter(|&pid| walk(&det, pid, &path)).count() as u32
        };
        let t1 = count_fp(1);
        let t3 = count_fp(3);
        assert!(t3 < t1, "T=3 ({t3}) should have fewer FPs than T=1 ({t1})");
    }

    #[test]
    fn loop_free_long_path_mostly_clean() {
        let det = LoopDetector::new(5, 14, 3);
        let path: Vec<u64> = (0..59).map(|i| 4000 + i).collect();
        let fp = (0..100_000u64)
            .filter(|&pid| walk(&det, pid, &path))
            .count();
        assert_eq!(fp, 0, "T=3,b=14 should be false-positive free");
    }

    #[test]
    fn overhead_accounting() {
        // T=1 needs 1 counter bit, T=3 needs 2.
        assert_eq!(LoopDetector::new(0, 15, 1).overhead_bits(), 16);
        assert_eq!(LoopDetector::new(0, 14, 3).overhead_bits(), 16);
    }
}
