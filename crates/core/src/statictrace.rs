//! Static per-flow aggregation: path tracing (paper §3.2, §4.2 Example 2).
//!
//! For values that are fixed per (flow, switch) pair — switch IDs being the
//! canonical case — PINT spreads the path over many packets using the
//! distributed coding schemes of [`crate::coding`] plus the hashing
//! technique: each acting switch writes/XORs `h(switch id, packet id)`
//! truncated to the query's bit budget.
//!
//! [`PathTracer`] is the switch-side Encoding Module: stateless, four
//! pipeline stages in the P4 realization (choose layer, compute `g`, hash
//! the switch ID, write the digest — §5). [`PathDecoder`] is the
//! Recording + Inference side: it reclassifies each packet from its ID and
//! eliminates candidate switch IDs until the path is unique.

use crate::coding::decoder::HashedDecoder;
use crate::coding::schemes::{HopAction, SchemeConfig};
use crate::hash::HashFamily;
use crate::value::Digest;

/// Configuration of a path-tracing query.
#[derive(Debug, Clone)]
pub struct TracerConfig {
    /// Per-instance digest width in bits (`b`); the paper evaluates
    /// `b ∈ {1, 4, 8}`.
    pub bits: u32,
    /// Number of independent instances (§4.2 "Multiple Instantiations");
    /// e.g. `2` with `bits = 8` is the paper's `2×(b=8)` configuration.
    pub instances: usize,
    /// The coding scheme; [`SchemeConfig::multilayer`] of the network
    /// diameter reproduces the paper's evaluation setting.
    pub scheme: SchemeConfig,
    /// Seed identifying the query's global hash family.
    pub seed: u64,
}

impl TracerConfig {
    /// The paper's Fig. 10 configurations: `b`-bit digests, `instances`
    /// independent hashes, multilayer scheme for typical path length `d`.
    pub fn paper(bits: u32, instances: usize, d: usize) -> Self {
        Self {
            bits,
            instances,
            scheme: SchemeConfig::multilayer(d),
            seed: 0x9172_0001,
        }
    }

    /// Total per-packet overhead in bits.
    pub fn total_bits(&self) -> u32 {
        self.bits * self.instances as u32
    }
}

/// Switch-side encoder for path tracing. Stateless; shared by all switches.
#[derive(Debug, Clone)]
pub struct PathTracer {
    config: TracerConfig,
    families: Vec<HashFamily>,
}

impl PathTracer {
    /// Builds the encoder (and the hash families all parties share).
    pub fn new(config: TracerConfig) -> Self {
        assert!(config.instances >= 1);
        assert!((1..=64).contains(&config.bits));
        let families = (0..config.instances)
            .map(|t| HashFamily::new(config.seed, t as u64))
            .collect();
        Self { config, families }
    }

    /// The configuration.
    pub fn config(&self) -> &TracerConfig {
        &self.config
    }

    /// The per-instance hash families (used by the decoder).
    pub fn families(&self) -> &[HashFamily] {
        &self.families
    }

    /// Creates a digest sized for this query (one lane per instance).
    pub fn new_digest(&self) -> Digest {
        Digest::new(self.config.instances)
    }

    /// Executes the Encoding Module at hop `hop` (1-based) for packet
    /// `pid`: the switch with ID `switch_id` updates `digest` in place
    /// (Algorithm 1).
    pub fn encode_hop(&self, pid: u64, hop: usize, switch_id: u64, digest: &mut Digest) {
        for (t, fam) in self.families.iter().enumerate() {
            match self.config.scheme.hop_action(fam, pid, hop) {
                HopAction::Keep => {}
                HopAction::Overwrite => {
                    digest.set(t, fam.value_digest(switch_id, pid, self.config.bits));
                }
                HopAction::Xor => {
                    digest.xor(t, fam.value_digest(switch_id, pid, self.config.bits));
                }
            }
        }
    }

    /// Convenience: encodes a whole path traversal of packet `pid`,
    /// returning the digest the PINT sink would extract.
    pub fn encode_path(&self, pid: u64, path: &[u64]) -> Digest {
        let mut d = self.new_digest();
        for (idx, &sw) in path.iter().enumerate() {
            self.encode_hop(pid, idx + 1, sw, &mut d);
        }
        d
    }

    /// Builds a decoder for one flow routed over a `k`-hop path, given the
    /// network's switch-ID universe `value_set`.
    pub fn decoder(&self, value_set: Vec<u64>, k: usize) -> PathDecoder {
        PathDecoder {
            inner: HashedDecoder::new(
                self.config.scheme.clone(),
                self.families.clone(),
                self.config.bits,
                value_set,
                k,
            ),
        }
    }

    /// Like [`Self::decoder`], additionally giving the Inference Module
    /// the network graph: consecutive path hops must be adjacent, so
    /// resolving one hop prunes its neighbors' candidates. This is how a
    /// real deployment decodes (the operator knows the topology) and what
    /// the paper's ISP evaluations imply.
    pub fn decoder_with_topology(
        &self,
        value_set: Vec<u64>,
        k: usize,
        adjacency: std::collections::HashMap<u64, Vec<u64>>,
    ) -> PathDecoder {
        let mut dec = self.decoder(value_set, k);
        dec.inner.set_adjacency(adjacency);
        dec
    }
}

/// Recording + Inference module for one flow's path.
///
/// Wraps [`HashedDecoder`] with the path-tracing vocabulary.
#[derive(Debug, Clone)]
pub struct PathDecoder {
    inner: HashedDecoder,
}

impl PathDecoder {
    /// Absorbs an extracted digest; `true` once the path is decoded.
    pub fn absorb(&mut self, pid: u64, digest: &Digest) -> bool {
        self.inner.absorb(pid, digest)
    }

    /// `true` once the full path is known.
    pub fn is_complete(&self) -> bool {
        self.inner.is_complete()
    }

    /// The inferred path (switch IDs, hop 1..k), if complete.
    pub fn path(&self) -> Option<Vec<u64>> {
        self.inner.decoded_path()
    }

    /// Hops resolved so far.
    pub fn resolved(&self) -> usize {
        self.inner.resolved()
    }

    /// Packets absorbed so far.
    pub fn packets(&self) -> u64 {
        self.inner.packets()
    }

    /// Digests inconsistent with the inferred path — signal of a routing
    /// change or multipath flow (§7).
    pub fn inconsistencies(&self) -> u64 {
        self.inner.inconsistencies()
    }

    /// Path length (`k`) this decoder was built for.
    pub fn path_len(&self) -> usize {
        self.inner.path_len()
    }

    /// Remaining candidate switch IDs for `hop` (1-based).
    pub fn candidates_left(&self, hop: usize) -> usize {
        self.inner.candidates_left(hop)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    fn trace_run(cfg: TracerConfig, path: &[u64], universe: Vec<u64>, pid0: u64) -> u64 {
        let tracer = PathTracer::new(cfg);
        let mut dec = tracer.decoder(universe, path.len());
        let mut pid = pid0;
        loop {
            pid = pid.wrapping_add(1);
            let digest = tracer.encode_path(pid, path);
            if dec.absorb(pid, &digest) {
                assert_eq!(dec.path().unwrap(), path);
                return dec.packets();
            }
            assert!(dec.packets() < 500_000, "no convergence");
        }
    }

    fn random_path(rng: &mut SmallRng, universe: &[u64], k: usize) -> Vec<u64> {
        let mut p: Vec<u64> = universe.to_vec();
        p.shuffle(rng);
        p.truncate(k);
        p
    }

    #[test]
    fn two_by_eight_bits_decodes_five_hops_quickly() {
        // FatTree-like: 80 switches, 5 hops, 2×(b=8). Paper Fig. 10c shows
        // ~10 packets on average at k=5.
        let universe: Vec<u64> = (0..80).collect();
        let mut rng = SmallRng::seed_from_u64(1);
        let mut total = 0;
        let runs = 50;
        for r in 0..runs {
            let path = random_path(&mut rng, &universe, 5);
            total += trace_run(
                TracerConfig::paper(8, 2, 5),
                &path,
                universe.clone(),
                r * 7919,
            );
        }
        let avg = total as f64 / runs as f64;
        assert!(avg < 25.0, "avg packets {avg} too high for 2×(b=8), k=5");
        assert!(avg >= 5.0, "cannot decode 5 hops in fewer than 5 packets");
    }

    #[test]
    fn one_bit_budget_still_decodes() {
        let universe: Vec<u64> = (0..64).collect();
        let mut rng = SmallRng::seed_from_u64(2);
        let path = random_path(&mut rng, &universe, 5);
        let packets = trace_run(TracerConfig::paper(1, 1, 5), &path, universe, 17);
        // b=1 needs ~log2(64)=6 constraints per hop → noticeably more
        // packets, but bounded.
        assert!(packets > 20, "{packets}");
        assert!(packets < 5_000, "{packets}");
    }

    #[test]
    fn larger_budget_needs_fewer_packets() {
        let universe: Vec<u64> = (0..157).collect();
        let mut rng = SmallRng::seed_from_u64(3);
        let path = random_path(&mut rng, &universe, 12);
        let avg = |bits: u32, instances: usize| -> f64 {
            let runs = 20;
            (0..runs)
                .map(|r| {
                    trace_run(
                        TracerConfig::paper(bits, instances, 10),
                        &path,
                        universe.clone(),
                        r * 104_729,
                    ) as f64
                })
                .sum::<f64>()
                / runs as f64
        };
        let b1 = avg(1, 1);
        let b4 = avg(4, 1);
        let b8x2 = avg(8, 2);
        assert!(b4 < b1, "b=4 ({b4}) should beat b=1 ({b1})");
        assert!(b8x2 < b4, "2×(b=8) ({b8x2}) should beat b=4 ({b4})");
    }

    #[test]
    fn total_bits_accounting() {
        assert_eq!(TracerConfig::paper(8, 2, 10).total_bits(), 16);
        assert_eq!(TracerConfig::paper(4, 1, 10).total_bits(), 4);
        assert_eq!(TracerConfig::paper(1, 1, 10).total_bits(), 1);
    }

    #[test]
    fn encode_path_equals_manual_hops() {
        let tracer = PathTracer::new(TracerConfig::paper(8, 2, 5));
        let path = [3u64, 9, 27];
        for pid in 0..200u64 {
            let d1 = tracer.encode_path(pid, &path);
            let mut d2 = tracer.new_digest();
            for (i, &sw) in path.iter().enumerate() {
                tracer.encode_hop(pid, i + 1, sw, &mut d2);
            }
            assert_eq!(d1, d2);
        }
    }
}
