//! # pint-fleet — cross-collector aggregation
//!
//! `pint-collector` scales recording *within* one process; real
//! deployments run one collector per pod/rack and still need global
//! answers ("the p99 across every flow through hop 3, fleet-wide").
//! This crate is that tier, mirroring the local-collection + global
//! aggregation split argued for by distributed INT monitoring work
//! (Simsek et al.) and switch-local event detection (Gruber et al.):
//!
//! ```text
//!  collector process A ──┐  SnapshotFrame (pint-wire,
//!  collector process B ──┤  TCP or in-memory)        ┌──────────────┐
//!  collector process C ──┴─────────────────────────▶ │ FleetServer /│
//!                                                    │FleetAggregator│
//!      keyed by (collector id, epoch);               └──────┬───────┘
//!      newest epoch wins per collector                      │
//!                                                           ▼
//!                             FleetView: per-flow KLL merge across
//!                             collectors, fleet quantiles, top-K,
//!                             watch lists  +  FleetRule events
//!                             (fired/cleared edges)
//! ```
//!
//! * **Transport** — [`FleetServer`] accepts frames over a std-only
//!   `std::net::TcpListener`; [`InMemoryTransport`] carries the *same
//!   encoded bytes* in-process for tests and single-binary setups. Both
//!   feed the same [`FleetAggregator`].
//! * **Keying** — frames carry `(collector_id, epoch)`; the aggregator
//!   keeps the newest epoch per collector and counts stale frames
//!   instead of applying them out of order.
//! * **Merging** — the fleet view lifts the collector's deterministic,
//!   associative snapshot merge one level: flows tracked by several
//!   collectors have their per-hop KLL sketches merged in collector-id
//!   order, so the answer is independent of frame arrival order.
//! * **Queries** — [`FleetView::execute`] runs any `pint-query`
//!   [`QueryPlan`] (selectors × projections ×
//!   delta options) against the merged view, with selection *before*
//!   merging costs; the same plan answers over TCP via
//!   [`FleetClient::query`] ↔ [`FleetServer`] `Query`/`QueryResponse`
//!   frames, byte-identical to local execution on the same state.
//! * **Rules** — [`FleetRule`]s run on the merged view after every
//!   applied snapshot, with explicit [`FleetEvent`] fired/cleared
//!   edges (hysteresis, like the collector's per-flow rules). Scopes
//!   are query selectors, so "alarm on every flow through switch S"
//!   is `rule.scoped_by(Selector::PathThroughSwitch(s))`.
//! * **Edge ingestion** — raw digests ship upstream too:
//!   [`DigestForwarder`] tails an edge process's digest stream and
//!   sends sequence-numbered `DigestBatch` frames with bounded
//!   buffering, reconnect + exponential backoff, and shed-oldest
//!   overload behavior; [`DigestServer`] ingests those streams from
//!   many forwarders on one non-blocking poll thread, deduplicates per
//!   `(source, seq)`, acknowledges every batch (`BatchAck`), and feeds
//!   a local collector's producer rings. Delivery is at-least-once
//!   with exact accounting: after shutdown,
//!   `delivered + deduped + shed == sent` holds per forwarder.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aggregator;
mod error;
mod forwarder;
mod ingest;
mod rules;
mod transport;
mod view;

pub use aggregator::{FleetAggregator, FleetConfig, FleetRestoreReport, FleetStats};
pub use error::FleetError;
pub use forwarder::{DigestForwarder, ForwarderConfig, ForwarderStats};
pub use ingest::{BatchSink, DigestServer, DigestServerConfig, DigestServerStats};
pub use rules::{FleetCondition, FleetEdge, FleetEvent, FleetRule};
pub use transport::{FleetClient, FleetServer, InMemorySender, InMemoryTransport};
pub use view::FleetView;
// The query tier this fleet is a backend of, re-exported for plan
// building at the call site.
pub use pint_query::{
    Projection, QueryBackend, QueryError, QueryPlan, QueryResult, Selector, TelemetryQuery,
};
