//! The merged fleet view: one queryable snapshot over N collectors.
//!
//! `CollectorSnapshot::from_shards` already merges *shards* of one
//! process deterministically; this module lifts the same associative
//! merge one level, to snapshots from different collector *processes*.
//! The new case is flow overlap: with per-pod collectors, packets of
//! one flow may be recorded by several pods (ECMP, sink sharding), so
//! equal flow IDs are merged — per-hop KLL sketches via the sketch's
//! associative `merge`, counters summed — rather than duplicated.
//! Collectors are processed in ascending collector-id order, making the
//! result independent of frame arrival order.

use pint_collector::{CollectorSnapshot, FlowId, FlowSummary};
use pint_core::dynamic::DynamicAggregator;
use pint_query::{QueryBackend, QueryError, QueryPlan, QueryResult, Selector, TableTotals};

/// A point-in-time, queryable merge of every collector's latest
/// snapshot.
#[derive(Debug, Clone)]
pub struct FleetView {
    merged: CollectorSnapshot,
    collectors: Vec<u64>,
}

impl FleetView {
    /// Merges collector snapshots into one view. Input order does not
    /// matter: snapshots are sorted by collector id first, so any
    /// arrival interleaving yields the same view.
    pub fn merge(snapshots: impl IntoIterator<Item = (u64, CollectorSnapshot)>) -> Self {
        let mut tagged: Vec<(u64, CollectorSnapshot)> = snapshots.into_iter().collect();
        tagged.sort_by_key(|&(id, _)| id);
        let collectors: Vec<u64> = tagged.iter().map(|&(id, _)| id).collect();

        let mut all_flows = Vec::new();
        let mut all_stats = Vec::new();
        let mut ingested = 0u64;
        for (_, snap) in tagged {
            let (flows, stats, n) = snap.into_parts();
            all_flows.extend(flows);
            all_stats.extend(stats);
            ingested = ingested.saturating_add(n);
        }
        // Stable sort: duplicates of one flow stay in collector-id
        // order, so the fold below merges them deterministically.
        all_flows.sort_by_key(|&(f, _)| f);
        let mut merged: Vec<(FlowId, FlowSummary)> = Vec::with_capacity(all_flows.len());
        for (flow, summary) in all_flows {
            match merged.last_mut() {
                Some((last, dst)) if *last == flow => dst.merge(summary),
                _ => merged.push((flow, summary)),
            }
        }
        Self {
            merged: CollectorSnapshot::from_parts(merged, all_stats, ingested),
            collectors,
        }
    }

    /// The merged snapshot — every `CollectorSnapshot` query (per-flow
    /// lookup, merged hop sketches, path completion, …) works on it.
    pub fn snapshot(&self) -> &CollectorSnapshot {
        &self.merged
    }

    /// Collector ids contributing to this view, ascending.
    pub fn collectors(&self) -> &[u64] {
        &self.collectors
    }

    /// Flows tracked fleet-wide.
    pub fn num_flows(&self) -> usize {
        self.merged.num_flows()
    }

    /// Digests recorded across the fleet's tracked flows.
    pub fn total_packets(&self) -> u64 {
        self.merged.total_packets()
    }

    /// Fleet-wide ϕ-quantile of hop `hop` (see
    /// [`CollectorSnapshot::latency_quantile`]).
    pub fn latency_quantile(&self, hop: usize, phi: f64, agg: &DynamicAggregator) -> Option<f64> {
        self.merged.latency_quantile(hop, phi, agg)
    }

    /// Executes a compiled [`QueryPlan`] against the merged view — the
    /// fleet backend of the workspace-wide query API. The same plan
    /// runs unchanged on a local `Collector` or over TCP, with
    /// identical results on identical state: this method only
    /// *pre-narrows* (clones just candidate rows) and delegates final
    /// ordering/projection to `pint-query`'s shared refinement.
    pub fn execute(&self, plan: &QueryPlan) -> Result<QueryResult, QueryError> {
        plan.validate()?;
        let rows = pint_query::refine(self.candidate_rows(plan), plan);
        let table = matches!(plan.selector, Selector::All).then(|| self.table_totals());
        Ok(pint_query::project(rows, &plan.projection, table))
    }

    /// Clones only the rows a plan could select: flow sets and watch
    /// lists probe per ID, top-K ranks by reference before cloning the
    /// winners, path predicates filter by reference — merge restricted
    /// to selected flows, not the whole fleet.
    fn candidate_rows(&self, plan: &QueryPlan) -> Vec<(FlowId, FlowSummary)> {
        let since = plan.options.updated_since;
        let live = |s: &FlowSummary| since.is_none_or(|t| s.last_ts > t);
        match &plan.selector {
            Selector::FlowSet(ids) | Selector::WatchList(ids) => {
                let mut wanted = ids.clone();
                wanted.sort_unstable();
                wanted.dedup();
                wanted
                    .into_iter()
                    .filter_map(|f| self.merged.flow(f).map(|s| (f, s.clone())))
                    .filter(|(_, s)| live(s))
                    .collect()
            }
            Selector::TopK(k) => {
                let mut ranked: Vec<(FlowId, &FlowSummary)> = self
                    .merged
                    .flows()
                    .filter(|(_, s)| live(s))
                    .map(|(f, s)| (*f, s))
                    .collect();
                ranked.sort_by(|a, b| {
                    pint_query::top_k_order((a.1.packets, a.0), (b.1.packets, b.0))
                });
                ranked.truncate(*k);
                // Back to ascending-ID order: refine() owns the final
                // rank ordering and expects sorted candidates.
                ranked.sort_by_key(|&(f, _)| f);
                ranked.into_iter().map(|(f, s)| (f, s.clone())).collect()
            }
            Selector::PathThroughSwitch(switch) => self
                .merged
                .flows()
                .filter(|(_, s)| live(s))
                .filter(|(_, s)| {
                    s.path
                        .as_ref()
                        .and_then(|p| p.path.as_deref())
                        .is_some_and(|p| p.contains(switch))
                })
                .map(|(f, s)| (*f, s.clone()))
                .collect(),
            Selector::OfKind(kind) => self
                .merged
                .flows()
                .filter(|(_, s)| live(s))
                .filter(|(_, s)| s.kind == *kind)
                .map(|(f, s)| (*f, s.clone()))
                .collect(),
            Selector::All => self
                .merged
                .flows()
                .filter(|(_, s)| live(s))
                .map(|(f, s)| (*f, s.clone()))
                .collect(),
        }
    }

    /// Table counters summed over every contributing collector's
    /// shards (the `Stats` projection's whole-backend totals).
    fn table_totals(&self) -> TableTotals {
        let mut t = TableTotals {
            ingested: self.merged.ingested,
            ..TableTotals::default()
        };
        for s in &self.merged.shard_stats {
            t.created += s.created;
            t.evicted_lru += s.evicted_lru;
            t.evicted_ttl += s.evicted_ttl;
        }
        t
    }

    /// The `k` heaviest flows by recorded packets, heaviest first (ties
    /// broken by ascending flow ID). `k = 0` is empty; `k` past the
    /// population returns every flow.
    ///
    /// Deprecated shim kept for one release — use
    /// [`execute`](Self::execute) with
    /// [`TelemetryQuery::top_k`](pint_query::TelemetryQuery::top_k),
    /// which shares its ranking with every other backend.
    #[deprecated(note = "use `FleetView::execute` with `TelemetryQuery::new().top_k(k)`")]
    pub fn top_k(&self, k: usize) -> Vec<(FlowId, &FlowSummary)> {
        let mut ranked: Vec<(FlowId, &FlowSummary)> =
            self.merged.flows().map(|(f, s)| (*f, s)).collect();
        ranked.sort_by(|a, b| pint_query::top_k_order((a.1.packets, a.0), (b.1.packets, b.0)));
        ranked.truncate(k);
        ranked
    }

    /// A sub-view over the flows a selector names — how scoped fleet
    /// rules evaluate, at selection cost instead of a full-fleet
    /// merge. The selector's ordering is irrelevant here (the snapshot
    /// re-sorts by ID); only membership matters.
    pub(crate) fn scoped_view(&self, selector: &Selector) -> FleetView {
        let plan = QueryPlan {
            selector: selector.clone(),
            projection: pint_query::Projection::Summaries,
            options: Default::default(),
        };
        let kept = pint_query::refine(self.candidate_rows(&plan), &plan);
        FleetView {
            merged: CollectorSnapshot::from_parts(kept, Vec::new(), 0),
            collectors: self.collectors.clone(),
        }
    }

    /// Watch-list lookup: the requested flows that exist fleet-wide,
    /// ascending by ID. Unknown IDs are simply absent; duplicates in the
    /// request collapse.
    ///
    /// Deprecated shim kept for one release — use
    /// [`execute`](Self::execute) with
    /// [`TelemetryQuery::flows`](pint_query::TelemetryQuery::flows)
    /// (ID-sorted) or `watch` (request-ordered).
    #[deprecated(note = "use `FleetView::execute` with `TelemetryQuery::new().flows(..)`")]
    pub fn filtered(&self, flows: &[FlowId]) -> Vec<(FlowId, &FlowSummary)> {
        let mut wanted = flows.to_vec();
        wanted.sort_unstable();
        wanted.dedup();
        wanted
            .into_iter()
            .filter_map(|f| self.merged.flow(f).map(|s| (f, s)))
            .collect()
    }
}

impl QueryBackend for FleetView {
    /// The fleet backend of the unified query API.
    fn query(&self, plan: &QueryPlan) -> Result<QueryResult, QueryError> {
        self.execute(plan)
    }

    /// A merged view's freshness is the newest flow activity timestamp
    /// it holds (a view has no epoch stream of its own; the fleet
    /// server overrides this with its aggregator's epoch watermark).
    fn watermark(&self) -> Option<pint_query::Watermark> {
        let newest = self
            .merged
            .flows()
            .map(|(_, s)| s.last_ts)
            .max()
            .unwrap_or(0);
        Some(pint_query::Watermark {
            newest_applied: newest,
            newest_seen: newest,
            sources: self.collectors.len() as u64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pint_collector::flow_table::TableStats;
    use pint_collector::ShardSnapshot;
    use pint_core::RecorderKind;
    use pint_sketches::KllSketch;

    fn summary(values: &[u64], seed: u64) -> FlowSummary {
        let mut sk = KllSketch::with_seed(64, seed);
        for &v in values {
            sk.update(v);
        }
        FlowSummary {
            kind: RecorderKind::LatencyQuantiles,
            packets: values.len() as u64,
            state_bytes: values.len() * 8,
            last_ts: seed,
            hop_sketches: vec![KllSketch::with_seed(64, seed), sk],
            path: None,
            inconsistencies: 1,
        }
    }

    fn snap(flows: Vec<(FlowId, FlowSummary)>) -> CollectorSnapshot {
        CollectorSnapshot::from_shards(vec![ShardSnapshot {
            shard: 0,
            flows,
            table_stats: TableStats::default(),
            ingested: 0,
            journal_seq: 0,
        }])
    }

    #[test]
    fn merge_is_arrival_order_invariant_and_dedupes_flows() {
        // Flow 5 is seen by both collectors; 1 and 9 by one each.
        let a = snap(vec![
            (1, summary(&(0..100).collect::<Vec<_>>(), 1)),
            (5, summary(&(100..200).collect::<Vec<_>>(), 2)),
        ]);
        let b = snap(vec![
            (5, summary(&(200..300).collect::<Vec<_>>(), 3)),
            (9, summary(&(300..400).collect::<Vec<_>>(), 4)),
        ]);
        let ab = FleetView::merge(vec![(10, a.clone()), (20, b.clone())]);
        let ba = FleetView::merge(vec![(20, b), (10, a)]);

        assert_eq!(ab.num_flows(), 3, "duplicate flow 5 merged");
        assert_eq!(ab.total_packets(), 400);
        assert_eq!(ab.snapshot().flow(5).unwrap().packets, 200);
        assert_eq!(ab.collectors(), &[10, 20]);
        // Arrival order cannot change any answer.
        for phi in [0.1, 0.5, 0.9] {
            assert_eq!(
                ab.snapshot().flow(5).unwrap().hop_sketches[1].quantile(phi),
                ba.snapshot().flow(5).unwrap().hop_sketches[1].quantile(phi),
                "phi={phi}"
            );
        }
        assert_eq!(
            ab.snapshot().merged_hop_sketch(1).unwrap().quantile(0.5),
            ba.snapshot().merged_hop_sketch(1).unwrap().quantile(0.5),
        );
    }

    #[test]
    fn top_k_and_filtered_queries() {
        let a = snap(vec![
            (1, summary(&(0..10).collect::<Vec<_>>(), 1)),
            (2, summary(&(0..500).collect::<Vec<_>>(), 2)),
        ]);
        let b = snap(vec![(3, summary(&(0..200).collect::<Vec<_>>(), 3))]);
        let view = FleetView::merge(vec![(1, a), (2, b)]);

        let ids = |result: QueryResult| match result {
            QueryResult::Summaries(rows) => rows.into_iter().map(|(f, _)| f).collect::<Vec<_>>(),
            other => panic!("unexpected {other:?}"),
        };
        let run = |tq: pint_query::TelemetryQuery| ids(view.execute(&tq.plan().unwrap()).unwrap());

        use pint_query::TelemetryQuery;
        assert_eq!(
            run(TelemetryQuery::new().top_k(2)),
            vec![2, 3],
            "heaviest first"
        );
        assert!(run(TelemetryQuery::new().top_k(0)).is_empty());
        assert_eq!(
            run(TelemetryQuery::new().top_k(99)).len(),
            3,
            "k beyond population"
        );
        assert_eq!(
            run(TelemetryQuery::new().flows([3, 3, 1, 42])),
            vec![1, 3],
            "ascending, deduped, unknown absent"
        );
        assert_eq!(
            run(TelemetryQuery::new().watch([3, 3, 1, 42])),
            vec![3, 1],
            "watch lists keep request order"
        );

        // The one-release deprecated shims agree with the plans.
        #[allow(deprecated)]
        {
            let top = view.top_k(2);
            assert_eq!(
                top.iter().map(|&(f, _)| f).collect::<Vec<_>>(),
                run(TelemetryQuery::new().top_k(2))
            );
            let watch = view.filtered(&[3, 3, 1, 42]);
            assert_eq!(
                watch.iter().map(|&(f, _)| f).collect::<Vec<_>>(),
                run(TelemetryQuery::new().flows([3, 3, 1, 42]))
            );
        }
    }

    #[test]
    fn top_k_tie_break_is_ascending_flow_id_fleet_wide() {
        // Equal packet counts across collectors: the selection must be
        // the k smallest IDs, independent of which pod contributed
        // which flow.
        let a = snap(vec![
            (31, summary(&(0..5).collect::<Vec<_>>(), 1)),
            (4, summary(&(0..5).collect::<Vec<_>>(), 2)),
        ]);
        let b = snap(vec![
            (17, summary(&(0..5).collect::<Vec<_>>(), 3)),
            (90, summary(&(0..5).collect::<Vec<_>>(), 4)),
        ]);
        let view = FleetView::merge(vec![(2, b), (1, a)]);
        let plan = pint_query::TelemetryQuery::new().top_k(3).plan().unwrap();
        match view.execute(&plan).unwrap() {
            QueryResult::Summaries(rows) => {
                let ids: Vec<FlowId> = rows.into_iter().map(|(f, _)| f).collect();
                assert_eq!(ids, vec![4, 17, 31], "equal packets: ascending-ID winners");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn path_progress_prefers_further_reconstruction() {
        let partial = FlowSummary {
            kind: RecorderKind::PathTracing,
            packets: 5,
            state_bytes: 64,
            last_ts: 1,
            hop_sketches: Vec::new(),
            path: Some(pint_core::PathProgress {
                resolved: 1,
                k: 3,
                path: None,
                inconsistencies: 2,
            }),
            inconsistencies: 2,
        };
        let mut complete = partial.clone();
        complete.path = Some(pint_core::PathProgress {
            resolved: 3,
            k: 3,
            path: Some(vec![7, 8, 9]),
            inconsistencies: 1,
        });
        let view = FleetView::merge(vec![
            (1, snap(vec![(4, partial)])),
            (2, snap(vec![(4, complete)])),
        ]);
        let p = view.snapshot().flow(4).unwrap().path.as_ref().unwrap();
        assert!(p.is_complete());
        assert_eq!(p.path.as_deref(), Some(&[7u64, 8, 9][..]));
        assert_eq!(p.inconsistencies, 3, "observer counts accumulate");
    }
}
