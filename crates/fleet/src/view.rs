//! The merged fleet view: one queryable snapshot over N collectors.
//!
//! `CollectorSnapshot::from_shards` already merges *shards* of one
//! process deterministically; this module lifts the same associative
//! merge one level, to snapshots from different collector *processes*.
//! The new case is flow overlap: with per-pod collectors, packets of
//! one flow may be recorded by several pods (ECMP, sink sharding), so
//! equal flow IDs are merged — per-hop KLL sketches via the sketch's
//! associative `merge`, counters summed — rather than duplicated.
//! Collectors are processed in ascending collector-id order, making the
//! result independent of frame arrival order.

use pint_collector::{CollectorSnapshot, FlowId, FlowSummary};
use pint_core::dynamic::DynamicAggregator;

/// A point-in-time, queryable merge of every collector's latest
/// snapshot.
#[derive(Debug, Clone)]
pub struct FleetView {
    merged: CollectorSnapshot,
    collectors: Vec<u64>,
}

impl FleetView {
    /// Merges collector snapshots into one view. Input order does not
    /// matter: snapshots are sorted by collector id first, so any
    /// arrival interleaving yields the same view.
    pub fn merge(snapshots: impl IntoIterator<Item = (u64, CollectorSnapshot)>) -> Self {
        let mut tagged: Vec<(u64, CollectorSnapshot)> = snapshots.into_iter().collect();
        tagged.sort_by_key(|&(id, _)| id);
        let collectors: Vec<u64> = tagged.iter().map(|&(id, _)| id).collect();

        let mut all_flows = Vec::new();
        let mut all_stats = Vec::new();
        let mut ingested = 0u64;
        for (_, snap) in tagged {
            let (flows, stats, n) = snap.into_parts();
            all_flows.extend(flows);
            all_stats.extend(stats);
            ingested = ingested.saturating_add(n);
        }
        // Stable sort: duplicates of one flow stay in collector-id
        // order, so the fold below merges them deterministically.
        all_flows.sort_by_key(|&(f, _)| f);
        let mut merged: Vec<(FlowId, FlowSummary)> = Vec::with_capacity(all_flows.len());
        for (flow, summary) in all_flows {
            match merged.last_mut() {
                Some((last, dst)) if *last == flow => merge_summary(dst, summary),
                _ => merged.push((flow, summary)),
            }
        }
        Self {
            merged: CollectorSnapshot::from_parts(merged, all_stats, ingested),
            collectors,
        }
    }

    /// The merged snapshot — every `CollectorSnapshot` query (per-flow
    /// lookup, merged hop sketches, path completion, …) works on it.
    pub fn snapshot(&self) -> &CollectorSnapshot {
        &self.merged
    }

    /// Collector ids contributing to this view, ascending.
    pub fn collectors(&self) -> &[u64] {
        &self.collectors
    }

    /// Flows tracked fleet-wide.
    pub fn num_flows(&self) -> usize {
        self.merged.num_flows()
    }

    /// Digests recorded across the fleet's tracked flows.
    pub fn total_packets(&self) -> u64 {
        self.merged.total_packets()
    }

    /// Fleet-wide ϕ-quantile of hop `hop` (see
    /// [`CollectorSnapshot::latency_quantile`]).
    pub fn latency_quantile(&self, hop: usize, phi: f64, agg: &DynamicAggregator) -> Option<f64> {
        self.merged.latency_quantile(hop, phi, agg)
    }

    /// The `k` heaviest flows by recorded packets, heaviest first (ties
    /// broken by ascending flow ID) — the fleet dashboard's top panel,
    /// served without touching any collector. `k = 0` is empty; `k`
    /// past the population returns every flow.
    pub fn top_k(&self, k: usize) -> Vec<(FlowId, &FlowSummary)> {
        let mut ranked: Vec<(FlowId, &FlowSummary)> =
            self.merged.flows().map(|(f, s)| (*f, s)).collect();
        ranked.sort_by(|a, b| b.1.packets.cmp(&a.1.packets).then(a.0.cmp(&b.0)));
        ranked.truncate(k);
        ranked
    }

    /// A sub-view over only `flows` — how scoped fleet rules evaluate.
    /// Clones the kept summaries; scopes are expected to be watch-list
    /// sized, not the whole fleet.
    pub(crate) fn restricted_to(&self, flows: &[FlowId]) -> FleetView {
        let kept: Vec<(FlowId, FlowSummary)> = self
            .filtered(flows)
            .into_iter()
            .map(|(f, s)| (f, s.clone()))
            .collect();
        FleetView {
            merged: CollectorSnapshot::from_parts(kept, Vec::new(), 0),
            collectors: self.collectors.clone(),
        }
    }

    /// Watch-list lookup: the requested flows that exist fleet-wide,
    /// ascending by ID. Unknown IDs are simply absent; duplicates in the
    /// request collapse.
    pub fn filtered(&self, flows: &[FlowId]) -> Vec<(FlowId, &FlowSummary)> {
        let mut wanted = flows.to_vec();
        wanted.sort_unstable();
        wanted.dedup();
        wanted
            .into_iter()
            .filter_map(|f| self.merged.flow(f).map(|s| (f, s)))
            .collect()
    }
}

/// Folds `src` (a later collector's view of the same flow) into `dst`.
/// Counters saturate instead of wrapping: summaries come off the wire,
/// and a hostile `u64::MAX` must not panic (overflow checks) or corrupt
/// totals while the server holds its aggregator mutex.
fn merge_summary(dst: &mut FlowSummary, src: FlowSummary) {
    dst.packets = dst.packets.saturating_add(src.packets);
    dst.state_bytes = dst.state_bytes.saturating_add(src.state_bytes);
    dst.last_ts = dst.last_ts.max(src.last_ts);
    dst.inconsistencies = dst.inconsistencies.saturating_add(src.inconsistencies);
    for (hop, sk) in src.hop_sketches.into_iter().enumerate() {
        if hop >= dst.hop_sketches.len() {
            dst.hop_sketches.push(sk);
        } else if !sk.is_empty() {
            if dst.hop_sketches[hop].is_empty() {
                dst.hop_sketches[hop] = sk;
            } else {
                dst.hop_sketches[hop].merge(&sk);
            }
        }
    }
    dst.path = match (dst.path.take(), src.path) {
        (Some(a), Some(b)) => {
            // Keep the further-along reconstruction; inconsistency
            // counts accumulate across both observers.
            let total = a.inconsistencies.saturating_add(b.inconsistencies);
            let mut keep = if b.resolved > a.resolved { b } else { a };
            keep.inconsistencies = total;
            Some(keep)
        }
        (a, b) => a.or(b),
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use pint_collector::flow_table::TableStats;
    use pint_collector::ShardSnapshot;
    use pint_core::RecorderKind;
    use pint_sketches::KllSketch;

    fn summary(values: &[u64], seed: u64) -> FlowSummary {
        let mut sk = KllSketch::with_seed(64, seed);
        for &v in values {
            sk.update(v);
        }
        FlowSummary {
            kind: RecorderKind::LatencyQuantiles,
            packets: values.len() as u64,
            state_bytes: values.len() * 8,
            last_ts: seed,
            hop_sketches: vec![KllSketch::with_seed(64, seed), sk],
            path: None,
            inconsistencies: 1,
        }
    }

    fn snap(flows: Vec<(FlowId, FlowSummary)>) -> CollectorSnapshot {
        CollectorSnapshot::from_shards(vec![ShardSnapshot {
            shard: 0,
            flows,
            table_stats: TableStats::default(),
            ingested: 0,
        }])
    }

    #[test]
    fn merge_is_arrival_order_invariant_and_dedupes_flows() {
        // Flow 5 is seen by both collectors; 1 and 9 by one each.
        let a = snap(vec![
            (1, summary(&(0..100).collect::<Vec<_>>(), 1)),
            (5, summary(&(100..200).collect::<Vec<_>>(), 2)),
        ]);
        let b = snap(vec![
            (5, summary(&(200..300).collect::<Vec<_>>(), 3)),
            (9, summary(&(300..400).collect::<Vec<_>>(), 4)),
        ]);
        let ab = FleetView::merge(vec![(10, a.clone()), (20, b.clone())]);
        let ba = FleetView::merge(vec![(20, b), (10, a)]);

        assert_eq!(ab.num_flows(), 3, "duplicate flow 5 merged");
        assert_eq!(ab.total_packets(), 400);
        assert_eq!(ab.snapshot().flow(5).unwrap().packets, 200);
        assert_eq!(ab.collectors(), &[10, 20]);
        // Arrival order cannot change any answer.
        for phi in [0.1, 0.5, 0.9] {
            assert_eq!(
                ab.snapshot().flow(5).unwrap().hop_sketches[1].quantile(phi),
                ba.snapshot().flow(5).unwrap().hop_sketches[1].quantile(phi),
                "phi={phi}"
            );
        }
        assert_eq!(
            ab.snapshot().merged_hop_sketch(1).unwrap().quantile(0.5),
            ba.snapshot().merged_hop_sketch(1).unwrap().quantile(0.5),
        );
    }

    #[test]
    fn top_k_and_filtered_queries() {
        let a = snap(vec![
            (1, summary(&(0..10).collect::<Vec<_>>(), 1)),
            (2, summary(&(0..500).collect::<Vec<_>>(), 2)),
        ]);
        let b = snap(vec![(3, summary(&(0..200).collect::<Vec<_>>(), 3))]);
        let view = FleetView::merge(vec![(1, a), (2, b)]);

        let top = view.top_k(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, 2, "heaviest first");
        assert_eq!(top[1].0, 3);
        assert!(view.top_k(0).is_empty());
        assert_eq!(view.top_k(99).len(), 3, "k beyond population");

        let watch = view.filtered(&[3, 3, 1, 42]);
        assert_eq!(
            watch.iter().map(|&(f, _)| f).collect::<Vec<_>>(),
            vec![1, 3],
            "ascending, deduped, unknown absent"
        );
    }

    #[test]
    fn path_progress_prefers_further_reconstruction() {
        let partial = FlowSummary {
            kind: RecorderKind::PathTracing,
            packets: 5,
            state_bytes: 64,
            last_ts: 1,
            hop_sketches: Vec::new(),
            path: Some(pint_core::PathProgress {
                resolved: 1,
                k: 3,
                path: None,
                inconsistencies: 2,
            }),
            inconsistencies: 2,
        };
        let mut complete = partial.clone();
        complete.path = Some(pint_core::PathProgress {
            resolved: 3,
            k: 3,
            path: Some(vec![7, 8, 9]),
            inconsistencies: 1,
        });
        let view = FleetView::merge(vec![
            (1, snap(vec![(4, partial)])),
            (2, snap(vec![(4, complete)])),
        ]);
        let p = view.snapshot().flow(4).unwrap().path.as_ref().unwrap();
        assert!(p.is_complete());
        assert_eq!(p.path.as_deref(), Some(&[7u64, 8, 9][..]));
        assert_eq!(p.inconsistencies, 3, "observer counts accumulate");
    }
}
