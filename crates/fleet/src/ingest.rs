//! The regional digest-ingest endpoint: a non-blocking poll-loop
//! server for [`DigestBatch`] streams from many edge forwarders.
//!
//! Unlike [`FleetServer`](crate::FleetServer) (snapshot frames, one
//! thread per connection), [`DigestServer`] multiplexes every
//! connection on **one** poll thread over non-blocking `std::net`
//! sockets — the workspace is offline and runtime-free, so there is no
//! async executor to lean on. Each connection carries its own frame
//! reassembly buffer and write-back ack buffer; per-tick work is
//! bounded per connection, so one hostile peer (oversized frames,
//! garbage bytes, slow-loris partial writes, a half-open socket) can
//! reject, stall, or die without delaying any other connection or the
//! accept path.
//!
//! Delivery is at-least-once: batches carry `(source, seq)`, the
//! server deduplicates per source ([`SourceDedup`]) and acknowledges
//! every batch with a [`BatchAck`] so the sending
//! [`DigestForwarder`](crate::DigestForwarder) can retire it. Decoded
//! batches are handed to a caller-supplied sink — typically a
//! [`CollectorHandle`](pint_collector::CollectorHandle) feeding the
//! local collector's producer rings.

use pint_collector::CollectorHandle;
use pint_core::DigestReport;
use pint_obs::{FlightRecorder, GaugeGroup, Histogram, MetricsRegistry, TraceStage};
use pint_wire::{
    frame_into, AckStatus, BatchAck, DigestBatch, FramePoll, FrameReader, FrameType, MetricsMsg,
    MetricsReport, SourceDedup, TraceMsg, TraceReport, WireDecode,
};
use std::collections::BTreeMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Sleep between poll ticks when no connection made progress.
const IDLE_SLEEP: Duration = Duration::from_millis(1);

/// Frames decoded per connection per tick — bounds how long one
/// firehose peer can monopolize the poll thread.
const FRAMES_PER_TICK: usize = 64;

/// Tuning knobs of a [`DigestServer`].
#[derive(Debug, Clone, Copy)]
pub struct DigestServerConfig {
    /// Drop a connection stuck mid-frame (or mid-ack-write) with no
    /// progress for this long — the slow-loris guard. Idle connections
    /// at a frame boundary are unaffected.
    pub read_deadline: Duration,
    /// Connections beyond this are accepted and immediately dropped
    /// (counted), bounding poll-loop state under a connection flood.
    pub max_connections: usize,
    /// Distinct edge sources tracked for dedup; batches from sources
    /// beyond this are rejected (never acked), bounding dedup memory.
    pub max_sources: usize,
}

impl Default for DigestServerConfig {
    fn default() -> Self {
        Self {
            read_deadline: Duration::from_secs(2),
            max_connections: 1_024,
            max_sources: 4_096,
        }
    }
}

/// Live counters of one [`DigestServer`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DigestServerStats {
    /// Connections accepted.
    pub accepted: u64,
    /// Connections currently served.
    pub active: usize,
    /// Fresh batches fed to the sink.
    pub batches_applied: u64,
    /// Retransmitted batches recognized and dropped by dedup.
    pub batches_duplicate: u64,
    /// Digests inside applied batches.
    pub digests: u64,
    /// Acks written back to forwarders.
    pub acks_sent: u64,
    /// Connections dropped because their byte stream stopped being
    /// PINT frames (bad magic, future version, hostile length — the
    /// stream cannot resynchronize).
    pub framing_errors: u64,
    /// Well-framed `DigestBatch` frames whose payload failed to
    /// decode; the frame boundary holds, so the connection survives.
    pub payload_errors: u64,
    /// Connections dropped by the slow-loris deadline.
    pub stalled_dropped: u64,
    /// Well-formed frames of types this server does not ingest.
    pub unsupported_frames: u64,
    /// Connections refused over [`DigestServerConfig::max_connections`].
    pub connections_rejected: u64,
    /// Batches refused over [`DigestServerConfig::max_sources`].
    pub sources_rejected: u64,
}

/// Where decoded batches go: `(source id, reports)`.
pub type BatchSink = Box<dyn FnMut(u64, Vec<DigestReport>) + Send>;

/// A fault-tolerant digest-ingest endpoint (see the module docs).
///
/// ```no_run
/// use pint_fleet::{DigestForwarder, DigestServer, DigestServerConfig, ForwarderConfig};
/// use pint_core::{Digest, DigestReport};
/// use std::sync::{Arc, Mutex};
///
/// // Regional side: collect every batch a forwarder delivers.
/// let seen = Arc::new(Mutex::new(Vec::new()));
/// let sink_seen = Arc::clone(&seen);
/// let server = DigestServer::bind(
///     "127.0.0.1:0",
///     DigestServerConfig::default(),
///     Box::new(move |source, reports| {
///         sink_seen.lock().unwrap().push((source, reports));
///     }),
/// )?;
///
/// // Edge side: a forwarder ships digests upstream with acks/retries.
/// let fwd = DigestForwarder::connect(
///     server.local_addr(),
///     ForwarderConfig {
///         source: 7,
///         ..ForwarderConfig::default()
///     },
/// );
/// fwd.push(DigestReport::new(1, 100, Digest::new(1), 5, 0));
/// fwd.flush();
/// let stats = fwd.shutdown(std::time::Duration::from_secs(5));
/// assert_eq!(stats.delivered, 1);
/// assert_eq!(server.stats().digests, 1);
/// # Ok::<(), std::io::Error>(())
/// ```
pub struct DigestServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
    stats: Arc<Mutex<DigestServerStats>>,
    metrics: MetricsRegistry,
}

/// `set_all` field order of the `digest_server` gauge group (mirrors
/// [`DigestServerStats`]). Published once per poll tick, so a reader
/// always observes one tick's consistent counters — in particular
/// `acks_sent == batches_applied + batches_duplicate` holds in every
/// snapshot (sourced batches are acked exactly once, rejected ones
/// never).
const DIGEST_SERVER_OBS_FIELDS: [&str; 12] = [
    "accepted",
    "active",
    "batches_applied",
    "batches_duplicate",
    "digests",
    "acks_sent",
    "framing_errors",
    "payload_errors",
    "stalled_dropped",
    "unsupported_frames",
    "connections_rejected",
    "sources_rejected",
];

impl DigestServer {
    /// Binds and starts the poll thread. Use `"127.0.0.1:0"` to let
    /// the OS pick a port (read it back via
    /// [`local_addr`](Self::local_addr)).
    pub fn bind(
        addr: impl ToSocketAddrs,
        config: DigestServerConfig,
        sink: BatchSink,
    ) -> std::io::Result<Self> {
        Self::bind_observed(addr, config, sink, MetricsRegistry::new())
    }

    /// [`bind`](Self::bind) publishing self-telemetry into a shared
    /// registry: the `digest_server` gauge group is refreshed once per
    /// poll tick, and `Metrics` request frames on any connection are
    /// answered with a snapshot of `metrics` — share the collector's
    /// registry and one fetch reports both tiers.
    pub fn bind_observed(
        addr: impl ToSocketAddrs,
        config: DigestServerConfig,
        sink: BatchSink,
        metrics: MetricsRegistry,
    ) -> std::io::Result<Self> {
        Self::bind_inner(addr, config, sink, metrics, None)
    }

    /// [`bind_observed`](Self::bind_observed) with pipeline tracing:
    /// every applied (or deduplicated) batch records a
    /// [`TraceStage::ServerApplied`] / `ServerDuplicate` event into
    /// `recorder`, batches carrying a trace context feed the
    /// `ingest_e2e_latency_ns` histogram (receiver clock minus origin
    /// stamp — honest only when both ends share a time base), and
    /// `TraceDump` request frames on any connection are answered with
    /// a snapshot of `recorder`.
    pub fn bind_traced(
        addr: impl ToSocketAddrs,
        config: DigestServerConfig,
        sink: BatchSink,
        metrics: MetricsRegistry,
        recorder: FlightRecorder,
    ) -> std::io::Result<Self> {
        Self::bind_inner(addr, config, sink, metrics, Some(recorder))
    }

    fn bind_inner(
        addr: impl ToSocketAddrs,
        config: DigestServerConfig,
        sink: BatchSink,
        metrics: MetricsRegistry,
        recorder: Option<FlightRecorder>,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(Mutex::new(DigestServerStats::default()));
        let loop_stop = Arc::clone(&stop);
        let loop_stats = Arc::clone(&stats);
        let loop_metrics = metrics.clone();
        let thread = std::thread::Builder::new()
            .name("pint-digest-ingest".into())
            .spawn(move || {
                poll_loop(
                    listener,
                    config,
                    sink,
                    loop_stats,
                    loop_stop,
                    loop_metrics,
                    recorder,
                )
            })
            .expect("spawn digest ingest thread");
        Ok(Self {
            addr,
            stop,
            thread: Some(thread),
            stats,
            metrics,
        })
    }

    /// The registry this server publishes its `digest_server_*` gauge
    /// group into and answers `Metrics` frames from.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Binds with the batch sink feeding a collector producer: each
    /// applied batch is pushed through `handle`'s per-shard rings and
    /// flushed, so queries observe it immediately. Undeliverable
    /// digests (collector shut down mid-batch) are counted by the
    /// collector's dropped-digest counter, never lost silently.
    pub fn bind_collector(
        addr: impl ToSocketAddrs,
        config: DigestServerConfig,
        mut handle: CollectorHandle,
    ) -> std::io::Result<Self> {
        Self::bind(
            addr,
            config,
            Box::new(move |_source, reports| {
                let _ = handle.push_batch(reports);
                let _ = handle.flush();
            }),
        )
    }

    /// The bound address forwarders connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A copy of the live counters.
    pub fn stats(&self) -> DigestServerStats {
        *self.stats.lock().expect("digest server stats poisoned")
    }

    /// Stops the poll thread (open connections are dropped) and
    /// returns the final counters.
    pub fn shutdown(mut self) -> DigestServerStats {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        self.stats()
    }
}

impl Drop for DigestServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// The poll loop's tracing hooks, built once at bind: the registry's
/// clock, the end-to-end latency histogram it feeds, and the optional
/// flight recorder served over `TraceDump` frames.
struct IngestObs {
    clock: pint_obs::ClockHandle,
    e2e_latency: Histogram,
    recorder: Option<FlightRecorder>,
}

/// One connection's poll-loop state machine.
struct Conn {
    reader: FrameReader<TcpStream>,
    writer: TcpStream,
    /// Pending ack bytes not yet accepted by the socket (partial
    /// writes to a congested or hostile peer resume here).
    write_buf: Vec<u8>,
    /// Last instant this connection moved: bytes read, a frame
    /// decoded, or ack bytes flushed.
    last_progress: Instant,
}

/// What one connection tick concluded.
enum TickOutcome {
    Keep { progressed: bool },
    Drop,
}

impl Conn {
    fn new(stream: TcpStream) -> std::io::Result<Self> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok(Self {
            reader: FrameReader::new(stream),
            writer,
            write_buf: Vec::new(),
            last_progress: Instant::now(),
        })
    }

    /// Serves one tick: decode up to [`FRAMES_PER_TICK`] frames, route
    /// them, flush pending acks, and police the progress deadline.
    #[allow(clippy::too_many_arguments)]
    fn tick(
        &mut self,
        config: &DigestServerConfig,
        sink: &mut BatchSink,
        dedup: &mut BTreeMap<u64, SourceDedup>,
        stats: &mut DigestServerStats,
        metrics: &MetricsRegistry,
        obs: &IngestObs,
    ) -> TickOutcome {
        let mut progressed = false;
        let buffered_before = self.reader.buffered();
        let mut closed = false;
        for _ in 0..FRAMES_PER_TICK {
            match self.reader.poll_frame() {
                Ok(FramePoll::Frame(ty, payload)) => {
                    progressed = true;
                    self.route(ty, &payload, config, sink, dedup, stats, metrics, obs);
                }
                Ok(FramePoll::Pending) => break,
                Ok(FramePoll::Closed) => {
                    closed = true;
                    break;
                }
                Err(pint_wire::ReadFrameError::Wire(_)) => {
                    // Framing cannot resynchronize: count and drop.
                    stats.framing_errors += 1;
                    return TickOutcome::Drop;
                }
                Err(pint_wire::ReadFrameError::Io(_)) => {
                    // Reset or mid-frame EOF; also a framing loss from
                    // this server's perspective when bytes were
                    // pending, but counted as a plain disconnect.
                    return TickOutcome::Drop;
                }
            }
        }
        if self.reader.buffered() != buffered_before {
            progressed = true;
        }

        // Flush acks, tolerating partial writes.
        while !self.write_buf.is_empty() {
            match self.writer.write(&self.write_buf) {
                Ok(0) => return TickOutcome::Drop,
                Ok(n) => {
                    self.write_buf.drain(..n);
                    progressed = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return TickOutcome::Drop,
            }
        }

        if closed && self.write_buf.is_empty() {
            return TickOutcome::Drop; // clean goodbye, acks delivered
        }
        if progressed {
            self.last_progress = Instant::now();
        } else {
            // Mid-frame (or mid-ack) with no movement: slow-loris.
            let mid_work = self.reader.buffered() > 0 || !self.write_buf.is_empty();
            if mid_work && self.last_progress.elapsed() > config.read_deadline {
                stats.stalled_dropped += 1;
                return TickOutcome::Drop;
            }
        }
        TickOutcome::Keep { progressed }
    }

    /// Dispatches one well-framed frame.
    #[allow(clippy::too_many_arguments)]
    fn route(
        &mut self,
        ty: FrameType,
        payload: &[u8],
        config: &DigestServerConfig,
        sink: &mut BatchSink,
        dedup: &mut BTreeMap<u64, SourceDedup>,
        stats: &mut DigestServerStats,
        metrics: &MetricsRegistry,
        obs: &IngestObs,
    ) {
        match ty {
            FrameType::DigestBatch => match DigestBatch::decode(payload) {
                Ok(batch) => {
                    if !dedup.contains_key(&batch.source) && dedup.len() >= config.max_sources {
                        stats.sources_rejected += 1;
                        return; // never acked; the sender will shed it
                    }
                    let fresh = dedup.entry(batch.source).or_default().observe(batch.seq);
                    let status = if fresh {
                        stats.batches_applied += 1;
                        stats.digests += batch.reports.len() as u64;
                        let now = obs.clock.now_ns();
                        if let Some(trace) = &batch.trace {
                            // Edge→regional latency from the sender's
                            // origin stamp — a true end-to-end sample,
                            // not a per-hop guess (meaningful when both
                            // ends share a time base).
                            obs.e2e_latency.record(now.saturating_sub(trace.origin_ns));
                        }
                        if let Some(rec) = &obs.recorder {
                            rec.record_at(
                                batch.source as u32,
                                TraceStage::ServerApplied,
                                batch.source,
                                batch.seq,
                                now,
                            );
                        }
                        sink(batch.source, batch.reports);
                        AckStatus::Applied
                    } else {
                        stats.batches_duplicate += 1;
                        if let Some(rec) = &obs.recorder {
                            rec.record(
                                batch.source as u32,
                                TraceStage::ServerDuplicate,
                                batch.source,
                                batch.seq,
                            );
                        }
                        AckStatus::Duplicate
                    };
                    let ack = BatchAck {
                        seq: batch.seq,
                        status,
                    };
                    self.write_buf.extend_from_slice(&ack.to_frame_bytes());
                    stats.acks_sent += 1;
                }
                Err(_) => {
                    // The envelope was valid, so the stream is still in
                    // sync — count the bad payload, keep the connection.
                    stats.payload_errors += 1;
                }
            },
            FrameType::Metrics => match MetricsMsg::decode(payload) {
                Ok(MetricsMsg::Request(req)) => {
                    // Answered from the shared registry on the same
                    // back-pressure-aware write path as acks.
                    let report = MetricsReport {
                        request_id: req.request_id,
                        source: 0,
                        snapshot: metrics.snapshot(),
                    };
                    frame_into(FrameType::Metrics, &report, &mut self.write_buf);
                }
                // A stray report (or junk payload) at the server side.
                _ => stats.unsupported_frames += 1,
            },
            FrameType::TraceDump => match TraceMsg::decode(payload) {
                Ok(TraceMsg::Request(req)) => {
                    // Untraced servers answer with an empty dump, so
                    // clients need not know which bind variant ran.
                    let report = TraceReport {
                        request_id: req.request_id,
                        source: 0,
                        dump: obs
                            .recorder
                            .as_ref()
                            .map(|r| r.snapshot())
                            .unwrap_or_default(),
                    };
                    frame_into(FrameType::TraceDump, &report, &mut self.write_buf);
                }
                _ => stats.unsupported_frames += 1,
            },
            // Edge processes may announce/leave; nothing to track here.
            FrameType::Hello | FrameType::Bye => {}
            _ => stats.unsupported_frames += 1,
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn poll_loop(
    listener: TcpListener,
    config: DigestServerConfig,
    mut sink: BatchSink,
    shared_stats: Arc<Mutex<DigestServerStats>>,
    stop: Arc<AtomicBool>,
    metrics: MetricsRegistry,
    recorder: Option<FlightRecorder>,
) {
    let ingest_obs = IngestObs {
        clock: metrics.clock(),
        e2e_latency: metrics.histogram("ingest_e2e_latency_ns"),
        recorder,
    };
    let mut conns: Vec<Conn> = Vec::new();
    let mut dedup: BTreeMap<u64, SourceDedup> = BTreeMap::new();
    let mut stats = DigestServerStats::default();
    let obs = metrics.gauge_group("digest_server", &DIGEST_SERVER_OBS_FIELDS);
    let publish = |obs: &GaugeGroup, s: &DigestServerStats| {
        obs.set_all(&[
            s.accepted,
            s.active as u64,
            s.batches_applied,
            s.batches_duplicate,
            s.digests,
            s.acks_sent,
            s.framing_errors,
            s.payload_errors,
            s.stalled_dropped,
            s.unsupported_frames,
            s.connections_rejected,
            s.sources_rejected,
        ]);
    };
    while !stop.load(Ordering::Acquire) {
        let mut progressed = false;
        // Accept everything pending this tick.
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    progressed = true;
                    if conns.len() >= config.max_connections {
                        stats.connections_rejected += 1;
                        continue; // stream drops here
                    }
                    match Conn::new(stream) {
                        Ok(conn) => {
                            stats.accepted += 1;
                            conns.push(conn);
                        }
                        Err(_) => stats.connections_rejected += 1,
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
        // One bounded tick per connection; a dropped connection never
        // takes the loop down with it.
        conns.retain_mut(|conn| {
            match conn.tick(
                &config,
                &mut sink,
                &mut dedup,
                &mut stats,
                &metrics,
                &ingest_obs,
            ) {
                TickOutcome::Keep { progressed: p } => {
                    progressed |= p;
                    true
                }
                TickOutcome::Drop => {
                    progressed = true;
                    false
                }
            }
        });
        stats.active = conns.len();
        *shared_stats.lock().expect("digest server stats poisoned") = stats;
        publish(&obs, &stats);
        if !progressed {
            std::thread::sleep(IDLE_SLEEP);
        }
    }
    stats.active = 0;
    *shared_stats.lock().expect("digest server stats poisoned") = stats;
    publish(&obs, &stats);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_survives_garbage_slow_and_half_open_peers() {
        let applied = Arc::new(Mutex::new(0u64));
        let sink_applied = Arc::clone(&applied);
        let server = DigestServer::bind(
            "127.0.0.1:0",
            DigestServerConfig {
                read_deadline: Duration::from_millis(100),
                ..DigestServerConfig::default()
            },
            Box::new(move |_src, reports| {
                *sink_applied.lock().unwrap() += reports.len() as u64;
            }),
        )
        .unwrap();
        let addr = server.local_addr();

        // A garbage peer: not PINT frames at all.
        let mut garbage = TcpStream::connect(addr).unwrap();
        garbage.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
        // A slow-loris peer: a valid prefix, then silence.
        let mut loris = TcpStream::connect(addr).unwrap();
        loris.write_all(b"PINT\x01").unwrap();
        // A half-open peer: connects and says nothing (legal; parked).
        let _half_open = TcpStream::connect(addr).unwrap();

        // A well-behaved batch still lands while all three misbehave.
        let mut good = TcpStream::connect(addr).unwrap();
        let batch = DigestBatch {
            source: 1,
            seq: 1,
            reports: vec![pint_core::DigestReport::new(
                9,
                100,
                pint_core::Digest::new(1),
                3,
                0,
            )],
            trace: None,
        };
        good.write_all(&batch.to_frame_bytes()).unwrap();
        good.flush().unwrap();

        let deadline = Instant::now() + Duration::from_secs(10);
        while *applied.lock().unwrap() < 1 {
            assert!(Instant::now() < deadline, "batch never applied");
            std::thread::sleep(Duration::from_millis(5));
        }
        // The ack comes back to the good client.
        good.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut reader = FrameReader::new(good);
        let (ty, payload) = reader.read_frame().unwrap().unwrap();
        assert_eq!(ty, FrameType::BatchAck);
        let ack = BatchAck::decode(&payload).unwrap();
        assert_eq!(ack.seq, 1);
        assert_eq!(ack.status, AckStatus::Applied);

        // The garbage and slow-loris peers get cleaned up; the server
        // keeps running.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let s = server.stats();
            if s.framing_errors >= 1 && s.stalled_dropped >= 1 {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "hostile peers never reaped: {s:?}"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        let s = server.shutdown();
        assert_eq!(s.batches_applied, 1);
        assert_eq!(s.digests, 1);
        assert_eq!(s.acks_sent, 1);
    }
}
